//! Per-epoch time-series: `SimStats` delta snapshots every N rounds.
//!
//! An [`EpochRecorder`] rides inside a [`Simulator`](crate::Simulator)
//! (as an `Option<Box<_>>`, so disabled runs pay one pointer of space
//! and one branch per round). Every `every` rounds it cuts an
//! [`Epoch`]: the delta of every `SimStats` counter since the previous
//! cut ([`SimStats::delta_since`]), the snoop fan-out histogram, the
//! per-kind and per-node network traffic, vCPU swap activity, and the
//! process-wide warm-pool counters.
//!
//! Two export formats:
//!
//! * [`EpochRecorder::to_jsonl`] — one JSON object per epoch after a
//!   schema header line (`vsnoop-epochs/v1`);
//! * [`EpochRecorder::to_chrome_trace`] — Chrome `trace_event` counter
//!   tracks (`ph:"C"`, timestamps in simulated cycles as µs), loadable
//!   directly in Perfetto (<https://ui.perfetto.dev>) for a visual
//!   time-series of snoops, misses, retries and traffic over a run.

use std::io;
use std::path::{Path, PathBuf};

use sim_net::{MessageKind, TrafficStats};

use crate::runner::json::Value;
use crate::SimStats;

/// Schema tag written on the first line of every epochs JSONL export.
pub const EPOCHS_SCHEMA: &str = "vsnoop-epochs/v1";

/// One completed epoch: deltas of every tracked quantity over the
/// epoch's rounds.
#[derive(Clone, Debug)]
pub struct Epoch {
    /// Epoch index (0-based, consecutive).
    pub index: u64,
    /// Simulator cycle at the start of the epoch.
    pub start_cycle: u64,
    /// Simulator cycle at the end of the epoch (the cut point).
    pub end_cycle: u64,
    /// Delta of every `SimStats` counter over the epoch.
    pub stats: SimStats,
    /// Snoop fan-out histogram: `fanout_hist[k]` counts transaction
    /// attempts whose snoop reached `k` cores (requester included).
    pub fanout_hist: Vec<u64>,
    /// Byte-links moved per [`MessageKind`] (indexed by
    /// `MessageKind::index()`).
    pub traffic_byte_links: Vec<u64>,
    /// Messages sent per [`MessageKind`].
    pub traffic_messages: Vec<u64>,
    /// Bytes attributed per mesh node (source + destination), when the
    /// network's per-node tally is enabled; empty otherwise.
    pub node_bytes: Vec<u64>,
    /// Successful vCPU swaps (migrations) during the epoch.
    pub vcpu_swaps: u64,
    /// Process-wide warm-pool hits during the epoch.
    pub warm_hits: u64,
    /// Process-wide warm-pool misses during the epoch.
    pub warm_misses: u64,
    /// Process-wide warm-pool evictions during the epoch.
    pub warm_evictions: u64,
}

impl Epoch {
    /// Renders the epoch as one ordered JSON object (a JSONL line).
    pub fn to_value(&self) -> Value {
        let mut counters: Vec<(&str, Value)> = Vec::new();
        for (name, v) in self.stats.counters() {
            counters.push((name, Value::UInt(v)));
        }
        let stall_max = self.stats.stall_cycles.iter().copied().max().unwrap_or(0);
        let traffic: Vec<(String, Value)> = MessageKind::ALL
            .iter()
            .map(|k| {
                (
                    format!("{k:?}"),
                    Value::obj([
                        (
                            "byte_links",
                            Value::UInt(self.traffic_byte_links[k.index()]),
                        ),
                        ("messages", Value::UInt(self.traffic_messages[k.index()])),
                    ]),
                )
            })
            .collect();
        Value::obj([
            ("epoch", Value::UInt(self.index)),
            ("start_cycle", Value::UInt(self.start_cycle)),
            ("end_cycle", Value::UInt(self.end_cycle)),
            (
                "counters",
                Value::Obj(
                    counters
                        .into_iter()
                        .map(|(k, v)| (k.to_string(), v))
                        .collect(),
                ),
            ),
            ("stall_max", Value::UInt(stall_max)),
            (
                "fanout_hist",
                Value::Arr(self.fanout_hist.iter().map(|&v| Value::UInt(v)).collect()),
            ),
            ("traffic", Value::Obj(traffic)),
            (
                "node_bytes",
                Value::Arr(self.node_bytes.iter().map(|&v| Value::UInt(v)).collect()),
            ),
            ("vcpu_swaps", Value::UInt(self.vcpu_swaps)),
            (
                "warm",
                Value::obj([
                    ("hits", Value::UInt(self.warm_hits)),
                    ("misses", Value::UInt(self.warm_misses)),
                    ("evictions", Value::UInt(self.warm_evictions)),
                ]),
            ),
        ])
    }
}

/// Accumulates [`Epoch`]s from a running simulator.
///
/// The recorder owns the *baselines* (the counter values at the last
/// cut); the simulator feeds it one [`EpochRecorder::tick_round`] per
/// round plus [`EpochRecorder::record_fanout`] per transaction
/// attempt. [`EpochRecorder::rebaseline`] resets everything at
/// measurement boundaries (`Simulator::reset_measurement`).
#[derive(Clone, Debug)]
pub struct EpochRecorder {
    every: u64,
    rounds_in_epoch: u64,
    epoch_start_cycle: u64,
    base_stats: SimStats,
    base_traffic: TrafficStats,
    base_nodes: Vec<u64>,
    base_swaps: u64,
    base_warm: [u64; 3],
    fanout_cumulative: Vec<u64>,
    fanout_base: Vec<u64>,
    epochs: Vec<Epoch>,
}

impl EpochRecorder {
    /// Creates a recorder cutting an epoch every `every` rounds
    /// (clamped to at least 1). Baselines start at zero; call
    /// [`EpochRecorder::rebaseline`] before the measured run.
    pub fn new(every: u64) -> Self {
        EpochRecorder {
            every: every.max(1),
            rounds_in_epoch: 0,
            epoch_start_cycle: 0,
            base_stats: SimStats::default(),
            base_traffic: TrafficStats::default(),
            base_nodes: Vec::new(),
            base_swaps: 0,
            base_warm: warm_counters(),
            fanout_cumulative: Vec::new(),
            fanout_base: Vec::new(),
            epochs: Vec::new(),
        }
    }

    /// Rounds per epoch.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Completed epochs so far, oldest first.
    pub fn epochs(&self) -> &[Epoch] {
        &self.epochs
    }

    /// Discards all recorded epochs and re-anchors every baseline at
    /// the given current values. Called at measurement boundaries.
    pub fn rebaseline(
        &mut self,
        cycle: u64,
        stats: &SimStats,
        traffic: &TrafficStats,
        nodes: &[u64],
        swaps: u64,
    ) {
        self.rounds_in_epoch = 0;
        self.epoch_start_cycle = cycle;
        self.base_stats = stats.clone();
        self.base_traffic = *traffic;
        self.base_nodes = nodes.to_vec();
        self.base_swaps = swaps;
        self.base_warm = warm_counters();
        self.fanout_cumulative.clear();
        self.fanout_base.clear();
        self.epochs.clear();
    }

    /// Counts one transaction attempt that snooped `cores` cores
    /// (requester included) toward the fan-out histogram.
    pub fn record_fanout(&mut self, cores: usize) {
        if self.fanout_cumulative.len() <= cores {
            self.fanout_cumulative.resize(cores + 1, 0);
        }
        self.fanout_cumulative[cores] += 1;
    }

    /// Advances one round; cuts an [`Epoch`] when the configured epoch
    /// length is reached. `cycle`, `stats`, `traffic`, `nodes` and
    /// `swaps` are the simulator's *current aggregate* values.
    pub fn tick_round(
        &mut self,
        cycle: u64,
        stats: &SimStats,
        traffic: &TrafficStats,
        nodes: &[u64],
        swaps: u64,
    ) {
        self.rounds_in_epoch += 1;
        if self.rounds_in_epoch < self.every {
            return;
        }
        self.cut(cycle, stats, traffic, nodes, swaps);
    }

    /// Cuts the current (possibly partial) epoch if any rounds have
    /// accumulated — used at end-of-run so the tail is not lost.
    pub fn flush(
        &mut self,
        cycle: u64,
        stats: &SimStats,
        traffic: &TrafficStats,
        nodes: &[u64],
        swaps: u64,
    ) {
        if self.rounds_in_epoch > 0 {
            self.cut(cycle, stats, traffic, nodes, swaps);
        }
    }

    fn cut(
        &mut self,
        cycle: u64,
        stats: &SimStats,
        traffic: &TrafficStats,
        nodes: &[u64],
        swaps: u64,
    ) {
        let delta_stats = stats.delta_since(&self.base_stats);
        let traffic_byte_links: Vec<u64> = MessageKind::ALL
            .iter()
            .map(|&k| traffic.byte_links_of(k) - self.base_traffic.byte_links_of(k))
            .collect();
        let traffic_messages: Vec<u64> = MessageKind::ALL
            .iter()
            .map(|&k| traffic.messages_of(k) - self.base_traffic.messages_of(k))
            .collect();
        let node_bytes: Vec<u64> = nodes
            .iter()
            .enumerate()
            .map(|(i, &b)| b - self.base_nodes.get(i).copied().unwrap_or(0))
            .collect();
        let mut fanout_hist = self.fanout_cumulative.clone();
        for (i, &b) in self.fanout_base.iter().enumerate() {
            fanout_hist[i] -= b;
        }
        let warm = warm_counters();
        self.epochs.push(Epoch {
            index: self.epochs.len() as u64,
            start_cycle: self.epoch_start_cycle,
            end_cycle: cycle,
            stats: delta_stats,
            fanout_hist,
            traffic_byte_links,
            traffic_messages,
            node_bytes,
            vcpu_swaps: swaps - self.base_swaps,
            // Warm-pool counters are process-global; under concurrent
            // jobs an epoch attributes all process activity in its
            // window, which is the honest observable.
            warm_hits: warm[0].saturating_sub(self.base_warm[0]),
            warm_misses: warm[1].saturating_sub(self.base_warm[1]),
            warm_evictions: warm[2].saturating_sub(self.base_warm[2]),
        });
        self.rounds_in_epoch = 0;
        self.epoch_start_cycle = cycle;
        self.base_stats = stats.clone();
        self.base_traffic = *traffic;
        self.base_nodes = nodes.to_vec();
        self.base_swaps = swaps;
        self.base_warm = warm;
        self.fanout_base = self.fanout_cumulative.clone();
    }

    /// Renders all epochs as JSONL: a schema header line followed by
    /// one JSON object per epoch.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let header = Value::obj([
            ("schema", Value::Str(EPOCHS_SCHEMA.to_string())),
            ("every", Value::UInt(self.every)),
            ("epochs", Value::UInt(self.epochs.len() as u64)),
        ]);
        out.push_str(&header.to_json());
        out.push('\n');
        for e in &self.epochs {
            out.push_str(&e.to_value().to_json());
            out.push('\n');
        }
        out
    }

    /// Renders all epochs as a Chrome `trace_event` JSON document
    /// (counter events, timestamps = simulated cycles interpreted as
    /// µs). Open it at <https://ui.perfetto.dev> or
    /// `chrome://tracing`.
    pub fn to_chrome_trace(&self) -> String {
        let mut events: Vec<Value> = Vec::new();
        events.push(Value::obj([
            ("name", Value::Str("process_name".to_string())),
            ("ph", Value::Str("M".to_string())),
            ("pid", Value::UInt(0)),
            (
                "args",
                Value::obj([("name", Value::Str("vsnoop".to_string()))]),
            ),
        ]));
        let counter = |name: &str, ts: u64, args: Vec<(String, Value)>| {
            Value::obj([
                ("name", Value::Str(name.to_string())),
                ("ph", Value::Str("C".to_string())),
                ("ts", Value::UInt(ts)),
                ("pid", Value::UInt(0)),
                ("args", Value::Obj(args)),
            ])
        };
        for e in &self.epochs {
            let ts = e.end_cycle;
            let s = &e.stats;
            events.push(counter(
                "coherence",
                ts,
                vec![
                    ("l2_misses".to_string(), Value::UInt(s.l2_misses)),
                    ("snoops".to_string(), Value::UInt(s.snoops)),
                    ("retries".to_string(), Value::UInt(s.retries)),
                ],
            ));
            events.push(counter(
                "escalations",
                ts,
                vec![
                    (
                        "broadcast_fallbacks".to_string(),
                        Value::UInt(s.broadcast_fallbacks),
                    ),
                    (
                        "degraded_broadcasts".to_string(),
                        Value::UInt(s.degraded_broadcasts),
                    ),
                    (
                        "persistent_requests".to_string(),
                        Value::UInt(s.persistent_requests),
                    ),
                ],
            ));
            events.push(counter(
                "traffic_byte_links",
                ts,
                MessageKind::ALL
                    .iter()
                    .map(|k| {
                        (
                            format!("{k:?}"),
                            Value::UInt(e.traffic_byte_links[k.index()]),
                        )
                    })
                    .collect(),
            ));
            events.push(counter(
                "map_maintenance",
                ts,
                vec![
                    ("map_adds".to_string(), Value::UInt(s.map_adds)),
                    ("map_removes".to_string(), Value::UInt(s.map_removes)),
                    ("map_repairs".to_string(), Value::UInt(s.map_repairs)),
                    ("vcpu_swaps".to_string(), Value::UInt(e.vcpu_swaps)),
                ],
            ));
            let fanned: u64 = e
                .fanout_hist
                .iter()
                .enumerate()
                .map(|(k, &n)| k as u64 * n)
                .sum();
            let attempts: u64 = e.fanout_hist.iter().sum();
            events.push(counter(
                "snoop_fanout_avg_x100",
                ts,
                vec![(
                    "cores_x100".to_string(),
                    Value::UInt((fanned * 100).checked_div(attempts).unwrap_or(0)),
                )],
            ));
            events.push(counter(
                "warm_pool",
                ts,
                vec![
                    ("hits".to_string(), Value::UInt(e.warm_hits)),
                    ("misses".to_string(), Value::UInt(e.warm_misses)),
                    ("evictions".to_string(), Value::UInt(e.warm_evictions)),
                ],
            ));
        }
        Value::obj([
            ("traceEvents", Value::Arr(events)),
            ("displayTimeUnit", Value::Str("ms".to_string())),
        ])
        .to_json()
    }

    /// Writes `<stem>-epochs.jsonl` and `<stem>-trace.json` into `dir`
    /// (created if needed); returns both paths.
    pub fn write_files(&self, dir: &Path, stem: &str) -> io::Result<(PathBuf, PathBuf)> {
        std::fs::create_dir_all(dir)?;
        let stem = super::sanitize(stem);
        let jsonl = dir.join(format!("{stem}-epochs.jsonl"));
        std::fs::write(&jsonl, self.to_jsonl())?;
        let trace = dir.join(format!("{stem}-trace.json"));
        std::fs::write(&trace, self.to_chrome_trace())?;
        Ok((jsonl, trace))
    }
}

/// Current process-wide warm-pool `(hits, misses, evictions)`.
fn warm_counters() -> [u64; 3] {
    let (h, m, e) = crate::experiments::warm_counters();
    [h, m, e]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bump(stats: &mut SimStats, n: u64) {
        stats.rounds += n;
        stats.accesses += 4 * n;
        stats.l2_misses += n;
        stats.snoops += 3 * n;
        stats.stall_cycles[0] += 7 * n;
    }

    #[test]
    fn epochs_cut_every_n_rounds_and_deltas_reconstruct() {
        let mut rec = EpochRecorder::new(2);
        let mut stats = SimStats::new(2);
        let traffic = TrafficStats::default();
        rec.rebaseline(0, &stats, &traffic, &[], 0);
        for round in 1..=5u64 {
            bump(&mut stats, 1);
            rec.tick_round(round * 10, &stats, &traffic, &[], 0);
        }
        assert_eq!(rec.epochs().len(), 2, "two full epochs of 2 rounds");
        rec.flush(50, &stats, &traffic, &[], 0);
        assert_eq!(rec.epochs().len(), 3, "flush cuts the partial tail");
        // Reconstruction: sum of deltas equals the final aggregate.
        let mut rebuilt = SimStats::new(2);
        for e in rec.epochs() {
            rebuilt.add_delta(&e.stats);
        }
        assert_eq!(rebuilt, stats);
        // Epoch boundaries chain.
        assert_eq!(rec.epochs()[0].start_cycle, 0);
        assert_eq!(rec.epochs()[0].end_cycle, 20);
        assert_eq!(rec.epochs()[1].start_cycle, 20);
    }

    #[test]
    fn fanout_histogram_is_per_epoch() {
        let mut rec = EpochRecorder::new(1);
        let stats = SimStats::new(1);
        let traffic = TrafficStats::default();
        rec.rebaseline(0, &stats, &traffic, &[], 0);
        rec.record_fanout(4);
        rec.record_fanout(4);
        rec.record_fanout(16);
        rec.tick_round(1, &stats, &traffic, &[], 0);
        rec.record_fanout(2);
        rec.tick_round(2, &stats, &traffic, &[], 0);
        let e0 = &rec.epochs()[0];
        assert_eq!(e0.fanout_hist[4], 2);
        assert_eq!(e0.fanout_hist[16], 1);
        let e1 = &rec.epochs()[1];
        assert_eq!(e1.fanout_hist[2], 1);
        assert_eq!(e1.fanout_hist.get(4).copied().unwrap_or(0), 0);
        assert_eq!(e1.fanout_hist.get(16).copied().unwrap_or(0), 0);
    }

    #[test]
    fn jsonl_has_header_and_one_line_per_epoch() {
        let mut rec = EpochRecorder::new(1);
        let mut stats = SimStats::new(1);
        let traffic = TrafficStats::default();
        rec.rebaseline(0, &stats, &traffic, &[], 0);
        bump(&mut stats, 2);
        rec.tick_round(5, &stats, &traffic, &[], 0);
        let out = rec.to_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(EPOCHS_SCHEMA));
        assert!(lines[1].contains("\"epoch\":0"));
        assert!(lines[1].contains("\"l2_misses\":2"));
    }

    #[test]
    fn chrome_trace_is_loadable_shape() {
        let mut rec = EpochRecorder::new(1);
        let mut stats = SimStats::new(1);
        let traffic = TrafficStats::default();
        rec.rebaseline(0, &stats, &traffic, &[], 0);
        bump(&mut stats, 1);
        rec.tick_round(3, &stats, &traffic, &[], 0);
        let trace = rec.to_chrome_trace();
        let parsed = Value::parse(&trace).expect("trace must be valid JSON");
        let events = parsed.get("traceEvents").and_then(Value::as_arr).unwrap();
        assert!(events.len() > 1);
        assert_eq!(
            events[1].get("ph").and_then(Value::as_str),
            Some("C"),
            "counter events"
        );
    }

    #[test]
    fn rebaseline_discards_history() {
        let mut rec = EpochRecorder::new(1);
        let mut stats = SimStats::new(1);
        let traffic = TrafficStats::default();
        rec.rebaseline(0, &stats, &traffic, &[], 0);
        bump(&mut stats, 1);
        rec.tick_round(1, &stats, &traffic, &[], 0);
        assert_eq!(rec.epochs().len(), 1);
        rec.rebaseline(1, &stats, &traffic, &[], 0);
        assert!(rec.epochs().is_empty());
        bump(&mut stats, 1);
        rec.tick_round(2, &stats, &traffic, &[], 0);
        assert_eq!(rec.epochs()[0].stats.rounds, 1, "baseline re-anchored");
    }
}

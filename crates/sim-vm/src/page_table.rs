//! Page sharing types, the hypervisor's sharing directory, and the TLB view.
//!
//! Section IV-A of the paper: "Memory pages can be used by only a VM or
//! shared among VMs and the hypervisor. Depending on the sharing types of
//! pages, coherence requests are either multicast within a VM [...] or
//! broadcast to all the cores. The types of pages [...] are recorded in
//! unused bits in page table entries" and "the page sharing type bits
//! (2 bits) must also be in the TLB to find the sharing type directly for
//! every coherence transaction."
//!
//! The [`SharingDirectory`] models the authoritative per-page sharing state
//! stored in shadow/nested page tables (only the hypervisor mutates it), and
//! [`TypeTlb`] models the per-core cached copy consulted on every coherence
//! transaction.

use std::collections::HashMap;

use crate::ids::VmId;

/// The sharing type of a host-physical page, as virtual snooping
/// distinguishes them (Section IV-A).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum SharingType {
    /// Used by exactly one VM. Snoop requests are multicast within the VM's
    /// vCPU map.
    #[default]
    VmPrivate,
    /// Writable sharing between a VM and the hypervisor (I/O rings,
    /// hypervisor code/data) or between VMs (inter-VM channels). Requests
    /// must always be broadcast.
    RwShared,
    /// Read-only content-based sharing across VMs (copy-on-write). The
    /// memory always holds a clean copy, enabling the memory-direct /
    /// intra-VM / friend-VM optimizations of Section VI.
    RoShared,
}

impl SharingType {
    /// Encodes the sharing type into the two unused page-table-entry bits
    /// the paper reserves.
    pub const fn encode(self) -> u8 {
        match self {
            SharingType::VmPrivate => 0b00,
            SharingType::RwShared => 0b01,
            SharingType::RoShared => 0b10,
        }
    }

    /// Decodes a two-bit page-table encoding.
    ///
    /// Returns `None` for the reserved encoding `0b11`.
    pub const fn decode(bits: u8) -> Option<Self> {
        match bits {
            0b00 => Some(SharingType::VmPrivate),
            0b01 => Some(SharingType::RwShared),
            0b10 => Some(SharingType::RoShared),
            _ => None,
        }
    }
}

/// Authoritative per-page sharing state plus owning VM, maintained by the
/// hypervisor in shadow / nested page tables.
///
/// Pages that were never registered default to [`SharingType::VmPrivate`]
/// with no recorded owner; experiments always register the pools they use.
///
/// # Examples
///
/// ```
/// use sim_vm::{SharingDirectory, SharingType, VmId};
///
/// let mut dir = SharingDirectory::new();
/// dir.register(100, SharingType::VmPrivate, Some(VmId::new(1)));
/// dir.register(200, SharingType::RwShared, None);
/// assert_eq!(dir.sharing(100), SharingType::VmPrivate);
/// assert_eq!(dir.owner(100), Some(VmId::new(1)));
/// assert_eq!(dir.sharing(200), SharingType::RwShared);
/// assert_eq!(dir.sharing(999), SharingType::VmPrivate); // default
/// ```
#[derive(Clone, Debug, Default)]
pub struct SharingDirectory {
    entries: HashMap<u64, PageInfo>,
    /// Monotonic version, bumped on every mutation; TLBs use it to discard
    /// stale cached types (modelling the TLB shoot-down the hypervisor must
    /// perform when it changes a page's sharing bits).
    version: u64,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct PageInfo {
    sharing: SharingType,
    owner: Option<VmId>,
}

impl SharingDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        SharingDirectory::default()
    }

    /// Registers (or re-registers) a page with a sharing type and an
    /// optional owning VM.
    pub fn register(&mut self, page: u64, sharing: SharingType, owner: Option<VmId>) {
        self.entries.insert(page, PageInfo { sharing, owner });
        self.version += 1;
    }

    /// Returns the sharing type of `page` (default: VM-private).
    pub fn sharing(&self, page: u64) -> SharingType {
        self.entries
            .get(&page)
            .map_or(SharingType::default(), |e| e.sharing)
    }

    /// Returns the VM recorded as owner of `page`, if any. Shared pages
    /// have no single owner.
    pub fn owner(&self, page: u64) -> Option<VmId> {
        self.entries.get(&page).and_then(|e| e.owner)
    }

    /// Returns the current mutation version (used for TLB invalidation).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Returns the number of registered pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no page has been registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Statistics of a [`TypeTlb`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TlbStats {
    /// Lookups that hit a valid cached entry.
    pub hits: u64,
    /// Lookups that had to walk the sharing directory.
    pub misses: u64,
}

impl TlbStats {
    /// Hit rate in `[0, 1]`; zero when no lookups occurred.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A per-core, direct-mapped cache of page sharing types.
///
/// Real hardware finds the two sharing bits in the TLB entry during address
/// translation; this model exists to measure how often the bits would be
/// available without a page walk, and to force directory consultation after
/// hypervisor updates.
#[derive(Clone, Debug)]
pub struct TypeTlb {
    slots: Vec<Option<TlbEntry>>,
    seen_version: u64,
    stats: TlbStats,
}

#[derive(Clone, Copy, Debug)]
struct TlbEntry {
    page: u64,
    sharing: SharingType,
}

impl TypeTlb {
    /// Creates a TLB with `slots` direct-mapped entries.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn new(slots: usize) -> Self {
        assert!(slots > 0, "TLB needs at least one slot");
        TypeTlb {
            slots: vec![None; slots],
            seen_version: 0,
            stats: TlbStats::default(),
        }
    }

    /// Looks up the sharing type of `page`, filling from `dir` on a miss.
    ///
    /// If the directory has been mutated since the last lookup, all cached
    /// entries are discarded first (a conservative global shoot-down).
    pub fn lookup(&mut self, page: u64, dir: &SharingDirectory) -> SharingType {
        if dir.version() != self.seen_version {
            self.slots.iter_mut().for_each(|s| *s = None);
            self.seen_version = dir.version();
        }
        let idx = (page as usize) % self.slots.len();
        if let Some(e) = self.slots[idx] {
            if e.page == page {
                self.stats.hits += 1;
                return e.sharing;
            }
        }
        self.stats.misses += 1;
        let sharing = dir.sharing(page);
        self.slots[idx] = Some(TlbEntry { page, sharing });
        sharing
    }

    /// Returns lookup statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        for t in [
            SharingType::VmPrivate,
            SharingType::RwShared,
            SharingType::RoShared,
        ] {
            assert_eq!(SharingType::decode(t.encode()), Some(t));
        }
        assert_eq!(SharingType::decode(0b11), None);
        // The encoding fits in two bits.
        assert!(SharingType::RoShared.encode() < 4);
    }

    #[test]
    fn directory_defaults_to_private() {
        let dir = SharingDirectory::new();
        assert_eq!(dir.sharing(12345), SharingType::VmPrivate);
        assert_eq!(dir.owner(12345), None);
        assert!(dir.is_empty());
    }

    #[test]
    fn directory_register_and_update() {
        let mut dir = SharingDirectory::new();
        dir.register(7, SharingType::RwShared, None);
        assert_eq!(dir.sharing(7), SharingType::RwShared);
        let v = dir.version();
        dir.register(7, SharingType::RoShared, None);
        assert_eq!(dir.sharing(7), SharingType::RoShared);
        assert!(dir.version() > v, "mutation must bump the version");
        assert_eq!(dir.len(), 1);
    }

    #[test]
    fn tlb_hits_after_first_walk() {
        let mut dir = SharingDirectory::new();
        dir.register(3, SharingType::RoShared, None);
        let mut tlb = TypeTlb::new(16);
        assert_eq!(tlb.lookup(3, &dir), SharingType::RoShared);
        assert_eq!(tlb.lookup(3, &dir), SharingType::RoShared);
        assert_eq!(tlb.stats().hits, 1);
        assert_eq!(tlb.stats().misses, 1);
        assert!(tlb.stats().hit_rate() > 0.49);
    }

    #[test]
    fn tlb_invalidated_by_directory_mutation() {
        let mut dir = SharingDirectory::new();
        dir.register(3, SharingType::VmPrivate, Some(VmId::new(0)));
        let mut tlb = TypeTlb::new(16);
        assert_eq!(tlb.lookup(3, &dir), SharingType::VmPrivate);
        // Hypervisor flips the page to content-shared.
        dir.register(3, SharingType::RoShared, None);
        assert_eq!(tlb.lookup(3, &dir), SharingType::RoShared);
        assert_eq!(tlb.stats().misses, 2, "stale entry must not be served");
    }

    #[test]
    fn tlb_conflict_misses() {
        let dir = SharingDirectory::new();
        let mut tlb = TypeTlb::new(4);
        // Pages 0 and 4 conflict in a 4-slot direct-mapped TLB.
        tlb.lookup(0, &dir);
        tlb.lookup(4, &dir);
        tlb.lookup(0, &dir);
        assert_eq!(tlb.stats().misses, 3);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slot_tlb_rejected() {
        let _ = TypeTlb::new(0);
    }
}

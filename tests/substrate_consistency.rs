//! Cross-crate consistency checks: the constants and contracts the crates
//! rely on but cannot verify individually.

use virtual_snooping::prelude::*;
use virtual_snooping::sim_mem::{BLOCKS_PER_PAGE, BLOCK_BYTES, PAGE_BYTES};
use virtual_snooping::sim_vm::SharingType;

#[test]
fn address_constants_agree_across_crates() {
    // `workloads` duplicates the page/block geometry to avoid a dependency
    // cycle; verify the generated addresses agree with `sim-mem`'s view.
    assert_eq!(BLOCK_BYTES, 64);
    assert_eq!(PAGE_BYTES, 4096);
    assert_eq!(BLOCKS_PER_PAGE, 64);

    let mut wl = Workload::homogeneous(profile("radix").unwrap(), 2, WorkloadConfig::default());
    for i in 0..1000u16 {
        let a = wl.next_access(VcpuId::new(VmId::new(i % 2), i % 4));
        assert_eq!(a.addr % BLOCK_BYTES, 0, "accesses are block-aligned");
        let block = virtual_snooping::sim_mem::Addr::new(a.addr).block();
        assert_eq!(block.page(), a.addr / PAGE_BYTES, "block/page math agrees");
    }
}

#[test]
fn every_generated_address_is_registered_with_the_hypervisor() {
    let mut wl = Workload::homogeneous(
        profile("canneal").unwrap(),
        4,
        WorkloadConfig {
            host_activity: true,
            content_sharing: true,
            ..Default::default()
        },
    );
    for i in 0..20_000u32 {
        let vcpu = VcpuId::new(VmId::new((i % 4) as u16), (i % 4) as u16);
        let a = wl.next_access(vcpu);
        let page = a.addr / PAGE_BYTES;
        let sharing = wl.directory().sharing(page);
        match a.agent {
            Agent::Guest(v) => {
                match sharing {
                    SharingType::VmPrivate => {
                        assert_eq!(
                            wl.directory().owner(page),
                            Some(v.vm()),
                            "private page accessed by the wrong VM"
                        );
                    }
                    SharingType::RoShared => {} // deduplicated content page
                    SharingType::RwShared => {
                        panic!("guests never touch host pools in this workload")
                    }
                }
            }
            Agent::Dom0 | Agent::Hypervisor => {
                assert_eq!(sharing, SharingType::RwShared, "host pools are RW-shared");
            }
        }
    }
}

#[test]
fn friend_vm_is_symmetric_for_homogeneous_workloads() {
    let wl = Workload::homogeneous(
        profile("blackscholes").unwrap(),
        4,
        WorkloadConfig {
            content_sharing: true,
            ..Default::default()
        },
    );
    for vm in 0..4u16 {
        let f = wl.content().friend_of(VmId::new(vm));
        assert!(f.is_some(), "VM{vm} shares content, must have a friend");
        assert_ne!(f, Some(VmId::new(vm)), "a VM is not its own friend");
    }
}

#[test]
fn simulator_vcpu_maps_match_hypervisor_placement_at_start() {
    let cfg = SystemConfig::paper_default();
    let sim = Simulator::new(cfg, FilterPolicy::VsnoopBase, ContentPolicy::Broadcast);
    for vm in 0..cfg.n_vms {
        let id = VmId::new(vm as u16);
        assert_eq!(
            sim.vcpu_map(id).mask(),
            sim.hypervisor().cores_of_vm(id),
            "initial map equals the pinned placement"
        );
    }
}

#[test]
fn scheduler_and_trace_layers_share_the_profile_registry() {
    // Every simulation app has both usable trace params and usable sched
    // params, so the same name can drive either experiment family.
    for app in workloads::simulation_apps() {
        assert!(app.trace.private_pages > 0);
        assert!(app.sched.work_ms > 0.0);
        let vms = workloads::sched_vms(app, 2, 4, 0.1);
        assert_eq!(vms.len(), 3); // 2 guests + dom0
    }
}

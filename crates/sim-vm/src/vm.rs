//! Virtual machine specifications.
//!
//! A [`VmSpec`] describes the static shape of a VM: how many vCPUs it is
//! allocated and how many guest-physical pages it owns. The paper's
//! simulated configurations use four VMs with four vCPUs each on a 16-core
//! system (Section V-A).

use crate::ids::{VcpuId, VmId};

/// Static description of one virtual machine.
///
/// # Examples
///
/// ```
/// use sim_vm::{VmSpec, VmId};
///
/// let spec = VmSpec::new(VmId::new(0), 4, 1024);
/// assert_eq!(spec.vcpus().count(), 4);
/// assert_eq!(spec.memory_pages(), 1024);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct VmSpec {
    id: VmId,
    n_vcpus: u16,
    memory_pages: u64,
}

impl VmSpec {
    /// Creates a VM specification.
    ///
    /// # Panics
    ///
    /// Panics if `n_vcpus` is zero; a VM without vCPUs cannot run.
    pub fn new(id: VmId, n_vcpus: u16, memory_pages: u64) -> Self {
        assert!(n_vcpus > 0, "a VM needs at least one vCPU");
        VmSpec {
            id,
            n_vcpus,
            memory_pages,
        }
    }

    /// Returns the VM identifier.
    pub fn id(&self) -> VmId {
        self.id
    }

    /// Returns the number of vCPUs allocated to this VM.
    pub fn n_vcpus(&self) -> usize {
        self.n_vcpus as usize
    }

    /// Returns the number of guest-physical pages allocated to this VM.
    pub fn memory_pages(&self) -> u64 {
        self.memory_pages
    }

    /// Iterates over the vCPU identifiers of this VM.
    pub fn vcpus(&self) -> impl Iterator<Item = VcpuId> + '_ {
        let id = self.id;
        (0..self.n_vcpus).map(move |i| VcpuId::new(id, i))
    }
}

/// Builds the homogeneous VM set used throughout the paper's evaluation:
/// `n_vms` VMs with `vcpus_per_vm` vCPUs and `pages_per_vm` pages each.
///
/// # Examples
///
/// ```
/// use sim_vm::homogeneous_vms;
///
/// let vms = homogeneous_vms(4, 4, 2048);
/// assert_eq!(vms.len(), 4);
/// assert_eq!(vms[2].n_vcpus(), 4);
/// ```
pub fn homogeneous_vms(n_vms: usize, vcpus_per_vm: u16, pages_per_vm: u64) -> Vec<VmSpec> {
    VmId::all(n_vms)
        .map(|id| VmSpec::new(id, vcpus_per_vm, pages_per_vm))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_accessors() {
        let s = VmSpec::new(VmId::new(3), 2, 64);
        assert_eq!(s.id(), VmId::new(3));
        assert_eq!(s.n_vcpus(), 2);
        assert_eq!(s.memory_pages(), 64);
        let vcpus: Vec<_> = s.vcpus().collect();
        assert_eq!(
            vcpus,
            vec![VcpuId::new(VmId::new(3), 0), VcpuId::new(VmId::new(3), 1)]
        );
    }

    #[test]
    #[should_panic(expected = "at least one vCPU")]
    fn zero_vcpus_rejected() {
        let _ = VmSpec::new(VmId::new(0), 0, 64);
    }

    #[test]
    fn homogeneous_set() {
        let vms = homogeneous_vms(16, 4, 128);
        assert_eq!(vms.len(), 16);
        let total: usize = vms.iter().map(|v| v.n_vcpus()).sum();
        assert_eq!(total, 64);
        assert!(vms.iter().enumerate().all(|(i, v)| v.id().index() == i));
    }
}

//! Fault-injecting TCP proxy for soaking the durability contract.
//!
//! Sits between a client and the service and mangles the byte stream
//! in the ways real networks and dying processes do:
//!
//! - **fragment** — forwards a chunk one small piece at a time with
//!   pauses between pieces, so the peer sees torn frames and partial
//!   writes (a JSONL line split mid-escape, a response delivered one
//!   byte per read);
//! - **stall** — stops forwarding for a while (slow-loris: the
//!   connection is alive but silent);
//! - **cut** — forwards a *prefix* of the chunk, then closes both
//!   directions (the client saw half a response line and then EOF);
//! - **reset** — drops the connection abruptly without forwarding the
//!   chunk at all.
//!
//! Every fault decision comes from a [`SmallRng`] seeded from
//! `seed ^ connection-id ^ direction`, so a chaos soak replays
//! identically for a given `--seed`. The proxy never parses the
//! protocol — it is byte-level on purpose, so faults land at arbitrary
//! offsets, not at polite frame boundaries.
//!
//! The upstream address can be re-resolved per connection from a file
//! ([`ChaosConfig::upstream_file`]): the kill-9-and-recover smoke
//! restarts the server on a fresh port and just rewrites the file,
//! while clients keep dialing the (stable) proxy address.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Tuning for the fault injector. Probabilities are per forwarded
/// chunk, evaluated independently in the order fragment → stall →
/// cut → reset (at most one fault fires per chunk).
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Fixed upstream address (`host:port`). Ignored when
    /// [`upstream_file`](ChaosConfig::upstream_file) is set.
    pub upstream: String,
    /// Re-resolve the upstream per connection from this file's
    /// (trimmed) contents — lets a smoke restart the server on a new
    /// port mid-soak without touching the clients.
    pub upstream_file: Option<PathBuf>,
    /// Base RNG seed; each connection/direction derives its own
    /// deterministic stream from it.
    pub seed: u64,
    /// Probability a chunk is forwarded in torn pieces.
    pub p_fragment: f64,
    /// Probability of a slow-loris stall before forwarding.
    pub p_stall: f64,
    /// Probability the connection is cut after a prefix of the chunk.
    pub p_cut: f64,
    /// Probability the connection is dropped without forwarding.
    pub p_reset: f64,
    /// Stall duration.
    pub stall: Duration,
    /// Pause between torn pieces of a fragmented chunk.
    pub fragment_pause: Duration,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            upstream: String::new(),
            upstream_file: None,
            seed: 1,
            p_fragment: 0.10,
            p_stall: 0.02,
            p_cut: 0.01,
            p_reset: 0.01,
            stall: Duration::from_millis(150),
            fragment_pause: Duration::from_millis(2),
        }
    }
}

/// What the proxy did, for smoke logs: without nonzero fault counters
/// a "chaos" soak proves nothing.
#[derive(Clone, Debug, Default)]
pub struct ChaosReport {
    /// Connections accepted.
    pub connections: u64,
    /// Bytes forwarded (both directions).
    pub bytes_forwarded: u64,
    /// Chunks forwarded in torn pieces.
    pub fragments: u64,
    /// Slow-loris stalls injected.
    pub stalls: u64,
    /// Connections cut mid-chunk.
    pub cuts: u64,
    /// Connections reset without forwarding.
    pub resets: u64,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    bytes_forwarded: AtomicU64,
    fragments: AtomicU64,
    stalls: AtomicU64,
    cuts: AtomicU64,
    resets: AtomicU64,
}

/// A running chaos proxy; dropping it does *not* stop the threads —
/// call [`stop`](ChaosProxy::stop).
pub struct ChaosProxy {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds `listen` (use port 0 for an ephemeral port) and starts
    /// proxying every connection to the configured upstream with
    /// fault injection.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(listen: &str, cfg: ChaosConfig) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind(listen)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let accept_thread = {
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&counters);
            std::thread::Builder::new()
                .name("chaos-accept".into())
                .spawn(move || accept_loop(listener, cfg, stop, counters))
                .expect("spawn chaos accept thread")
        };
        Ok(ChaosProxy {
            addr,
            stop,
            counters,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's listening address (what clients should dial).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Snapshot of the fault counters so far.
    pub fn report(&self) -> ChaosReport {
        ChaosReport {
            connections: self.counters.connections.load(Ordering::Relaxed),
            bytes_forwarded: self.counters.bytes_forwarded.load(Ordering::Relaxed),
            fragments: self.counters.fragments.load(Ordering::Relaxed),
            stalls: self.counters.stalls.load(Ordering::Relaxed),
            cuts: self.counters.cuts.load(Ordering::Relaxed),
            resets: self.counters.resets.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, tears down the accept thread, and returns the
    /// final report. In-flight pump threads notice within their read
    /// timeout and exit on their own.
    pub fn stop(mut self) -> ChaosReport {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        self.report()
    }
}

fn accept_loop(
    listener: TcpListener,
    cfg: ChaosConfig,
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
) {
    let mut conn_id: u64 = 0;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _)) => {
                conn_id += 1;
                counters.connections.fetch_add(1, Ordering::Relaxed);
                let upstream_addr = match &cfg.upstream_file {
                    Some(path) => match std::fs::read_to_string(path) {
                        Ok(s) => s.trim().to_string(),
                        Err(_) => {
                            let _ = client.shutdown(Shutdown::Both);
                            continue;
                        }
                    },
                    None => cfg.upstream.clone(),
                };
                let upstream = match TcpStream::connect(&upstream_addr) {
                    Ok(s) => s,
                    Err(_) => {
                        // Upstream down (e.g. between kill -9 and
                        // restart): drop the client; it retries.
                        let _ = client.shutdown(Shutdown::Both);
                        continue;
                    }
                };
                spawn_pumps(client, upstream, &cfg, conn_id, &stop, &counters);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => break,
        }
    }
}

fn spawn_pumps(
    client: TcpStream,
    upstream: TcpStream,
    cfg: &ChaosConfig,
    conn_id: u64,
    stop: &Arc<AtomicBool>,
    counters: &Arc<Counters>,
) {
    let pairs = [
        (client.try_clone(), upstream.try_clone(), 0u64), // client -> upstream
        (upstream.try_clone(), client.try_clone(), 1u64), // upstream -> client
    ];
    for (src, dst, dir) in pairs {
        let (Ok(src), Ok(dst)) = (src, dst) else {
            let _ = client.shutdown(Shutdown::Both);
            let _ = upstream.shutdown(Shutdown::Both);
            return;
        };
        let cfg = cfg.clone();
        let stop = Arc::clone(stop);
        let counters = Arc::clone(counters);
        let rng = SmallRng::seed_from_u64(cfg.seed ^ conn_id.rotate_left(17) ^ dir);
        let _ = std::thread::Builder::new()
            .name(format!("chaos-pump-{conn_id}-{dir}"))
            .spawn(move || pump(src, dst, cfg, rng, stop, counters));
    }
}

/// Forwards `src` → `dst` chunk by chunk, injecting at most one fault
/// per chunk. Exits on EOF, on any socket error, or when the proxy is
/// stopped (noticed via the read timeout).
fn pump(
    src: TcpStream,
    dst: TcpStream,
    cfg: ChaosConfig,
    mut rng: SmallRng,
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
) {
    let mut src = src;
    let mut dst_w = &dst;
    let _ = src.set_read_timeout(Some(Duration::from_millis(100)));
    let mut buf = [0u8; 4096];
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let n = match src.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        let chunk = &buf[..n];
        if rng.gen_bool(cfg.p_reset) {
            counters.resets.fetch_add(1, Ordering::Relaxed);
            break;
        }
        if rng.gen_bool(cfg.p_cut) {
            counters.cuts.fetch_add(1, Ordering::Relaxed);
            let keep = rng.gen_range(0usize..n);
            if keep > 0 && dst_w.write_all(&chunk[..keep]).is_ok() {
                counters
                    .bytes_forwarded
                    .fetch_add(keep as u64, Ordering::Relaxed);
                let _ = dst_w.flush();
            }
            break;
        }
        if rng.gen_bool(cfg.p_stall) {
            counters.stalls.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(cfg.stall);
        }
        let forwarded = if rng.gen_bool(cfg.p_fragment) && n > 1 {
            counters.fragments.fetch_add(1, Ordering::Relaxed);
            let mut off = 0;
            let mut ok = true;
            while off < n {
                let piece = rng.gen_range(1usize..(n - off).min(7) + 1);
                if dst_w.write_all(&chunk[off..off + piece]).is_err() || dst_w.flush().is_err() {
                    ok = false;
                    break;
                }
                off += piece;
                if off < n {
                    std::thread::sleep(cfg.fragment_pause);
                }
            }
            ok.then_some(off)
        } else {
            (dst_w.write_all(chunk).is_ok() && dst_w.flush().is_ok()).then_some(n)
        };
        match forwarded {
            Some(sent) => {
                counters
                    .bytes_forwarded
                    .fetch_add(sent as u64, Ordering::Relaxed);
            }
            None => break,
        }
    }
    // Tear down both directions so the peer pump exits too: a
    // half-proxied connection would otherwise hang the client.
    let _ = src.shutdown(Shutdown::Both);
    let _ = dst.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    /// Plain echo server: one line in, same line out.
    fn echo_server() -> (std::net::SocketAddr, Arc<AtomicBool>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        listener.set_nonblocking(true).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop2.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((conn, _)) => {
                        std::thread::spawn(move || {
                            let mut reader = BufReader::new(conn.try_clone().unwrap());
                            let mut w = conn;
                            let mut line = String::new();
                            while {
                                line.clear();
                                reader.read_line(&mut line).map(|n| n > 0).unwrap_or(false)
                            } {
                                if w.write_all(line.as_bytes()).is_err() {
                                    break;
                                }
                            }
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => break,
                }
            }
        });
        (addr, stop)
    }

    #[test]
    fn clean_config_passes_lines_through_unchanged() {
        let (up_addr, up_stop) = echo_server();
        let cfg = ChaosConfig {
            upstream: up_addr.to_string(),
            p_fragment: 0.0,
            p_stall: 0.0,
            p_cut: 0.0,
            p_reset: 0.0,
            ..ChaosConfig::default()
        };
        let proxy = ChaosProxy::start("127.0.0.1:0", cfg).unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        conn.write_all(b"hello world\n").unwrap();
        let mut line = String::new();
        BufReader::new(conn.try_clone().unwrap())
            .read_line(&mut line)
            .unwrap();
        assert_eq!(line, "hello world\n");
        drop(conn);
        let report = proxy.stop();
        assert_eq!(report.connections, 1);
        assert!(report.bytes_forwarded >= 24, "both directions counted");
        up_stop.store(true, Ordering::SeqCst);
    }

    #[test]
    fn fragmentation_tears_frames_but_preserves_bytes() {
        let (up_addr, up_stop) = echo_server();
        let cfg = ChaosConfig {
            upstream: up_addr.to_string(),
            seed: 7,
            p_fragment: 1.0,
            p_stall: 0.0,
            p_cut: 0.0,
            p_reset: 0.0,
            fragment_pause: Duration::from_micros(100),
            ..ChaosConfig::default()
        };
        let proxy = ChaosProxy::start("127.0.0.1:0", cfg).unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        for i in 0..20 {
            let msg = format!("line-{i}-{}\n", "x".repeat(64));
            conn.write_all(msg.as_bytes()).unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line, msg, "torn forwarding must still be lossless");
        }
        drop(conn);
        let report = proxy.stop();
        assert!(report.fragments > 0, "fragment fault must actually fire");
        up_stop.store(true, Ordering::SeqCst);
    }

    #[test]
    fn reset_fault_drops_the_connection() {
        let (up_addr, up_stop) = echo_server();
        let cfg = ChaosConfig {
            upstream: up_addr.to_string(),
            seed: 3,
            p_fragment: 0.0,
            p_stall: 0.0,
            p_cut: 0.0,
            p_reset: 1.0,
            ..ChaosConfig::default()
        };
        let proxy = ChaosProxy::start("127.0.0.1:0", cfg).unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        conn.write_all(b"doomed\n").unwrap();
        let mut out = Vec::new();
        // Either an EOF (clean drop) or a read error (RST) — but never
        // the echoed line.
        let _ = conn.read_to_end(&mut out);
        assert!(out.is_empty(), "reset must not forward the chunk");
        let report = proxy.stop();
        assert!(report.resets >= 1);
        up_stop.store(true, Ordering::SeqCst);
    }

    #[test]
    fn deterministic_for_seed() {
        // Same seed + same traffic → same fault counters.
        let run = |seed: u64| {
            let (up_addr, up_stop) = echo_server();
            let cfg = ChaosConfig {
                upstream: up_addr.to_string(),
                seed,
                p_fragment: 0.5,
                p_stall: 0.0,
                p_cut: 0.0,
                p_reset: 0.0,
                fragment_pause: Duration::from_micros(50),
                ..ChaosConfig::default()
            };
            let proxy = ChaosProxy::start("127.0.0.1:0", cfg).unwrap();
            let mut conn = TcpStream::connect(proxy.addr()).unwrap();
            let mut reader = BufReader::new(conn.try_clone().unwrap());
            for i in 0..12 {
                conn.write_all(format!("ping-{i}\n").as_bytes()).unwrap();
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
            }
            drop(conn);
            let report = proxy.stop();
            up_stop.store(true, Ordering::SeqCst);
            report.fragments
        };
        assert_eq!(run(11), run(11));
    }
}

//! The supervised experiment campaign: every paper artifact as a named,
//! seeded job with panic isolation, per-job deadlines, retries,
//! checkpoint/resume, and crash reproducers.
//!
//! Fault-free, stdout is byte-identical to running the fifteen figure/
//! table binaries serially in paper order (the historical `all`
//! behaviour); progress and the degraded-mode summary go to stderr.
//!
//! ```text
//! all [--jobs N] [--workers N] [--timeout SECS] [--retries N] [--dir DIR]
//!     [--trace-dir DIR] [--resume] [--only NAME]... [--list] [--repro FILE]
//!     [--inject-panic NAME]... [--inject-hang NAME]... [--inject-flaky NAME]...
//! ```
//!
//! `--jobs` bounds the supervisor's worker pool (whole artifacts in
//! flight); `--workers` bounds the *shard* pool each heavy artifact
//! fans its per-application cells over (default: all cores; `1` forces
//! the serial legacy path). Output is byte-identical at any setting of
//! either knob.
//!
//! Artifacts land under `--dir` (default `target/campaign/`) with
//! deterministic names: `journal.jsonl` (append-only checkpoint),
//! `merged.jsonl` (canonical index-sorted journal), `campaign.txt` (the
//! merged report text), and `repro-<job>.json` per terminal failure.
//! The campaign exits 0 even when jobs fail — degraded mode is reported
//! in the summary and the journal; only usage or IO errors exit
//! non-zero.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

use vsnoop::runner::{run_campaign, CrashReproducer, Journal, RunnerConfig};
use vsnoop_bench::campaign::{artifact_names, campaign_jobs, job_from_repro, CampaignOptions};
use vsnoop_bench::scale_from_env;

struct Cli {
    jobs: usize,
    workers: Option<usize>,
    timeout_secs: u64,
    retries: u32,
    dir: PathBuf,
    resume: bool,
    list: bool,
    repro: Option<PathBuf>,
    trace_dir: Option<PathBuf>,
    opts: CampaignOptions,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        jobs: 1,
        workers: None,
        timeout_secs: 0,
        retries: 1,
        dir: PathBuf::from("target/campaign"),
        resume: false,
        list: false,
        repro: None,
        trace_dir: None,
        opts: CampaignOptions::default(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--jobs" => {
                cli.jobs = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
            }
            "--workers" => {
                cli.workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|e| format!("--workers: {e}"))?,
                );
            }
            "--timeout" => {
                cli.timeout_secs = value("--timeout")?
                    .parse()
                    .map_err(|e| format!("--timeout: {e}"))?;
            }
            "--retries" => {
                cli.retries = value("--retries")?
                    .parse()
                    .map_err(|e| format!("--retries: {e}"))?;
            }
            "--dir" => cli.dir = PathBuf::from(value("--dir")?),
            "--trace-dir" => cli.trace_dir = Some(PathBuf::from(value("--trace-dir")?)),
            "--resume" => cli.resume = true,
            "--list" => cli.list = true,
            "--repro" => cli.repro = Some(PathBuf::from(value("--repro")?)),
            "--only" => cli.opts.only.push(value("--only")?),
            "--inject-panic" => cli.opts.inject_panic.push(value("--inject-panic")?),
            "--inject-hang" => cli.opts.inject_hang.push(value("--inject-hang")?),
            "--inject-flaky" => cli.opts.inject_flaky.push(value("--inject-flaky")?),
            "--help" | "-h" => {
                return Err(format!(
                    "usage: all [--jobs N] [--workers N] [--timeout SECS] [--retries N] [--dir DIR]\n\
                     \u{20}          [--trace-dir DIR] [--resume] [--only NAME]... [--list] [--repro FILE]\n\
                     \u{20}          [--inject-panic NAME]... [--inject-hang NAME]... \
                     [--inject-flaky NAME]...\n\
                     artifacts: {}",
                    artifact_names().join(", ")
                ));
            }
            other => return Err(format!("unknown argument: {other} (try --help)")),
        }
    }
    Ok(cli)
}

/// Replays a crash reproducer in-process, unsupervised, so panics keep
/// their native backtrace for debugging.
fn replay(path: &Path) -> ExitCode {
    let repro = match CrashReproducer::load(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("repro: {e}");
            return ExitCode::from(2);
        }
    };
    eprintln!(
        "replaying {} (seed {:#x}, recorded failure: {})",
        repro.spec.name, repro.spec.seed, repro.error
    );
    let job = match job_from_repro(&repro, scale_from_env()) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("repro: {e}");
            return ExitCode::from(2);
        }
    };
    let ctx = vsnoop::runner::JobCtx {
        token: vsnoop::runner::CancelToken::new(),
        attempt: 1,
    };
    match (job.run)(&ctx) {
        Ok(text) => {
            print!("{text}");
            eprintln!("replay of {} completed without failing", repro.spec.name);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("replay of {} failed: {e}", repro.spec.name);
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    // Telemetry, heartbeats and flight dumps go to side files under the
    // trace directory; stdout stays byte-identical with tracing on.
    match &cli.trace_dir {
        Some(dir) => vsnoop::obs::set_trace_dir(Some(dir.clone())),
        None => vsnoop::obs::init_from_env(),
    }
    if cli.list {
        for name in artifact_names() {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }
    if let Some(path) = &cli.repro {
        return replay(path);
    }

    if let Some(n) = cli.workers {
        vsnoop::runner::set_shard_workers(n.max(1));
    }
    let scale = scale_from_env();
    let jobs = match campaign_jobs(scale, &cli.opts) {
        Ok(j) => j,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let cfg = RunnerConfig {
        workers: cli.jobs.max(1),
        timeout: (cli.timeout_secs > 0).then(|| Duration::from_secs(cli.timeout_secs)),
        retries: cli.retries,
        journal_path: Some(cli.dir.join("journal.jsonl")),
        repro_dir: Some(cli.dir.clone()),
        resume: cli.resume,
        ..RunnerConfig::default()
    };
    let report = match run_campaign(&jobs, &cfg, &mut |msg| eprintln!("[campaign] {msg}")) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("campaign aborted: {e}");
            return ExitCode::from(2);
        }
    };

    let merged = report.merged_output();
    print!("{merged}");
    if let Err(e) = std::fs::write(cli.dir.join("campaign.txt"), &merged) {
        eprintln!("campaign: writing campaign.txt: {e}");
        return ExitCode::from(2);
    }
    if let Err(e) = Journal::write_merged(&cli.dir.join("merged.jsonl"), &report.entries()) {
        eprintln!("campaign: writing merged.jsonl: {e}");
        return ExitCode::from(2);
    }
    eprint!("\n{}", report.summary());
    ExitCode::SUCCESS
}

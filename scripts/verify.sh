#!/usr/bin/env bash
# Full offline verification: tier-1 build+test, formatting, lints, and the
# robustness soak. No network access required — all third-party deps are
# vendored API shims (see DESIGN.md "Dependencies").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (deterministic suites)"
cargo test -q

echo "==> cargo test -q --features proptest (randomized suites)"
cargo test -q --features proptest

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (default features)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy (--features proptest)"
cargo clippy --workspace --all-targets --features proptest -- -D warnings

echo "==> robustness soak (fault injection + invariant checker)"
./target/release/soak

echo "verify.sh: ALL CHECKS PASSED"

//! The service wire protocol: JSONL over TCP.
//!
//! One JSON object per `\n`-terminated line in each direction, encoded
//! with the same hand-rolled [`Value`](crate::runner::json::Value)
//! codec the journal uses — no new dependency, and the framing matches
//! every other JSONL artifact in the repository (journals, telemetry,
//! flight dumps), so the same tail/parse tooling works on a network
//! capture.
//!
//! Requests carry an optional client-chosen `tag` that is echoed on
//! every response they trigger, so a client multiplexing many submits
//! over one connection can correlate replies. The full request and
//! response grammar is specified in `SERVICE.md` at the repository
//! root; this module is the single source of truth for the field
//! names.

use crate::runner::json::Value;
use crate::runner::{JobError, JournalEntry};

/// Why an admission was refused. Every variant is a *typed* shed — the
/// client can tell "back off and retry" apart from "shrink your queue"
/// — and none of them cost the server more than the rejection line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShedReason {
    /// The global admission queue is at capacity.
    QueueFull,
    /// The tenant is at its max queued-job quota.
    TenantQueueFull,
    /// The tenant is at its max queued-bytes quota.
    TenantBytes,
    /// The submitting *connection* is at its pipelining cap (too many
    /// in-flight submits on one socket); retry once some complete.
    PipelineFull,
    /// The server is draining and accepts no new work.
    Draining,
}

impl ShedReason {
    /// Stable machine-readable reason string.
    pub fn as_str(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::TenantQueueFull => "tenant_queue_full",
            ShedReason::TenantBytes => "tenant_bytes",
            ShedReason::PipelineFull => "pipeline_full",
            ShedReason::Draining => "draining",
        }
    }

    /// Whether retrying the same request later can succeed (`false`
    /// only while draining — the server is going away).
    pub fn retryable(self) -> bool {
        !matches!(self, ShedReason::Draining)
    }
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Submit one job for execution.
    Submit(Submit),
    /// Ask for server/tenant status counters.
    Status,
    /// Ask for the server-side metrics snapshot (latency histograms,
    /// stage timings, counters; see `OBSERVABILITY.md` "Metrics").
    Metrics,
    /// Stream live telemetry records on this connection.
    Subscribe,
    /// Liveness probe.
    Ping,
    /// Ask the server to drain and exit (same path as SIGTERM).
    Shutdown,
}

/// The `submit` request body.
#[derive(Clone, Debug, PartialEq)]
pub struct Submit {
    /// Tenant the work is accounted to (quotas, fairness, warm-pool
    /// counters). Required and non-empty.
    pub tenant: String,
    /// Registry name of the job to run (e.g. a campaign artifact like
    /// `"fig2"`).
    pub job: String,
    /// Job parameters, passed to the job factory verbatim (the bench
    /// registry reads `warmup`/`measure`/`scale_seed` from here).
    pub params: Value,
    /// Per-request deadline in milliseconds, measured from dispatch;
    /// `None` uses the server default.
    pub deadline_ms: Option<u64>,
    /// Client correlation tag, echoed on every response this request
    /// triggers.
    pub tag: Option<String>,
    /// Client idempotency key. Two submits with the same key are the
    /// *same logical request*: the server runs the job once and
    /// answers later duplicates with the original job id/outcome (the
    /// retrying client derives these from a per-invocation nonce so a
    /// resend after a dropped connection can never double-run a job).
    pub idem_key: Option<String>,
}

impl Request {
    /// Parses one request line. Returns a human-readable error for
    /// anything malformed — the server turns that into a typed `error`
    /// response instead of dropping the connection.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = Value::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
        let op = v
            .get("op")
            .and_then(Value::as_str)
            .ok_or("missing \"op\"")?;
        match op {
            "submit" => {
                let tenant = v
                    .get("tenant")
                    .and_then(Value::as_str)
                    .ok_or("submit: missing \"tenant\"")?
                    .to_string();
                if tenant.is_empty() {
                    return Err("submit: empty \"tenant\"".into());
                }
                let job = v
                    .get("job")
                    .and_then(Value::as_str)
                    .ok_or("submit: missing \"job\"")?
                    .to_string();
                Ok(Request::Submit(Submit {
                    tenant,
                    job,
                    params: v.get("params").cloned().unwrap_or(Value::Null),
                    deadline_ms: v.get("deadline_ms").and_then(Value::as_u64),
                    tag: v.get("tag").and_then(Value::as_str).map(str::to_string),
                    idem_key: v
                        .get("idem_key")
                        .and_then(Value::as_str)
                        .map(str::to_string),
                }))
            }
            "status" => Ok(Request::Status),
            "metrics" => Ok(Request::Metrics),
            "subscribe" => Ok(Request::Subscribe),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op {other:?}")),
        }
    }
}

/// Appends `tag` to `pairs` when present (tags ride on every response
/// to a tagged request).
fn push_tag(pairs: &mut Vec<(&'static str, Value)>, tag: &Option<String>) {
    if let Some(t) = tag {
        pairs.push(("tag", Value::Str(t.clone())));
    }
}

/// `accepted`: the submit passed admission; `job_id` names the job in
/// later `done` responses and status listings.
pub fn accepted(job_id: u64, tag: &Option<String>) -> String {
    let mut pairs = vec![
        ("ok", Value::Bool(true)),
        ("type", Value::Str("accepted".into())),
        ("job_id", Value::UInt(job_id)),
    ];
    push_tag(&mut pairs, tag);
    Value::obj(pairs).to_json()
}

/// `shed`: the submit was refused under load (typed, never a hang).
pub fn shed(reason: ShedReason, tag: &Option<String>) -> String {
    let mut pairs = vec![
        ("ok", Value::Bool(false)),
        ("type", Value::Str("shed".into())),
        ("reason", Value::Str(reason.as_str().into())),
        ("retryable", Value::Bool(reason.retryable())),
    ];
    push_tag(&mut pairs, tag);
    Value::obj(pairs).to_json()
}

/// `done`: terminal outcome of an accepted job, mirroring the journal
/// entry schema (`status`/`output` or `status`/`error_kind`/`error`).
pub fn done(
    job_id: u64,
    job: &str,
    outcome: &Result<String, JobError>,
    tag: &Option<String>,
) -> String {
    let mut pairs = vec![
        ("ok", Value::Bool(outcome.is_ok())),
        ("type", Value::Str("done".into())),
        ("job_id", Value::UInt(job_id)),
        ("job", Value::Str(job.to_string())),
    ];
    match outcome {
        Ok(output) => {
            pairs.push(("status", Value::Str("ok".into())));
            pairs.push(("output", Value::Str(output.clone())));
        }
        Err(e) => {
            pairs.push(("status", Value::Str("failed".into())));
            pairs.push(("error_kind", Value::Str(e.kind().into())));
            pairs.push(("error", Value::Str(e.to_string())));
        }
    }
    push_tag(&mut pairs, tag);
    Value::obj(pairs).to_json()
}

/// `error`: a malformed or unfulfillable request (bad JSON, unknown
/// job name, missing fields). The connection stays open.
pub fn error(message: &str, tag: &Option<String>) -> String {
    let mut pairs = vec![
        ("ok", Value::Bool(false)),
        ("type", Value::Str("error".into())),
        ("message", Value::Str(message.to_string())),
    ];
    push_tag(&mut pairs, tag);
    Value::obj(pairs).to_json()
}

/// `error` with a machine-readable `code` and an explicit `retryable`
/// flag, for faults a client program must branch on (`oversized_frame`
/// is permanent; `wal_failed` is worth retrying — the job was admitted
/// but its durability record could not be written; `idle_timeout`
/// means the reactor reaped the connection for inactivity and a fresh
/// connection will be served normally).
pub fn error_coded(message: &str, code: &str, retryable: bool, tag: &Option<String>) -> String {
    let mut pairs = vec![
        ("ok", Value::Bool(false)),
        ("type", Value::Str("error".into())),
        ("code", Value::Str(code.to_string())),
        ("retryable", Value::Bool(retryable)),
        ("message", Value::Str(message.to_string())),
    ];
    push_tag(&mut pairs, tag);
    Value::obj(pairs).to_json()
}

/// `progress`: a running job is still alive. Streamed periodically on
/// the submitting connection between `accepted` and `done` (knob:
/// `ServiceConfig::progress_interval`), so a client waiting on a long
/// campaign can tell "still computing" from "dead server" without
/// polling `status`. Never terminal — clients must keep reading.
pub fn progress(job_id: u64, job: &str, elapsed_ms: u64, tag: &Option<String>) -> String {
    let mut pairs = vec![
        ("ok", Value::Bool(true)),
        ("type", Value::Str("progress".into())),
        ("job_id", Value::UInt(job_id)),
        ("job", Value::Str(job.to_string())),
        ("elapsed_ms", Value::UInt(elapsed_ms)),
    ];
    push_tag(&mut pairs, tag);
    Value::obj(pairs).to_json()
}

/// `pong`: liveness reply.
pub fn pong() -> String {
    Value::obj(vec![
        ("ok", Value::Bool(true)),
        ("type", Value::Str("pong".into())),
    ])
    .to_json()
}

/// `subscribed`: acknowledges a `subscribe`; every following line on
/// the connection is a raw telemetry record.
pub fn subscribed() -> String {
    Value::obj(vec![
        ("ok", Value::Bool(true)),
        ("type", Value::Str("subscribed".into())),
    ])
    .to_json()
}

/// `shutting_down`: acknowledges a `shutdown` op; the server drains
/// and exits.
pub fn shutting_down() -> String {
    Value::obj(vec![
        ("ok", Value::Bool(true)),
        ("type", Value::Str("shutting_down".into())),
    ])
    .to_json()
}

/// One tenant's slice of a `status` response.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TenantStatus {
    /// Tenant name.
    pub tenant: String,
    /// Jobs waiting in this tenant's admission queue.
    pub queued: u64,
    /// Jobs of this tenant currently running.
    pub running: u64,
    /// Terminal jobs this tenant has completed (any outcome).
    pub done: u64,
    /// Submits refused for this tenant.
    pub shed: u64,
    /// Warm-pool hits attributed to this tenant.
    pub warm_hits: u64,
    /// Warm-pool misses attributed to this tenant.
    pub warm_misses: u64,
}

/// `status`: server-wide and per-tenant counters.
pub fn status(
    queued: u64,
    running: u64,
    done_jobs: u64,
    shed_total: u64,
    draining: bool,
    tenants: &[TenantStatus],
) -> String {
    let tenant_objs: Vec<Value> = tenants
        .iter()
        .map(|t| {
            Value::obj(vec![
                ("tenant", Value::Str(t.tenant.clone())),
                ("queued", Value::UInt(t.queued)),
                ("running", Value::UInt(t.running)),
                ("done", Value::UInt(t.done)),
                ("shed", Value::UInt(t.shed)),
                ("warm_hits", Value::UInt(t.warm_hits)),
                ("warm_misses", Value::UInt(t.warm_misses)),
            ])
        })
        .collect();
    Value::obj(vec![
        ("ok", Value::Bool(true)),
        ("type", Value::Str("status".into())),
        ("queued", Value::UInt(queued)),
        ("running", Value::UInt(running)),
        ("done", Value::UInt(done_jobs)),
        ("shed", Value::UInt(shed_total)),
        ("draining", Value::Bool(draining)),
        ("tenants", Value::Arr(tenant_objs)),
    ])
    .to_json()
}

/// `metrics`: the server-side metrics snapshot. `snapshot` is the JSON
/// object produced by [`crate::obs::metrics::snapshot_value`] —
/// counters, gauges, per-stage latency histograms (p50/p90/p99/max in
/// ms) globally and per tenant.
pub fn metrics(snapshot: Value) -> String {
    Value::obj(vec![
        ("ok", Value::Bool(true)),
        ("type", Value::Str("metrics".into())),
        ("metrics", snapshot),
    ])
    .to_json()
}

/// A parsed server response, as seen by clients (the `client` and
/// `loadtest` binaries, and the integration tests).
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Submit accepted.
    Accepted {
        /// Server-assigned job id.
        job_id: u64,
        /// Echoed client tag.
        tag: Option<String>,
    },
    /// Submit refused.
    Shed {
        /// Typed reason.
        reason: String,
        /// Whether a later retry can succeed.
        retryable: bool,
        /// Echoed client tag.
        tag: Option<String>,
    },
    /// Terminal job outcome.
    Done {
        /// Server-assigned job id.
        job_id: u64,
        /// Job registry name.
        job: String,
        /// Output on success, journal-style error on failure.
        outcome: Result<String, (String, String)>,
        /// Echoed client tag.
        tag: Option<String>,
    },
    /// Request-level error.
    Error {
        /// Human-readable message.
        message: String,
        /// Machine-readable code, when the server attached one
        /// (`oversized_frame`, `wal_failed`, `subscriber_lagged`).
        code: Option<String>,
        /// Whether retrying the request can succeed. Plain validation
        /// errors default to `false` — resending bad JSON stays bad.
        retryable: bool,
        /// Echoed client tag.
        tag: Option<String>,
    },
    /// Periodic liveness report for a running job (non-terminal; the
    /// terminal `done` for the same `job_id` follows).
    Progress {
        /// Server-assigned job id.
        job_id: u64,
        /// Job registry name.
        job: String,
        /// Time since dispatch, in milliseconds.
        elapsed_ms: u64,
        /// Echoed client tag.
        tag: Option<String>,
    },
    /// Liveness reply.
    Pong,
    /// Subscription acknowledged.
    Subscribed,
    /// Shutdown acknowledged; the server is draining.
    ShuttingDown,
    /// Status counters (kept as raw JSON for display).
    Status(Value),
    /// Metrics snapshot (kept as raw JSON; the `metrics` key holds the
    /// snapshot object).
    Metrics(Value),
}

impl Response {
    /// Parses one response line.
    pub fn parse(line: &str) -> Result<Response, String> {
        let v = Value::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
        let ty = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or("missing \"type\"")?;
        let tag = v.get("tag").and_then(Value::as_str).map(str::to_string);
        match ty {
            "accepted" => Ok(Response::Accepted {
                job_id: v
                    .get("job_id")
                    .and_then(Value::as_u64)
                    .ok_or("accepted: missing job_id")?,
                tag,
            }),
            "shed" => Ok(Response::Shed {
                reason: v
                    .get("reason")
                    .and_then(Value::as_str)
                    .ok_or("shed: missing reason")?
                    .to_string(),
                retryable: v.get("retryable").and_then(Value::as_bool).unwrap_or(true),
                tag,
            }),
            "done" => {
                let job_id = v
                    .get("job_id")
                    .and_then(Value::as_u64)
                    .ok_or("done: missing job_id")?;
                let job = v
                    .get("job")
                    .and_then(Value::as_str)
                    .ok_or("done: missing job")?
                    .to_string();
                let outcome = match v.get("status").and_then(Value::as_str) {
                    Some("ok") => Ok(v
                        .get("output")
                        .and_then(Value::as_str)
                        .ok_or("done: missing output")?
                        .to_string()),
                    Some("failed") => Err((
                        v.get("error_kind")
                            .and_then(Value::as_str)
                            .unwrap_or("failed")
                            .to_string(),
                        v.get("error")
                            .and_then(Value::as_str)
                            .unwrap_or("")
                            .to_string(),
                    )),
                    _ => return Err("done: bad status".into()),
                };
                Ok(Response::Done {
                    job_id,
                    job,
                    outcome,
                    tag,
                })
            }
            "error" => Ok(Response::Error {
                message: v
                    .get("message")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string(),
                code: v.get("code").and_then(Value::as_str).map(str::to_string),
                retryable: v.get("retryable").and_then(Value::as_bool).unwrap_or(false),
                tag,
            }),
            "progress" => Ok(Response::Progress {
                job_id: v
                    .get("job_id")
                    .and_then(Value::as_u64)
                    .ok_or("progress: missing job_id")?,
                job: v
                    .get("job")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string(),
                elapsed_ms: v.get("elapsed_ms").and_then(Value::as_u64).unwrap_or(0),
                tag,
            }),
            "pong" => Ok(Response::Pong),
            "subscribed" => Ok(Response::Subscribed),
            "shutting_down" => Ok(Response::ShuttingDown),
            "status" => Ok(Response::Status(v)),
            "metrics" => Ok(Response::Metrics(v)),
            other => Err(format!("unknown response type {other:?}")),
        }
    }
}

/// Builds the journal entry for a service job's terminal outcome.
/// `index` is the server-assigned job id, so one service journal holds
/// every tenant's jobs in admission order and `Journal::write_merged`
/// produces a deterministic drain artifact.
pub fn journal_entry(
    job_id: u64,
    job: &str,
    seed: u64,
    outcome: Result<String, JobError>,
) -> JournalEntry {
    JournalEntry {
        index: job_id as usize,
        job: job.to_string(),
        seed,
        attempts: 1,
        outcome,
        wall_ms: None,
        attempt_ms: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_round_trips() {
        let line = r#"{"op":"submit","tenant":"acme","job":"fig2","params":{"warmup":10},"deadline_ms":500,"tag":"t1"}"#;
        let req = Request::parse(line).unwrap();
        let Request::Submit(s) = req else {
            panic!("not a submit")
        };
        assert_eq!(s.tenant, "acme");
        assert_eq!(s.job, "fig2");
        assert_eq!(s.params.get("warmup").and_then(Value::as_u64), Some(10));
        assert_eq!(s.deadline_ms, Some(500));
        assert_eq!(s.tag.as_deref(), Some("t1"));
        assert_eq!(s.idem_key, None, "idem_key is optional");
    }

    #[test]
    fn submit_carries_idempotency_key() {
        let line = r#"{"op":"submit","tenant":"acme","job":"fig2","idem_key":"run9-3"}"#;
        let Request::Submit(s) = Request::parse(line).unwrap() else {
            panic!("not a submit")
        };
        assert_eq!(s.idem_key.as_deref(), Some("run9-3"));
    }

    #[test]
    fn coded_errors_round_trip() {
        let line = error_coded("frame too large", "oversized_frame", false, &None);
        match Response::parse(&line).unwrap() {
            Response::Error {
                message,
                code,
                retryable,
                ..
            } => {
                assert_eq!(message, "frame too large");
                assert_eq!(code.as_deref(), Some("oversized_frame"));
                assert!(!retryable);
            }
            other => panic!("{other:?}"),
        }
        // Plain errors have no code and are not retryable.
        match Response::parse(&error("bad JSON", &None)).unwrap() {
            Response::Error {
                code, retryable, ..
            } => {
                assert_eq!(code, None);
                assert!(!retryable);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_requests_are_typed_errors_not_panics() {
        for bad in [
            "",
            "not json",
            "{}",
            r#"{"op":"warp"}"#,
            r#"{"op":"submit"}"#,
            r#"{"op":"submit","tenant":"","job":"fig2"}"#,
            r#"{"op":"submit","tenant":"a"}"#,
        ] {
            assert!(Request::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn responses_round_trip() {
        let tag = Some("t9".to_string());
        match Response::parse(&accepted(7, &tag)).unwrap() {
            Response::Accepted { job_id: 7, tag: t } => assert_eq!(t.as_deref(), Some("t9")),
            other => panic!("{other:?}"),
        }
        match Response::parse(&shed(ShedReason::QueueFull, &None)).unwrap() {
            Response::Shed {
                reason, retryable, ..
            } => {
                assert_eq!(reason, "queue_full");
                assert!(retryable);
            }
            other => panic!("{other:?}"),
        }
        match Response::parse(&shed(ShedReason::Draining, &None)).unwrap() {
            Response::Shed { retryable, .. } => assert!(!retryable),
            other => panic!("{other:?}"),
        }
        let ok = done(3, "fig2", &Ok("text\n".into()), &None);
        match Response::parse(&ok).unwrap() {
            Response::Done { outcome, .. } => assert_eq!(outcome.unwrap(), "text\n"),
            other => panic!("{other:?}"),
        }
        let cancelled = done(
            4,
            "fig2",
            &Err(JobError::Cancelled {
                reason: "drain".into(),
            }),
            &None,
        );
        match Response::parse(&cancelled).unwrap() {
            Response::Done { outcome, .. } => {
                let (kind, msg) = outcome.unwrap_err();
                assert_eq!(kind, "cancelled");
                assert!(msg.contains("drain"));
            }
            other => panic!("{other:?}"),
        }
        let streamed = progress(5, "fig2", 1200, &tag);
        match Response::parse(&streamed).unwrap() {
            Response::Progress {
                job_id,
                job,
                elapsed_ms,
                tag,
            } => {
                assert_eq!(job_id, 5);
                assert_eq!(job, "fig2");
                assert_eq!(elapsed_ms, 1200);
                assert_eq!(tag.as_deref(), Some("t9"));
            }
            other => panic!("{other:?}"),
        }
        match Response::parse(&shed(ShedReason::PipelineFull, &None)).unwrap() {
            Response::Shed {
                reason, retryable, ..
            } => {
                assert_eq!(reason, "pipeline_full");
                assert!(retryable, "pipeline sheds clear as jobs finish");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(Response::parse(&pong()).unwrap(), Response::Pong);
        assert_eq!(
            Response::parse(&subscribed()).unwrap(),
            Response::Subscribed
        );
        assert!(matches!(
            Response::parse(&status(1, 2, 3, 4, false, &[])).unwrap(),
            Response::Status(_)
        ));
    }

    #[test]
    fn metrics_round_trips() {
        assert_eq!(Request::parse(r#"{"op":"metrics"}"#), Ok(Request::Metrics));
        let line = metrics(Value::obj(vec![("uptime_ms", Value::UInt(5))]));
        match Response::parse(&line).unwrap() {
            Response::Metrics(v) => {
                let snap = v.get("metrics").expect("snapshot embedded");
                assert_eq!(snap.get("uptime_ms").and_then(Value::as_u64), Some(5));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn shed_reasons_are_stable() {
        assert_eq!(ShedReason::QueueFull.as_str(), "queue_full");
        assert_eq!(ShedReason::TenantQueueFull.as_str(), "tenant_queue_full");
        assert_eq!(ShedReason::TenantBytes.as_str(), "tenant_bytes");
        assert_eq!(ShedReason::PipelineFull.as_str(), "pipeline_full");
        assert_eq!(ShedReason::Draining.as_str(), "draining");
    }
}

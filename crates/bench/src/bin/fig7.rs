//! Fig. 7 — total snoops under VM relocation every 5 / 2.5 (scaled) ms.

use vsnoop::experiments::{migration_policies, migration_sweep};
use vsnoop_bench::{f1, heading, scale_from_env, TextTable};
use workloads::simulation_apps;

fn main() {
    heading(
        "Figure 7: normalized total snoops, vCPU relocated every 5 / 2.5 ms",
        "Percent of the TokenB baseline (ideal = 25%). Paper: the counter\n\
         mechanism stays close to ideal at these periods; vsnoop-base\n\
         degrades as maps only grow.",
    );
    let points = migration_sweep(&[5.0, 2.5], scale_from_env().for_migration());
    let mut t = TextTable::new([
        "workload",
        "period ms",
        "vsnoop-base %",
        "counter %",
        "counter-thr %",
    ]);
    for app in simulation_apps() {
        for period in [5.0f64, 2.5] {
            let mut cells = vec![app.name.to_string(), format!("{period}")];
            for policy in migration_policies() {
                let p = points
                    .iter()
                    .find(|p| {
                        p.name == app.name
                            && (p.period_ms - period).abs() < 1e-9
                            && p.policy == policy
                    })
                    .expect("point present");
                cells.push(f1(p.norm_snoops_pct));
            }
            t.row(cells);
        }
    }
    t.maybe_dump_csv("fig7").expect("csv dump");
    println!("{t}");
}

#!/usr/bin/env bash
# Full offline verification: tier-1 build+test, formatting, lints, and the
# robustness soak. No network access required — all third-party deps are
# vendored API shims (see DESIGN.md "Dependencies").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
# --workspace matters: the soak/perf/all binaries used below live in
# crates/bench, which a bare root-package build would not (re)compile —
# the smokes would then run stale binaries.
cargo build --release --workspace

echo "==> cargo test -q --workspace (deterministic suites)"
cargo test -q --workspace

echo "==> cargo test -q --workspace --features proptest (randomized suites)"
cargo test -q --workspace --features proptest

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (default features)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo clippy (--features proptest)"
cargo clippy --workspace --all-targets --features proptest -- -D warnings

echo "==> robustness soak (fault injection + invariant checker)"
# Traced: telemetry/flight/epoch files land in a side directory without
# touching stdout, so a soak failure in CI leaves the flight recorder's
# last-moments dump behind as an uploadable artifact.
VSNOOP_TRACE=target/campaign/soak-trace ./target/release/soak

echo "==> perf smoke (throughput harness + regression gate)"
# A short run of every bin: produces the machine-readable throughput
# report and fails if any bin regressed >20% (PERF_REGRESSION_PCT)
# against the committed baseline. Windows are shortened but the warmup
# keeps its full default length — measuring before the caches reach
# steady state reads systematically low against the baseline, which is
# regenerated with the default (longer) windows.
PERF_ROUNDS=4000 ./target/release/perf \
  --reps 2 \
  --out target/BENCH_throughput.json \
  --check BENCH_throughput.json
test -s target/BENCH_throughput.json

echo "==> campaign runner smoke (panic isolation + degraded mode)"
# A 3-job sub-campaign with one injected panic must complete, exit 0 in
# degraded mode, flag the failure, and write a crash reproducer.
SMOKE_DIR=target/campaign/verify-smoke
rm -rf "$SMOKE_DIR"
mkdir -p target/campaign
VSNOOP_SCALE=quick ./target/release/all \
  --only fig2 --only table2 --only table3 \
  --inject-panic table2 --jobs 2 --dir "$SMOKE_DIR" > "$SMOKE_DIR.out" 2> "$SMOKE_DIR.err"
grep -q "table2 — FAILED" "$SMOKE_DIR.out"
grep -q "DEGRADED" "$SMOKE_DIR.err"
test -s "$SMOKE_DIR/repro-table2.json"

echo "==> campaign runner smoke (kill + --resume determinism)"
# Kill a campaign mid-flight, resume it, and require the merged journal
# and report to be byte-identical to an uninterrupted run's.
RESUME_DIR=target/campaign/verify-resume
CLEAN_DIR=target/campaign/verify-clean
rm -rf "$RESUME_DIR" "$CLEAN_DIR"
VSNOOP_SCALE=quick ./target/release/all --jobs 1 --dir "$RESUME_DIR" \
  > /dev/null 2>&1 &
CAMPAIGN_PID=$!
for _ in $(seq 1 600); do
  [ -s "$RESUME_DIR/journal.jsonl" ] && break
  sleep 0.1
done
[ -s "$RESUME_DIR/journal.jsonl" ] # at least one checkpoint before the kill
kill -9 "$CAMPAIGN_PID" 2>/dev/null || true
wait "$CAMPAIGN_PID" 2>/dev/null || true
VSNOOP_SCALE=quick ./target/release/all --jobs 1 --dir "$RESUME_DIR" --resume \
  > /dev/null 2>&1
VSNOOP_SCALE=quick ./target/release/all --jobs 1 --workers 1 --dir "$CLEAN_DIR" \
  > /dev/null 2>&1
cmp "$RESUME_DIR/merged.jsonl" "$CLEAN_DIR/merged.jsonl"
cmp "$RESUME_DIR/campaign.txt" "$CLEAN_DIR/campaign.txt"

echo "==> campaign runner smoke (sharded vs serial byte-identity)"
# The heavy reports fan per-application cells over the shard pool
# (--workers); output must be byte-identical to the serial legacy path
# at any worker count. CLEAN_DIR above ran with --workers 1 (forced
# serial), so comparing against an oversubscribed 4-worker run
# exercises scatter's order preservation even on a single-core host.
SHARD_DIR=target/campaign/verify-sharded
rm -rf "$SHARD_DIR"
VSNOOP_SCALE=quick ./target/release/all --jobs 1 --workers 4 --dir "$SHARD_DIR" \
  > /dev/null 2>&1
cmp "$SHARD_DIR/campaign.txt" "$CLEAN_DIR/campaign.txt"
cmp "$SHARD_DIR/merged.jsonl" "$CLEAN_DIR/merged.jsonl"

echo "==> batched-engine smoke (VSNOOP_ENGINE_WORKERS=4 vs serial byte-identity)"
# Orthogonal to --workers (which shards *across* cells), the batched
# engine parallelizes *inside* each eligible simulation (DESIGN.md "The
# batched parallel engine"). Its contract is bit-identical output at
# any worker count, so the whole campaign — every artifact, eligible
# and fallback cells alike — must match the serial CLEAN_DIR run byte
# for byte with 4 engine workers forced on.
ENGINE_DIR=target/campaign/verify-engine
rm -rf "$ENGINE_DIR"
VSNOOP_SCALE=quick VSNOOP_ENGINE_WORKERS=4 ./target/release/all \
  --jobs 1 --workers 1 --dir "$ENGINE_DIR" > /dev/null 2>&1
cmp "$ENGINE_DIR/campaign.txt" "$CLEAN_DIR/campaign.txt"
cmp "$ENGINE_DIR/merged.jsonl" "$CLEAN_DIR/merged.jsonl"

echo "==> observability smoke (tracing on, stdout byte-identical)"
# The whole observability layer writes to side files only: a traced
# campaign's stdout and artifacts must be byte-identical to the
# untraced CLEAN_DIR run, while the telemetry stream fills up next to
# them (OBSERVABILITY.md).
TRACED_DIR=target/campaign/verify-traced
TRACE_OUT=target/campaign/verify-trace-files
rm -rf "$TRACED_DIR" "$TRACE_OUT"
VSNOOP_SCALE=quick ./target/release/all --jobs 1 --workers 1 --dir "$TRACED_DIR" \
  --trace-dir "$TRACE_OUT" > "$TRACED_DIR.out" 2> /dev/null
cmp "$TRACED_DIR.out" "$CLEAN_DIR/campaign.txt"
cmp "$TRACED_DIR/campaign.txt" "$CLEAN_DIR/campaign.txt"
cmp "$TRACED_DIR/merged.jsonl" "$CLEAN_DIR/merged.jsonl"
test -s "$TRACE_OUT/telemetry.jsonl"
grep -q '"event":"job_ok"' "$TRACE_OUT/telemetry.jsonl"
./target/release/obs_tail --trace-dir "$TRACE_OUT" --once | grep -q '"event":"job_start"'

echo "==> observability smoke (forced checker violation leaves a flight dump)"
# SOAK_FORCE_VIOLATION corrupts one cache line, lets the invariant
# checker catch it, and must exit non-zero with a flight-recorder dump
# and a checker_violation telemetry record in the trace directory.
VIOL_DIR=target/campaign/verify-violation
rm -rf "$VIOL_DIR"
if SOAK_FORCE_VIOLATION=1 VSNOOP_TRACE="$VIOL_DIR" ./target/release/soak \
  > /dev/null 2>&1; then
  echo "forced-violation soak unexpectedly succeeded" >&2
  exit 1
fi
test -s "$VIOL_DIR/flight-forced-violation.jsonl"
head -1 "$VIOL_DIR/flight-forced-violation.jsonl" | grep -q '"reason":"violation"'
grep -q '"event":"checker_violation"' "$VIOL_DIR/telemetry.jsonl"

echo "==> service smoke (two tenants, SIGTERM drain, served == direct)"
# Start the always-on server, run two tenants' artifact jobs through it,
# then SIGTERM it while a third job is in flight. The drain must be
# clean (exit 0, counters line), the in-flight job must be journaled as
# cancelled, and the completed jobs' outputs must be byte-identical to
# a direct `all --only ...` campaign at the same scale (SERVICE.md).
SVC_DIR=target/campaign/verify-service
rm -rf "$SVC_DIR"
mkdir -p "$SVC_DIR"
# Traced with a fast heartbeat: the server must rewrite
# <trace>/metrics.prom and emit service_metrics records on that
# cadence (OBSERVABILITY.md "Metrics"); checked after the drain.
VSNOOP_SCALE=quick VSNOOP_TRACE="$SVC_DIR/trace" VSNOOP_HEARTBEAT_MS=100 \
  ./target/release/serve --addr 127.0.0.1:0 \
  --journal "$SVC_DIR/journal.jsonl" \
  --drain-grace-ms 300 --cancel-grace-ms 2000 \
  > "$SVC_DIR/serve.out" 2> "$SVC_DIR/serve.err" &
SERVE_PID=$!
for _ in $(seq 1 100); do
  grep -q '^listening on ' "$SVC_DIR/serve.out" 2>/dev/null && break
  sleep 0.1
done
SVC_ADDR=$(awk '/^listening on /{print $3; exit}' "$SVC_DIR/serve.out")
[ -n "$SVC_ADDR" ] # the server came up
./target/release/client --addr "$SVC_ADDR" --tenant acme \
  --submit fig2 --out "$SVC_DIR/acme" --strict > /dev/null
./target/release/client --addr "$SVC_ADDR" --tenant globex \
  --submit table2 --out "$SVC_DIR/globex" --strict > /dev/null
# Scrape the metrics wire op off the live server: one JSONL request,
# one snapshot back, counts covering the two tenants' submits.
SVC_HOST=${SVC_ADDR%:*}
SVC_PORT=${SVC_ADDR##*:}
exec 3<>"/dev/tcp/$SVC_HOST/$SVC_PORT"
printf '{"op":"metrics"}\n' >&3
IFS= read -r -t 10 METRICS_LINE <&3
exec 3<&- 3>&-
echo "$METRICS_LINE" | grep -q '"type":"metrics"'
echo "$METRICS_LINE" | grep -q '"service_request_us"'
echo "$METRICS_LINE" | grep -q '"tenants"'
# Third tenant: a long spin the drain will have to cancel mid-flight.
./target/release/client --addr "$SVC_ADDR" --tenant initech \
  --submit spin --spin-ms 60000 > "$SVC_DIR/spin.out" &
SPIN_CLIENT_PID=$!
sleep 0.5
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" # clean drain: serve exits 0 after SIGTERM
wait "$SPIN_CLIENT_PID" # the cancelled submit still got a typed answer
grep -q '^drained: ' "$SVC_DIR/serve.out"
grep -q 'cancelled' "$SVC_DIR/spin.out"
grep -q '"job":"spin"' "$SVC_DIR/journal.jsonl"
grep -q 'cancelled' "$SVC_DIR/journal.jsonl"
# The heartbeat left the Prometheus dump and telemetry summaries behind.
test -s "$SVC_DIR/trace/metrics.prom"
grep -q '^vsnoop_service_request_us_bucket' "$SVC_DIR/trace/metrics.prom"
grep -q '"event":"service_metrics"' "$SVC_DIR/trace/telemetry.jsonl"
# Byte-identity: served outputs vs the same campaign run directly.
DIRECT_DIR=target/campaign/verify-service-direct
rm -rf "$DIRECT_DIR"
VSNOOP_SCALE=quick ./target/release/all --only fig2 --only table2 \
  --dir "$DIRECT_DIR" > /dev/null 2>&1
cat "$SVC_DIR/acme/fig2.txt" "$SVC_DIR/globex/table2.txt" \
  | cmp - "$DIRECT_DIR/campaign.txt"

echo "==> service smoke (overload sheds typed, no hangs)"
# Saturate tiny queues with a client herd; every submit must get a
# typed answer (accepted/shed/done) and at least some must shed.
./target/release/loadtest --clients 8 --tenants 4 --jobs 4 --spin-ms 1 \
  --overload > /dev/null

echo "==> service smoke (chaos proxy soak: seeded faults, nothing lost)"
# Every client dials through a fault-injecting proxy (torn frames,
# stalls, cuts, resets — deterministic for the seed) with the WAL on.
# The retrying clients must still get every request answered exactly
# once, and the run fails if the proxy injected no faults. The log is
# kept as a CI artifact.
CHAOS_LOG=target/campaign/verify-chaos.log
./target/release/loadtest --clients 6 --tenants 3 --jobs 4 --spin-ms 1 \
  --chaos --chaos-seed 42 > "$CHAOS_LOG" 2>&1
grep -q '^chaos: faults=' "$CHAOS_LOG"

echo "==> service smoke (512-connection reactor soak)"
# The connection layer's scaling contract: one reactor thread holding
# 512 concurrent connections, every request answered (loadtest exits 1
# on any unanswered request), with progress streaming on. Then the
# same herd against starved queues (--overload: typed sheds, no
# hangs), and a 64-connection chaos run (reactor reads torn frames
# from a hostile proxy). Logs pile into one file kept as a CI
# artifact on failure.
CONNS_LOG=target/campaign/verify-conns.log
: > "$CONNS_LOG"
./target/release/loadtest --clients 512 --tenants 8 --jobs 2 --spin-ms 0 \
  --workers 4 --queue-cap 2048 --max-inflight 8 --max-queued 512 \
  --deadline-ms 60000 --progress-ms 100 >> "$CONNS_LOG" 2>&1
grep -q 'unanswered=0' "$CONNS_LOG"
# Server-measured p99 (metrics wire op) must reconcile with the
# client-measured p99: the server resolves quantiles to log2 bucket
# edges, so allow 2x plus scheduling slop, but never silence — both
# lines must be present and the server's must be nonzero.
awk '
  $1 == "latency" && client == "" { client = $3; sub(/^p99=/, "", client); sub(/ms$/, "", client) }
  $1 == "server"  && server == "" { server = $3; sub(/^p99=/, "", server); sub(/ms$/, "", server) }
  END {
    if (client == "" || server == "") { print "missing p99 lines"; exit 1 }
    if (server + 0 <= 0) { print "server p99 is zero: metrics scrape failed"; exit 1 }
    if (server + 0 > client * 2 + 25) {
      printf "server p99 %sms inconsistent with client p99 %sms\n", server, client
      exit 1
    }
  }
' "$CONNS_LOG"
./target/release/loadtest --clients 512 --tenants 8 --jobs 2 --spin-ms 1 \
  --overload >> "$CONNS_LOG" 2>&1
./target/release/loadtest --clients 64 --tenants 8 --jobs 2 --spin-ms 1 \
  --chaos --chaos-seed 7 >> "$CONNS_LOG" 2>&1
grep -q '^chaos: faults=' "$CONNS_LOG"

echo "==> durability smoke (kill -9 mid-flight, recover, reconcile)"
# The full crash-safety contract (SERVICE.md "Durability & recovery"):
# kill -9 a durable server with jobs in flight, restart it on the same
# state dir, and require (a) the retrying clients to come out whole
# with --strict, (b) walcheck to reconcile WAL vs journal — every
# accepted job terminal exactly once, at least one job actually
# recovered — and (c) the served artifact outputs to be byte-identical
# to the direct campaign run, crash and all.
DUR_DIR=target/campaign/verify-durable
rm -rf "$DUR_DIR"
mkdir -p "$DUR_DIR"
VSNOOP_SCALE=quick ./target/release/serve --addr 127.0.0.1:0 \
  --state-dir "$DUR_DIR/state" \
  --drain-grace-ms 300 --cancel-grace-ms 2000 \
  > "$DUR_DIR/serve1.out" 2> "$DUR_DIR/serve1.err" &
SERVE_PID=$!
for _ in $(seq 1 100); do
  grep -q '^listening on ' "$DUR_DIR/serve1.out" 2>/dev/null && break
  sleep 0.1
done
DUR_ADDR=$(awk '/^listening on /{print $3; exit}' "$DUR_DIR/serve1.out")
[ -n "$DUR_ADDR" ] # the server came up
# Two tenants; each submits a slow spin (in flight at the kill) plus a
# real artifact saved with --out for the byte-identity check.
./target/release/client --addr "$DUR_ADDR" --tenant acme \
  --submit spin --submit fig2 --spin-ms 1500 \
  --out "$DUR_DIR/acme" --strict > "$DUR_DIR/acme.out" 2> "$DUR_DIR/acme.err" &
CLIENT_A_PID=$!
./target/release/client --addr "$DUR_ADDR" --tenant globex \
  --submit spin --submit table2 --spin-ms 1500 \
  --out "$DUR_DIR/globex" --strict > "$DUR_DIR/globex.out" 2> "$DUR_DIR/globex.err" &
CLIENT_B_PID=$!
# The WAL is fsynced before each `accepted` ack, so once it holds all
# four accepted records the spins are mid-flight. Kill without mercy.
for _ in $(seq 1 100); do
  [ "$(grep -c '"rec":"accepted"' "$DUR_DIR/state/wal.jsonl" 2>/dev/null)" -ge 4 ] && break
  sleep 0.1
done
kill -9 "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
# Restart on the same address and state dir: replays the WAL,
# re-enqueues the unfinished jobs, dedups the clients' resubmissions.
VSNOOP_SCALE=quick ./target/release/serve --addr "$DUR_ADDR" \
  --state-dir "$DUR_DIR/state" \
  --drain-grace-ms 300 --cancel-grace-ms 2000 \
  > "$DUR_DIR/serve2.out" 2> "$DUR_DIR/serve2.err" &
SERVE_PID=$!
for _ in $(seq 1 100); do
  grep -q '^listening on ' "$DUR_DIR/serve2.out" 2>/dev/null && break
  sleep 0.1
done
wait "$CLIENT_A_PID" # strict: every job ok despite the crash
wait "$CLIENT_B_PID"
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" # clean drain after recovery
grep -q '^drained: ' "$DUR_DIR/serve2.out"
# Reconcile: nothing lost, nothing duplicated, something was recovered.
./target/release/walcheck \
  --wal "$DUR_DIR/state/wal.jsonl" --journal "$DUR_DIR/state/journal.jsonl" \
  --min-jobs 4 --expect-recovered
# Byte identity across the crash (DIRECT_DIR ran fig2+table2 above).
cat "$DUR_DIR/acme/fig2.txt" "$DUR_DIR/globex/table2.txt" \
  | cmp - "$DIRECT_DIR/campaign.txt"

echo "verify.sh: ALL CHECKS PASSED"

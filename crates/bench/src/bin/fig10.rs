//! Fig. 10 — snoops under the content-sharing optimizations.

use vsnoop::experiments::fig10;
use vsnoop::ContentPolicy;
use vsnoop_bench::{f1, heading, scale_from_env, TextTable};
use workloads::content_apps;

fn main() {
    heading(
        "Figure 10: snoops by content-page routing, normalized to TokenB",
        "Measured (the paper estimates these). Paper shape: memory-direct\n\
         has the fewest snoops (often below the 25% ideal), then intra-VM,\n\
         then friend-VM; all beat vsnoop-broadcast on the four apps with\n\
         heavy content sharing (fft, blackscholes, canneal, specjbb).",
    );
    let rows = fig10(scale_from_env());
    let mut t = TextTable::new([
        "workload",
        "vsnoop-broadcast %",
        "memory-direct %",
        "intra-VM %",
        "friend-VM %",
    ]);
    for app in content_apps() {
        let get = |p: ContentPolicy| {
            rows.iter()
                .find(|r| r.name == app.name && r.policy == p)
                .map(|r| r.norm_snoops_pct)
                .expect("row present")
        };
        t.row([
            app.name.to_string(),
            f1(get(ContentPolicy::Broadcast)),
            f1(get(ContentPolicy::MemoryDirect)),
            f1(get(ContentPolicy::IntraVm)),
            f1(get(ContentPolicy::FriendVm)),
        ]);
    }
    t.maybe_dump_csv("fig10").expect("csv dump");
    println!("{t}");
}

//! Minimal async-signal-safe shutdown flag for SIGTERM/SIGINT.
//!
//! The workspace builds offline with no signal-handling crate, so this
//! installs a raw `signal(2)` handler via the libc that `std` already
//! links. The handler does the only thing that is async-signal-safe:
//! it stores into a process-global `AtomicBool`. The server's accept
//! loop polls that flag (it already wakes every ~50ms for nonblocking
//! accept) and runs the full drain sequence from normal thread
//! context.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the handler; polled by the accept loop.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Signal numbers per POSIX (stable on every platform we build for).
#[cfg(unix)]
const SIGINT: i32 = 2;
#[cfg(unix)]
const SIGTERM: i32 = 15;

#[cfg(unix)]
extern "C" {
    /// `signal(2)` from the platform libc (linked by `std`).
    fn signal(signum: i32, handler: usize) -> usize;
}

/// The installed handler: flag-store only (async-signal-safe).
#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs the SIGTERM/SIGINT handlers. Idempotent; call once from
/// the `serve` binary before entering the accept loop.
///
/// Only compiled in on Unix — elsewhere this is a no-op and shutdown
/// is driven by the `shutdown` protocol op alone.
pub fn install() {
    #[cfg(unix)]
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
    }
}

/// Whether a shutdown signal has been received (or injected).
pub fn requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Injects a shutdown request from normal code — the `shutdown`
/// protocol op and tests use this to share the signal path.
pub fn request() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Clears the flag (tests only; the serve binary exits after a drain).
#[cfg(test)]
pub fn reset() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_sets_and_reset_clears() {
        reset();
        assert!(!requested());
        request();
        assert!(requested());
        reset();
        assert!(!requested());
    }
}

//! RegionScout-style coarse-grain filtering state (baseline).
//!
//! The paper's related work filters snoops by tracking the shared/private
//! state of *address regions* in per-core hardware tables (RegionScout,
//! CGCT, in-network filtering). This module implements the requester-side
//! variant the comparison needs:
//!
//! * a per-core **cached-region counter** (the "CRH"): how many blocks of
//!   each region the core currently caches, maintained from fill /
//!   eviction / invalidation events;
//! * a per-core **not-shared-region table** (NSRT): a small FIFO of
//!   regions the core has verified no other cache holds. Misses to those
//!   regions skip snooping entirely and go straight to memory.
//!
//! An NSRT entry is inserted when a broadcast miss observes that no other
//! core holds any block of the region, and *every* core's entry for a
//! region is invalidated when some other core fills a block of it (the
//! broadcast that fetched the block doubles as the notification). Token
//! coherence keeps even a stale entry safe: a memory-direct attempt that
//! cannot assemble its tokens simply fails and retries as a broadcast.

use std::collections::{HashMap, VecDeque};

use sim_mem::BlockAddr;

/// Per-core region tracking for the RegionScout baseline.
#[derive(Clone, Debug)]
pub struct RegionFilter {
    shift: u32,
    nsrt_cap: usize,
    counts: Vec<HashMap<u64, u32>>,
    nsrt: Vec<VecDeque<u64>>,
    nsrt_hits: u64,
    nsrt_inserts: u64,
}

impl RegionFilter {
    /// Creates tracking state for `n_cores` cores with `region_blocks`
    /// blocks per region and `nsrt_entries` NSRT slots per core.
    ///
    /// # Panics
    ///
    /// Panics unless `region_blocks` is a power of two and both sizes are
    /// positive.
    pub fn new(n_cores: usize, region_blocks: u64, nsrt_entries: usize) -> Self {
        assert!(
            region_blocks.is_power_of_two() && region_blocks > 0,
            "region size must be a positive power of two"
        );
        assert!(nsrt_entries > 0, "NSRT needs at least one entry");
        RegionFilter {
            shift: region_blocks.trailing_zeros(),
            nsrt_cap: nsrt_entries,
            counts: vec![HashMap::new(); n_cores],
            nsrt: vec![VecDeque::new(); n_cores],
            nsrt_hits: 0,
            nsrt_inserts: 0,
        }
    }

    /// The region containing `block`.
    pub fn region_of(&self, block: BlockAddr) -> u64 {
        block.index() >> self.shift
    }

    /// Whether `core` currently believes `region` is not cached elsewhere.
    pub fn nsrt_contains(&self, core: usize, region: u64) -> bool {
        self.nsrt[core].contains(&region)
    }

    /// Records an NSRT hit (for statistics).
    pub fn record_hit(&mut self) {
        self.nsrt_hits += 1;
    }

    /// NSRT hits so far.
    pub fn hits(&self) -> u64 {
        self.nsrt_hits
    }

    /// NSRT insertions so far.
    pub fn inserts(&self) -> u64 {
        self.nsrt_inserts
    }

    /// A block of `region` was filled into `core`'s cache: bump its count
    /// and shoot down every *other* core's NSRT entry for the region.
    pub fn on_fill(&mut self, core: usize, region: u64) {
        *self.counts[core].entry(region).or_insert(0) += 1;
        for (j, table) in self.nsrt.iter_mut().enumerate() {
            if j != core {
                table.retain(|&r| r != region);
            }
        }
    }

    /// A block of `region` left `core`'s cache (eviction or invalidation).
    pub fn on_remove(&mut self, core: usize, region: u64) {
        if let Some(c) = self.counts[core].get_mut(&region) {
            *c -= 1;
            if *c == 0 {
                self.counts[core].remove(&region);
            }
        } else {
            debug_assert!(false, "region count underflow on core {core}");
        }
    }

    /// Whether any core other than `core` holds a block of `region`.
    pub fn shared_elsewhere(&self, core: usize, region: u64) -> bool {
        self.counts
            .iter()
            .enumerate()
            .any(|(j, m)| j != core && m.get(&region).copied().unwrap_or(0) > 0)
    }

    /// Records that `core` verified `region` as not shared (FIFO evicting
    /// the oldest entry when full). No-op if already present.
    pub fn learn(&mut self, core: usize, region: u64) {
        if self.nsrt[core].contains(&region) {
            return;
        }
        if self.nsrt[core].len() == self.nsrt_cap {
            self.nsrt[core].pop_front();
        }
        self.nsrt[core].push_back(region);
        self.nsrt_inserts += 1;
    }

    /// Drops a (stale) entry after a failed memory-direct attempt.
    pub fn forget(&mut self, core: usize, region: u64) {
        self.nsrt[core].retain(|&r| r != region);
    }

    /// Test hook: the tracked block count of `region` on `core`.
    pub fn count(&self, core: usize, region: u64) -> u32 {
        self.counts[core].get(&region).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_arithmetic() {
        let rf = RegionFilter::new(2, 64, 4);
        assert_eq!(rf.region_of(BlockAddr::new(0)), 0);
        assert_eq!(rf.region_of(BlockAddr::new(63)), 0);
        assert_eq!(rf.region_of(BlockAddr::new(64)), 1);
    }

    #[test]
    fn counts_track_fills_and_removals() {
        let mut rf = RegionFilter::new(2, 64, 4);
        rf.on_fill(0, 5);
        rf.on_fill(0, 5);
        assert_eq!(rf.count(0, 5), 2);
        assert!(rf.shared_elsewhere(1, 5));
        assert!(!rf.shared_elsewhere(0, 5));
        rf.on_remove(0, 5);
        rf.on_remove(0, 5);
        assert_eq!(rf.count(0, 5), 0);
        assert!(!rf.shared_elsewhere(1, 5));
    }

    #[test]
    fn fills_shoot_down_remote_nsrt_entries() {
        let mut rf = RegionFilter::new(3, 64, 4);
        rf.learn(0, 7);
        assert!(rf.nsrt_contains(0, 7));
        // Core 0's own fill keeps its entry...
        rf.on_fill(0, 7);
        assert!(rf.nsrt_contains(0, 7));
        // ...but core 2's fill invalidates it.
        rf.on_fill(2, 7);
        assert!(!rf.nsrt_contains(0, 7));
    }

    #[test]
    fn nsrt_is_a_fifo_with_capacity() {
        let mut rf = RegionFilter::new(1, 64, 2);
        rf.learn(0, 1);
        rf.learn(0, 2);
        rf.learn(0, 3); // evicts 1
        assert!(!rf.nsrt_contains(0, 1));
        assert!(rf.nsrt_contains(0, 2));
        assert!(rf.nsrt_contains(0, 3));
        // Re-learning an existing entry is a no-op.
        let inserts = rf.inserts();
        rf.learn(0, 3);
        assert_eq!(rf.inserts(), inserts);
        rf.forget(0, 3);
        assert!(!rf.nsrt_contains(0, 3));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_region_size_rejected() {
        let _ = RegionFilter::new(1, 48, 4);
    }
}

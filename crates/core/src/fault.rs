//! Deterministic fault-injection plans for the coherence engine.
//!
//! A [`FaultPlan`] describes *what* to inject and with what probabilities;
//! the simulator derives all randomness from the plan's seed, so any soak
//! run is exactly reproducible. The plan covers every fault class of the
//! robustness campaign:
//!
//! * **Link faults** — snoop-request drops and bounded message delays
//!   (delegated to [`sim_net::LinkFaults`] inside the network).
//! * **vCPU-map corruption** — a filter register loses a bit, gains a
//!   spurious bit (possibly beyond the physical core count), or is
//!   replaced by garbage wholesale.
//! * **Delayed map synchronization** — after a migration, the register
//!   update lags the hypervisor by a configurable number of cycles.
//! * **Spurious token bounces** — a cache spontaneously writes a line's
//!   tokens back to memory, as if a transient request had failed.
//!
//! The plan also configures the *recovery* side: `audit_period_cycles`
//! controls how often the modeled hypervisor scrubs the filter registers
//! back into a valid state (repairs are counted in
//! `SimStats::map_repairs`).

use sim_net::LinkFaultConfig;

/// How a corrupted vCPU-map register is mangled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MapCorruption {
    /// Clear one bit that is currently set (the filter under-covers).
    ClearBit,
    /// Set one arbitrary bit in the 64-bit register, possibly beyond the
    /// physical core count (the filter over-covers or goes invalid).
    SetBit,
    /// Replace the whole register with garbage.
    Garbage,
}

impl MapCorruption {
    /// All corruption modes, for uniform selection.
    pub const ALL: [MapCorruption; 3] = [
        MapCorruption::ClearBit,
        MapCorruption::SetBit,
        MapCorruption::Garbage,
    ];
}

/// A seeded, deterministic fault-injection plan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed from which every injection decision derives.
    pub seed: u64,
    /// Probability a snoop request message is dropped in flight.
    pub drop_p: f64,
    /// Probability a message is delayed in flight.
    pub delay_p: f64,
    /// Upper bound (inclusive) on an injected message delay, in cycles.
    pub max_delay_cycles: u64,
    /// Per-round probability that one VM's vCPU-map register is corrupted.
    pub corrupt_map_p: f64,
    /// Extra cycles between a migration and the vCPU-map register update
    /// reaching the filters (0 = synchronous, the fault-free behaviour).
    pub map_sync_delay_cycles: u64,
    /// Per-round probability that one cached line spontaneously bounces
    /// its tokens to memory.
    pub spurious_bounce_p: f64,
    /// Period, in cycles, of the hypervisor's register audit that repairs
    /// corrupted or stale maps (0 disables auditing).
    pub audit_period_cycles: u64,
}

impl FaultPlan {
    /// A plan that injects nothing (and never audits). Running with this
    /// plan is bit-identical to running with no plan at all.
    pub const fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_p: 0.0,
            delay_p: 0.0,
            max_delay_cycles: 0,
            corrupt_map_p: 0.0,
            map_sync_delay_cycles: 0,
            spurious_bounce_p: 0.0,
            audit_period_cycles: 0,
        }
    }

    /// The soak default: every fault class enabled at rates aggressive
    /// enough to exercise each recovery path millions of times per run,
    /// with the audit scrubbing registers every 50k cycles.
    pub const fn all(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_p: 0.01,
            delay_p: 0.05,
            max_delay_cycles: 40,
            corrupt_map_p: 0.001,
            map_sync_delay_cycles: 2_000,
            spurious_bounce_p: 0.002,
            audit_period_cycles: 50_000,
        }
    }

    /// The link-fault slice of the plan, for [`sim_net::LinkFaults`].
    pub fn link_config(&self) -> LinkFaultConfig {
        LinkFaultConfig {
            drop_p: self.drop_p,
            delay_p: self.delay_p,
            max_delay_cycles: self.max_delay_cycles,
        }
    }

    /// Whether any link-level fault class is enabled.
    pub fn any_link(&self) -> bool {
        self.link_config().any()
    }

    /// Whether the plan injects anything at all.
    pub fn any(&self) -> bool {
        self.any_link()
            || self.corrupt_map_p > 0.0
            || self.map_sync_delay_cycles > 0
            || self.spurious_bounce_p > 0.0
    }

    /// Whether vCPU-map registers can disagree with the hypervisor under
    /// this plan (corruption or lagging synchronization). When false, map
    /// coverage is a hard invariant the checker may enforce at any time.
    pub fn maps_can_diverge(&self) -> bool {
        self.corrupt_map_p > 0.0 || self.map_sync_delay_cycles > 0
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none(0)
    }
}

/// Counts of injections actually performed during a run, kept separately
/// from [`crate::SimStats`] so the *response* counters (degraded
/// broadcasts, persistent requests, repairs) can be compared against the
/// *stimulus* that provoked them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultInjectionStats {
    /// vCPU-map registers corrupted, by mode.
    pub maps_bit_cleared: u64,
    /// Registers that gained a spurious bit.
    pub maps_bit_set: u64,
    /// Registers replaced with garbage.
    pub maps_garbaged: u64,
    /// Spontaneous token bounces injected.
    pub spurious_bounces: u64,
    /// Map-register updates deferred past their migration.
    pub delayed_syncs: u64,
}

impl FaultInjectionStats {
    /// Total vCPU-map corruptions across all modes.
    pub fn maps_corrupted(&self) -> u64 {
        self.maps_bit_cleared + self.maps_bit_set + self.maps_garbaged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_inert() {
        let p = FaultPlan::none(7);
        assert!(!p.any());
        assert!(!p.any_link());
        assert!(!p.maps_can_diverge());
    }

    #[test]
    fn all_plan_enables_every_class() {
        let p = FaultPlan::all(7);
        assert!(p.any());
        assert!(p.any_link());
        assert!(p.maps_can_diverge());
        assert!(p.audit_period_cycles > 0);
        assert!(p.link_config().any());
    }
}

//! Workspace-wide observability: flight recorder, per-epoch time-series,
//! campaign telemetry.
//!
//! Simulation frameworks live or die by introspection, but every paper
//! metric comes out of [`SimStats`](crate::SimStats) as one opaque
//! end-of-run aggregate. This module adds three layers of visibility,
//! all **strictly zero-cost when disabled**:
//!
//! 1. **Flight recorder** ([`flight`]) — a fixed-capacity thread-local
//!    ring buffer of compact binary transaction events (requester,
//!    block, policy decision, destination mask, retries,
//!    fallback/escalation, tokens moved). Recording sits behind the
//!    single branch-predictable [`enabled`] check; the ring is dumped
//!    as JSONL next to the crash reproducers on panic, watchdog
//!    cancellation, or checker violation.
//! 2. **Per-epoch time-series** ([`epoch`]) — `SimStats` delta
//!    snapshots every N rounds (snoop fan-out histogram, per-kind and
//!    per-node traffic, map-maintenance events), exportable as JSONL
//!    and as a Chrome `trace_event` file loadable in Perfetto.
//! 3. **Campaign telemetry** ([`telemetry`]) — structured heartbeat
//!    and lifecycle records appended to a JSONL sink, tailed live by
//!    the `obs-tail` helper binary.
//!
//! # Enabling
//!
//! Everything is keyed off one process-global trace directory: set it
//! with [`set_trace_dir`], the `VSNOOP_TRACE` environment variable (via
//! [`init_from_env`]), or the bench binaries' shared `--trace-dir`
//! flag. With no directory configured, [`enabled`] is `false`, every
//! hook is a single predictable branch, and **no allocation, file, or
//! atomic write happens anywhere** — the hot path PR 3 flattened stays
//! allocation-free and the campaign stdout stays byte-identical.
//!
//! Telemetry and dumps go to side files only, never stdout, so report
//! output is byte-identical with tracing off and on.
//!
//! See `OBSERVABILITY.md` at the repository root for the event
//! schemas, the Perfetto how-to, and the full list of knobs.

pub mod epoch;
pub mod flight;
pub mod heartbeat;
pub mod metrics;
pub mod tail;
pub mod telemetry;

pub use epoch::{Epoch, EpochRecorder};
pub use flight::{dump_flight, record_tx, FlightEvent};
pub use heartbeat::Heartbeat;
pub use tail::Tailer;

use std::cell::RefCell;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Fast gate for every hot-path hook: one relaxed atomic load, branch
/// predictable because it never changes mid-run in practice.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The configured trace directory (guards the slow paths only).
static TRACE_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Process-wide round counter, incremented once per simulated round
/// while tracing is enabled — the heartbeat's rounds/s numerator.
static ROUNDS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread scope label ("main" when unset); the campaign
    /// supervisor installs the job name so flight dumps land in
    /// per-job files next to that job's crash reproducer.
    static SCOPE: RefCell<Option<String>> = const { RefCell::new(None) };

    /// Per-thread tenant label (unset outside the service). The
    /// service installs it for the duration of a request; `scatter`
    /// re-installs it on shard workers, so cross-tenant resource
    /// accounting (e.g. the warm pool's per-tenant hit/miss counters)
    /// attributes work done on helper threads to the right tenant.
    static TENANT: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Whether observability is enabled (a trace directory is configured).
///
/// This is the only check on the simulator's hot path; when it returns
/// `false` no event is constructed and no allocation happens.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether telemetry records should be constructed: a trace directory
/// is configured *or* a live tap (a service subscriber) is attached.
/// Producers of telemetry-only events gate on this; hot-path hooks
/// (flight recorder, epoch snapshots, round counting) stay gated on
/// the stricter [`enabled`].
#[inline]
pub fn telemetry_active() -> bool {
    enabled() || telemetry::tap_active()
}

/// Configures (or, with `None`, clears) the process-global trace
/// directory, enabling or disabling every observability layer at once.
///
/// The directory is created lazily by the first dump or telemetry
/// write, not here. Changing the directory re-targets the telemetry
/// sink on its next write.
pub fn set_trace_dir(dir: Option<PathBuf>) {
    let on = dir.is_some();
    *TRACE_DIR.lock().unwrap_or_else(|e| e.into_inner()) = dir;
    telemetry::invalidate_sink();
    ENABLED.store(on, Ordering::SeqCst);
}

/// The configured trace directory, if any.
pub fn trace_dir() -> Option<PathBuf> {
    TRACE_DIR.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Initializes the trace directory from the `VSNOOP_TRACE` environment
/// variable (a directory path; empty or unset leaves tracing off).
/// Called by every bench binary at startup; harmless to call twice.
pub fn init_from_env() {
    mono_ms(); // anchor the monotonic clock at startup
    if enabled() {
        metrics::init_from_env();
        return;
    }
    if let Ok(dir) = std::env::var("VSNOOP_TRACE") {
        let dir = dir.trim();
        if !dir.is_empty() {
            set_trace_dir(Some(PathBuf::from(dir)));
        }
    }
    metrics::init_from_env();
}

/// Milliseconds elapsed since this clock's first use (one [`Instant`]
/// anchored process-wide) — the monotonic companion to telemetry's
/// wall-clock `ts_ms`, immune to clock steps. Every bench binary
/// touches it at startup via [`init_from_env`], so in practice it
/// counts from process start.
pub fn mono_ms() -> u64 {
    static START: OnceLock<Instant> = OnceLock::new();
    START.get_or_init(Instant::now).elapsed().as_millis() as u64
}

/// Runs `f` with this thread's scope label set to `label` (restoring
/// the previous label afterwards). Flight dumps and telemetry records
/// emitted by the thread are attributed to the innermost scope.
pub fn with_scope<R>(label: &str, f: impl FnOnce() -> R) -> R {
    let prev = SCOPE.with(|s| s.borrow_mut().replace(label.to_string()));
    struct Restore(Option<String>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            SCOPE.with(|s| *s.borrow_mut() = prev);
        }
    }
    let _restore = Restore(prev);
    f()
}

/// The current thread's scope label (`"main"` when no scope is set).
pub fn scope_label() -> String {
    SCOPE
        .with(|s| s.borrow().clone())
        .unwrap_or_else(|| "main".to_string())
}

/// Runs `f` with this thread's tenant label set (restoring the
/// previous label afterwards). Unlike scopes there is no default
/// tenant: single-user CLI campaigns run with the label unset and skip
/// per-tenant accounting entirely.
pub fn with_tenant<R>(label: &str, f: impl FnOnce() -> R) -> R {
    let prev = TENANT.with(|t| t.borrow_mut().replace(label.to_string()));
    struct Restore(Option<String>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            TENANT.with(|t| *t.borrow_mut() = prev);
        }
    }
    let _restore = Restore(prev);
    f()
}

/// The current thread's tenant label, if one is installed.
pub fn tenant_label() -> Option<String> {
    TENANT.with(|t| t.borrow().clone())
}

/// Counts one simulated round toward the process-wide rounds/s rate
/// reported in telemetry heartbeats. Called from the simulator's round
/// loop; gated by [`enabled`] at the call site.
#[inline]
pub fn count_round() {
    ROUNDS.fetch_add(1, Ordering::Relaxed);
}

/// Total rounds counted since process start (monotonic; heartbeats
/// compute rates from deltas).
pub fn rounds_counted() -> u64 {
    ROUNDS.load(Ordering::Relaxed)
}

/// Current resident-set size in bytes (`VmRSS` from
/// `/proc/self/status`), or 0 where unavailable.
pub fn current_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmRSS:") {
                    let kb: u64 = rest
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse()
                        .unwrap_or(0);
                    return kb * 1024;
                }
            }
        }
    }
    0
}

/// Replaces path-hostile characters so labels can name dump files.
pub(crate) fn sanitize(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_label_nests_and_restores() {
        assert_eq!(scope_label(), "main");
        with_scope("outer", || {
            assert_eq!(scope_label(), "outer");
            with_scope("inner", || assert_eq!(scope_label(), "inner"));
            assert_eq!(scope_label(), "outer");
        });
        assert_eq!(scope_label(), "main");
    }

    #[test]
    fn tenant_label_nests_restores_and_defaults_to_none() {
        assert_eq!(tenant_label(), None);
        with_tenant("acme", || {
            assert_eq!(tenant_label(), Some("acme".into()));
            with_tenant("globex", || {
                assert_eq!(tenant_label(), Some("globex".into()));
            });
            assert_eq!(tenant_label(), Some("acme".into()));
        });
        assert_eq!(tenant_label(), None);
    }

    #[test]
    fn sanitize_keeps_safe_chars() {
        assert_eq!(sanitize("fig7-a_1"), "fig7-a_1");
        assert_eq!(sanitize("a/b c"), "a_b_c");
    }

    #[test]
    fn rss_probe_does_not_panic() {
        // On Linux this is > 0; elsewhere it degrades to 0.
        let _ = current_rss_bytes();
    }
}

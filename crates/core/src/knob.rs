//! Shared parsing for `VSNOOP_*` environment knobs.
//!
//! Every runtime tunable read from the environment (`VSNOOP_SHARD_WORKERS`,
//! `VSNOOP_FLIGHT_CAP`, `VSNOOP_WARM_CAP`, `VSNOOP_ENGINE_WORKERS`) is a
//! positive integer. These used to be parsed ad hoc with `.parse().ok()`,
//! which silently fell back to the default on a malformed value — setting
//! `VSNOOP_SHARD_WORKERS=abc` (or `=0`) looked accepted but did nothing.
//! [`env_positive_usize`] keeps the fall-back-to-default behaviour (a bad
//! knob must never abort a long campaign) but warns **once per knob** on
//! stderr so the operator learns the value was ignored.
//!
//! Worker-count knobs (`VSNOOP_ENGINE_WORKERS`) additionally accept the
//! literal `auto`, resolving to the host's available parallelism via
//! [`env_worker_count`].

use std::collections::HashSet;
use std::sync::{Mutex, OnceLock};

/// Reads the environment knob `name` as a positive integer.
///
/// Returns `None` when the variable is unset, *or* when it is set to a
/// malformed value (non-integer, zero, or out of range) — in which case a
/// one-line warning naming the knob and the rejected value is printed to
/// stderr, once per knob per process. Callers treat `None` as "use the
/// default", exactly as before.
pub fn env_positive_usize(name: &str) -> Option<usize> {
    parse_positive(name, &std::env::var(name).ok()?)
}

/// The parsing half of [`env_positive_usize`], split out so unit tests
/// can exercise malformed values without mutating the process
/// environment. `raw` is the knob's value; `name` is used only in the
/// warning.
pub fn parse_positive(name: &str, raw: &str) -> Option<usize> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        Ok(_) => {
            warn_malformed(name, raw, "must be a positive integer (>= 1)");
            None
        }
        Err(_) => {
            warn_malformed(name, raw, "is not an unsigned integer");
            None
        }
    }
}

/// [`env_positive_usize`] for `u64`-valued knobs (millisecond periods
/// like `VSNOOP_HEARTBEAT_MS`): same warn-once fall-back-to-default
/// semantics, without the platform-width cap.
pub fn env_positive_u64(name: &str) -> Option<u64> {
    parse_positive_u64(name, &std::env::var(name).ok()?)
}

/// The parsing half of [`env_positive_u64`], split out so unit tests
/// can exercise malformed values without mutating the process
/// environment.
pub fn parse_positive_u64(name: &str, raw: &str) -> Option<u64> {
    match raw.trim().parse::<u64>() {
        Ok(n) if n > 0 => Some(n),
        Ok(_) => {
            warn_malformed(name, raw, "must be a positive integer (>= 1)");
            None
        }
        Err(_) => {
            warn_malformed(name, raw, "is not an unsigned integer");
            None
        }
    }
}

/// The worker count "auto" resolves to: the host's available
/// parallelism, floored at 1 when it cannot be determined (restricted
/// sandboxes).
pub fn auto_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Reads the environment knob `name` as a worker count: the literal
/// `auto` (case-insensitive) resolves to [`auto_workers`], anything
/// else parses as a positive integer via [`env_positive_usize`]
/// semantics (malformed values warn once and fall back to `None`).
pub fn env_worker_count(name: &str) -> Option<usize> {
    parse_worker_count(name, &std::env::var(name).ok()?)
}

/// The parsing half of [`env_worker_count`], split out so unit tests
/// can exercise values without mutating the process environment.
pub fn parse_worker_count(name: &str, raw: &str) -> Option<usize> {
    if raw.trim().eq_ignore_ascii_case("auto") {
        return Some(auto_workers());
    }
    parse_positive(name, raw)
}

/// Prints the ignored-knob warning, once per knob name per process.
fn warn_malformed(name: &str, raw: &str, why: &str) {
    if note_first_warning(name) {
        eprintln!("warning: ignoring {name}={raw:?}: {why}; using the default");
    }
}

/// Records that `name` warned; returns `true` only the first time, which
/// is what makes the stderr warning once-per-knob. Split from the
/// printing so the latch itself is unit-testable.
fn note_first_warning(name: &str) -> bool {
    static WARNED: OnceLock<Mutex<HashSet<String>>> = OnceLock::new();
    let mut warned = WARNED
        .get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    warned.insert(name.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_formed_values_parse() {
        assert_eq!(parse_positive("VSNOOP_TEST_OK", "8"), Some(8));
        assert_eq!(parse_positive("VSNOOP_TEST_OK", " 16 "), Some(16));
        assert_eq!(parse_positive("VSNOOP_TEST_OK", "1"), Some(1));
    }

    #[test]
    fn malformed_values_fall_back_to_default() {
        // Each rejected shape returns None (caller keeps its default).
        assert_eq!(parse_positive("VSNOOP_TEST_BAD", "abc"), None);
        assert_eq!(parse_positive("VSNOOP_TEST_BAD", "0"), None);
        assert_eq!(parse_positive("VSNOOP_TEST_BAD", "-3"), None);
        assert_eq!(parse_positive("VSNOOP_TEST_BAD", "4.5"), None);
        assert_eq!(parse_positive("VSNOOP_TEST_BAD", ""), None);
    }

    #[test]
    fn u64_variant_mirrors_usize_semantics() {
        assert_eq!(parse_positive_u64("VSNOOP_TEST_OK64", "1000"), Some(1000));
        assert_eq!(parse_positive_u64("VSNOOP_TEST_OK64", " 250 "), Some(250));
        assert_eq!(parse_positive_u64("VSNOOP_TEST_BAD64", "0"), None);
        assert_eq!(parse_positive_u64("VSNOOP_TEST_BAD64", "abc"), None);
        assert_eq!(parse_positive_u64("VSNOOP_TEST_BAD64", "-1"), None);
        assert_eq!(env_positive_u64("VSNOOP_TEST_DEFINITELY_UNSET"), None);
    }

    #[test]
    fn warning_latch_fires_once_per_knob() {
        assert!(note_first_warning("VSNOOP_TEST_LATCH_A"));
        assert!(!note_first_warning("VSNOOP_TEST_LATCH_A"));
        assert!(note_first_warning("VSNOOP_TEST_LATCH_B"));
        assert!(!note_first_warning("VSNOOP_TEST_LATCH_B"));
    }

    #[test]
    fn unset_knob_is_silent_none() {
        assert_eq!(env_positive_usize("VSNOOP_TEST_DEFINITELY_UNSET"), None);
        assert_eq!(env_worker_count("VSNOOP_TEST_DEFINITELY_UNSET"), None);
    }

    #[test]
    fn worker_count_auto_resolves_to_available_parallelism() {
        let auto = auto_workers();
        assert!(auto >= 1);
        assert_eq!(
            parse_worker_count("VSNOOP_TEST_WORKERS", "auto"),
            Some(auto)
        );
        assert_eq!(
            parse_worker_count("VSNOOP_TEST_WORKERS", " AUTO "),
            Some(auto)
        );
        assert_eq!(
            parse_worker_count("VSNOOP_TEST_WORKERS", "Auto"),
            Some(auto)
        );
    }

    #[test]
    fn worker_count_numbers_and_rejects_behave_like_positive_ints() {
        assert_eq!(parse_worker_count("VSNOOP_TEST_WORKERS_N", "4"), Some(4));
        assert_eq!(parse_worker_count("VSNOOP_TEST_WORKERS_N", "0"), None);
        assert_eq!(parse_worker_count("VSNOOP_TEST_WORKERS_N", "autoo"), None);
    }
}

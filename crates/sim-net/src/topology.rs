//! 2D mesh topology with dimension-ordered (XY) routing.
//!
//! The paper's simulated system uses a 4x4 2D mesh with 16-byte links
//! (Table II). Snoop traffic cost is dominated by how many links each
//! message crosses, so the topology's job is hop accounting: XY routing
//! makes the hop count between two nodes their Manhattan distance.

use std::fmt;

/// A node (router) of the mesh; node *i* hosts core *i* in row-major order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(u16);

impl NodeId {
    /// Creates a node identifier from a dense index.
    pub const fn new(index: u16) -> Self {
        NodeId(index)
    }

    /// Returns the dense index of this node.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl From<u16> for NodeId {
    fn from(i: u16) -> Self {
        NodeId(i)
    }
}

/// A `width` x `height` 2D mesh.
///
/// # Examples
///
/// ```
/// use sim_net::{Mesh, NodeId};
///
/// let mesh = Mesh::new(4, 4);
/// assert_eq!(mesh.nodes().count(), 16);
/// // Opposite corners of a 4x4 mesh are 6 hops apart under XY routing.
/// assert_eq!(mesh.hops(NodeId::new(0), NodeId::new(15)), 6);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Mesh {
    width: usize,
    height: usize,
}

impl Mesh {
    /// Creates a mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be positive");
        Mesh { width, height }
    }

    /// Returns the mesh width (columns).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Returns the mesh height (rows).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Returns the number of nodes.
    pub fn len(&self) -> usize {
        self.width * self.height
    }

    /// Returns `true` for a degenerate 0-node mesh (never constructible).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates over all node identifiers in row-major order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.len() as u16).map(NodeId::new)
    }

    /// Returns the `(x, y)` coordinates of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn coords(&self, node: NodeId) -> (usize, usize) {
        let i = node.index();
        assert!(
            i < self.len(),
            "node {node} out of range for {}x{} mesh",
            self.width,
            self.height
        );
        (i % self.width, i / self.width)
    }

    /// Returns the node at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    pub fn node_at(&self, x: usize, y: usize) -> NodeId {
        assert!(x < self.width && y < self.height, "({x},{y}) outside mesh");
        NodeId::new((y * self.width + x) as u16)
    }

    /// Number of links a message from `a` to `b` traverses under XY
    /// routing (the Manhattan distance).
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as u32
    }

    /// Sum of hop counts from `src` to each destination (multicasts are
    /// modelled as repeated unicasts, as in the GEMS/Garnet baseline).
    pub fn sum_hops(&self, src: NodeId, dests: impl IntoIterator<Item = NodeId>) -> u64 {
        dests
            .into_iter()
            .map(|d| u64::from(self.hops(src, d)))
            .sum()
    }

    /// Returns the default memory-controller ports: the four corner nodes
    /// (or fewer for degenerate meshes).
    pub fn corner_ports(&self) -> Vec<NodeId> {
        let mut v = vec![
            self.node_at(0, 0),
            self.node_at(self.width - 1, 0),
            self.node_at(0, self.height - 1),
            self.node_at(self.width - 1, self.height - 1),
        ];
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Returns the memory port (from `ports`) closest to `node`.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is empty.
    pub fn nearest_port(&self, node: NodeId, ports: &[NodeId]) -> NodeId {
        assert!(!ports.is_empty(), "need at least one memory port");
        *ports
            .iter()
            .min_by_key(|&&p| (self.hops(node, p), p.index()))
            .expect("ports non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_roundtrip() {
        let m = Mesh::new(4, 4);
        for n in m.nodes() {
            let (x, y) = m.coords(n);
            assert_eq!(m.node_at(x, y), n);
        }
    }

    #[test]
    fn hops_are_manhattan() {
        let m = Mesh::new(4, 4);
        assert_eq!(m.hops(m.node_at(0, 0), m.node_at(0, 0)), 0);
        assert_eq!(m.hops(m.node_at(0, 0), m.node_at(3, 0)), 3);
        assert_eq!(m.hops(m.node_at(1, 1), m.node_at(2, 3)), 3);
        // symmetric
        assert_eq!(
            m.hops(m.node_at(0, 2), m.node_at(3, 1)),
            m.hops(m.node_at(3, 1), m.node_at(0, 2))
        );
    }

    #[test]
    fn sum_hops_broadcast_4x4() {
        let m = Mesh::new(4, 4);
        let src = m.node_at(0, 0);
        let total = m.sum_hops(src, m.nodes().filter(|&n| n != src));
        // Sum of Manhattan distances from corner (0,0) of 4x4:
        // sum over x,y of (x + y) = 4*(0+1+2+3)*2 = 48.
        assert_eq!(total, 48);
    }

    #[test]
    fn corner_ports_and_nearest() {
        let m = Mesh::new(4, 4);
        let ports = m.corner_ports();
        assert_eq!(ports.len(), 4);
        assert_eq!(m.nearest_port(m.node_at(1, 1), &ports), m.node_at(0, 0));
        assert_eq!(m.nearest_port(m.node_at(2, 3), &ports), m.node_at(3, 3));
    }

    #[test]
    fn single_row_mesh() {
        let m = Mesh::new(8, 1);
        assert_eq!(m.hops(NodeId::new(0), NodeId::new(7)), 7);
        assert_eq!(m.corner_ports().len(), 2);
    }

    #[test]
    fn one_by_one_mesh() {
        let m = Mesh::new(1, 1);
        assert_eq!(m.len(), 1);
        assert_eq!(m.corner_ports().len(), 1);
        assert_eq!(m.hops(NodeId::new(0), NodeId::new(0)), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_rejected() {
        let _ = Mesh::new(0, 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_node_rejected() {
        let m = Mesh::new(2, 2);
        let _ = m.coords(NodeId::new(4));
    }
}

//! The campaign supervisor: bounded worker pool, panic isolation,
//! watchdog deadlines, retry/backoff, checkpointing, reproducers.
//!
//! Each job attempt runs on its own thread under `catch_unwind`, so a
//! panic in job 17 is converted into a typed [`JobError`] instead of
//! tearing down the whole multi-minute campaign. A watchdog cancels
//! attempts past their deadline through the job's [`CancelToken`]
//! (simulation loops poll it at round boundaries); an attempt that does
//! not respond within the grace period is *abandoned* — its thread is
//! left to die with the process and its worker slot is reclaimed, so one
//! truly hung job cannot stall the campaign. Failures are retried with
//! exponential backoff up to a bounded budget; terminal results are
//! journaled immediately and failures emit crash-reproducer files.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, Once};
use std::time::{Duration, Instant};

use super::cancel::{self, CancelToken, Cancelled};
use super::job::{Job, JobCtx, JobError, JobRecord};
use super::journal::{Journal, JournalEntry};
use super::json::Value;
use super::repro::CrashReproducer;

/// Supervision parameters for one campaign run.
#[derive(Clone, Debug)]
pub struct RunnerConfig {
    /// Worker threads (concurrent jobs). 1 reproduces the classic
    /// serial campaign exactly.
    pub workers: usize,
    /// Per-job deadline; `None` disables the watchdog.
    pub timeout: Option<Duration>,
    /// How long after cancellation to wait for a job to unwind before
    /// abandoning its thread and reclaiming the worker slot.
    pub grace: Duration,
    /// Retry budget per job *after* the first attempt.
    pub retries: u32,
    /// First retry delay; doubles per subsequent retry.
    pub backoff_base: Duration,
    /// Checkpoint journal path; `None` keeps the campaign in memory.
    pub journal_path: Option<PathBuf>,
    /// Directory for crash-reproducer files; `None` disables them.
    pub repro_dir: Option<PathBuf>,
    /// Resume from an existing journal instead of starting fresh.
    pub resume: bool,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            workers: 1,
            timeout: None,
            grace: Duration::from_secs(2),
            retries: 0,
            backoff_base: Duration::from_millis(250),
            journal_path: None,
            repro_dir: None,
            resume: false,
        }
    }
}

/// The outcome of a supervised campaign.
#[derive(Debug)]
pub struct CampaignReport {
    /// One record per job, in campaign (definition) order.
    pub records: Vec<JobRecord>,
    /// Crash-reproducer files written this run.
    pub repro_paths: Vec<PathBuf>,
}

impl CampaignReport {
    /// Jobs that succeeded.
    pub fn succeeded(&self) -> usize {
        self.records.iter().filter(|r| r.succeeded()).count()
    }

    /// Jobs that succeeded or failed only after at least one retry.
    pub fn retried(&self) -> usize {
        self.records.iter().filter(|r| r.retried()).count()
    }

    /// Jobs that failed terminally.
    pub fn failed(&self) -> usize {
        self.records.len() - self.succeeded()
    }

    /// Whether every job succeeded.
    pub fn all_ok(&self) -> bool {
        self.failed() == 0
    }

    /// Journal entries for every job, in campaign order (the canonical
    /// merged journal).
    pub fn entries(&self) -> Vec<JournalEntry> {
        self.records.iter().map(JournalEntry::from_record).collect()
    }

    /// The merged campaign output: every job's canonical text in
    /// campaign order. Fault-free this is byte-identical to running the
    /// jobs serially and concatenating their outputs; failed jobs are
    /// rendered as a flagged placeholder block instead of silently
    /// producing an empty report (degraded mode).
    pub fn merged_output(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            match &r.outcome {
                Ok(text) => out.push_str(text),
                Err(e) => {
                    out.push_str(&format!(
                        "\n=== {} — FAILED ===\n{} attempt(s); last error: {e}\n\
                         replay in isolation: --repro <campaign-dir>/{}\n",
                        r.spec.name,
                        r.attempts,
                        CrashReproducer::file_name(&r.spec.name),
                    ));
                }
            }
        }
        out
    }

    /// Degraded-mode summary: per-job status plus totals.
    pub fn summary(&self) -> String {
        let name_w = self
            .records
            .iter()
            .map(|r| r.spec.name.len())
            .max()
            .unwrap_or(4)
            .max(4);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<name_w$}  {:<9}  {:>8}  note\n",
            "job", "status", "attempts"
        ));
        for r in &self.records {
            let (status, note) = match &r.outcome {
                Ok(_) if r.resumed => ("ok", "resumed from journal".to_string()),
                Ok(_) if r.retried() => ("ok", "succeeded after retries".to_string()),
                Ok(_) => ("ok", String::new()),
                Err(e) if r.resumed => ("FAILED", format!("(journaled) {e}")),
                Err(e) => ("FAILED", e.to_string()),
            };
            out.push_str(&format!(
                "{:<name_w$}  {:<9}  {:>8}  {}\n",
                r.spec.name, status, r.attempts, note
            ));
        }
        let rescued = self
            .records
            .iter()
            .filter(|r| r.succeeded() && r.retried())
            .count();
        out.push_str(&format!(
            "{} job(s): {} succeeded ({} after retries), {} failed\n",
            self.records.len(),
            self.succeeded(),
            rescued,
            self.failed(),
        ));
        if !self.all_ok() {
            out.push_str("campaign completed in DEGRADED mode — see reproducer files\n");
        }
        out
    }
}

/// Per-job scheduling state inside the supervisor loop.
enum Slot {
    /// Waiting (or backing off) until `ready_at` for attempt `attempt`.
    Pending { ready_at: Instant, attempt: u32 },
    /// Attempt `attempt` is running on a worker thread.
    Running {
        attempt: u32,
        token: CancelToken,
        deadline: Option<Instant>,
        cancelled_at: Option<Instant>,
        started: Instant,
    },
    /// Terminal.
    Done,
}

/// Milliseconds elapsed since `t`, saturated into `u64`.
fn elapsed_ms(t: Instant) -> u64 {
    u64::try_from(t.elapsed().as_millis()).unwrap_or(u64::MAX)
}

/// Telemetry heartbeat period: `VSNOOP_HEARTBEAT_MS`, default 1000
/// (shared warn-once knob parsing: malformed values warn on stderr and
/// keep the default).
fn heartbeat_interval() -> Duration {
    Duration::from_millis(crate::knob::env_positive_u64("VSNOOP_HEARTBEAT_MS").unwrap_or(1000))
}

/// Campaign progress counters shared with the heartbeat thread. The
/// dispatch loop is the only writer; the heartbeat tick only reads, so
/// plain relaxed atomics (and one small mutex for the name list) are
/// enough.
struct HeartbeatState {
    jobs_total: u64,
    done: AtomicU64,
    running: AtomicU64,
    retries: AtomicU64,
    running_names: Mutex<Vec<String>>,
}

impl HeartbeatState {
    /// Emits one `heartbeat` telemetry record; `last`/`rounds` are the
    /// tick's own rate-window state, advanced on every call.
    fn emit(&self, last: &mut Instant, rounds: &mut u64) {
        let rounds_now = crate::obs::rounds_counted();
        let secs = last.elapsed().as_secs_f64();
        let rounds_per_sec = if secs > 0.0 {
            ((rounds_now - *rounds) as f64 / secs) as u64
        } else {
            0
        };
        let running_jobs: Vec<Value> = self
            .running_names
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|n| Value::Str(n.clone()))
            .collect();
        let (wh, wm, we) = crate::experiments::warm_counters();
        crate::obs::telemetry::emit(
            "heartbeat",
            vec![
                ("jobs_total", Value::UInt(self.jobs_total)),
                ("jobs_done", Value::UInt(self.done.load(Ordering::Relaxed))),
                (
                    "jobs_running",
                    Value::UInt(self.running.load(Ordering::Relaxed)),
                ),
                ("running", Value::Arr(running_jobs)),
                ("retries", Value::UInt(self.retries.load(Ordering::Relaxed))),
                ("rounds_per_sec", Value::UInt(rounds_per_sec)),
                ("rss_bytes", Value::UInt(crate::obs::current_rss_bytes())),
                ("warm_hits", Value::UInt(wh)),
                ("warm_misses", Value::UInt(wm)),
                ("warm_evictions", Value::UInt(we)),
            ],
        );
        *last = Instant::now();
        *rounds = rounds_now;
    }

    fn add_running(&self, name: &str) {
        self.running.fetch_add(1, Ordering::Relaxed);
        self.running_names
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(name.to_string());
    }

    fn remove_running(&self, name: &str) {
        self.running.fetch_sub(1, Ordering::Relaxed);
        let mut names = self.running_names.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(pos) = names.iter().position(|n| n == name) {
            names.remove(pos);
        }
    }
}

/// Emits one structured job-lifecycle telemetry record (no-op when
/// tracing is off — `emit` returns before allocating).
fn emit_job_event(event: &str, job: &str, attempt: u32, extra: Vec<(&'static str, Value)>) {
    if !crate::obs::telemetry_active() {
        return;
    }
    let mut fields = vec![
        ("job", Value::Str(job.to_string())),
        ("attempt", Value::UInt(u64::from(attempt))),
    ];
    fields.extend(extra);
    crate::obs::telemetry::emit(event, fields);
}

/// Extracts a readable message from a panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Installs (once, process-wide) a panic hook that stays quiet for
/// panics on supervised job threads — the supervisor reports those
/// itself — and forwards everything else to the previous hook.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !cancel::in_job() {
                prev(info);
            }
        }));
    });
}

/// Runs `jobs` under supervision and returns the per-job records.
///
/// `progress` receives human-readable status lines (start, retry,
/// timeout, completion); route it to stderr to keep stdout reserved for
/// the merged campaign output.
///
/// # Errors
///
/// Returns an error for an invalid configuration (zero workers,
/// duplicate job names) or for journal/reproducer IO failures. Job
/// failures are *not* errors — they are recorded in the report
/// (degraded mode).
pub fn run_campaign(
    jobs: &[Job],
    cfg: &RunnerConfig,
    progress: &mut dyn FnMut(&str),
) -> std::io::Result<CampaignReport> {
    use std::io::{Error, ErrorKind};

    if cfg.workers == 0 {
        return Err(Error::new(ErrorKind::InvalidInput, "workers must be >= 1"));
    }
    for (i, a) in jobs.iter().enumerate() {
        for b in &jobs[..i] {
            if a.spec.name == b.spec.name {
                return Err(Error::new(
                    ErrorKind::InvalidInput,
                    format!("duplicate job name: {}", a.spec.name),
                ));
            }
        }
    }
    install_quiet_hook();

    // Resume: restore terminal results recorded by a previous run. The
    // prior journal is loaded *before* it is reopened for appending,
    // because `Journal::open` repairs a torn trailing line (truncating
    // it) and the warning about that lost checkpoint should still reach
    // the operator.
    let mut records: Vec<Option<JobRecord>> = (0..jobs.len()).map(|_| None).collect();
    let mut slots: Vec<Slot> = Vec::with_capacity(jobs.len());
    let now = Instant::now();
    let mut resumed = 0usize;
    let prior = match (&cfg.journal_path, cfg.resume) {
        (Some(path), true) => {
            // A crash mid-append leaves a truncated trailing line; the
            // loader skips it (the job simply re-runs) but the operator
            // should hear about the lost checkpoint.
            let (prior, warnings) = Journal::load_with_warnings(path)?;
            for w in &warnings {
                progress(&format!("resume: {w}"));
            }
            prior
        }
        _ => Vec::new(),
    };
    let mut journal = match &cfg.journal_path {
        Some(path) => Some(Journal::open(path, !cfg.resume)?),
        None => None,
    };
    for (idx, job) in jobs.iter().enumerate() {
        let hit = prior
            .iter()
            .find(|e| e.index == idx && e.job == job.spec.name && e.seed == job.spec.seed);
        match hit {
            Some(e) => {
                records[idx] = Some(JobRecord {
                    index: idx,
                    spec: job.spec.clone(),
                    attempts: e.attempts,
                    outcome: e.outcome.clone(),
                    resumed: true,
                    wall_ms: e.wall_ms,
                    attempt_ms: e.attempt_ms,
                });
                slots.push(Slot::Done);
                resumed += 1;
            }
            None => slots.push(Slot::Pending {
                ready_at: now,
                attempt: 1,
            }),
        }
    }
    if resumed > 0 {
        progress(&format!(
            "resume: {resumed}/{} job(s) restored from {}",
            jobs.len(),
            cfg.journal_path
                .as_deref()
                .map(|p| p.display().to_string())
                .unwrap_or_default()
        ));
    }

    let mut repro_paths = Vec::new();
    let (tx, rx) = mpsc::channel::<(usize, u32, Result<String, JobError>)>();
    let limit_ms = cfg
        .timeout
        .map(|t| u64::try_from(t.as_millis()).unwrap_or(u64::MAX));

    // Wall-clock bookkeeping for journal records and telemetry: when
    // each job was first dispatched (spanning retries and backoff).
    let mut first_started: Vec<Option<Instant>> = vec![None; jobs.len()];

    // FIFO of job indices ready to start keeps campaign order; backoff
    // re-entries are appended when their delay elapses.
    let mut done = slots.iter().filter(|s| matches!(s, Slot::Done)).count();
    let mut running = 0usize;

    // Telemetry heartbeat: a side thread emits progress/rate/RSS
    // records every interval, reading the shared counters the dispatch
    // loop keeps current. The thread is joined (bounded) when this
    // function returns — detaching it would leak one thread per
    // campaign in embedders and let a late tick write into a trace
    // directory the embedder is already tearing down.
    let hb_state = Arc::new(HeartbeatState {
        jobs_total: jobs.len() as u64,
        done: AtomicU64::new(done as u64),
        running: AtomicU64::new(0),
        retries: AtomicU64::new(0),
        running_names: Mutex::new(Vec::new()),
    });
    let _heartbeat = if crate::obs::telemetry_active() {
        let state = Arc::clone(&hb_state);
        let mut last = Instant::now();
        let mut rounds = crate::obs::rounds_counted();
        Some(crate::obs::Heartbeat::spawn(
            "campaign",
            heartbeat_interval(),
            move || {
                state.emit(&mut last, &mut rounds);
                crate::obs::metrics::write_prom_if_traced();
            },
        ))
    } else {
        None
    };

    // The terminal-result handler, shared by the normal path and the
    // watchdog's abandonment path.
    macro_rules! finish {
        ($idx:expr, $attempt:expr, $outcome:expr) => {{
            let idx: usize = $idx;
            let attempt: u32 = $attempt;
            let outcome: Result<String, JobError> = $outcome;
            let job = &jobs[idx];
            // The slot is still `Running` here on both the normal and
            // the abandonment path; its start time dates the attempt.
            let attempt_ms = match &slots[idx] {
                Slot::Running { started, .. } => Some(elapsed_ms(*started)),
                _ => None,
            };
            let wall_ms = first_started[idx].map(elapsed_ms);
            match outcome {
                Ok(output) => {
                    progress(&format!("job {}: ok (attempt {attempt})", job.spec.name));
                    emit_job_event(
                        "job_ok",
                        &job.spec.name,
                        attempt,
                        vec![
                            ("wall_ms", wall_ms.map_or(Value::Null, Value::UInt)),
                            ("attempt_ms", attempt_ms.map_or(Value::Null, Value::UInt)),
                        ],
                    );
                    let rec = JobRecord {
                        index: idx,
                        spec: job.spec.clone(),
                        attempts: attempt,
                        outcome: Ok(output),
                        resumed: false,
                        wall_ms,
                        attempt_ms,
                    };
                    if let Some(j) = journal.as_mut() {
                        j.append(&JournalEntry::from_record(&rec))?;
                    }
                    records[idx] = Some(rec);
                    slots[idx] = Slot::Done;
                    done += 1;
                    hb_state.done.store(done as u64, Ordering::Relaxed);
                }
                Err(err) => {
                    if attempt <= cfg.retries {
                        hb_state.retries.fetch_add(1, Ordering::Relaxed);
                        let shift = (attempt - 1).min(16);
                        let delay = cfg.backoff_base.saturating_mul(1u32 << shift);
                        progress(&format!(
                            "job {}: {} (attempt {attempt}); retrying in {:?}",
                            job.spec.name, err, delay
                        ));
                        emit_job_event(
                            "job_retry",
                            &job.spec.name,
                            attempt,
                            vec![
                                ("error_kind", Value::Str(err.kind().to_string())),
                                ("error", Value::Str(err.to_string())),
                                ("attempt_ms", attempt_ms.map_or(Value::Null, Value::UInt)),
                            ],
                        );
                        slots[idx] = Slot::Pending {
                            ready_at: Instant::now() + delay,
                            attempt: attempt + 1,
                        };
                    } else {
                        progress(&format!(
                            "job {}: {} (attempt {attempt}); retry budget exhausted",
                            job.spec.name, err
                        ));
                        emit_job_event(
                            "job_failed",
                            &job.spec.name,
                            attempt,
                            vec![
                                ("error_kind", Value::Str(err.kind().to_string())),
                                ("error", Value::Str(err.to_string())),
                                ("wall_ms", wall_ms.map_or(Value::Null, Value::UInt)),
                                ("attempt_ms", attempt_ms.map_or(Value::Null, Value::UInt)),
                            ],
                        );
                        let rec = JobRecord {
                            index: idx,
                            spec: job.spec.clone(),
                            attempts: attempt,
                            outcome: Err(err.clone()),
                            resumed: false,
                            wall_ms,
                            attempt_ms,
                        };
                        if let Some(j) = journal.as_mut() {
                            j.append(&JournalEntry::from_record(&rec))?;
                        }
                        if let Some(dir) = &cfg.repro_dir {
                            let repro = CrashReproducer::new(&job.spec, attempt, &err);
                            let path = repro.write_to(dir)?;
                            progress(&format!(
                                "job {}: crash reproducer written to {}",
                                job.spec.name,
                                path.display()
                            ));
                            repro_paths.push(path);
                        }
                        records[idx] = Some(rec);
                        slots[idx] = Slot::Done;
                        done += 1;
                        hb_state.done.store(done as u64, Ordering::Relaxed);
                    }
                }
            }
        }};
    }

    while done < jobs.len() {
        // Dispatch ready jobs onto free workers, in campaign order.
        if running < cfg.workers {
            let now = Instant::now();
            let mut ready: VecDeque<usize> = (0..jobs.len())
                .filter(
                    |&i| matches!(&slots[i], Slot::Pending { ready_at, .. } if *ready_at <= now),
                )
                .collect();
            while running < cfg.workers {
                let Some(idx) = ready.pop_front() else { break };
                let Slot::Pending { attempt, .. } = slots[idx] else {
                    continue;
                };
                let token = CancelToken::new();
                let started = Instant::now();
                let deadline = cfg.timeout.map(|t| started + t);
                first_started[idx].get_or_insert(started);
                progress(&format!(
                    "job {}: start (attempt {attempt}{})",
                    jobs[idx].spec.name,
                    if attempt > 1 { ", retry" } else { "" }
                ));
                emit_job_event("job_start", &jobs[idx].spec.name, attempt, Vec::new());
                let run = jobs[idx].run.clone();
                let job_name = jobs[idx].spec.name.clone();
                let thread_token = token.clone();
                let thread_tx = tx.clone();
                std::thread::Builder::new()
                    .name(format!("job-{}", jobs[idx].spec.name))
                    .spawn(move || {
                        let ctx = JobCtx {
                            token: thread_token.clone(),
                            attempt,
                        };
                        // The job runs inside an observability scope so
                        // its flight events dump into a per-job file;
                        // the dump happens here, on the job's own
                        // thread, because the ring is thread-local and
                        // each attempt gets a fresh thread.
                        let result = cancel::with_current(thread_token, || {
                            crate::obs::with_scope(&job_name, || {
                                let r = catch_unwind(AssertUnwindSafe(|| (run)(&ctx)));
                                if let Err(payload) = &r {
                                    if crate::obs::enabled() {
                                        let reason =
                                            if payload.downcast_ref::<Cancelled>().is_some() {
                                                "timeout"
                                            } else {
                                                "panic"
                                            };
                                        crate::obs::dump_flight(reason);
                                    }
                                }
                                r
                            })
                        });
                        let outcome = match result {
                            Ok(Ok(output)) => Ok(output),
                            Ok(Err(message)) => Err(JobError::Failed { message }),
                            Err(payload) => {
                                if payload.downcast_ref::<Cancelled>().is_some() {
                                    Err(JobError::TimedOut {
                                        limit_ms: limit_ms.unwrap_or(0),
                                    })
                                } else {
                                    Err(JobError::Panicked {
                                        message: panic_message(payload.as_ref()),
                                    })
                                }
                            }
                        };
                        // The supervisor may have abandoned us; a closed
                        // channel or a stale attempt is simply ignored.
                        let _ = thread_tx.send((idx, attempt, outcome));
                    })
                    .map_err(|e| Error::other(format!("spawn failed: {e}")))?;
                slots[idx] = Slot::Running {
                    attempt,
                    token,
                    deadline,
                    cancelled_at: None,
                    started,
                };
                running += 1;
                hb_state.add_running(&jobs[idx].spec.name);
            }
        }

        // Collect one result (or time out quickly to run the watchdog).
        match rx.recv_timeout(Duration::from_millis(20)) {
            Ok((idx, attempt, outcome)) => {
                let current = matches!(
                    &slots[idx],
                    Slot::Running { attempt: a, .. } if *a == attempt
                );
                if current {
                    running -= 1;
                    hb_state.remove_running(&jobs[idx].spec.name);
                    finish!(idx, attempt, outcome);
                }
                // Otherwise: a late result from an abandoned attempt —
                // its outcome was already recorded; drop it.
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => unreachable!("tx kept alive above"),
        }

        // Watchdog: cancel overdue attempts; abandon unresponsive ones.
        let now = Instant::now();
        for idx in 0..jobs.len() {
            let Slot::Running {
                attempt,
                token,
                deadline,
                cancelled_at,
                ..
            } = &mut slots[idx]
            else {
                continue;
            };
            let attempt = *attempt;
            if let Some(dl) = *deadline {
                if cancelled_at.is_none() && now >= dl {
                    progress(&format!(
                        "job {}: deadline exceeded; cancelling (attempt {attempt})",
                        jobs[idx].spec.name
                    ));
                    token.cancel();
                    *cancelled_at = Some(now);
                }
            }
            if let Some(t) = *cancelled_at {
                if now >= t + cfg.grace {
                    // The job is not polling its token: abandon the
                    // thread (it dies with the process) and reclaim the
                    // worker slot.
                    progress(&format!(
                        "job {}: unresponsive after cancellation; abandoning thread \
                         (attempt {attempt})",
                        jobs[idx].spec.name
                    ));
                    emit_job_event("job_abandoned", &jobs[idx].spec.name, attempt, Vec::new());
                    running -= 1;
                    hb_state.remove_running(&jobs[idx].spec.name);
                    finish!(
                        idx,
                        attempt,
                        Err(JobError::TimedOut {
                            limit_ms: limit_ms.unwrap_or(0),
                        })
                    );
                }
            }
        }
    }

    let records: Vec<JobRecord> = records.into_iter().map(Option::unwrap).collect();
    Ok(CampaignReport {
        records,
        repro_paths,
    })
}

//! Ablation: restricted migration domains (the paper's Section VIII
//! future work: "the hypervisors must limit the range of VM migration, as
//! long as such restriction does not hurt the overall system throughput").
//!
//! Compares pinned / restricted / full scheduling in the overcommitted
//! configuration: makespan (throughput) and relocation behaviour. The
//! restricted policy bounds each VM's snoop domain to its core subset
//! while recovering most of full migration's utilization.

use sim_vm::{run_scheduler, SchedPolicy, SchedulerConfig};
use vsnoop_bench::{f1, heading, opt, TextTable};
use workloads::{parsec_apps, sched_vms};

fn main() {
    vsnoop_bench::init_obs();
    heading(
        "Ablation: restricted migration domains (overcommitted, 4 VMs x 4 vCPUs, 8 cores)",
        "Makespan normalized to pinned (lower is better). `restricted(4)`\n\
         confines each VM to a 4-core subset: its snoop domain can never\n\
         exceed 4 cores, yet most of full migration's throughput returns.",
    );
    let tick_ms = 0.1;
    let mut t = TextTable::new([
        "workload",
        "pinned %",
        "restricted(4) %",
        "full %",
        "reloc period restricted ms",
        "reloc period full ms",
    ]);
    let mut sums = [0.0f64; 2];
    let mut n = 0usize;
    for app in parsec_apps() {
        let mk = |policy| {
            let cfg = SchedulerConfig {
                n_cores: 8,
                tick_ms,
                policy,
                seed: 7,
                ..Default::default()
            };
            run_scheduler(&cfg, &sched_vms(app, 4, 4, tick_ms))
        };
        let pinned = mk(SchedPolicy::Pinned);
        let restricted = mk(SchedPolicy::Restricted { domain_cores: 4 });
        let full = mk(SchedPolicy::FullMigration);
        let base = pinned.makespan_ms().max(1e-9);
        let r_pct = 100.0 * restricted.makespan_ms() / base;
        let f_pct = 100.0 * full.makespan_ms() / base;
        sums[0] += r_pct;
        sums[1] += f_pct;
        n += 1;
        t.row([
            app.name.to_string(),
            "100.0".to_string(),
            f1(r_pct),
            f1(f_pct),
            opt(restricted.avg_relocation_period_ms),
            opt(full.avg_relocation_period_ms),
        ]);
    }
    t.row([
        "Average".to_string(),
        "100.0".to_string(),
        f1(sums[0] / n as f64),
        f1(sums[1] / n as f64),
        String::new(),
        String::new(),
    ]);
    t.maybe_dump_csv("ablation_sched").expect("csv dump");
    println!("{t}");
}

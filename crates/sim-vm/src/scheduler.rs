//! A credit-based hypervisor scheduler simulation (Section II-B2 / III-B).
//!
//! Xen's default credit scheduler is a proportional-share scheduler with
//! global load balancing: each vCPU receives credits every accounting
//! period, runs in 30 ms slices, and idle cores *steal* waiting runnable
//! vCPUs from busy cores. The paper measures two policies on real hardware
//! (Fig. 3, Table I):
//!
//! * **no migration** — vCPUs pinned one-to-one (guests) to physical cores;
//! * **full migration** — unrestricted stealing, maximizing utilization.
//!
//! This module reproduces those aggregate behaviours with a discrete-time
//! simulation: vCPUs alternate busy bursts and blocked phases (modelling
//! dynamic thread-level parallelism and I/O), a floating dom0 vCPU injects
//! the perturbation that makes wake-up placement migrate vCPUs even in
//! undercommitted systems, and every migration costs a configurable
//! cache-warmth penalty.

use std::collections::BTreeMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::ids::{VcpuId, VmId};
use crate::vm::VmSpec;

/// Scheduling policy for guest vCPUs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SchedPolicy {
    /// Guests pinned one-to-one (or evenly, when overcommitted) to cores;
    /// no stealing of guest vCPUs. The paper's *no migration*.
    Pinned,
    /// Unrestricted load balancing. The paper's *full migration*.
    FullMigration,
    /// The paper's proposed middle ground (Section III-B / VIII future
    /// work): each VM may migrate freely, but only within a fixed subset
    /// of `domain_cores` physical cores. This bounds the VM's snoop
    /// domain while still balancing load inside it.
    Restricted {
        /// Size of each VM's allowed core subset.
        domain_cores: usize,
    },
}

/// Stochastic execution behaviour of one VM's vCPUs.
///
/// All times are in scheduler ticks (see [`SchedulerConfig::tick_ms`]).
///
/// Besides per-vCPU busy/blocked bursts, a VM alternates between a
/// *parallel* phase (all vCPUs may run) and a *serial* phase (only vCPU 0
/// may run — an Amdahl section). Serial phases are what make unrestricted
/// migration win in overcommitted systems: the idle sibling cores are
/// stolen by other VMs' runnable vCPUs, while pinning strands them.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadBehavior {
    /// Mean length of a busy burst, in ticks (geometric distribution).
    pub mean_busy_ticks: f64,
    /// Mean length of a blocked phase, in ticks (geometric distribution).
    pub mean_blocked_ticks: f64,
    /// Mean length of a VM-wide parallel phase, in ticks.
    pub mean_parallel_ticks: f64,
    /// Mean length of a VM-wide serial phase, in ticks (0 disables serial
    /// phases entirely).
    pub mean_serial_ticks: f64,
    /// Total CPU work each vCPU must complete, in ticks.
    pub work_ticks: f64,
    /// Extra work added to a vCPU each time it migrates to a different
    /// core, modelling the cold-cache penalty, in ticks.
    pub migration_penalty_ticks: f64,
}

impl WorkloadBehavior {
    /// A fully CPU-bound behaviour: never blocks, no serial sections.
    pub fn cpu_bound(work_ticks: f64, migration_penalty_ticks: f64) -> Self {
        WorkloadBehavior {
            mean_busy_ticks: f64::INFINITY,
            mean_blocked_ticks: 1.0,
            mean_parallel_ticks: f64::INFINITY,
            mean_serial_ticks: 0.0,
            work_ticks,
            migration_penalty_ticks,
        }
    }
}

/// One VM entered into a scheduling run.
#[derive(Clone, Debug)]
pub struct VmWorkload {
    /// The VM and its vCPU count.
    pub spec: VmSpec,
    /// Its execution behaviour.
    pub behavior: WorkloadBehavior,
    /// Background VMs (dom0) never finish and are excluded from makespan
    /// and relocation-period statistics; they are never pinned.
    pub background: bool,
}

/// Configuration of a scheduling run.
#[derive(Clone, Copy, Debug)]
pub struct SchedulerConfig {
    /// Number of physical cores.
    pub n_cores: usize,
    /// Real-time length of one tick in milliseconds (default 0.1 ms).
    pub tick_ms: f64,
    /// Credit accounting period in ticks (Xen: 30 ms).
    pub credit_period_ticks: u64,
    /// Guest scheduling policy.
    pub policy: SchedPolicy,
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
    /// Hard tick limit, to bound runaway configurations.
    pub max_ticks: u64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            n_cores: 8,
            tick_ms: 0.1,
            credit_period_ticks: 300,
            policy: SchedPolicy::FullMigration,
            seed: 0x5eed,
            max_ticks: 40_000_000,
        }
    }
}

/// Aggregate outcome of a scheduling run.
#[derive(Clone, Debug)]
pub struct SchedOutcome {
    /// Tick at which each foreground VM finished all its work.
    pub vm_finish_ticks: Vec<(VmId, u64)>,
    /// Tick at which the last foreground VM finished.
    pub makespan_ticks: u64,
    /// Number of guest vCPU migrations (runs on a core different from the
    /// previous run).
    pub migrations: u64,
    /// Average time between core changes per guest vCPU, in milliseconds
    /// (`None` if no migration happened). This is Table I's metric.
    pub avg_relocation_period_ms: Option<f64>,
    /// Fraction of core·ticks spent running a vCPU, before the makespan.
    pub core_utilization: f64,
    /// Tick length used, for converting back to milliseconds.
    pub tick_ms: f64,
}

impl SchedOutcome {
    /// Makespan in milliseconds.
    pub fn makespan_ms(&self) -> f64 {
        self.makespan_ticks as f64 * self.tick_ms
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Busy,
    Blocked,
}

struct VcpuState {
    id: VcpuId,
    behavior: WorkloadBehavior,
    background: bool,
    pinned_core: Option<usize>,
    /// Under `Restricted`, the half-open core range the vCPU may use.
    allowed: Option<(usize, usize)>,
    remaining_work: f64,
    phase: Phase,
    credits: f64,
    /// Core whose run queue the vCPU currently sits on.
    home: usize,
    /// Core the vCPU last actually ran on.
    last_ran: Option<usize>,
    finished_at: Option<u64>,
}

impl VcpuState {
    fn finished(&self) -> bool {
        self.finished_at.is_some()
    }
    /// Runnable, given whether the vCPU's VM is currently in a serial
    /// phase (in which only vCPU 0 may run).
    fn runnable(&self, vm_serial: bool) -> bool {
        !self.finished()
            && self.phase == Phase::Busy
            && (!vm_serial || self.id.index() == 0 || self.background)
    }
}

/// Runs the credit scheduler to completion of all foreground VMs.
///
/// # Panics
///
/// Panics if `config.n_cores` is zero or no foreground VM is supplied.
///
/// # Examples
///
/// ```
/// use sim_vm::{SchedulerConfig, SchedPolicy, VmWorkload, WorkloadBehavior, VmSpec, VmId, run_scheduler};
///
/// let cfg = SchedulerConfig { n_cores: 4, policy: SchedPolicy::Pinned, ..Default::default() };
/// let wl = vec![VmWorkload {
///     spec: VmSpec::new(VmId::new(0), 4, 0),
///     behavior: WorkloadBehavior::cpu_bound(1000.0, 0.0),
///     background: false,
/// }];
/// let out = run_scheduler(&cfg, &wl);
/// // Four CPU-bound vCPUs on four dedicated cores: 1000 ticks of work each.
/// assert_eq!(out.makespan_ticks, 1000);
/// ```
pub fn run_scheduler(config: &SchedulerConfig, workloads: &[VmWorkload]) -> SchedOutcome {
    assert!(config.n_cores > 0, "need at least one core");
    assert!(
        workloads.iter().any(|w| !w.background),
        "need at least one foreground VM"
    );
    let mut rng = SmallRng::seed_from_u64(config.seed);

    // --- Build vCPU states -------------------------------------------------
    let mut vcpus: Vec<VcpuState> = Vec::new();
    for wl in workloads {
        for v in wl.spec.vcpus() {
            vcpus.push(VcpuState {
                id: v,
                behavior: wl.behavior,
                background: wl.background,
                pinned_core: None,
                allowed: None,
                remaining_work: wl.behavior.work_ticks,
                phase: Phase::Busy,
                credits: 0.0,
                home: 0,
                last_ran: None,
                finished_at: if wl.behavior.work_ticks <= 0.0 && !wl.background {
                    Some(0)
                } else {
                    None
                },
            });
        }
    }
    // Initial placement: spread guest vCPUs across cores round-robin; under
    // `Pinned`, that placement is permanent.
    let mut next_core = 0usize;
    for v in vcpus.iter_mut() {
        if v.background {
            v.home = config.n_cores - 1; // dom0 starts on the last core
            continue;
        }
        v.home = next_core % config.n_cores;
        match config.policy {
            SchedPolicy::Pinned => v.pinned_core = Some(v.home),
            SchedPolicy::Restricted { domain_cores } => {
                let d = domain_cores.clamp(1, config.n_cores);
                // The VM's subset starts where its first vCPU landed,
                // aligned down to a multiple of the domain size.
                let vm_base = (v.id.vm().index() * d) % config.n_cores;
                v.allowed = Some((vm_base, d.min(config.n_cores - vm_base)));
            }
            SchedPolicy::FullMigration => {}
        }
        next_core += 1;
    }

    // --- Main loop ----------------------------------------------------------
    let mut running: Vec<Option<usize>> = vec![None; config.n_cores]; // vcpu index per core
    let mut migrations = 0u64;
    let mut busy_core_ticks = 0u64;
    let mut makespan: Option<u64> = None;
    let mut tick = 0u64;
    // Per-VM serial-phase state (Amdahl sections), keyed by workload index.
    let mut vm_serial: BTreeMap<VmId, bool> =
        workloads.iter().map(|w| (w.spec.id(), false)).collect();
    let vm_behavior: BTreeMap<VmId, WorkloadBehavior> = workloads
        .iter()
        .map(|w| (w.spec.id(), w.behavior))
        .collect();

    while tick < config.max_ticks {
        // Credit refill at every accounting period boundary.
        if tick.is_multiple_of(config.credit_period_ticks) {
            let active = vcpus.iter().filter(|v| !v.finished()).count().max(1);
            let fair = config.credit_period_ticks as f64 * config.n_cores as f64 / active as f64;
            for v in vcpus.iter_mut().filter(|v| !v.finished()) {
                v.credits = fair;
            }
        }

        // VM-wide parallel/serial phase transitions.
        for (&vm, serial) in vm_serial.iter_mut() {
            let b = vm_behavior[&vm];
            if b.mean_serial_ticks <= 0.0 {
                continue;
            }
            if *serial {
                if rng.gen::<f64>() < 1.0 / b.mean_serial_ticks {
                    *serial = false;
                }
            } else if b.mean_parallel_ticks.is_finite()
                && rng.gen::<f64>() < 1.0 / b.mean_parallel_ticks
            {
                *serial = true;
            }
        }

        // Phase transitions (geometric burst lengths).
        let mut woken: Vec<usize> = Vec::new();
        for (vi, v) in vcpus.iter_mut().enumerate().filter(|(_, v)| !v.finished()) {
            match v.phase {
                Phase::Busy => {
                    if v.behavior.mean_busy_ticks.is_finite()
                        && rng.gen::<f64>() < 1.0 / v.behavior.mean_busy_ticks
                    {
                        v.phase = Phase::Blocked;
                    }
                }
                Phase::Blocked => {
                    if rng.gen::<f64>() < 1.0 / v.behavior.mean_blocked_ticks {
                        v.phase = Phase::Busy;
                        woken.push(vi);
                    }
                }
            }
        }
        // Xen-style wake placement: a waking vCPU whose old core is busy
        // is enqueued on an idle core instead (within its allowed domain).
        // This is the main source of relocations in undercommitted
        // systems (Section III-B).
        for vi in woken {
            if vcpus[vi].pinned_core.is_some() {
                continue;
            }
            if running[vcpus[vi].home].is_none() {
                continue; // old core free: stay for cache warmth
            }
            let (base, len) = vcpus[vi].allowed.unwrap_or((0, config.n_cores));
            let idle: Vec<usize> = (base..base + len)
                .filter(|&c| running[c].is_none())
                .collect();
            if !idle.is_empty() {
                vcpus[vi].home = idle[rng.gen_range(0..idle.len())];
            }
        }

        let is_runnable = |v: &VcpuState| v.runnable(*vm_serial.get(&v.id.vm()).unwrap_or(&false));

        // Deschedule cores whose current vCPU can no longer run.
        for slot in running.iter_mut() {
            if let Some(vi) = *slot {
                if !is_runnable(&vcpus[vi]) {
                    *slot = None;
                }
            }
        }

        // Each core picks the highest-credit runnable vCPU homed on it.
        for core in 0..config.n_cores {
            if running[core].is_some() {
                continue;
            }
            let pick = vcpus
                .iter()
                .enumerate()
                .filter(|(vi, v)| v.home == core && is_runnable(v) && !running.contains(&Some(*vi)))
                .max_by(|a, b| a.1.credits.total_cmp(&b.1.credits))
                .map(|(vi, _)| vi);
            running[core] = pick;
        }

        // Idle cores steal waiting runnable vCPUs (full-migration policy,
        // restricted policy within the VM's subset, and always for
        // background/dom0 vCPUs).
        for core in 0..config.n_cores {
            if running[core].is_some() {
                continue;
            }
            let steal = vcpus
                .iter()
                .enumerate()
                .filter(|(vi, v)| {
                    let in_domain = match v.allowed {
                        Some((base, len)) => core >= base && core < base + len,
                        None => true,
                    };
                    is_runnable(v)
                        && !running.contains(&Some(*vi))
                        && v.pinned_core.is_none()
                        && in_domain
                        && (config.policy != SchedPolicy::Pinned || v.background)
                })
                .max_by(|a, b| a.1.credits.total_cmp(&b.1.credits))
                .map(|(vi, _)| vi);
            if let Some(vi) = steal {
                vcpus[vi].home = core;
                running[core] = Some(vi);
            }
        }

        // Execute one tick on every busy core.
        for (core, slot) in running.iter_mut().enumerate() {
            let Some(vi) = *slot else { continue };
            busy_core_ticks += 1;
            let migrated = vcpus[vi].last_ran.is_some_and(|c| c != core);
            if migrated {
                if !vcpus[vi].background {
                    migrations += 1;
                }
                vcpus[vi].remaining_work += vcpus[vi].behavior.migration_penalty_ticks;
            }
            vcpus[vi].last_ran = Some(core);
            vcpus[vi].credits -= 1.0;
            if !vcpus[vi].background {
                vcpus[vi].remaining_work -= 1.0;
                if vcpus[vi].remaining_work <= 0.0 {
                    vcpus[vi].finished_at = Some(tick + 1);
                    *slot = None;
                }
            }
        }

        tick += 1;
        let all_done = vcpus.iter().filter(|v| !v.background).all(|v| v.finished());
        if all_done {
            makespan = Some(tick);
            break;
        }
    }

    let makespan_ticks = makespan.unwrap_or(config.max_ticks);

    // --- Collect per-VM finish times ---------------------------------------
    let mut vm_finish: Vec<(VmId, u64)> = Vec::new();
    for wl in workloads.iter().filter(|w| !w.background) {
        let finish = vcpus
            .iter()
            .filter(|v| v.id.vm() == wl.spec.id())
            .map(|v| v.finished_at.unwrap_or(makespan_ticks))
            .max()
            .unwrap_or(0);
        vm_finish.push((wl.spec.id(), finish));
    }

    // Average relocation period: guest vCPU lifetime divided by migrations.
    let guest_lifetime_ticks: u64 = vcpus
        .iter()
        .filter(|v| !v.background)
        .map(|v| v.finished_at.unwrap_or(makespan_ticks))
        .sum();
    let avg_relocation_period_ms = if migrations > 0 {
        Some(guest_lifetime_ticks as f64 * config.tick_ms / migrations as f64)
    } else {
        None
    };

    SchedOutcome {
        vm_finish_ticks: vm_finish,
        makespan_ticks,
        migrations,
        avg_relocation_period_ms,
        core_utilization: busy_core_ticks as f64
            / (makespan_ticks.max(1) as f64 * config.n_cores as f64),
        tick_ms: config.tick_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn guest(vm: u16, vcpus: u16, behavior: WorkloadBehavior) -> VmWorkload {
        VmWorkload {
            spec: VmSpec::new(VmId::new(vm), vcpus, 0),
            behavior,
            background: false,
        }
    }

    fn dom0() -> VmWorkload {
        VmWorkload {
            spec: VmSpec::new(VmId::new(999), 1, 0),
            behavior: WorkloadBehavior {
                mean_busy_ticks: 5.0,
                mean_blocked_ticks: 50.0,
                mean_parallel_ticks: f64::INFINITY,
                mean_serial_ticks: 0.0,
                work_ticks: f64::INFINITY,
                migration_penalty_ticks: 0.0,
            },
            background: true,
        }
    }

    #[test]
    fn dedicated_cores_run_at_full_speed() {
        let cfg = SchedulerConfig {
            n_cores: 4,
            policy: SchedPolicy::Pinned,
            ..Default::default()
        };
        let out = run_scheduler(
            &cfg,
            &[guest(0, 4, WorkloadBehavior::cpu_bound(500.0, 0.0))],
        );
        assert_eq!(out.makespan_ticks, 500);
        assert_eq!(out.migrations, 0);
        assert!(out.avg_relocation_period_ms.is_none());
        assert!((out.core_utilization - 1.0).abs() < 1e-9);
    }

    #[test]
    fn overcommit_pinned_serializes_work() {
        // Two CPU-bound vCPUs pinned to one core take twice as long.
        let cfg = SchedulerConfig {
            n_cores: 1,
            policy: SchedPolicy::Pinned,
            ..Default::default()
        };
        let out = run_scheduler(
            &cfg,
            &[guest(0, 2, WorkloadBehavior::cpu_bound(300.0, 0.0))],
        );
        assert_eq!(out.makespan_ticks, 600);
    }

    #[test]
    fn stealing_beats_pinning_when_overcommitted_and_blocking() {
        // 4 VMs x 2 vCPUs on 4 cores with heavy blocking: stealing keeps
        // cores busy; pinning strands runnable vCPUs behind busy cores.
        let b = WorkloadBehavior {
            mean_busy_ticks: 20.0,
            mean_blocked_ticks: 20.0,
            mean_parallel_ticks: 200.0,
            mean_serial_ticks: 60.0,
            work_ticks: 2_000.0,
            migration_penalty_ticks: 0.5,
        };
        let mk = |policy| {
            let cfg = SchedulerConfig {
                n_cores: 4,
                policy,
                seed: 7,
                ..Default::default()
            };
            let wls: Vec<_> = (0..4).map(|vm| guest(vm, 2, b)).collect();
            run_scheduler(&cfg, &wls).makespan_ticks
        };
        let pinned = mk(SchedPolicy::Pinned);
        let full = mk(SchedPolicy::FullMigration);
        assert!(
            full < pinned,
            "full migration ({full}) should beat pinning ({pinned}) when overcommitted"
        );
    }

    #[test]
    fn pinning_beats_stealing_when_undercommitted_with_penalty() {
        // 4 vCPUs on 8 cores with a large migration penalty and dom0 noise:
        // pinning avoids the cold-cache cost.
        let b = WorkloadBehavior {
            mean_busy_ticks: 30.0,
            mean_blocked_ticks: 10.0,
            mean_parallel_ticks: f64::INFINITY,
            mean_serial_ticks: 0.0,
            work_ticks: 3_000.0,
            migration_penalty_ticks: 12.0,
        };
        let mk = |policy| {
            let cfg = SchedulerConfig {
                n_cores: 8,
                policy,
                seed: 11,
                ..Default::default()
            };
            let wls = vec![guest(0, 4, b), guest(1, 4, b), dom0()];
            run_scheduler(&cfg, &wls).makespan_ticks
        };
        let pinned = mk(SchedPolicy::Pinned);
        let full = mk(SchedPolicy::FullMigration);
        assert!(
            pinned <= full,
            "pinning ({pinned}) should not lose to full migration ({full}) when undercommitted"
        );
    }

    #[test]
    fn full_migration_generates_relocations_with_dom0_noise() {
        let b = WorkloadBehavior {
            mean_busy_ticks: 30.0,
            mean_blocked_ticks: 10.0,
            mean_parallel_ticks: f64::INFINITY,
            mean_serial_ticks: 0.0,
            work_ticks: 3_000.0,
            migration_penalty_ticks: 1.0,
        };
        let cfg = SchedulerConfig {
            n_cores: 8,
            policy: SchedPolicy::FullMigration,
            seed: 3,
            ..Default::default()
        };
        let wls = vec![guest(0, 4, b), guest(1, 4, b), dom0()];
        let out = run_scheduler(&cfg, &wls);
        assert!(
            out.migrations > 0,
            "dom0 perturbation must cause migrations"
        );
        let period = out.avg_relocation_period_ms.unwrap();
        assert!(period > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let b = WorkloadBehavior {
            mean_busy_ticks: 10.0,
            mean_blocked_ticks: 10.0,
            mean_parallel_ticks: 100.0,
            mean_serial_ticks: 30.0,
            work_ticks: 1_000.0,
            migration_penalty_ticks: 1.0,
        };
        let cfg = SchedulerConfig {
            n_cores: 4,
            seed: 99,
            ..Default::default()
        };
        let wls = vec![guest(0, 4, b), guest(1, 4, b)];
        let a = run_scheduler(&cfg, &wls);
        let b2 = run_scheduler(&cfg, &wls);
        assert_eq!(a.makespan_ticks, b2.makespan_ticks);
        assert_eq!(a.migrations, b2.migrations);
    }

    #[test]
    fn per_vm_finish_times_reported() {
        let fast = WorkloadBehavior::cpu_bound(100.0, 0.0);
        let slow = WorkloadBehavior::cpu_bound(400.0, 0.0);
        let cfg = SchedulerConfig {
            n_cores: 8,
            policy: SchedPolicy::Pinned,
            ..Default::default()
        };
        let out = run_scheduler(&cfg, &[guest(0, 2, fast), guest(1, 2, slow)]);
        let finish: std::collections::HashMap<_, _> = out.vm_finish_ticks.iter().copied().collect();
        assert_eq!(finish[&VmId::new(0)], 100);
        assert_eq!(finish[&VmId::new(1)], 400);
        assert_eq!(out.makespan_ticks, 400);
    }

    #[test]
    fn restricted_policy_contains_migrations_to_domains() {
        // 4 VMs x 2 vCPUs on 4 cores, restricted to 2-core subsets:
        // migration happens (unlike pinning) but only inside each subset.
        let b = WorkloadBehavior {
            mean_busy_ticks: 20.0,
            mean_blocked_ticks: 20.0,
            mean_parallel_ticks: 200.0,
            mean_serial_ticks: 60.0,
            work_ticks: 2_000.0,
            migration_penalty_ticks: 0.5,
        };
        let cfg = SchedulerConfig {
            n_cores: 4,
            policy: SchedPolicy::Restricted { domain_cores: 2 },
            seed: 7,
            ..Default::default()
        };
        let wls: Vec<_> = (0..4).map(|vm| guest(vm, 2, b)).collect();
        let out = run_scheduler(&cfg, &wls);
        assert!(out.migrations > 0, "restricted stealing must still migrate");

        // And, averaged over seeds, it should recover most of full
        // migration's throughput advantage over pinning.
        let mk = |policy, seed| {
            let cfg = SchedulerConfig {
                n_cores: 4,
                policy,
                seed,
                ..Default::default()
            };
            run_scheduler(&cfg, &wls).makespan_ticks
        };
        let avg = |policy| -> f64 { (0..5).map(|s| mk(policy, 7 + s) as f64).sum::<f64>() / 5.0 };
        let pinned = avg(SchedPolicy::Pinned);
        let restricted = avg(SchedPolicy::Restricted { domain_cores: 2 });
        assert!(
            restricted < pinned * 1.02,
            "restricted ({restricted:.0}) should be at least competitive with \
             pinning ({pinned:.0}) when overcommitted"
        );
    }

    #[test]
    #[should_panic(expected = "foreground")]
    fn background_only_rejected() {
        let cfg = SchedulerConfig::default();
        let _ = run_scheduler(&cfg, &[dom0()]);
    }
}

//! Trace recording and replay.
//!
//! Virtual-GEMS feeds pre-captured Simics traces into its timing model;
//! this module provides the same workflow for the synthetic generators:
//! wrap any [`AccessStream`] in a [`TraceRecorder`] to capture exactly
//! what a simulation consumed, persist it with [`RecordedTrace::write`],
//! and feed it back — bit-identically — with the [`AccessStream`] impl of
//! [`RecordedTrace`]. Useful for regression pinning ("this exact trace
//! produced these exact counters"), cross-policy comparisons guaranteed
//! to see the same access sequence, and debugging.

use std::collections::HashMap;
use std::io::{self, Read, Write};

use sim_vm::{Agent, VcpuId, VmId};

use crate::trace::{AccessStream, TraceAccess};

/// Magic bytes identifying the trace file format.
const MAGIC: [u8; 4] = *b"VSNT";
/// Format version.
const VERSION: u8 = 1;

/// An [`AccessStream`] adapter that records everything it hands out.
#[derive(Debug)]
pub struct TraceRecorder<W> {
    inner: W,
    log: HashMap<VcpuId, Vec<TraceAccess>>,
}

impl<W: AccessStream> TraceRecorder<W> {
    /// Wraps `inner`, recording per-vCPU access sequences.
    pub fn new(inner: W) -> Self {
        TraceRecorder {
            inner,
            log: HashMap::new(),
        }
    }

    /// Total accesses recorded so far.
    pub fn len(&self) -> usize {
        self.log.values().map(Vec::len).sum()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finishes recording and returns the captured trace (and the wrapped
    /// stream).
    pub fn finish(self) -> (RecordedTrace, W) {
        (RecordedTrace { lanes: self.log }, self.inner)
    }

    /// The wrapped stream.
    pub fn inner(&self) -> &W {
        &self.inner
    }
}

impl<W: AccessStream> AccessStream for TraceRecorder<W> {
    fn next_access(&mut self, vcpu: VcpuId) -> TraceAccess {
        let a = self.inner.next_access(vcpu);
        self.log.entry(vcpu).or_default().push(a);
        a
    }
}

/// A captured trace: per-vCPU access sequences, replayable and
/// serializable.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecordedTrace {
    lanes: HashMap<VcpuId, Vec<TraceAccess>>,
}

impl RecordedTrace {
    /// Total accesses in the trace.
    pub fn len(&self) -> usize {
        self.lanes.values().map(Vec::len).sum()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Starts replaying from the beginning. Each vCPU lane is consumed in
    /// recording order and *wraps around* when exhausted, so a replay may
    /// run longer than the recording (document such runs accordingly).
    pub fn replay(&self) -> TraceReplayer<'_> {
        TraceReplayer {
            trace: self,
            cursors: HashMap::new(),
        }
    }

    /// Serializes the trace to a writer (compact binary format).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write<Wr: Write>(&self, w: &mut Wr) -> io::Result<()> {
        w.write_all(&MAGIC)?;
        w.write_all(&[VERSION])?;
        w.write_all(&(self.lanes.len() as u32).to_le_bytes())?;
        let mut lanes: Vec<_> = self.lanes.iter().collect();
        lanes.sort_by_key(|(v, _)| (v.vm().index(), v.index()));
        for (vcpu, events) in lanes {
            w.write_all(&(vcpu.vm().index() as u16).to_le_bytes())?;
            w.write_all(&(vcpu.index() as u16).to_le_bytes())?;
            w.write_all(&(events.len() as u64).to_le_bytes())?;
            for e in events {
                let agent_code: u8 = match e.agent {
                    Agent::Guest(_) => 0,
                    Agent::Dom0 => 1,
                    Agent::Hypervisor => 2,
                };
                let flags = agent_code | (u8::from(e.write) << 2);
                w.write_all(&[flags])?;
                w.write_all(&e.addr.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Deserializes a trace previously written with
    /// [`write`](Self::write).
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for bad magic/version/encoding, and
    /// propagates I/O errors.
    pub fn read<R: Read>(r: &mut R) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a trace file",
            ));
        }
        let mut ver = [0u8; 1];
        r.read_exact(&mut ver)?;
        if ver[0] != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported trace version {}", ver[0]),
            ));
        }
        let mut lanes = HashMap::new();
        let n_lanes = read_u32(r)?;
        for _ in 0..n_lanes {
            let vm = read_u16(r)?;
            let idx = read_u16(r)?;
            let vcpu = VcpuId::new(VmId::new(vm), idx);
            let n = read_u64(r)?;
            let mut events = Vec::with_capacity(n.min(1 << 24) as usize);
            for _ in 0..n {
                let mut flags = [0u8; 1];
                r.read_exact(&mut flags)?;
                let addr = read_u64(r)?;
                let agent = match flags[0] & 0b11 {
                    0 => Agent::Guest(vcpu),
                    1 => Agent::Dom0,
                    2 => Agent::Hypervisor,
                    _ => return Err(io::Error::new(io::ErrorKind::InvalidData, "bad agent code")),
                };
                events.push(TraceAccess {
                    agent,
                    addr,
                    write: flags[0] & 0b100 != 0,
                });
            }
            lanes.insert(vcpu, events);
        }
        Ok(RecordedTrace { lanes })
    }
}

fn read_u16<R: Read>(r: &mut R) -> io::Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}
fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}
fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Replays a [`RecordedTrace`], lane by lane.
#[derive(Clone, Debug)]
pub struct TraceReplayer<'a> {
    trace: &'a RecordedTrace,
    cursors: HashMap<VcpuId, usize>,
}

impl AccessStream for TraceReplayer<'_> {
    /// # Panics
    ///
    /// Panics if asked for a vCPU the trace never recorded.
    fn next_access(&mut self, vcpu: VcpuId) -> TraceAccess {
        let lane = self
            .trace
            .lanes
            .get(&vcpu)
            .unwrap_or_else(|| panic!("no recorded lane for {vcpu}"));
        let cursor = self.cursors.entry(vcpu).or_insert(0);
        let a = lane[*cursor % lane.len()];
        *cursor += 1;
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::profile;
    use crate::workload::{Workload, WorkloadConfig};

    fn vcpu(vm: u16, i: u16) -> VcpuId {
        VcpuId::new(VmId::new(vm), i)
    }

    fn record_some() -> RecordedTrace {
        let wl = Workload::homogeneous(profile("radix").unwrap(), 2, WorkloadConfig::default());
        let mut rec = TraceRecorder::new(wl);
        for i in 0..600u16 {
            let _ = rec.next_access(vcpu(i % 2, i % 4));
        }
        assert_eq!(rec.len(), 600);
        rec.finish().0
    }

    #[test]
    fn replay_reproduces_the_recording() {
        let wl = Workload::homogeneous(profile("fft").unwrap(), 2, WorkloadConfig::default());
        let mut rec = TraceRecorder::new(wl);
        let original: Vec<TraceAccess> = (0..400)
            .map(|i| rec.next_access(vcpu(i % 2, i % 8 / 2)))
            .collect();
        let (trace, _wl) = rec.finish();
        let mut rep = trace.replay();
        let replayed: Vec<TraceAccess> = (0..400)
            .map(|i| rep.next_access(vcpu(i % 2, i % 8 / 2)))
            .collect();
        assert_eq!(original, replayed);
    }

    #[test]
    fn replay_wraps_when_exhausted() {
        let trace = record_some();
        let mut rep = trace.replay();
        let first = rep.next_access(vcpu(0, 0));
        // Drain the lane and observe wrap-around.
        let lane_len = {
            let mut n = 1;
            loop {
                let a = rep.next_access(vcpu(0, 0));
                n += 1;
                if a == first && n > 1 {
                    break n - 1;
                }
                assert!(n < 10_000, "no wrap detected");
            }
        };
        assert!(lane_len > 0);
    }

    #[test]
    fn serialization_roundtrip() {
        let trace = record_some();
        let mut buf = Vec::new();
        trace.write(&mut buf).expect("write to vec");
        let back = RecordedTrace::read(&mut buf.as_slice()).expect("read back");
        assert_eq!(trace, back);
        // Compact: 9 bytes per access plus small headers.
        assert!(buf.len() < trace.len() * 9 + 128);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut data = b"NOPE\x01".to_vec();
        data.extend_from_slice(&0u32.to_le_bytes());
        let err = RecordedTrace::read(&mut data.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn host_agents_survive_the_roundtrip() {
        let wl = Workload::homogeneous(
            profile("SPECweb").unwrap(),
            2,
            WorkloadConfig {
                host_activity: true,
                ..Default::default()
            },
        );
        let mut rec = TraceRecorder::new(wl);
        for i in 0..30_000u32 {
            let _ = rec.next_access(vcpu((i % 2) as u16, (i % 4) as u16));
        }
        let (trace, _) = rec.finish();
        let mut buf = Vec::new();
        trace.write(&mut buf).unwrap();
        let back = RecordedTrace::read(&mut buf.as_slice()).unwrap();
        let host_events = |t: &RecordedTrace| {
            let mut rep = t.replay();
            (0..30_000u32)
                .filter(|i| {
                    rep.next_access(vcpu((i % 2) as u16, (i % 4) as u16))
                        .agent
                        .is_host()
                })
                .count()
        };
        let a = host_events(&trace);
        assert!(a > 0, "expected host events in a SPECweb trace");
        assert_eq!(a, host_events(&back));
    }
}

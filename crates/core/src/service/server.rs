//! The always-on simulation server: a readiness reactor driving every
//! connection, an admission thread owning durable accepts, and the
//! scheduler that drives dispatch, deadlines, and graceful drain.
//!
//! Threading model (all plain `std::thread` + `std::net`, no external
//! runtime):
//!
//! - **reactor** (one thread): a [`super::reactor::Poller`] over the
//!   listener, a self-wake channel, and every client socket — all
//!   nonblocking. It accepts connections, assembles JSONL frames from
//!   bounded per-connection read buffers, answers cheap requests
//!   (`status`/`ping`/`shutdown`/`subscribe`) inline, enforces the
//!   per-connection pipelining cap (excess submits shed with a typed
//!   retryable `pipeline_full`), reaps idle connections with a typed
//!   `idle_timeout` error, and flushes every connection's outbox to
//!   its socket. One thread serves hundreds of connections; a
//!   connection storm costs file descriptors, not threads;
//! - **admission** (one thread): receives submits from the reactor
//!   over a channel and runs dedup + admission + the fsynced WAL
//!   `accepted` append. Disk waits land here, never on the reactor,
//!   and the single thread preserves global submit order;
//! - **scheduler** (one thread): round-robin dispatch out of
//!   [`Admission`], one worker thread per running job (bounded by
//!   `workers`), completion collection, the per-job deadline watchdog,
//!   periodic `progress` frames for running jobs, and the drain
//!   sequence. It is the only writer of the journal, so journal
//!   entries land in completion order without interleaving;
//! - **workers** (one thread per running job): install the job's
//!   [`CancelToken`], obs scope and tenant label (so `scatter` shards
//!   and warm-pool accounting inherit them), run the job under
//!   `catch_unwind`, and report back over a channel.
//!
//! Replies never block the reactor either: every connection has an
//! **outbox** (an unbounded queue of response lines) that any thread —
//! the admission thread, the scheduler, a subscriber pump — appends to
//! via [`send_line`]; the append marks the connection dirty and wakes
//! the reactor, which copies lines into a bounded write buffer and
//! writes as far as the socket allows. A connection whose outbox backs
//! up past a cap stops being *read* (backpressure) until it drains.
//!
//! Every response a client can observe is typed; overload sheds, bad
//! requests get `error` lines, deadlines become `timeout` outcomes and
//! a drain becomes `cancelled` outcomes — the server never answers a
//! request with silence and never panics on malformed input.
//!
//! The drain contract (also in `SERVICE.md`): stop accepting, shed new
//! submits as `draining`, journal still-queued jobs as cancelled, give
//! running jobs `drain_grace` to finish, then cancel their tokens and
//! give them `cancel_grace` to unwind; whatever still hasn't polled is
//! abandoned (journaled as cancelled) so shutdown completes in bounded
//! time no matter what a job does. The reactor then stops the
//! admission thread (answering everything still queued to it), gives
//! every connection a final flush window, and closes them all.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, RecvTimeoutError, Sender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::obs::metrics;
use crate::runner::json::Value;
use crate::runner::{CancelToken, Cancelled, Job, JobCtx, JobError, Journal};

use super::protocol::{self, Request, ShedReason, Submit, TenantStatus};
use super::quota::{Admission, PipelineGate, TenantQuota};
use super::reactor::{self, Interest, Poller, ReadyEvent};
use super::wal::{Wal, WalRecord, WalState};

/// Builds a runnable [`Job`] from a submit request, or a client-visible
/// error message (unknown job name, bad parameters). The bench
/// binaries install the campaign registry here; tests install
/// synthetic jobs.
pub type JobFactory = Arc<dyn Fn(&Submit) -> Result<Job, String> + Send + Sync>;

/// Server tuning knobs. The defaults are sized for the integration
/// tests and the verify smoke; the `serve` binary exposes flags for
/// each.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Max jobs running concurrently across all tenants.
    pub workers: usize,
    /// Global cap on queued (admitted, undispatched) jobs.
    pub queue_cap: usize,
    /// Per-tenant quota.
    pub quota: TenantQuota,
    /// Deadline for submits that don't carry `deadline_ms`.
    pub default_deadline: Duration,
    /// How long a drain waits for running jobs to finish naturally
    /// before cancelling their tokens.
    pub drain_grace: Duration,
    /// How long a cancelled job gets to unwind before it is abandoned.
    pub cancel_grace: Duration,
    /// Journal of every accepted job's terminal outcome (`None`
    /// disables journaling).
    pub journal_path: Option<PathBuf>,
    /// Write-ahead submission log (`None` disables durability): every
    /// `accepted` is fsynced here before the client sees it, and every
    /// terminal outcome before its `done`.
    pub wal_path: Option<PathBuf>,
    /// Replay the WAL on startup, re-enqueueing non-terminal jobs
    /// under their original tenants (no-op without a WAL, or on a
    /// fresh log). On by default: an operator who configures a WAL
    /// wants the jobs in it to run.
    pub recover: bool,
    /// `fdatasync` WAL appends (group-committed) and journal terminal
    /// entries. Off trades power-loss durability for speed — crash
    /// safety against process death (kill -9) is retained either way,
    /// since both logs flush per line.
    pub sync: bool,
    /// Longest request line accepted, in bytes; longer frames get a
    /// typed `oversized_frame` error and are discarded without ever
    /// being buffered whole.
    pub max_frame_bytes: usize,
    /// Completed idempotency-key entries retained for dedup (oldest
    /// evicted first; also the compaction bound for completed pairs
    /// kept in the WAL across restarts).
    pub idem_cap: usize,
    /// Telemetry records buffered per subscriber before it is declared
    /// lagged and disconnected.
    pub sub_buffer: usize,
    /// Max in-flight submits per connection (accepted but not yet
    /// answered with `done`). Excess pipelined submits are shed with a
    /// typed retryable `pipeline_full` reason. Dedup replays of an
    /// idempotency key the server already knows are always honoured,
    /// even at the cap — the original acceptance promised the outcome.
    pub pipeline_limit: usize,
    /// Close connections with no traffic, no in-flight jobs and no
    /// subscription after this long, with a typed retryable
    /// `idle_timeout` error. Zero disables reaping.
    pub idle_timeout: Duration,
    /// How often a running job streams a `progress` frame back to its
    /// submitting connection (between `accepted` and `done`). Zero
    /// disables streaming.
    pub progress_interval: Duration,
    /// Accept-queue depth re-requested on the listener at startup.
    /// `std::net::TcpListener::bind` hard-codes a backlog of 128,
    /// which a herd of simultaneous connects (the 512-connection soak)
    /// overflows — the kernel then drops handshakes and clients see
    /// resets or SYN-retry stalls. `listen(2)` on an already-listening
    /// socket updates the backlog in place; the kernel clamps it to
    /// `net.core.somaxconn`. Zero keeps the bind-time backlog.
    pub listen_backlog: u32,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism().map_or(2, |n| n.get()),
            queue_cap: 256,
            quota: TenantQuota::default(),
            default_deadline: Duration::from_secs(30),
            drain_grace: Duration::from_secs(5),
            cancel_grace: Duration::from_secs(2),
            journal_path: None,
            wal_path: None,
            recover: true,
            sync: true,
            max_frame_bytes: 64 * 1024,
            idem_cap: 1024,
            sub_buffer: 256,
            pipeline_limit: 64,
            idle_timeout: Duration::from_secs(300),
            progress_interval: Duration::from_millis(500),
            listen_backlog: 1024,
        }
    }
}

/// End-of-life counters returned by [`Server::wait`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceReport {
    /// Jobs that reached a terminal outcome (any kind).
    pub done: u64,
    /// Submits refused by admission.
    pub shed: u64,
    /// Jobs cancelled by the drain (queued evictions + token cancels +
    /// abandons).
    pub cancelled: u64,
    /// Jobs re-enqueued from the write-ahead log at startup.
    pub recovered: u64,
}

/// Reactor wakeup shared by every outbox: appending a response line
/// marks the connection's token dirty and pokes the poller, so replies
/// reach the socket on the next reactor pass rather than the next
/// timeout tick.
struct WakeShared {
    waker: reactor::Waker,
    /// Tokens with freshly appended outbox lines (deduplicated).
    dirty: Mutex<Vec<u64>>,
}

impl WakeShared {
    fn mark_dirty(&self, token: u64) {
        let newly = {
            let mut dirty = self.dirty.lock().unwrap_or_else(|e| e.into_inner());
            if dirty.contains(&token) {
                false
            } else {
                dirty.push(token);
                true
            }
        };
        // One wake per dirtying, not per line: a token already marked
        // implies a pending (or imminent) reactor pass.
        if newly {
            self.waker.wake();
        }
    }

    fn take_dirty(&self) -> Vec<u64> {
        std::mem::take(&mut *self.dirty.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

/// Queued-but-unwritten response lines for one connection.
#[derive(Default)]
struct OutQueue {
    lines: VecDeque<String>,
    bytes: usize,
    closed: bool,
}

/// A connection's write side, shared between the reactor, the
/// admission thread, the scheduler (`accepted`/`progress`/`done`
/// responses) and subscriber pumps. Appends never block: lines land in
/// an outbox the reactor flushes to the nonblocking socket as fast as
/// the client reads. The pipeline gate rides here because its lifetime
/// is exactly the connection's.
struct Outbox {
    /// The reactor token of the owning connection.
    token: u64,
    /// Per-connection pipelining cap (submits in flight).
    gate: PipelineGate,
    queue: Mutex<OutQueue>,
    wake: Arc<WakeShared>,
}

impl Outbox {
    fn push(&self, line: &str) {
        {
            let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
            if q.closed {
                return;
            }
            q.bytes += line.len() + 1;
            q.lines.push_back(line.to_string());
        }
        self.wake.mark_dirty(self.token);
    }

    /// Pops queued lines until roughly `target_bytes` worth are taken.
    fn take_lines(&self, target_bytes: usize) -> Vec<String> {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::new();
        let mut taken = 0usize;
        while taken < target_bytes {
            match q.lines.pop_front() {
                Some(line) => {
                    taken += line.len() + 1;
                    q.bytes = q.bytes.saturating_sub(line.len() + 1);
                    out.push(line);
                }
                None => break,
            }
        }
        out
    }

    fn backlog_lines(&self) -> usize {
        self.queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .lines
            .len()
    }

    fn backlog_bytes(&self) -> usize {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).bytes
    }

    fn is_closed(&self) -> bool {
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).closed
    }

    /// Marks the connection gone: future pushes are dropped and pumps
    /// watching [`is_closed`](Self::is_closed) exit.
    fn close(&self) {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.closed = true;
        q.lines.clear();
        q.bytes = 0;
    }
}

/// See [`Outbox`].
type ConnWriter = Arc<Outbox>;

/// Queues one response line, best-effort: a dead or slow client must
/// never take the server down with it (its lines are dropped once the
/// connection closes).
fn send_line(writer: &ConnWriter, line: &str) {
    writer.push(line);
}

/// An admitted-but-undispatched job. `writer` is `None` for jobs
/// re-enqueued from the WAL at startup — their submitting connection
/// died with the old process; a resubmit with the same idempotency key
/// re-attaches via the waiter list.
struct Pending {
    job_id: u64,
    job: Job,
    deadline: Duration,
    tag: Option<String>,
    idem_key: Option<String>,
    writer: Option<ConnWriter>,
    /// When the reactor parsed the originating submit (`None` for jobs
    /// re-enqueued from the WAL — their submit predates this process).
    received: Option<Instant>,
    /// When the job entered the admission queue; the scheduler's
    /// dispatch turns the difference into the queue-wait metric.
    queued: Instant,
}

/// Why a running job's token was cancelled.
#[derive(Clone, Copy, PartialEq, Eq)]
enum CancelCause {
    Deadline,
    Drain,
}

/// Scheduler-side record of a running job.
struct Running {
    tenant: String,
    name: String,
    seed: u64,
    token: CancelToken,
    started: Instant,
    deadline: Instant,
    limit_ms: u64,
    tag: Option<String>,
    idem_key: Option<String>,
    writer: Option<ConnWriter>,
    /// See [`Pending::received`].
    received: Option<Instant>,
    cancel_cause: Option<CancelCause>,
    cancelled_at: Option<Instant>,
    /// Last time a `progress` frame was streamed to the submitter.
    last_progress: Instant,
}

/// What a worker thread reports back. The scheduler supplies the
/// *meaning* of a cancellation unwind (deadline vs drain) because only
/// it knows why the token fired.
enum WorkerOutcome {
    Ok(String),
    Failed(String),
    Panicked(String),
    CancelUnwind,
}

/// One idempotency key's lifecycle. Keys move `InFlight` → `Done` and
/// are then retained (bounded by `idem_cap`) so a late resubmission
/// gets the original outcome instead of a second run.
enum IdemState {
    /// The keyed job is queued or running under this id.
    InFlight { job_id: u64 },
    Done {
        job_id: u64,
        job: String,
        outcome: Result<String, JobError>,
    },
}

/// The idempotency-key table: key → lifecycle state, with FIFO
/// eviction of completed entries once past the cap. In-flight entries
/// are never evicted — they are exactly the keys a reconnecting client
/// is about to resend.
#[derive(Default)]
struct IdemMap {
    entries: HashMap<String, IdemState>,
    done_order: VecDeque<String>,
}

impl IdemMap {
    /// Marks `key` completed, evicting the oldest completed entries
    /// beyond `cap`.
    fn record_done(
        &mut self,
        key: String,
        job_id: u64,
        job: String,
        outcome: Result<String, JobError>,
        cap: usize,
    ) {
        self.entries.insert(
            key.clone(),
            IdemState::Done {
                job_id,
                job,
                outcome,
            },
        );
        self.done_order.push_back(key);
        while self.done_order.len() > cap {
            if let Some(old) = self.done_order.pop_front() {
                if matches!(self.entries.get(&old), Some(IdemState::Done { .. })) {
                    self.entries.remove(&old);
                }
            }
        }
    }
}

/// Extra connections waiting on a job's terminal outcome: resubmits of
/// an in-flight idempotency key (typically a client that reconnected
/// after losing the original connection). Each waiter gets the `done`
/// line with its own tag.
type Waiters = HashMap<u64, Vec<(ConnWriter, Option<String>)>>;

/// One submit forwarded from the reactor to the admission thread. The
/// gate slot was already acquired by the reactor; every admission path
/// either keeps it (an eventual `done` releases it) or releases it
/// with its terminal reply.
struct AdmitRequest {
    submit: Submit,
    bytes: usize,
    writer: ConnWriter,
    /// When the reactor parsed the request — admission wait and the
    /// end-to-end server-side latency both start here.
    received: Instant,
}

/// State shared by the reactor, admission thread and scheduler.
struct Shared {
    admission: Mutex<Admission<Pending>>,
    /// Drain trigger (in-process shutdown, `shutdown` op; the reactor
    /// additionally polls [`super::signal::requested`]).
    stop: AtomicBool,
    /// Set once the drain has completed; the reactor flushes and
    /// closes every connection on it.
    done: AtomicBool,
    next_job_id: AtomicU64,
    cancelled: AtomicU64,
    recovered: AtomicU64,
    /// Lock order where both are held: `idem` before `waiters`. That
    /// makes "saw InFlight → registered waiter" atomic against the
    /// scheduler's "record done → drain waiters", closing the window
    /// where a resubmit could register after the drain and wait
    /// forever.
    idem: Mutex<IdemMap>,
    waiters: Mutex<Waiters>,
    wal: Option<Wal>,
    wake: Arc<WakeShared>,
    cfg: ServiceConfig,
    factory: JobFactory,
}

impl Shared {
    /// Builds a `status` response from admission + warm-pool counters.
    fn status_line(&self) -> String {
        let warm: HashMap<String, (u64, u64)> = crate::warm_tenant_counters()
            .into_iter()
            .map(|(t, h, m)| (t, (h, m)))
            .collect();
        let adm = self.admission.lock().unwrap_or_else(|e| e.into_inner());
        let tenants: Vec<TenantStatus> = adm
            .tenant_counters()
            .into_iter()
            .map(|(tenant, queued, running, done, shed)| {
                let (warm_hits, warm_misses) = warm.get(&tenant).copied().unwrap_or((0, 0));
                TenantStatus {
                    tenant,
                    queued,
                    running,
                    done,
                    shed,
                    warm_hits,
                    warm_misses,
                }
            })
            .collect();
        protocol::status(
            adm.queued_total() as u64,
            adm.inflight_total() as u64,
            adm.done_total(),
            adm.shed_total(),
            adm.draining(),
            &tenants,
        )
    }
}

/// A running service instance. Dropping it does *not* stop the server;
/// call [`shutdown`](Self::shutdown) then [`wait`](Self::wait).
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    reactor: Option<std::thread::JoinHandle<()>>,
    scheduler: Option<std::thread::JoinHandle<ServiceReport>>,
}

impl Server {
    /// The bound address (useful with port 0 in tests).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful drain (same path as SIGTERM).
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.wake.waker.wake();
    }

    /// Blocks until the drain completes and returns the final
    /// counters. Also called internally by the `serve` binary after a
    /// signal.
    pub fn wait(mut self) -> ServiceReport {
        let report = self
            .scheduler
            .take()
            .map(|h| h.join().unwrap_or_default())
            .unwrap_or_default();
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
        report
    }
}

/// Starts serving on `listener`. Returns immediately; the server runs
/// on background threads until a drain completes.
///
/// When a WAL is configured, startup first replays it (unless
/// `recover` is off), compacts it, and re-enqueues every non-terminal
/// job under its original tenant and job id — all *before* the reactor
/// starts, so recovered work is ahead of new submits and job-id
/// allocation resumes above the high-water mark.
pub fn serve(
    listener: TcpListener,
    factory: JobFactory,
    cfg: ServiceConfig,
) -> std::io::Result<Server> {
    listener.set_nonblocking(true)?;
    deepen_backlog(&listener, cfg.listen_backlog);
    let addr = listener.local_addr()?;

    // --- WAL replay + compaction (before any thread starts). ---
    let mut wal = None;
    let mut state = WalState::default();
    if let Some(path) = &cfg.wal_path {
        if cfg.recover {
            state = Wal::replay(path)?;
            Wal::compact(path, &state, cfg.idem_cap)?;
        }
        wal = Some(Wal::open(path, cfg.sync)?);
    }
    let mut idem = IdemMap::default();
    for (key, rec) in std::mem::take(&mut state.completed) {
        idem.record_done(key, rec.job_id, rec.job, rec.outcome, cfg.idem_cap);
    }

    let poller = Poller::new()?;
    let (waker, wake_rx) = reactor::wake_pair()?;

    let shared = Arc::new(Shared {
        admission: Mutex::new(Admission::new(cfg.queue_cap, cfg.quota)),
        stop: AtomicBool::new(false),
        done: AtomicBool::new(false),
        next_job_id: AtomicU64::new(state.max_job_id + 1),
        cancelled: AtomicU64::new(0),
        recovered: AtomicU64::new(0),
        idem: Mutex::new(idem),
        waiters: Mutex::new(Waiters::new()),
        wal,
        wake: Arc::new(WakeShared {
            waker,
            dirty: Mutex::new(Vec::new()),
        }),
        cfg: cfg.clone(),
        factory,
    });

    // --- Re-enqueue the recovered backlog. Jobs whose factory no
    // longer recognizes them (registry changed across the restart)
    // are terminally failed instead — durably, so they never replay
    // again — and journaled by the scheduler at startup.
    let mut unbuildable: Vec<(String, u64, String, Option<String>, JobError)> = Vec::new();
    for p in state.pending {
        let submit = Submit {
            tenant: p.tenant.clone(),
            job: p.job.clone(),
            params: p.params.clone(),
            deadline_ms: p.deadline_ms,
            tag: None,
            idem_key: p.idem_key.clone(),
        };
        match (shared.factory)(&submit) {
            Ok(job) => {
                if let Some(key) = &p.idem_key {
                    let mut idem = shared.idem.lock().unwrap_or_else(|e| e.into_inner());
                    idem.entries
                        .insert(key.clone(), IdemState::InFlight { job_id: p.job_id });
                }
                let pending = Pending {
                    job_id: p.job_id,
                    job,
                    deadline: p
                        .deadline_ms
                        .map_or(cfg.default_deadline, Duration::from_millis),
                    tag: None,
                    idem_key: p.idem_key.clone(),
                    writer: None,
                    received: None,
                    queued: Instant::now(),
                };
                {
                    let mut adm = shared.admission.lock().unwrap_or_else(|e| e.into_inner());
                    adm.restore(&p.tenant, pending, p.bytes as usize);
                }
                if let Some(w) = &shared.wal {
                    w.append(&WalRecord::Recovered { job_id: p.job_id })?;
                }
                if crate::obs::telemetry_active() {
                    crate::obs::telemetry::emit(
                        "service_recovered",
                        vec![
                            ("job_id", Value::UInt(p.job_id)),
                            ("tenant", Value::Str(p.tenant.clone())),
                            ("job", Value::Str(p.job.clone())),
                        ],
                    );
                }
                shared.recovered.fetch_add(1, Ordering::Relaxed);
            }
            Err(message) => {
                unbuildable.push((
                    p.tenant.clone(),
                    p.job_id,
                    p.job.clone(),
                    p.idem_key.clone(),
                    JobError::Failed {
                        message: format!("recovery: job no longer buildable: {message}"),
                    },
                ));
            }
        }
    }

    // Completions flow from worker threads to the scheduler; the
    // scheduler owns the receiver and a template sender for workers.
    let (tx, rx) = channel::<(u64, WorkerOutcome)>();

    let scheduler = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("vsnoop-svc-sched".into())
            .spawn(move || scheduler_loop(&shared, tx, rx, unbuildable))?
    };

    // Submits hop from the reactor to this thread so the WAL fsync in
    // `handle_submit` never stalls connection I/O. One thread, one
    // channel: global FIFO admission order is preserved.
    let (admit_tx, admit_rx) = channel::<AdmitRequest>();
    let admit = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("vsnoop-svc-admit".into())
            .spawn(move || {
                while let Ok(req) = admit_rx.recv() {
                    handle_submit(req.submit, req.bytes, &req.writer, &shared, req.received);
                }
            })?
    };

    // A SIGTERM should interrupt a blocked poll immediately.
    super::signal::set_wake_fd(shared.wake.waker.raw_fd());

    let reactor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("vsnoop-svc-reactor".into())
            .spawn(move || reactor_loop(listener, poller, wake_rx, &shared, admit_tx, admit))?
    };

    Ok(Server {
        addr,
        shared,
        reactor: Some(reactor),
        scheduler: Some(scheduler),
    })
}

/// Re-requests a deeper accept queue on an already-listening socket
/// (see [`ServiceConfig::listen_backlog`]). Best-effort: on failure the
/// bind-time backlog stays in effect, which only costs handshake
/// latency under connect storms.
fn deepen_backlog(listener: &TcpListener, backlog: u32) {
    use std::os::raw::c_int;
    extern "C" {
        fn listen(fd: c_int, backlog: c_int) -> c_int;
    }
    if backlog == 0 {
        return;
    }
    let capped = backlog.min(c_int::MAX as u32) as c_int;
    unsafe {
        let _ = listen(listener.as_raw_fd(), capped);
    }
}

// --- Reactor constants. ---

/// Token of the accept listener in the poll set.
const LISTENER_TOKEN: u64 = 0;
/// Token of the self-wake channel's read end.
const WAKE_TOKEN: u64 = 1;
/// First token handed to an accepted connection.
const FIRST_CONN_TOKEN: u64 = 2;
/// Bytes read per `read(2)` round.
const READ_CHUNK: usize = 16 * 1024;
/// Max read rounds per readiness event per connection — level-
/// triggered polling re-reports an fd that still has bytes, so capping
/// rounds bounds per-connection latency without losing data.
const READ_ROUNDS: usize = 8;
/// Target fill of the per-connection write buffer per flush.
const WBUF_TARGET: usize = 64 * 1024;
/// Outbox backlog past which the connection stops being read
/// (backpressure for clients that submit faster than they read).
const OUTBOX_PAUSE_BYTES: usize = 1 << 20;
/// How long the post-drain final flush may take before connections
/// are closed with output still queued.
const FINAL_FLUSH_GRACE: Duration = Duration::from_secs(5);
/// Poll timeout: the reactor re-checks stop/done flags and idle
/// timers at least this often.
const TICK: Duration = Duration::from_millis(50);

/// Per-connection reactor state.
struct Conn {
    stream: TcpStream,
    writer: ConnWriter,
    /// Partial frame bytes awaiting a newline.
    rbuf: Vec<u8>,
    /// An over-cap frame is streaming past; drop bytes to its newline.
    discarding: bool,
    /// Write buffer: lines copied out of the outbox, partially written.
    wbuf: Vec<u8>,
    wpos: usize,
    last_activity: Instant,
    /// Telemetry tap id when this connection subscribed.
    tap_id: Option<u64>,
    interest: Interest,
    /// Flush what's queued, then close (drain, idle reap).
    closing: bool,
    /// The client closed its write half; stop reading but keep
    /// delivering responses for its in-flight jobs.
    read_eof: bool,
}

impl Conn {
    fn flushed(&self) -> bool {
        self.wpos >= self.wbuf.len() && self.writer.backlog_lines() == 0
    }
}

/// The reactor: accept, read + frame assembly, request handling for
/// everything except submits (which hop to the admission thread),
/// outbox flushing, idle reaping, and the post-drain connection sweep.
fn reactor_loop(
    listener: TcpListener,
    mut poller: Poller,
    mut wake_rx: UnixStream,
    shared: &Arc<Shared>,
    admit_tx: Sender<AdmitRequest>,
    admit_join: std::thread::JoinHandle<()>,
) {
    let mut listener = Some(listener);
    if let Some(l) = &listener {
        let _ = poller.register(l.as_raw_fd(), LISTENER_TOKEN, Interest::READ);
    }
    let _ = poller.register(wake_rx.as_raw_fd(), WAKE_TOKEN, Interest::READ);
    if crate::obs::telemetry_active() {
        crate::obs::telemetry::emit(
            "service_reactor",
            vec![("backend", Value::Str(poller.backend_name().to_string()))],
        );
    }

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = FIRST_CONN_TOKEN;
    let mut admit = Some((admit_tx, admit_join));
    let mut done_at: Option<Instant> = None;
    let mut events: Vec<ReadyEvent> = Vec::new();
    let mut to_close: Vec<u64> = Vec::new();

    loop {
        if super::signal::requested() {
            // Propagate a signal-initiated drain to the scheduler.
            shared.stop.store(true, Ordering::SeqCst);
        }
        if shared.stop.load(Ordering::SeqCst) {
            if let Some(l) = listener.take() {
                let _ = poller.deregister(l.as_raw_fd());
                // Dropping closes the port; new connects are refused.
            }
        }
        if shared.done.load(Ordering::SeqCst) && done_at.is_none() {
            // The scheduler's drain is complete. Stop the admission
            // thread first — joining it guarantees every submit still
            // queued on its channel got its reply (a `draining` shed
            // or a dedup answer) into an outbox before we start the
            // final flush.
            if let Some((tx, join)) = admit.take() {
                drop(tx);
                let _ = join.join();
            }
            for conn in conns.values_mut() {
                conn.closing = true;
            }
            done_at = Some(Instant::now());
        }
        if let Some(at) = done_at {
            let expired = at.elapsed() >= FINAL_FLUSH_GRACE;
            to_close.clear();
            for (&token, conn) in conns.iter_mut() {
                let open = flush_conn(conn, &mut poller, token);
                if !open || expired || conn.flushed() {
                    to_close.push(token);
                }
            }
            for token in to_close.drain(..) {
                if let Some(conn) = conns.remove(&token) {
                    close_conn(conn, &mut poller);
                }
            }
            if conns.is_empty() {
                break;
            }
        }

        let poll_start = Instant::now();
        if poller.wait(&mut events, TICK).is_err() {
            // A broken poller would spin; back off and retry (the next
            // wait rebuilds the fd set from scratch on the poll
            // backend and kernel state survives on epoll).
            std::thread::sleep(Duration::from_millis(5));
            continue;
        }
        metrics::REACTOR_POLL_WAIT_US.record(poll_start.elapsed().as_micros() as u64);
        metrics::REACTOR_EVENTS_PER_WAKE.record(events.len() as u64);

        let dispatch_start = Instant::now();
        for ev in &events {
            match ev.token {
                LISTENER_TOKEN => {
                    accept_ready(&listener, &mut poller, &mut conns, &mut next_token, shared);
                }
                WAKE_TOKEN => reactor::drain_wakes(&mut wake_rx),
                token => {
                    let mut keep = true;
                    if let Some(conn) = conns.get_mut(&token) {
                        if ev.readable && !conn.closing && !conn.read_eof {
                            keep = read_ready(conn, shared, admit.as_ref().map(|(tx, _)| tx));
                        }
                        if keep {
                            keep = flush_conn(conn, &mut poller, token);
                        }
                        if keep && ev.hangup && !ev.readable {
                            keep = false;
                        }
                    }
                    if !keep {
                        if let Some(conn) = conns.remove(&token) {
                            close_conn(conn, &mut poller);
                        }
                    }
                }
            }
        }

        metrics::REACTOR_DISPATCH_US.record(dispatch_start.elapsed().as_micros() as u64);

        // Flush every connection another thread appended replies to.
        let flush_start = Instant::now();
        for token in shared.wake.take_dirty() {
            if let Some(conn) = conns.get_mut(&token) {
                if !flush_conn(conn, &mut poller, token) {
                    if let Some(conn) = conns.remove(&token) {
                        close_conn(conn, &mut poller);
                    }
                }
            }
        }
        metrics::REACTOR_FLUSH_US.record(flush_start.elapsed().as_micros() as u64);

        // Idle reaping + deferred closes (half-closed peers whose jobs
        // finished, reaped or draining connections now fully flushed).
        let now = Instant::now();
        let idle = shared.cfg.idle_timeout;
        to_close.clear();
        for (&token, conn) in conns.iter_mut() {
            let parked = conn.tap_id.is_none() && conn.writer.gate.inflight() == 0;
            if !conn.closing && conn.read_eof && parked && conn.flushed() {
                to_close.push(token);
                continue;
            }
            if !conn.closing
                && !conn.read_eof
                && parked
                && idle > Duration::ZERO
                && now.duration_since(conn.last_activity) >= idle
            {
                send_line(
                    &conn.writer,
                    &protocol::error_coded(
                        &format!("connection idle for {}ms; closing", idle.as_millis()),
                        "idle_timeout",
                        true,
                        &None,
                    ),
                );
                conn.closing = true;
            }
            if conn.closing {
                let open = flush_conn(conn, &mut poller, token);
                if !open || conn.flushed() {
                    to_close.push(token);
                }
            }
        }
        for token in to_close.drain(..) {
            if let Some(conn) = conns.remove(&token) {
                close_conn(conn, &mut poller);
            }
        }
        metrics::REACTOR_CONNECTIONS.set(conns.len() as u64);
    }
    metrics::REACTOR_CONNECTIONS.set(0);
    super::signal::clear_wake_fd(shared.wake.waker.raw_fd());
}

/// Accepts every connection the listener has ready.
fn accept_ready(
    listener: &Option<TcpListener>,
    poller: &mut Poller,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    shared: &Arc<Shared>,
) {
    let Some(listener) = listener else { return };
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let token = *next_token;
                *next_token += 1;
                if poller
                    .register(stream.as_raw_fd(), token, Interest::READ)
                    .is_err()
                {
                    continue;
                }
                let writer = Arc::new(Outbox {
                    token,
                    gate: PipelineGate::new(shared.cfg.pipeline_limit),
                    queue: Mutex::new(OutQueue::default()),
                    wake: Arc::clone(&shared.wake),
                });
                conns.insert(
                    token,
                    Conn {
                        stream,
                        writer,
                        rbuf: Vec::new(),
                        discarding: false,
                        wbuf: Vec::new(),
                        wpos: 0,
                        last_activity: Instant::now(),
                        tap_id: None,
                        interest: Interest::READ,
                        closing: false,
                        read_eof: false,
                    },
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(_) => return,
        }
    }
}

/// One frame-assembly output.
enum FrameOut {
    /// A complete request line (without its newline).
    Line(String),
    /// A line exceeded the frame cap; its bytes were discarded as they
    /// streamed in (never buffered whole).
    Oversized,
}

/// Feeds one freshly read chunk through the incremental JSONL frame
/// assembler. Unlike a `read_line`, an over-long frame costs O(max)
/// memory, not O(frame): once the cap is crossed the rest of the line
/// is dropped as it streams in (`discarding` carries that state across
/// chunks, exactly as the reads deliver them — torn frames reassemble
/// byte-for-byte).
fn assemble_frames(
    rbuf: &mut Vec<u8>,
    discarding: &mut bool,
    chunk: &[u8],
    max: usize,
    out: &mut Vec<FrameOut>,
) {
    let mut rest = chunk;
    while let Some(pos) = rest.iter().position(|&b| b == b'\n') {
        let overflow = *discarding || rbuf.len() + pos > max;
        if overflow {
            *discarding = false;
            rbuf.clear();
            out.push(FrameOut::Oversized);
        } else {
            rbuf.extend_from_slice(&rest[..pos]);
            out.push(FrameOut::Line(String::from_utf8_lossy(rbuf).into_owned()));
            rbuf.clear();
        }
        rest = &rest[pos + 1..];
    }
    if !*discarding {
        if rbuf.len() + rest.len() > max {
            *discarding = true;
            rbuf.clear();
        } else {
            rbuf.extend_from_slice(rest);
        }
    }
}

/// Reads as much as fairness allows from a readable connection and
/// handles every complete frame. Returns `false` when the connection
/// should be closed (hard error); EOF instead parks the connection so
/// in-flight responses still reach a half-closed peer.
fn read_ready(
    conn: &mut Conn,
    shared: &Arc<Shared>,
    admit_tx: Option<&Sender<AdmitRequest>>,
) -> bool {
    let mut chunk = [0u8; READ_CHUNK];
    let mut frames: Vec<FrameOut> = Vec::new();
    for _ in 0..READ_ROUNDS {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.read_eof = true;
                break;
            }
            Ok(n) => {
                conn.last_activity = Instant::now();
                frames.clear();
                assemble_frames(
                    &mut conn.rbuf,
                    &mut conn.discarding,
                    &chunk[..n],
                    shared.cfg.max_frame_bytes,
                    &mut frames,
                );
                for frame in frames.drain(..) {
                    match frame {
                        FrameOut::Line(text) => {
                            let trimmed = text.trim();
                            if !trimmed.is_empty() {
                                handle_request(
                                    trimmed,
                                    &conn.writer,
                                    shared,
                                    &mut conn.tap_id,
                                    admit_tx,
                                );
                            }
                        }
                        FrameOut::Oversized => {
                            send_line(
                                &conn.writer,
                                &protocol::error_coded(
                                    &format!(
                                        "request line exceeds {} bytes",
                                        shared.cfg.max_frame_bytes
                                    ),
                                    "oversized_frame",
                                    false,
                                    &None,
                                ),
                            );
                        }
                    }
                }
                if n < chunk.len() {
                    // Short read: the socket buffer is likely drained;
                    // a level-triggered poll re-reports any remainder.
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    true
}

/// Copies outbox lines into the write buffer and writes as far as the
/// socket allows, then re-arms poll interest to match what's left.
/// Returns `false` on a hard write error.
fn flush_conn(conn: &mut Conn, poller: &mut Poller, token: u64) -> bool {
    loop {
        if conn.wpos >= conn.wbuf.len() {
            conn.wbuf.clear();
            conn.wpos = 0;
            let lines = conn.writer.take_lines(WBUF_TARGET);
            if lines.is_empty() {
                break;
            }
            for line in &lines {
                conn.wbuf.extend_from_slice(line.as_bytes());
                conn.wbuf.push(b'\n');
            }
        }
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => return false,
            Ok(n) => conn.wpos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return false,
        }
    }
    let want = Interest {
        readable: !conn.closing
            && !conn.read_eof
            && conn.writer.backlog_bytes() < OUTBOX_PAUSE_BYTES,
        writable: conn.wpos < conn.wbuf.len() || conn.writer.backlog_lines() > 0,
    };
    if want != conn.interest {
        conn.interest = want;
        let _ = poller.modify(conn.stream.as_raw_fd(), token, want);
    }
    true
}

/// Tears one connection down: poll deregistration (before the fd
/// closes), outbox closure (pumps exit, future replies are dropped)
/// and telemetry-tap removal.
fn close_conn(conn: Conn, poller: &mut Poller) {
    let _ = poller.deregister(conn.stream.as_raw_fd());
    conn.writer.close();
    if let Some(id) = conn.tap_id {
        crate::obs::telemetry::remove_tap(id);
    }
}

/// Dispatches one parsed request line (on the reactor thread; only
/// submits leave it, hopping to the admission thread with a pipeline
/// slot already held).
fn handle_request(
    line: &str,
    writer: &ConnWriter,
    shared: &Arc<Shared>,
    tap_id: &mut Option<u64>,
    admit_tx: Option<&Sender<AdmitRequest>>,
) {
    let request = match Request::parse(line) {
        Ok(r) => r,
        Err(message) => {
            // Best-effort tag echo so even a malformed submit can be
            // correlated by the client.
            let tag = Value::parse(line)
                .ok()
                .and_then(|v| v.get("tag").and_then(Value::as_str).map(str::to_string));
            send_line(writer, &protocol::error(&message, &tag));
            return;
        }
    };
    match request {
        Request::Submit(submit) => {
            let received = Instant::now();
            metrics::SERVICE_REQUESTS.inc();
            let gate = &writer.gate;
            let mut granted = gate.try_acquire();
            if !granted {
                // An idempotency key the server already knows is owed
                // its original outcome even at the cap: dedup replies
                // cost no new work, and shedding them would break the
                // "accepted once, answered once" promise.
                let owed = submit.idem_key.as_deref().is_some_and(|key| {
                    shared
                        .idem
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .entries
                        .contains_key(key)
                });
                if owed {
                    gate.acquire();
                    granted = true;
                }
            }
            if !granted {
                metrics::SERVICE_SHED.inc();
                if crate::obs::telemetry_active() {
                    crate::obs::telemetry::emit(
                        "service_shed",
                        vec![
                            ("tenant", Value::Str(submit.tenant.clone())),
                            ("job", Value::Str(submit.job.clone())),
                            (
                                "reason",
                                Value::Str(ShedReason::PipelineFull.as_str().into()),
                            ),
                        ],
                    );
                }
                send_line(
                    writer,
                    &protocol::shed(ShedReason::PipelineFull, &submit.tag),
                );
                return;
            }
            let bytes = line.len();
            let forwarded = admit_tx.is_some_and(|tx| {
                tx.send(AdmitRequest {
                    submit: submit.clone(),
                    bytes,
                    writer: Arc::clone(writer),
                    received,
                })
                .is_ok()
            });
            if !forwarded {
                // The admission thread is gone: the drain has already
                // completed. Same answer a draining queue would give.
                metrics::SERVICE_SHED.inc();
                gate.release();
                send_line(writer, &protocol::shed(ShedReason::Draining, &submit.tag));
            }
        }
        Request::Status => send_line(writer, &shared.status_line()),
        Request::Metrics => send_line(writer, &protocol::metrics(metrics::snapshot_value())),
        Request::Ping => send_line(writer, &protocol::pong()),
        Request::Shutdown => {
            shared.stop.store(true, Ordering::SeqCst);
            send_line(writer, &protocol::shutting_down());
        }
        Request::Subscribe => {
            if tap_id.is_some() {
                send_line(writer, &protocol::error("already subscribed", &None));
                return;
            }
            send_line(writer, &protocol::subscribed());
            // Tap → *bounded* channel → pump thread → outbox. The tap
            // never blocks (telemetry producers hold the tap lock while
            // emitting, so a stalled subscriber must cost them nothing):
            // when the buffer is full the tap just raises the lagged
            // flag. The pump notices — likewise when the subscriber's
            // outbox backs up past the same bound, the outbox being
            // unbounded — emits `subscriber_lagged`, and disconnects
            // the subscription. The tap closure itself cannot call
            // `remove_tap`, which takes the lock `emit` is already
            // holding when it invokes taps.
            let (tx, rx) = sync_channel::<String>(shared.cfg.sub_buffer);
            let lagged = Arc::new(AtomicBool::new(false));
            let lag_flag = Arc::clone(&lagged);
            let id = crate::obs::telemetry::add_tap(move |record| {
                if lag_flag.load(Ordering::Relaxed) {
                    return;
                }
                if let Err(TrySendError::Full(_)) = tx.try_send(record.to_string()) {
                    lag_flag.store(true, Ordering::Relaxed);
                }
            });
            *tap_id = Some(id);
            let pump_writer = Arc::clone(writer);
            let sub_cap = shared.cfg.sub_buffer;
            let _ = std::thread::Builder::new()
                .name("vsnoop-svc-sub".into())
                .spawn(move || loop {
                    if lagged.load(Ordering::Relaxed) || pump_writer.backlog_lines() > sub_cap {
                        crate::obs::telemetry::remove_tap(id);
                        if crate::obs::telemetry_active() {
                            crate::obs::telemetry::emit(
                                "subscriber_lagged",
                                vec![("tap", Value::UInt(id))],
                            );
                        }
                        send_line(
                            &pump_writer,
                            &protocol::error_coded(
                                "subscriber lagged; subscription dropped",
                                "subscriber_lagged",
                                true,
                                &None,
                            ),
                        );
                        return;
                    }
                    if pump_writer.is_closed() {
                        crate::obs::telemetry::remove_tap(id);
                        return;
                    }
                    match rx.recv_timeout(Duration::from_millis(100)) {
                        Ok(record) => send_line(&pump_writer, &record),
                        Err(RecvTimeoutError::Timeout) => {}
                        // Tap removed elsewhere (connection closed).
                        Err(RecvTimeoutError::Disconnected) => return,
                    }
                });
        }
    }
}

/// Admission for one submit (on the admission thread): dedup on the
/// idempotency key, build the job, offer it, make the acceptance
/// durable, answer.
///
/// Durability ordering: the WAL `accepted` record is written *and
/// fsynced* before the `accepted` line goes out — a client that has
/// seen `accepted` owns a job that survives any crash. If the WAL
/// write fails the client gets a retryable `wal_failed` error instead
/// (the job still runs, and a keyed retry dedups against it, so the
/// failure degrades durability without breaking no-duplication).
///
/// Pipeline-gate contract: the caller (reactor) acquired one slot for
/// this submit. Paths that answer terminally here (dedup `done`
/// replay, factory error, shed) release it; paths that promise a
/// later `done` (queued, in-flight waiter, even `wal_failed` — the
/// job runs) keep it, and [`finish_job`] releases it with the `done`.
fn handle_submit(
    submit: Submit,
    bytes: usize,
    writer: &ConnWriter,
    shared: &Arc<Shared>,
    received: Instant,
) {
    // How long the submit sat on the reactor→admission channel (plus
    // any WAL stall ahead of it).
    metrics::SERVICE_ADMISSION_WAIT_US.record(received.elapsed().as_micros() as u64);
    // Idempotency dedup first: a duplicate must be answered from the
    // original run even when the server is draining or the queue is
    // full — the original acceptance already promised the work.
    if let Some(key) = &submit.idem_key {
        let idem = shared.idem.lock().unwrap_or_else(|e| e.into_inner());
        match idem.entries.get(key) {
            Some(IdemState::Done {
                job_id,
                job,
                outcome,
            }) => {
                let (job_id, line) = (*job_id, protocol::done(*job_id, job, outcome, &submit.tag));
                drop(idem);
                emit_idem_hit(shared, job_id, &submit, "done");
                send_line(writer, &protocol::accepted(job_id, &submit.tag));
                send_line(writer, &line);
                writer.gate.release();
                return;
            }
            Some(IdemState::InFlight { job_id }) => {
                let job_id = *job_id;
                // Still holding `idem`: the scheduler cannot record
                // this key done (it takes `idem` first), so the waiter
                // we register below is guaranteed to be drained.
                {
                    let mut waiters = shared.waiters.lock().unwrap_or_else(|e| e.into_inner());
                    waiters
                        .entry(job_id)
                        .or_default()
                        .push((Arc::clone(writer), submit.tag.clone()));
                }
                drop(idem);
                emit_idem_hit(shared, job_id, &submit, "in_flight");
                send_line(writer, &protocol::accepted(job_id, &submit.tag));
                return;
            }
            None => {}
        }
    }
    let job = match (shared.factory)(&submit) {
        Ok(job) => job,
        Err(message) => {
            send_line(writer, &protocol::error(&message, &submit.tag));
            writer.gate.release();
            return;
        }
    };
    let deadline = submit
        .deadline_ms
        .map_or(shared.cfg.default_deadline, Duration::from_millis);
    let job_id = shared.next_job_id.fetch_add(1, Ordering::Relaxed);
    if let Some(key) = &submit.idem_key {
        let mut idem = shared.idem.lock().unwrap_or_else(|e| e.into_inner());
        // A racing duplicate may have won between our peek and now;
        // defer to it exactly as the peek would have.
        match idem.entries.get(key) {
            Some(IdemState::Done {
                job_id,
                job,
                outcome,
            }) => {
                let (existing, line) =
                    (*job_id, protocol::done(*job_id, job, outcome, &submit.tag));
                drop(idem);
                emit_idem_hit(shared, existing, &submit, "race");
                send_line(writer, &protocol::accepted(existing, &submit.tag));
                send_line(writer, &line);
                writer.gate.release();
                return;
            }
            Some(IdemState::InFlight { job_id }) => {
                let existing = *job_id;
                {
                    let mut waiters = shared.waiters.lock().unwrap_or_else(|e| e.into_inner());
                    waiters
                        .entry(existing)
                        .or_default()
                        .push((Arc::clone(writer), submit.tag.clone()));
                }
                drop(idem);
                emit_idem_hit(shared, existing, &submit, "race");
                send_line(writer, &protocol::accepted(existing, &submit.tag));
                return;
            }
            None => {}
        }
        idem.entries
            .insert(key.clone(), IdemState::InFlight { job_id });
    }
    let pending = Pending {
        job_id,
        job,
        deadline,
        tag: submit.tag.clone(),
        idem_key: submit.idem_key.clone(),
        writer: Some(Arc::clone(writer)),
        received: Some(received),
        queued: Instant::now(),
    };
    let offered = {
        let mut adm = shared.admission.lock().unwrap_or_else(|e| e.into_inner());
        adm.offer(&submit.tenant, pending, bytes)
    };
    match offered {
        Ok(()) => {
            if let Some(w) = &shared.wal {
                let record = WalRecord::Accepted {
                    job_id,
                    tenant: submit.tenant.clone(),
                    job: submit.job.clone(),
                    params: submit.params.clone(),
                    deadline_ms: submit.deadline_ms,
                    idem_key: submit.idem_key.clone(),
                    bytes: bytes as u64,
                };
                let fsync_start = Instant::now();
                let appended = w.append(&record);
                metrics::SERVICE_WAL_FSYNC_US.record(fsync_start.elapsed().as_micros() as u64);
                if let Err(e) = appended {
                    eprintln!("service: wal append failed for job {job_id}: {e}");
                    send_line(
                        writer,
                        &protocol::error_coded(
                            "acceptance could not be made durable; retry",
                            "wal_failed",
                            true,
                            &submit.tag,
                        ),
                    );
                    return;
                }
            }
            if crate::obs::telemetry_active() {
                crate::obs::telemetry::emit(
                    "service_admit",
                    vec![
                        ("job_id", Value::UInt(job_id)),
                        ("tenant", Value::Str(submit.tenant.clone())),
                        ("job", Value::Str(submit.job.clone())),
                    ],
                );
            }
            send_line(writer, &protocol::accepted(job_id, &submit.tag));
        }
        Err(reason) => {
            // The key never entered flight: forget it so a later
            // (post-backoff) retry is a fresh submission.
            if let Some(key) = &submit.idem_key {
                let mut idem = shared.idem.lock().unwrap_or_else(|e| e.into_inner());
                if matches!(idem.entries.get(key), Some(IdemState::InFlight { job_id: id }) if *id == job_id)
                {
                    idem.entries.remove(key);
                }
            }
            metrics::SERVICE_SHED.inc();
            if crate::obs::telemetry_active() {
                crate::obs::telemetry::emit(
                    "service_shed",
                    vec![
                        ("tenant", Value::Str(submit.tenant.clone())),
                        ("job", Value::Str(submit.job.clone())),
                        ("reason", Value::Str(reason.as_str().into())),
                    ],
                );
            }
            send_line(writer, &protocol::shed(reason, &submit.tag));
            writer.gate.release();
        }
    }
}

/// Telemetry for a deduplicated (idempotency-key) submit.
fn emit_idem_hit(shared: &Arc<Shared>, job_id: u64, submit: &Submit, phase: &str) {
    let _ = shared;
    if crate::obs::telemetry_active() {
        crate::obs::telemetry::emit(
            "service_idem_hit",
            vec![
                ("job_id", Value::UInt(job_id)),
                ("tenant", Value::Str(submit.tenant.clone())),
                ("job", Value::Str(submit.job.clone())),
                ("phase", Value::Str(phase.to_string())),
            ],
        );
    }
}

/// The scheduler: dispatch, deadlines, completions, progress frames,
/// drain.
fn scheduler_loop(
    shared: &Arc<Shared>,
    tx: Sender<(u64, WorkerOutcome)>,
    rx: Receiver<(u64, WorkerOutcome)>,
    unbuildable: Vec<(String, u64, String, Option<String>, JobError)>,
) -> ServiceReport {
    let mut journal = shared.cfg.journal_path.as_deref().and_then(|p| {
        Journal::open_with_sync(p, false, shared.cfg.sync)
            .map_err(|e| eprintln!("service: journal {}: {e}", p.display()))
            .ok()
    });
    let mut running: HashMap<u64, Running> = HashMap::new();

    // Recovered jobs whose factory rejected them (the registry changed
    // across the restart): give them a durable terminal outcome right
    // away — "exactly one terminal outcome per accepted job" has to
    // hold even for work that can no longer run.
    for (tenant, job_id, name, idem_key, err) in unbuildable {
        finish_job(
            shared,
            &mut journal,
            &tenant,
            job_id,
            &name,
            0,
            &None,
            &idem_key,
            &None,
            Err(err),
        );
    }

    // Service heartbeat: queue/running/shed depth plus the process-wide
    // RSS and warm-pool counters, emitted on the shared obs cadence and
    // visible to subscribers even without a trace dir. The tick gates
    // itself so an idle, untraced server does no per-interval work.
    let _heartbeat = {
        let shared = Arc::clone(shared);
        crate::obs::Heartbeat::spawn("service", heartbeat_interval(), move || {
            // The Prometheus dump only needs a trace directory, not a
            // telemetry consumer.
            metrics::write_prom_if_traced();
            if !crate::obs::telemetry_active() {
                return;
            }
            let (queued, inflight, done, shed, draining) = {
                let adm = shared.admission.lock().unwrap_or_else(|e| e.into_inner());
                (
                    adm.queued_total() as u64,
                    adm.inflight_total() as u64,
                    adm.done_total(),
                    adm.shed_total(),
                    adm.draining(),
                )
            };
            let (warm_hits, warm_misses, warm_evictions) = crate::warm_counters();
            crate::obs::telemetry::emit(
                "service_heartbeat",
                vec![
                    ("queued", Value::UInt(queued)),
                    ("running", Value::UInt(inflight)),
                    ("done", Value::UInt(done)),
                    ("shed", Value::UInt(shed)),
                    ("draining", Value::Bool(draining)),
                    ("rss_bytes", Value::UInt(crate::obs::current_rss_bytes())),
                    ("warm_hits", Value::UInt(warm_hits)),
                    ("warm_misses", Value::UInt(warm_misses)),
                    ("warm_evictions", Value::UInt(warm_evictions)),
                ],
            );
            crate::obs::telemetry::emit("service_metrics", metrics::heartbeat_fields());
        })
    };

    let mut draining = false;
    let mut drain_started: Option<Instant> = None;
    let mut tokens_cancelled = false;

    loop {
        // 1. Notice a drain request and run its first step exactly once:
        //    stop admission, journal the queued backlog as cancelled.
        if !draining && shared.stop.load(Ordering::SeqCst) {
            draining = true;
            drain_started = Some(Instant::now());
            let evicted = {
                let mut adm = shared.admission.lock().unwrap_or_else(|e| e.into_inner());
                adm.set_draining();
                adm.evict_queued()
            };
            for (tenant, pending) in evicted {
                if let Some(rcv) = pending.received {
                    metrics::record_request(&tenant, rcv.elapsed().as_micros() as u64);
                }
                let outcome = Err(JobError::Cancelled {
                    reason: "drain: evicted from queue".into(),
                });
                finish_job(
                    shared,
                    &mut journal,
                    &tenant,
                    pending.job_id,
                    &pending.job.spec.name,
                    pending.job.spec.seed,
                    &pending.tag,
                    &pending.idem_key,
                    &pending.writer,
                    outcome,
                );
                shared.cancelled.fetch_add(1, Ordering::Relaxed);
                // Nothing was in flight for this job: bump only the
                // tenant's terminal count.
                let mut adm = shared.admission.lock().unwrap_or_else(|e| e.into_inner());
                adm.finish_queued(&tenant);
            }
        }

        // 2. Dispatch while worker slots are free (skipped once
        //    draining — the queue is already empty then).
        while running.len() < shared.cfg.workers {
            let next = {
                let mut adm = shared.admission.lock().unwrap_or_else(|e| e.into_inner());
                adm.next_dispatch()
            };
            let Some((tenant, pending)) = next else { break };
            dispatch(shared, &tx, &mut running, tenant, pending);
        }

        // 3. Collect one completion (bounded wait keeps the watchdog
        //    and drain timers live even when nothing completes).
        match rx.recv_timeout(Duration::from_millis(20)) {
            Ok((job_id, outcome)) => {
                // An abandoned job's late completion: its record is
                // gone; drop the message.
                if let Some(run) = running.remove(&job_id) {
                    let outcome = interpret(outcome, &run);
                    record_terminal_latency(&run);
                    if matches!(
                        outcome,
                        Err(JobError::TimedOut { .. } | JobError::Cancelled { .. })
                    ) {
                        shared.cancelled.fetch_add(1, Ordering::Relaxed);
                    }
                    finish_job(
                        shared,
                        &mut journal,
                        &run.tenant,
                        job_id,
                        &run.name,
                        run.seed,
                        &run.tag,
                        &run.idem_key,
                        &run.writer,
                        outcome,
                    );
                    let mut adm = shared.admission.lock().unwrap_or_else(|e| e.into_inner());
                    adm.finish(&run.tenant);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => unreachable!("scheduler holds a sender"),
        }

        // 4. Deadline watchdog + progress streaming: cancel overdue
        //    tokens, abandon jobs that ignored the cancel past
        //    `cancel_grace`, and stream a `progress` frame to each
        //    running job's submitter on the configured cadence.
        let now = Instant::now();
        let progress_every = shared.cfg.progress_interval;
        let mut abandoned: Vec<u64> = Vec::new();
        for (id, run) in running.iter_mut() {
            if run.cancel_cause.is_none() && now >= run.deadline {
                run.token.cancel();
                run.cancel_cause = Some(CancelCause::Deadline);
                run.cancelled_at = Some(now);
            }
            if let Some(at) = run.cancelled_at {
                if now.duration_since(at) >= shared.cfg.cancel_grace {
                    abandoned.push(*id);
                }
            }
            if progress_every > Duration::ZERO
                && now.duration_since(run.last_progress) >= progress_every
            {
                run.last_progress = now;
                if let Some(w) = &run.writer {
                    send_line(
                        w,
                        &protocol::progress(
                            *id,
                            &run.name,
                            now.duration_since(run.started).as_millis() as u64,
                            &run.tag,
                        ),
                    );
                }
            }
        }
        for id in abandoned {
            let run = running.remove(&id).expect("abandoned id vanished");
            record_terminal_latency(&run);
            let outcome = Err(abandon_error(&run));
            shared.cancelled.fetch_add(1, Ordering::Relaxed);
            finish_job(
                shared,
                &mut journal,
                &run.tenant,
                id,
                &run.name,
                run.seed,
                &run.tag,
                &run.idem_key,
                &run.writer,
                outcome,
            );
            let mut adm = shared.admission.lock().unwrap_or_else(|e| e.into_inner());
            adm.finish(&run.tenant);
        }

        // 5. Drain progression: natural-finish window, then cancel
        //    everything still running; exit once nothing is left.
        if draining {
            if running.is_empty() {
                break;
            }
            if !tokens_cancelled
                && drain_started.is_some_and(|t| t.elapsed() >= shared.cfg.drain_grace)
            {
                tokens_cancelled = true;
                let now = Instant::now();
                for run in running.values_mut() {
                    if run.cancel_cause.is_none() {
                        run.token.cancel();
                        run.cancel_cause = Some(CancelCause::Drain);
                        run.cancelled_at = Some(now);
                    }
                }
            }
        }
    }

    // Drain complete: flush and report. (Journal appends flush per
    // line; dropping it closes the file.)
    drop(journal);
    let report = {
        let adm = shared.admission.lock().unwrap_or_else(|e| e.into_inner());
        ServiceReport {
            done: adm.done_total(),
            shed: adm.shed_total(),
            cancelled: shared.cancelled.load(Ordering::Relaxed),
            recovered: shared.recovered.load(Ordering::Relaxed),
        }
    };
    if crate::obs::telemetry_active() {
        crate::obs::telemetry::emit(
            "service_drained",
            vec![
                ("done", Value::UInt(report.done)),
                ("shed", Value::UInt(report.shed)),
                ("cancelled", Value::UInt(report.cancelled)),
                ("recovered", Value::UInt(report.recovered)),
            ],
        );
    }
    shared.done.store(true, Ordering::SeqCst);
    // The reactor may be parked in a poll: start its final flush now.
    shared.wake.waker.wake();
    report
}

/// Telemetry heartbeat period: `VSNOOP_HEARTBEAT_MS`, default 1000
/// (same knob, same warn-once parser as the campaign supervisor).
fn heartbeat_interval() -> Duration {
    Duration::from_millis(crate::knob::env_positive_u64("VSNOOP_HEARTBEAT_MS").unwrap_or(1000))
}

/// Spawns the worker thread for one dispatched job and records it in
/// the running map.
fn dispatch(
    shared: &Arc<Shared>,
    tx: &Sender<(u64, WorkerOutcome)>,
    running: &mut HashMap<u64, Running>,
    tenant: String,
    pending: Pending,
) {
    let Pending {
        job_id,
        job,
        deadline,
        tag,
        idem_key,
        writer,
        received,
        queued,
    } = pending;
    metrics::record_queue_wait(&tenant, queued.elapsed().as_micros() as u64);
    let token = CancelToken::new();
    let limit_ms = deadline.as_millis() as u64;
    let now = Instant::now();
    running.insert(
        job_id,
        Running {
            tenant: tenant.clone(),
            name: job.spec.name.clone(),
            seed: job.spec.seed,
            token: token.clone(),
            started: now,
            deadline: now + deadline,
            limit_ms,
            tag,
            idem_key,
            writer,
            received,
            cancel_cause: None,
            cancelled_at: None,
            last_progress: now,
        },
    );
    if crate::obs::telemetry_active() {
        crate::obs::telemetry::emit(
            "service_dispatch",
            vec![
                ("job_id", Value::UInt(job_id)),
                ("tenant", Value::Str(tenant.clone())),
                ("job", Value::Str(job.spec.name.clone())),
            ],
        );
    }
    let tx = tx.clone();
    let spawned = std::thread::Builder::new()
        .name(format!("vsnoop-svc-job-{job_id}"))
        .spawn(move || {
            let ctx = JobCtx {
                token: token.clone(),
                attempt: 1,
            };
            let name = job.spec.name.clone();
            let result = catch_unwind(AssertUnwindSafe(|| {
                crate::runner::with_current(token.clone(), || {
                    crate::obs::with_scope(&name, || {
                        crate::obs::with_tenant(&tenant, || (job.run)(&ctx))
                    })
                })
            }));
            let outcome = match result {
                Ok(Ok(output)) => WorkerOutcome::Ok(output),
                Ok(Err(message)) => WorkerOutcome::Failed(message),
                Err(payload) => {
                    if payload.downcast_ref::<Cancelled>().is_some() {
                        WorkerOutcome::CancelUnwind
                    } else {
                        WorkerOutcome::Panicked(crate::runner::panic_message(payload.as_ref()))
                    }
                }
            };
            // The scheduler may have abandoned us; a closed channel is
            // simply ignored.
            let _ = tx.send((job_id, outcome));
        });
    if spawned.is_err() {
        // Thread spawn failure (resource exhaustion): fail the job
        // through the normal path rather than leaking the slot.
        let run = running.remove(&job_id).expect("just inserted");
        let outcome = Err(JobError::Failed {
            message: "service: could not spawn worker thread".into(),
        });
        let mut journal_none: Option<Journal> = None;
        finish_job(
            shared,
            &mut journal_none,
            &run.tenant,
            job_id,
            &run.name,
            run.seed,
            &run.tag,
            &run.idem_key,
            &run.writer,
            outcome,
        );
        let mut adm = shared.admission.lock().unwrap_or_else(|e| e.into_inner());
        adm.finish(&run.tenant);
    }
}

/// Records the run-time and end-to-end latency histograms for a job
/// leaving the running map (any terminal path). Jobs recovered from
/// the WAL have no `received` instant and skip the end-to-end record.
fn record_terminal_latency(run: &Running) {
    let now = Instant::now();
    metrics::SERVICE_RUN_US.record(now.duration_since(run.started).as_micros() as u64);
    if let Some(rcv) = run.received {
        metrics::record_request(&run.tenant, now.duration_since(rcv).as_micros() as u64);
    }
}

/// Maps a worker's raw outcome to the client-visible error, using the
/// scheduler's knowledge of *why* a cancellation unwind happened.
fn interpret(outcome: WorkerOutcome, run: &Running) -> Result<String, JobError> {
    match outcome {
        WorkerOutcome::Ok(output) => Ok(output),
        WorkerOutcome::Failed(message) => Err(JobError::Failed { message }),
        WorkerOutcome::Panicked(message) => Err(JobError::Panicked { message }),
        WorkerOutcome::CancelUnwind => match run.cancel_cause {
            Some(CancelCause::Deadline) | None => Err(JobError::TimedOut {
                limit_ms: run.limit_ms,
            }),
            Some(CancelCause::Drain) => Err(JobError::Cancelled {
                reason: "drain".into(),
            }),
        },
    }
}

/// The error journaled for a job abandoned after ignoring its cancel.
fn abandon_error(run: &Running) -> JobError {
    match run.cancel_cause {
        Some(CancelCause::Drain) => JobError::Cancelled {
            reason: "drain: abandoned (never polled)".into(),
        },
        _ => JobError::TimedOut {
            limit_ms: run.limit_ms,
        },
    }
}

/// Terminal bookkeeping shared by every completion path: telemetry,
/// WAL `done` record, journal entry, idempotency-map completion,
/// `done` responses to the submitting connection and every waiter —
/// each send also releasing that connection's pipeline-gate slot.
///
/// Ordering is the durability contract's other half: the outcome is
/// made durable (WAL fsync, journal) *before* any client sees `done`,
/// so an outcome a client has observed can never be re-run after a
/// restart — that would duplicate the job's side effects.
#[allow(clippy::too_many_arguments)]
fn finish_job(
    shared: &Arc<Shared>,
    journal: &mut Option<Journal>,
    tenant: &str,
    job_id: u64,
    name: &str,
    seed: u64,
    tag: &Option<String>,
    idem_key: &Option<String>,
    writer: &Option<ConnWriter>,
    outcome: Result<String, JobError>,
) {
    metrics::SERVICE_DONE.inc();
    if crate::obs::telemetry_active() {
        let status = match &outcome {
            Ok(_) => "ok".to_string(),
            Err(e) => e.kind().to_string(),
        };
        crate::obs::telemetry::emit(
            "service_done",
            vec![
                ("job_id", Value::UInt(job_id)),
                ("tenant", Value::Str(tenant.to_string())),
                ("job", Value::Str(name.to_string())),
                ("status", Value::Str(status)),
            ],
        );
    }
    if let Some(w) = &shared.wal {
        let record = WalRecord::Done {
            job_id,
            outcome: outcome.clone(),
        };
        if let Err(e) = w.append(&record) {
            eprintln!("service: wal done append failed for job {job_id}: {e}");
        }
    }
    if let Some(j) = journal.as_mut() {
        let entry = protocol::journal_entry(job_id, name, seed, outcome.clone());
        if let Err(e) = j.append(&entry) {
            eprintln!("service: journal append failed: {e}");
        }
    }
    // Record completion in the idem map *before* collecting waiters
    // (same idem → waiters lock order as submit-side registration): a
    // duplicate submit either sees InFlight and lands in the waiter
    // list we are about to drain, or sees Done and answers itself.
    let waiting = {
        if let Some(key) = idem_key {
            let mut idem = shared.idem.lock().unwrap_or_else(|e| e.into_inner());
            idem.record_done(
                key.clone(),
                job_id,
                name.to_string(),
                outcome.clone(),
                shared.cfg.idem_cap,
            );
        }
        let mut waiters = shared.waiters.lock().unwrap_or_else(|e| e.into_inner());
        waiters.remove(&job_id).unwrap_or_default()
    };
    if let Some(w) = writer {
        send_line(w, &protocol::done(job_id, name, &outcome, tag));
        w.gate.release();
    }
    for (w, waiter_tag) in waiting {
        send_line(&w, &protocol::done(job_id, name, &outcome, &waiter_tag));
        w.gate.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(chunks: &[&[u8]], max: usize) -> (Vec<String>, usize, Vec<u8>, bool) {
        let mut rbuf = Vec::new();
        let mut discarding = false;
        let mut out = Vec::new();
        for chunk in chunks {
            assemble_frames(&mut rbuf, &mut discarding, chunk, max, &mut out);
        }
        let mut lines = Vec::new();
        let mut oversized = 0usize;
        for frame in out {
            match frame {
                FrameOut::Line(l) => lines.push(l),
                FrameOut::Oversized => oversized += 1,
            }
        }
        (lines, oversized, rbuf, discarding)
    }

    #[test]
    fn assembles_lines_torn_across_chunks() {
        let (lines, oversized, rbuf, discarding) = collect(
            &[b"{\"op\":\"pi", b"ng\"}\n{\"op\"", b":\"status\"}\npar"],
            1024,
        );
        assert_eq!(lines, vec!["{\"op\":\"ping\"}", "{\"op\":\"status\"}"]);
        assert_eq!(oversized, 0);
        assert_eq!(rbuf, b"par");
        assert!(!discarding);
    }

    #[test]
    fn one_chunk_many_frames_and_empty_lines_pass_through() {
        let (lines, oversized, rbuf, _) = collect(&[b"a\nb\n\nc\n"], 1024);
        assert_eq!(lines, vec!["a", "b", "", "c"]);
        assert_eq!(oversized, 0);
        assert!(rbuf.is_empty());
    }

    #[test]
    fn oversized_frame_is_discarded_not_buffered() {
        // 10-byte cap; a 20-byte line torn across chunks must cost one
        // Oversized, keep nothing buffered, and resync on the newline.
        let (lines, oversized, rbuf, discarding) =
            collect(&[b"0123456789AB", b"CDEFGHIJ\nok\n"], 10);
        assert_eq!(lines, vec!["ok"]);
        assert_eq!(oversized, 1);
        assert!(rbuf.is_empty());
        assert!(!discarding);
    }

    #[test]
    fn frame_exactly_at_cap_is_allowed_and_one_over_is_not() {
        let at = vec![b'x'; 10];
        let mut with_newline = at.clone();
        with_newline.push(b'\n');
        let (lines, oversized, _, _) = collect(&[&with_newline], 10);
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].len(), 10);
        assert_eq!(oversized, 0);

        let over = vec![b'y'; 11];
        let mut with_newline = over.clone();
        with_newline.push(b'\n');
        let (lines, oversized, _, _) = collect(&[&with_newline], 10);
        assert!(lines.is_empty());
        assert_eq!(oversized, 1);
    }

    #[test]
    fn discard_state_spans_many_chunks() {
        let big = vec![b'z'; 64];
        let (lines, oversized, _, discarding) = collect(&[&big, &big, &big, b"\ndone\n"], 16);
        assert_eq!(lines, vec!["done"]);
        assert_eq!(oversized, 1);
        assert!(!discarding);
    }
}

//! On-chip network substrate for the *virtual snooping* reproduction.
//!
//! Models the interconnect of the paper's simulated system (Table II): a
//! 4x4 2D mesh with 16-byte links and a 4-cycle router pipeline, with
//! XY-routed hop accounting, GEMS-style message sizing (8-byte control,
//! 72-byte data), per-kind traffic statistics in byte-links, and a simple
//! contention-aware latency model.
//!
//! The crate is deliberately independent of the cache and virtualization
//! layers: it deals in [`NodeId`]s and [`MessageKind`]s only.
//!
//! # Examples
//!
//! ```
//! use sim_net::{Network, Mesh, MessageKind, NodeId};
//!
//! let mut net = Network::new(Mesh::new(4, 4));
//! // A broadcast snoop from node 0 to everyone else:
//! let dests: Vec<_> = net.mesh().nodes().filter(|&n| n != NodeId::new(0)).collect();
//! net.multicast(NodeId::new(0), dests, MessageKind::Request);
//! assert_eq!(net.traffic().messages(), 15);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fault;
mod latency;
mod message;
mod network;
mod topology;
mod traffic;

pub use fault::{Delivery, LinkFaultConfig, LinkFaults};
pub use latency::LatencyModel;
pub use message::MessageKind;
pub use network::{Network, SendOutcome};
pub use topology::{Mesh, NetConfigError, NodeId};
pub use traffic::TrafficStats;

//! Campaign telemetry: structured lifecycle + heartbeat records.
//!
//! A process-global sink appends one JSON object per record to
//! `telemetry.jsonl` in the trace directory — job lifecycle events
//! from the supervisor (`job_start`, `job_ok`, `job_retry`,
//! `job_failed`, `job_abandoned`), periodic `heartbeat` records
//! (rounds/s, RSS, warm-pool counters), shard-panic events from
//! [`scatter`](crate::runner::scatter), and flight-dump notices. Each
//! line carries a monotonically increasing `seq`, a wall-clock
//! `ts_ms`, a monotonic `mono_ms` (milliseconds since process start,
//! immune to clock steps), the emitting thread's scope label, and the
//! event's own fields.
//!
//! Everything goes to the side file, **never stdout**, so report
//! output stays byte-identical with telemetry on. When tracing is off,
//! [`emit`] returns before touching the lock — no file, no
//! allocation. Records are flushed per line so `obs-tail` (and plain
//! `tail -f`) observe them live.

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::runner::json::Value;

/// File name of the telemetry sink inside the trace directory.
pub const TELEMETRY_FILE: &str = "telemetry.jsonl";

struct Sink {
    path: PathBuf,
    file: File,
}

static SINK: Mutex<Option<Sink>> = Mutex::new(None);

/// Process-global record sequence. Global (not per sink) so a record
/// keeps the same `seq` whether it reaches the file, a live tap, or
/// both, and so re-targeting the trace directory mid-process never
/// makes `seq` run backwards in a subscriber's stream.
static SEQ: AtomicU64 = AtomicU64::new(0);

/// A live in-process subscriber to the telemetry stream; receives each
/// finished JSON line. Must be cheap and non-blocking (the service's
/// taps forward into an unbounded channel drained by the connection
/// writer).
type Tap = Box<dyn Fn(&str) + Send + Sync>;

/// Registered taps, with the handle ids used to remove them.
static TAPS: Mutex<Vec<(u64, Tap)>> = Mutex::new(Vec::new());
static NEXT_TAP_ID: AtomicU64 = AtomicU64::new(1);

/// Fast-path mirror of "TAPS is non-empty", so [`emit`] stays one
/// predictable branch when telemetry is fully off.
static TAP_ACTIVE: AtomicBool = AtomicBool::new(false);

/// Whether any live tap is registered. Telemetry records are built
/// when *either* this or the trace directory is on.
pub fn tap_active() -> bool {
    TAP_ACTIVE.load(Ordering::Relaxed)
}

/// Registers a live subscriber for every subsequent telemetry record
/// (the serialized JSON line, no trailing newline). Returns the handle
/// to pass to [`remove_tap`]. Taps receive records even when no trace
/// directory is configured — the service uses this to stream
/// heartbeats and job lifecycle events to `subscribe` connections
/// without requiring tracing on disk.
pub fn add_tap(tap: impl Fn(&str) + Send + Sync + 'static) -> u64 {
    let id = NEXT_TAP_ID.fetch_add(1, Ordering::Relaxed);
    let mut taps = TAPS.lock().unwrap_or_else(|e| e.into_inner());
    taps.push((id, Box::new(tap)));
    TAP_ACTIVE.store(true, Ordering::Relaxed);
    id
}

/// Unregisters a tap registered by [`add_tap`]. Unknown handles are
/// ignored (a subscriber may race its own disconnect).
pub fn remove_tap(id: u64) {
    let mut taps = TAPS.lock().unwrap_or_else(|e| e.into_inner());
    taps.retain(|(tid, _)| *tid != id);
    TAP_ACTIVE.store(!taps.is_empty(), Ordering::Relaxed);
}

/// Drops the open sink so the next [`emit`] reopens it against the
/// (possibly re-targeted) trace directory.
pub(super) fn invalidate_sink() {
    *SINK.lock().unwrap_or_else(|e| e.into_inner()) = None;
}

/// Path of the telemetry sink for the current trace directory, or
/// `None` when tracing is off.
pub fn telemetry_path() -> Option<PathBuf> {
    super::trace_dir().map(|d| d.join(TELEMETRY_FILE))
}

/// Appends one telemetry record. A no-op (one predictable branch, no
/// allocation) when tracing is disabled.
///
/// The record is
/// `{"seq":…,"ts_ms":…,"mono_ms":…,"scope":…,"event":…, <fields>}`;
/// writes are best-effort — telemetry must never fail a run, so I/O
/// errors silently drop the record.
pub fn emit(event: &str, fields: Vec<(&'static str, Value)>) {
    let tapped = tap_active();
    if !super::enabled() && !tapped {
        return;
    }
    let mut pairs: Vec<(String, Value)> = Vec::with_capacity(fields.len() + 5);
    pairs.push((
        "seq".to_string(),
        Value::UInt(SEQ.fetch_add(1, Ordering::Relaxed)),
    ));
    pairs.push(("ts_ms".to_string(), Value::UInt(now_ms())));
    // The monotonic companion: `ts_ms` is wall-clock and can step
    // backwards under clock adjustments; `mono_ms` never does.
    // Consumers that predate the field ignore unknown keys, so old
    // journals and tails keep parsing.
    pairs.push(("mono_ms".to_string(), Value::UInt(super::mono_ms())));
    pairs.push(("scope".to_string(), Value::Str(super::scope_label())));
    pairs.push(("event".to_string(), Value::Str(event.to_string())));
    for (k, v) in fields {
        pairs.push((k.to_string(), v));
    }
    let line = Value::Obj(pairs).to_json();

    if super::enabled() {
        if let Some(path) = telemetry_path() {
            let mut guard = SINK.lock().unwrap_or_else(|e| e.into_inner());
            // (Re)open on first use or after a trace-dir change.
            let reopen = match guard.as_ref() {
                Some(sink) => sink.path != path,
                None => true,
            };
            if reopen {
                let opened = path.parent().and_then(|dir| {
                    std::fs::create_dir_all(dir).ok()?;
                    OpenOptions::new()
                        .create(true)
                        .append(true)
                        .open(&path)
                        .ok()
                });
                *guard = opened.map(|file| Sink { path, file });
            }
            if let Some(sink) = guard.as_mut() {
                if writeln!(sink.file, "{line}").is_ok() {
                    let _ = sink.file.flush();
                }
            }
        }
    }

    // Taps run outside the sink lock; a slow file must not delay live
    // subscribers (nor vice versa).
    if tapped {
        let taps = TAPS.lock().unwrap_or_else(|e| e.into_inner());
        for (_, tap) in taps.iter() {
            tap(&line);
        }
    }
}

/// Milliseconds since the Unix epoch (0 if the clock is before it).
fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_without_tracing_is_silent() {
        // Unit tests in this binary never enable tracing; emitting must
        // not create a sink.
        if !super::super::enabled() {
            emit("noop", vec![("x", Value::UInt(1))]);
            assert!(SINK.lock().unwrap().is_none());
        }
    }
}

//! Snoop energy accounting.
//!
//! "The first goal of snoop filtering is to reduce the power consumption
//! for snoop tag lookups and snoop message transfers" (Section V-B, citing
//! Moshovos et al.'s observation that snoop-induced tag lookups consume a
//! significant share of cache dynamic power as core counts grow). This
//! module turns the simulator's counters into an energy estimate so the
//! benefit the paper argues for can be reported directly.
//!
//! The constants are per-event energies in picojoules, with defaults in
//! the range reported for ~45 nm L2 tag arrays and on-chip links; they are
//! knobs, not measurements — what matters for the paper's claim is the
//! *relative* energy of filtered vs. broadcast coherence.

use crate::stats::SimStats;
use sim_net::TrafficStats;

/// Per-event energy constants (picojoules).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct EnergyModel {
    /// One snoop-induced L2 tag lookup.
    pub tag_lookup_pj: f64,
    /// Moving one byte across one mesh link (wire + router).
    pub link_byte_pj: f64,
    /// One DRAM data access.
    pub dram_access_pj: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            tag_lookup_pj: 18.0,
            link_byte_pj: 1.1,
            dram_access_pj: 12_000.0,
        }
    }
}

/// Energy attributed to one simulation run, by component (picojoules).
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct EnergyBreakdown {
    /// Snoop tag-lookup energy.
    pub tag_pj: f64,
    /// Network transfer energy.
    pub network_pj: f64,
    /// DRAM access energy (data fetches and dirty write-backs).
    pub dram_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.tag_pj + self.network_pj + self.dram_pj
    }

    /// The snoop-subsystem energy (tag lookups + network transfers) —
    /// the component filtering targets; DRAM energy is mostly
    /// policy-independent.
    pub fn snoop_pj(&self) -> f64 {
        self.tag_pj + self.network_pj
    }

    /// Total energy relative to `baseline`, as a fraction.
    pub fn relative_to(&self, baseline: &EnergyBreakdown) -> f64 {
        let b = baseline.total_pj();
        if b == 0.0 {
            0.0
        } else {
            self.total_pj() / b
        }
    }
}

impl EnergyModel {
    /// Computes the energy of a run from its statistics.
    pub fn breakdown(&self, stats: &SimStats, traffic: &TrafficStats) -> EnergyBreakdown {
        EnergyBreakdown {
            tag_pj: stats.snoops as f64 * self.tag_lookup_pj,
            network_pj: traffic.byte_links() as f64 * self.link_byte_pj,
            dram_pj: (stats.data_memory + stats.writebacks) as f64 * self.dram_access_pj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_net::MessageKind;

    fn stats_with(snoops: u64, data_memory: u64, writebacks: u64) -> SimStats {
        SimStats {
            snoops,
            data_memory,
            writebacks,
            ..SimStats::new(4)
        }
    }

    #[test]
    fn breakdown_is_linear_in_events() {
        let m = EnergyModel::default();
        let mut traffic = TrafficStats::default();
        traffic.record(MessageKind::Data, 2); // 144 byte-links
        let e = m.breakdown(&stats_with(100, 3, 1), &traffic);
        assert!((e.tag_pj - 100.0 * m.tag_lookup_pj).abs() < 1e-9);
        assert!((e.network_pj - 144.0 * m.link_byte_pj).abs() < 1e-9);
        assert!((e.dram_pj - 4.0 * m.dram_access_pj).abs() < 1e-9);
        assert!(e.total_pj() > 0.0);
    }

    #[test]
    fn filtering_saves_energy_proportionally() {
        let m = EnergyModel::default();
        let traffic = TrafficStats::default();
        let broadcast = m.breakdown(&stats_with(16_000, 0, 0), &traffic);
        let filtered = m.breakdown(&stats_with(4_000, 0, 0), &traffic);
        assert!((filtered.relative_to(&broadcast) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn relative_to_empty_baseline_is_zero() {
        let e = EnergyBreakdown::default();
        assert_eq!(e.relative_to(&EnergyBreakdown::default()), 0.0);
    }
}

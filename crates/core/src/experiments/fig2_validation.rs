//! Cross-validation of the Fig. 2 analytic model against the simulator.
//!
//! Fig. 2 is a closed-form projection; the paper never checks it against
//! its own simulator. This experiment does: it builds the 2/4/8/16-VM
//! machines (8 to 64 cores, 4 vCPUs per VM, pinned), injects a
//! configurable level of hypervisor activity, measures the *achieved*
//! host share of misses, and compares the measured snoop reduction with
//! what the closed form predicts for that share. Agreement here means the
//! simulator's filtering arithmetic and the model describe the same
//! machine.

use workloads::{try_profile, AppProfile, Workload, WorkloadConfig};

use crate::analytic::try_snoop_reduction;
use crate::config::SystemConfig;
use crate::error::SimError;
use crate::experiments::common::RunScale;
use crate::policy::{ContentPolicy, FilterPolicy};
use crate::simulator::Simulator;

/// One validated point of the Fig. 2 sweep.
#[derive(Clone, Copy, Debug)]
pub struct Fig2Validation {
    /// Number of VMs (4 vCPUs each).
    pub n_vms: usize,
    /// Total cores.
    pub cores: usize,
    /// Measured hypervisor+dom0 share of L2 misses, percent.
    pub host_miss_pct: f64,
    /// Snoop reduction measured by the simulator, percent.
    pub measured_pct: f64,
    /// Snoop reduction the closed form predicts for the measured host
    /// share, percent.
    pub analytic_pct: f64,
}

impl Fig2Validation {
    /// Absolute disagreement between simulator and model, in percentage
    /// points.
    pub fn gap_pp(&self) -> f64 {
        (self.measured_pct - self.analytic_pct).abs()
    }
}

fn machine(n_vms: usize) -> SystemConfig {
    let (w, h) = match n_vms {
        2 => (4, 2),
        4 => (4, 4),
        8 => (8, 4),
        16 => (8, 8),
        _ => panic!("unsupported VM count {n_vms}"),
    };
    SystemConfig {
        mesh_width: w,
        mesh_height: h,
        n_vms,
        ..SystemConfig::paper_default()
    }
}

/// A host-activity level for the validation sweep.
fn with_host_fraction(base: &AppProfile, frac: f64) -> &'static AppProfile {
    let mut p = *base;
    p.trace.hyp_frac = frac * 0.4;
    p.trace.dom0_frac = frac * 0.6;
    Box::leak(Box::new(p))
}

/// Runs the validation sweep: VM counts 2/4/8/16 at two host-activity
/// levels (none, and roughly 10% of misses).
///
/// # Errors
///
/// Returns [`SimError::UnknownProfile`] if the reference profile is
/// missing from the registry, [`SimError::InvalidConfig`] if a swept
/// machine shape fails validation, and [`SimError::AnalyticOutOfRange`]
/// if a run produces a host-miss share the closed form cannot accept.
pub fn fig2_validation(scale: RunScale) -> Result<Vec<Fig2Validation>, SimError> {
    let base = try_profile("ferret")?;
    let mut out = Vec::new();
    for &n_vms in &[2usize, 4, 8, 16] {
        let cfg = machine(n_vms);
        for &host_frac in &[0.0, 0.02] {
            let app = with_host_fraction(base, host_frac);
            let mut sim =
                Simulator::try_new(cfg, FilterPolicy::VsnoopBase, ContentPolicy::Broadcast)?;
            let mut wl = Workload::homogeneous(
                app,
                cfg.n_vms,
                WorkloadConfig {
                    vcpus_per_vm: cfg.vcpus_per_vm,
                    seed: scale.seed,
                    host_activity: host_frac > 0.0,
                    content_sharing: false,
                },
            );
            sim.run(&mut wl, scale.warmup_rounds);
            sim.reset_measurement();
            sim.run(&mut wl, scale.measure_rounds);
            let s = sim.stats();
            let baseline = (s.l2_misses.max(1) * cfg.n_cores() as u64) as f64;
            let measured = 100.0 * (1.0 - s.snoops as f64 / baseline);
            let host = s.host_miss_fraction();
            // The host share is a measurement; feed it through the
            // fallible model so a pathological run surfaces as a typed
            // error instead of a panic inside the sweep.
            let analytic = try_snoop_reduction(host, cfg.vcpus_per_vm as usize, cfg.n_cores())?;
            out.push(Fig2Validation {
                n_vms,
                cores: cfg.n_cores(),
                host_miss_pct: 100.0 * host,
                measured_pct: measured,
                analytic_pct: 100.0 * analytic,
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulator_matches_the_closed_form() {
        let scale = RunScale {
            warmup_rounds: 8_000,
            measure_rounds: 10_000,
            seed: 0xC0FFEE,
        };
        let rows = fig2_validation(scale).expect("registered profile, valid machines");
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(
                r.gap_pp() < 1.5,
                "{} VMs / host {:.1}%: measured {:.1}% vs analytic {:.1}%",
                r.n_vms,
                r.host_miss_pct,
                r.measured_pct,
                r.analytic_pct
            );
        }
        // The ideal 16-VM point reproduces the paper's ">93%".
        let ideal64 = rows
            .iter()
            .find(|r| r.n_vms == 16 && r.host_miss_pct < 0.1)
            .unwrap();
        assert!(ideal64.measured_pct > 93.0);
        // Host activity strictly lowers the reduction.
        for &n in &[2usize, 4, 8, 16] {
            let pair: Vec<_> = rows.iter().filter(|r| r.n_vms == n).collect();
            assert!(pair[1].measured_pct < pair[0].measured_pct);
        }
    }
}

//! A minimal readiness reactor over raw `poll(2)`/`epoll(7)` FFI.
//!
//! The workspace builds offline with no async runtime and no `libc`
//! crate, so — exactly like [`super::signal`] — this module declares
//! the handful of syscall wrappers it needs against the platform libc
//! that `std` already links. [`Poller`] multiplexes readiness for the
//! server's listener and every client socket on **one thread**; the
//! connection state machine itself lives in [`super::server`].
//!
//! Two backends share one interface:
//!
//! - **`poll(2)`** — the portable baseline. The fd set is rebuilt from
//!   a small map on every wait, which is O(n) per tick but has no
//!   kernel registration state to get out of sync.
//! - **`epoll(7)`** — the Linux upgrade, O(ready) per wait. Selected
//!   automatically on Linux; `VSNOOP_REACTOR=poll` forces the
//!   baseline (the high-concurrency loadtest lane exercises both).
//!
//! Both are level-triggered: the server only registers write interest
//! while a connection has buffered output, so an idle socket never
//! spins the loop.
//!
//! [`Waker`] is the cross-thread wakeup: one nonblocking socketpair
//! whose read end sits in the poll set. Any thread (the scheduler
//! finishing a job, a subscriber pump, the SIGTERM handler — `write`
//! is async-signal-safe) can make a blocked [`Poller::wait`] return
//! now by writing one byte.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// `struct pollfd` from `<poll.h>`.
#[repr(C)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;

extern "C" {
    /// `poll(2)` from the platform libc (linked by `std`).
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
}

#[cfg(target_os = "linux")]
mod epoll {
    //! Raw `epoll(7)` declarations (Linux only).

    /// `struct epoll_event`; packed on x86-64 per the kernel ABI.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn close(fd: i32) -> i32;
    }
}

/// What a registration wants to be told about. Level-triggered: keep
/// `writable` off unless output is actually buffered, or the loop will
/// spin on an always-writable socket.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd has bytes to read (or a peer hangup).
    pub readable: bool,
    /// Wake when the fd can accept writes.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest (the steady state of an idle connection).
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
}

/// One readiness report from [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct ReadyEvent {
    /// The token the fd was registered under.
    pub token: u64,
    /// Readable (or peer closed — a read will observe the EOF).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error/hangup condition; the owner should read to the error and
    /// close.
    pub hangup: bool,
}

enum Backend {
    /// Portable `poll(2)`: fd → (token, interest), rebuilt every wait.
    Poll {
        interests: HashMap<RawFd, (u64, Interest)>,
    },
    /// Linux `epoll(7)`: registration state lives in the kernel.
    #[cfg(target_os = "linux")]
    Epoll { epfd: RawFd },
}

/// Readiness multiplexer over raw `poll(2)` or `epoll(7)`.
pub struct Poller {
    backend: Backend,
}

impl Poller {
    /// Creates a poller, preferring epoll on Linux. Set
    /// `VSNOOP_REACTOR=poll` to force the portable `poll(2)` backend.
    pub fn new() -> std::io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            let forced_poll = std::env::var("VSNOOP_REACTOR")
                .map(|v| v.trim().eq_ignore_ascii_case("poll"))
                .unwrap_or(false);
            if !forced_poll {
                let epfd = unsafe { epoll::epoll_create1(epoll::EPOLL_CLOEXEC) };
                if epfd >= 0 {
                    return Ok(Poller {
                        backend: Backend::Epoll { epfd },
                    });
                }
                // Fall through to poll(2) on failure (e.g. a kernel
                // without epoll support in a restricted sandbox).
            }
        }
        Ok(Poller {
            backend: Backend::Poll {
                interests: HashMap::new(),
            },
        })
    }

    /// The active backend, for logs and tests.
    pub fn backend_name(&self) -> &'static str {
        match &self.backend {
            Backend::Poll { .. } => "poll",
            #[cfg(target_os = "linux")]
            Backend::Epoll { .. } => "epoll",
        }
    }

    /// Registers `fd` under `token`. One registration per fd.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> std::io::Result<()> {
        match &mut self.backend {
            Backend::Poll { interests } => {
                interests.insert(fd, (token, interest));
                Ok(())
            }
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => epoll_op(*epfd, epoll::EPOLL_CTL_ADD, fd, token, interest),
        }
    }

    /// Updates the interest set (and token) of a registered fd.
    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> std::io::Result<()> {
        match &mut self.backend {
            Backend::Poll { interests } => {
                interests.insert(fd, (token, interest));
                Ok(())
            }
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => epoll_op(*epfd, epoll::EPOLL_CTL_MOD, fd, token, interest),
        }
    }

    /// Removes an fd from the set. Must be called *before* the fd is
    /// closed (epoll keys on the open file description).
    pub fn deregister(&mut self, fd: RawFd) -> std::io::Result<()> {
        match &mut self.backend {
            Backend::Poll { interests } => {
                interests.remove(&fd);
                Ok(())
            }
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => epoll_op(
                *epfd,
                epoll::EPOLL_CTL_DEL,
                fd,
                0,
                Interest {
                    readable: false,
                    writable: false,
                },
            ),
        }
    }

    /// Blocks until at least one fd is ready or `timeout` elapses,
    /// filling `events` (cleared first). A signal interrupting the wait
    /// returns an empty set, not an error — callers poll their own
    /// shutdown flags on every pass.
    pub fn wait(&mut self, events: &mut Vec<ReadyEvent>, timeout: Duration) -> std::io::Result<()> {
        events.clear();
        let timeout_ms = timeout.as_millis().min(i32::MAX as u128) as i32;
        match &mut self.backend {
            Backend::Poll { interests } => {
                let mut fds: Vec<PollFd> = Vec::with_capacity(interests.len());
                let mut tokens: Vec<u64> = Vec::with_capacity(interests.len());
                for (&fd, &(token, interest)) in interests.iter() {
                    let mut ev = 0i16;
                    if interest.readable {
                        ev |= POLLIN;
                    }
                    if interest.writable {
                        ev |= POLLOUT;
                    }
                    fds.push(PollFd {
                        fd,
                        events: ev,
                        revents: 0,
                    });
                    tokens.push(token);
                }
                let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
                if n < 0 {
                    let err = std::io::Error::last_os_error();
                    if err.kind() == std::io::ErrorKind::Interrupted {
                        return Ok(());
                    }
                    return Err(err);
                }
                for (pfd, &token) in fds.iter().zip(&tokens) {
                    let r = pfd.revents;
                    if r != 0 {
                        events.push(ReadyEvent {
                            token,
                            readable: r & (POLLIN | POLLHUP) != 0,
                            writable: r & POLLOUT != 0,
                            hangup: r & (POLLERR | POLLHUP) != 0,
                        });
                    }
                }
                Ok(())
            }
            #[cfg(target_os = "linux")]
            Backend::Epoll { epfd } => {
                let mut buf = [epoll::EpollEvent { events: 0, data: 0 }; 256];
                let n = unsafe {
                    epoll::epoll_wait(*epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms)
                };
                if n < 0 {
                    let err = std::io::Error::last_os_error();
                    if err.kind() == std::io::ErrorKind::Interrupted {
                        return Ok(());
                    }
                    return Err(err);
                }
                for ev in buf.iter().take(n.max(0) as usize) {
                    // Copy out of the (possibly packed) struct before use.
                    let bits = { ev.events };
                    let token = { ev.data };
                    events.push(ReadyEvent {
                        token,
                        readable: bits & (epoll::EPOLLIN | epoll::EPOLLHUP) != 0,
                        writable: bits & epoll::EPOLLOUT != 0,
                        hangup: bits & (epoll::EPOLLERR | epoll::EPOLLHUP) != 0,
                    });
                }
                Ok(())
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        if let Backend::Epoll { epfd } = self.backend {
            unsafe {
                epoll::close(epfd);
            }
        }
    }
}

#[cfg(target_os = "linux")]
fn epoll_op(
    epfd: RawFd,
    op: i32,
    fd: RawFd,
    token: u64,
    interest: Interest,
) -> std::io::Result<()> {
    let mut bits = 0u32;
    if interest.readable {
        bits |= epoll::EPOLLIN;
    }
    if interest.writable {
        bits |= epoll::EPOLLOUT;
    }
    let mut ev = epoll::EpollEvent {
        events: bits,
        data: token,
    };
    let rc = unsafe { epoll::epoll_ctl(epfd, op, fd, &mut ev) };
    if rc < 0 {
        Err(std::io::Error::last_os_error())
    } else {
        Ok(())
    }
}

/// The write half of the reactor's self-wakeup channel. Cheap to
/// clone-by-`Arc` and safe to use from any thread; the raw fd is also
/// handed to the signal handler (a 1-byte `write(2)` is on the
/// async-signal-safe list).
pub struct Waker {
    tx: UnixStream,
}

impl Waker {
    /// Makes a blocked [`Poller::wait`] return now. Best-effort: a full
    /// pipe already implies a pending wakeup.
    pub fn wake(&self) {
        let _ = (&self.tx).write(&[1u8]);
    }

    /// The raw write-end fd, for [`super::signal::set_wake_fd`].
    pub fn raw_fd(&self) -> RawFd {
        self.tx.as_raw_fd()
    }
}

/// Creates the wakeup channel: a nonblocking socketpair whose read end
/// the reactor registers and drains, and whose write end is the
/// [`Waker`].
pub fn wake_pair() -> std::io::Result<(Waker, UnixStream)> {
    let (tx, rx) = UnixStream::pair()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx }, rx))
}

/// Drains every pending wakeup byte (call when the read end reports
/// readable).
pub fn drain_wakes(rx: &mut UnixStream) {
    let mut buf = [0u8; 64];
    while matches!(rx.read(&mut buf), Ok(n) if n > 0) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    fn ready_tokens(events: &[ReadyEvent]) -> Vec<u64> {
        let mut t: Vec<u64> = events.iter().map(|e| e.token).collect();
        t.sort_unstable();
        t
    }

    #[test]
    fn wait_times_out_with_no_ready_fds() {
        let mut poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        poller
            .register(listener.as_raw_fd(), 7, Interest::READ)
            .unwrap();
        let mut events = Vec::new();
        let start = Instant::now();
        poller.wait(&mut events, Duration::from_millis(30)).unwrap();
        assert!(events.is_empty());
        assert!(start.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn listener_becomes_readable_on_connect() {
        let mut poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        poller
            .register(listener.as_raw_fd(), 1, Interest::READ)
            .unwrap();
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Duration::from_secs(5)).unwrap();
        assert_eq!(ready_tokens(&events), vec![1]);
        assert!(events[0].readable);
    }

    #[test]
    fn waker_wakes_a_blocked_wait_from_another_thread() {
        let mut poller = Poller::new().unwrap();
        let (waker, mut rx) = wake_pair().unwrap();
        poller.register(rx.as_raw_fd(), 42, Interest::READ).unwrap();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
            waker // keep the write end open past the second wait below
        });
        let mut events = Vec::new();
        poller.wait(&mut events, Duration::from_secs(5)).unwrap();
        assert_eq!(ready_tokens(&events), vec![42]);
        drain_wakes(&mut rx);
        let _waker = handle.join().unwrap();
        // Drained: the next wait times out instead of spinning.
        poller.wait(&mut events, Duration::from_millis(10)).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn write_interest_reports_writable_and_modify_clears_it() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller
            .register(
                server.as_raw_fd(),
                3,
                Interest {
                    readable: true,
                    writable: true,
                },
            )
            .unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, Duration::from_secs(5)).unwrap();
        assert!(events.iter().any(|e| e.token == 3 && e.writable));
        // Dropping write interest stops the writable reports.
        poller
            .modify(server.as_raw_fd(), 3, Interest::READ)
            .unwrap();
        poller.wait(&mut events, Duration::from_millis(20)).unwrap();
        assert!(events.iter().all(|e| !e.writable));
        drop(client);
    }

    #[test]
    fn forced_poll_backend_via_env_knob_shape() {
        // Not set via env here (tests run in parallel); just check both
        // constructors answer to the same interface.
        let poller = Poller::new().unwrap();
        assert!(matches!(poller.backend_name(), "poll" | "epoll"));
        let fallback = Poller {
            backend: Backend::Poll {
                interests: HashMap::new(),
            },
        };
        assert_eq!(fallback.backend_name(), "poll");
    }
}

//! Link-level fault injection: seeded, deterministic message drops and
//! bounded delays.
//!
//! The fault model mirrors what an unordered, unacknowledged snoop request
//! channel can do to a real interconnect:
//!
//! * **Drops** apply only to [`MessageKind::Request`] messages. Persistent
//!   requests and vCPU-map updates ride the guaranteed (acknowledged)
//!   virtual channel, and response messages (`Data`, `TokenReply`,
//!   `Writeback`) are modeled reliable because the simulator's protocol
//!   step transfers state atomically — a lost response would be a protocol
//!   bug, not a fault-tolerance scenario.
//! * **Delays** can hit any message kind, adding a bounded number of
//!   cycles to its latency. Delays never reorder protocol state (the step
//!   is atomic); they stress the timing model and retry accounting.
//!
//! All decisions come from a [`rand::rngs::SmallRng`] seeded by the fault
//! plan, so a soak run is exactly reproducible from its seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::message::MessageKind;

/// Probabilities and bounds for link faults.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFaultConfig {
    /// Probability a snoop request message is silently dropped.
    pub drop_p: f64,
    /// Probability a message is delayed.
    pub delay_p: f64,
    /// Upper bound (inclusive) on the injected delay, in cycles.
    pub max_delay_cycles: u64,
}

impl LinkFaultConfig {
    /// A configuration that injects nothing.
    pub const fn none() -> Self {
        LinkFaultConfig {
            drop_p: 0.0,
            delay_p: 0.0,
            max_delay_cycles: 0,
        }
    }

    /// Whether any fault class is enabled.
    pub fn any(&self) -> bool {
        self.drop_p > 0.0 || (self.delay_p > 0.0 && self.max_delay_cycles > 0)
    }
}

/// The fate of one message under fault injection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Delivery {
    /// Delivered normally.
    Deliver,
    /// Delivered after this many extra cycles.
    Delayed(u64),
    /// Never delivered.
    Dropped,
}

/// Deterministic, seeded link-fault state, installed into a
/// [`crate::Network`] via [`crate::Network::install_faults`].
#[derive(Clone, Debug)]
pub struct LinkFaults {
    cfg: LinkFaultConfig,
    rng: SmallRng,
    drops: u64,
    delays: u64,
    delay_cycles: u64,
}

impl LinkFaults {
    /// Creates fault state with the given configuration and seed.
    pub fn new(cfg: LinkFaultConfig, seed: u64) -> Self {
        LinkFaults {
            cfg,
            rng: SmallRng::seed_from_u64(seed),
            drops: 0,
            delays: 0,
            delay_cycles: 0,
        }
    }

    /// Decides the fate of one message of `kind`.
    ///
    /// Only [`MessageKind::Request`] messages can be dropped (see the
    /// module docs for the channel model); any kind can be delayed.
    pub fn judge(&mut self, kind: MessageKind) -> Delivery {
        if kind == MessageKind::Request
            && self.cfg.drop_p > 0.0
            && self.rng.gen_bool(self.cfg.drop_p)
        {
            self.drops += 1;
            return Delivery::Dropped;
        }
        if self.cfg.delay_p > 0.0
            && self.cfg.max_delay_cycles > 0
            && self.rng.gen_bool(self.cfg.delay_p)
        {
            let d = self.rng.gen_range(1..self.cfg.max_delay_cycles + 1);
            self.delays += 1;
            self.delay_cycles += d;
            return Delivery::Delayed(d);
        }
        Delivery::Deliver
    }

    /// The configuration in force.
    pub fn config(&self) -> LinkFaultConfig {
        self.cfg
    }

    /// Messages dropped so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Messages delayed so far.
    pub fn delays(&self) -> u64 {
        self.delays
    }

    /// Total injected delay cycles.
    pub fn delay_cycles(&self) -> u64 {
        self.delay_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drop_all() -> LinkFaults {
        LinkFaults::new(
            LinkFaultConfig {
                drop_p: 1.0,
                delay_p: 0.0,
                max_delay_cycles: 0,
            },
            1,
        )
    }

    #[test]
    fn only_requests_drop() {
        let mut f = drop_all();
        assert_eq!(f.judge(MessageKind::Request), Delivery::Dropped);
        for kind in [
            MessageKind::TokenReply,
            MessageKind::Data,
            MessageKind::Writeback,
            MessageKind::Persistent,
            MessageKind::MapUpdate,
        ] {
            assert_eq!(f.judge(kind), Delivery::Deliver, "{kind:?} must not drop");
        }
        assert_eq!(f.drops(), 1);
    }

    #[test]
    fn delays_are_bounded_and_counted() {
        let mut f = LinkFaults::new(
            LinkFaultConfig {
                drop_p: 0.0,
                delay_p: 1.0,
                max_delay_cycles: 9,
            },
            7,
        );
        for _ in 0..500 {
            match f.judge(MessageKind::Data) {
                Delivery::Delayed(d) => assert!((1..=9).contains(&d)),
                other => panic!("expected delay, got {other:?}"),
            }
        }
        assert_eq!(f.delays(), 500);
        assert!(f.delay_cycles() >= 500);
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let cfg = LinkFaultConfig {
            drop_p: 0.3,
            delay_p: 0.3,
            max_delay_cycles: 20,
        };
        let mut a = LinkFaults::new(cfg, 99);
        let mut b = LinkFaults::new(cfg, 99);
        for _ in 0..1000 {
            assert_eq!(a.judge(MessageKind::Request), b.judge(MessageKind::Request));
        }
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let mut f = LinkFaults::new(
            LinkFaultConfig {
                drop_p: 0.25,
                delay_p: 0.0,
                max_delay_cycles: 0,
            },
            1234,
        );
        let n = 20_000;
        for _ in 0..n {
            f.judge(MessageKind::Request);
        }
        let rate = f.drops() as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "drop rate {rate} far from 0.25");
    }
}

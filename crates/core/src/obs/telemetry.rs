//! Campaign telemetry: structured lifecycle + heartbeat records.
//!
//! A process-global sink appends one JSON object per record to
//! `telemetry.jsonl` in the trace directory — job lifecycle events
//! from the supervisor (`job_start`, `job_ok`, `job_retry`,
//! `job_failed`, `job_abandoned`), periodic `heartbeat` records
//! (rounds/s, RSS, warm-pool counters), shard-panic events from
//! [`scatter`](crate::runner::scatter), and flight-dump notices. Each
//! line carries a monotonically increasing `seq`, a wall-clock
//! `ts_ms`, the emitting thread's scope label, and the event's own
//! fields.
//!
//! Everything goes to the side file, **never stdout**, so report
//! output stays byte-identical with telemetry on. When tracing is off,
//! [`emit`] returns before touching the lock — no file, no
//! allocation. Records are flushed per line so `obs-tail` (and plain
//! `tail -f`) observe them live.

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::runner::json::Value;

/// File name of the telemetry sink inside the trace directory.
pub const TELEMETRY_FILE: &str = "telemetry.jsonl";

struct Sink {
    path: PathBuf,
    file: File,
    seq: u64,
}

static SINK: Mutex<Option<Sink>> = Mutex::new(None);

/// Drops the open sink so the next [`emit`] reopens it against the
/// (possibly re-targeted) trace directory.
pub(super) fn invalidate_sink() {
    *SINK.lock().unwrap_or_else(|e| e.into_inner()) = None;
}

/// Path of the telemetry sink for the current trace directory, or
/// `None` when tracing is off.
pub fn telemetry_path() -> Option<PathBuf> {
    super::trace_dir().map(|d| d.join(TELEMETRY_FILE))
}

/// Appends one telemetry record. A no-op (one predictable branch, no
/// allocation) when tracing is disabled.
///
/// The record is `{"seq":…,"ts_ms":…,"scope":…,"event":…, <fields>}`;
/// writes are best-effort — telemetry must never fail a run, so I/O
/// errors silently drop the record.
pub fn emit(event: &str, fields: Vec<(&'static str, Value)>) {
    if !super::enabled() {
        return;
    }
    let Some(path) = telemetry_path() else {
        return;
    };
    let mut guard = SINK.lock().unwrap_or_else(|e| e.into_inner());
    // (Re)open on first use or after a trace-dir change.
    let reopen = match guard.as_ref() {
        Some(sink) => sink.path != path,
        None => true,
    };
    if reopen {
        let Some(dir) = path.parent() else { return };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let Ok(file) = OpenOptions::new().create(true).append(true).open(&path) else {
            return;
        };
        *guard = Some(Sink { path, file, seq: 0 });
    }
    let Some(sink) = guard.as_mut() else { return };
    let mut pairs: Vec<(String, Value)> = Vec::with_capacity(fields.len() + 4);
    pairs.push(("seq".to_string(), Value::UInt(sink.seq)));
    pairs.push(("ts_ms".to_string(), Value::UInt(now_ms())));
    pairs.push(("scope".to_string(), Value::Str(super::scope_label())));
    pairs.push(("event".to_string(), Value::Str(event.to_string())));
    for (k, v) in fields {
        pairs.push((k.to_string(), v));
    }
    let line = Value::Obj(pairs).to_json();
    if writeln!(sink.file, "{line}").is_ok() {
        let _ = sink.file.flush();
        sink.seq += 1;
    }
}

/// Milliseconds since the Unix epoch (0 if the clock is before it).
fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_without_tracing_is_silent() {
        // Unit tests in this binary never enable tracing; emitting must
        // not create a sink.
        if !super::super::enabled() {
            emit("noop", vec![("x", Value::UInt(1))]);
            assert!(SINK.lock().unwrap().is_none());
        }
    }
}

//! Flight recorder: a fixed-capacity ring of compact transaction events.
//!
//! Each simulated coherence transaction attempt appends one
//! [`FlightEvent`] — a small `Copy` struct, no heap indirection — to a
//! **thread-local** ring buffer. Thread-locality is load-bearing: the
//! campaign supervisor runs every job on its own thread, so each job
//! records into (and dumps from) its own ring with no locking, and the
//! ring outlives the simulator when a panic unwinds through the job —
//! the `catch_unwind` handler can still dump the last events leading
//! up to the failure.
//!
//! The ring holds the most recent [`flight_capacity`] events
//! (`VSNOOP_FLIGHT_CAP`, default 1024). [`dump_flight`] writes it
//! oldest-first as JSONL (`flight-<scope>-<reason>.jsonl` in the trace
//! directory) with a schema header line; see `OBSERVABILITY.md` for
//! the field reference.
//!
//! Nothing here runs when observability is disabled: the recording
//! call sites are gated on [`obs::enabled`](super::enabled), and the
//! ring itself is allocated lazily on the first recorded event.

use std::cell::RefCell;
use std::io::Write as _;
use std::path::PathBuf;

use crate::runner::json::Value;

/// Default ring capacity when `VSNOOP_FLIGHT_CAP` is unset.
pub const DEFAULT_FLIGHT_CAP: usize = 1024;

/// Schema tag written on the first line of every flight dump.
pub const FLIGHT_SCHEMA: &str = "vsnoop-flight/v1";

/// One recorded transaction attempt, packed for cheap copies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Simulator cycle at which the attempt ran.
    pub cycle: u64,
    /// Block address the transaction targets.
    pub block: u64,
    /// Snoop destination mask the policy chose (bit per core).
    pub dest_mask: u64,
    /// Subset of `dest_mask` actually delivered (link faults may drop).
    pub delivered: u64,
    /// Requesting core index.
    pub core: u16,
    /// Coherence tokens that moved to the requester this attempt.
    pub tokens_moved: u16,
    /// Retry attempt number (0 = first try).
    pub attempt: u8,
    /// Miss-classification code from the page table (sharing class).
    pub sharing: u8,
    /// Bit-flags; see the `FLAG_*` constants.
    pub flags: u8,
}

impl FlightEvent {
    /// Flag: the attempt was a write miss (read miss when clear).
    pub const FLAG_WRITE: u8 = 1 << 0;
    /// Flag: the snoop was filtered (multicast narrower than broadcast).
    pub const FLAG_FILTERED: u8 = 1 << 1;
    /// Flag: the policy escalated to a degraded full broadcast.
    pub const FLAG_DEGRADED: u8 = 1 << 2;
    /// Flag: the attempt ran at persistent-request priority.
    pub const FLAG_PERSISTENT: u8 = 1 << 3;
    /// Flag: the attempt succeeded (transaction completed).
    pub const FLAG_SUCCESS: u8 = 1 << 4;
    /// Flag: the memory controller heard the request.
    pub const FLAG_MEMORY: u8 = 1 << 5;

    /// Renders the event as one ordered JSON object (a dump line).
    fn to_value(self) -> Value {
        Value::obj([
            ("cycle", Value::UInt(self.cycle)),
            ("core", Value::UInt(u64::from(self.core))),
            ("block", Value::UInt(self.block)),
            (
                "kind",
                Value::Str(
                    if self.flags & Self::FLAG_WRITE != 0 {
                        "write"
                    } else {
                        "read"
                    }
                    .to_string(),
                ),
            ),
            ("attempt", Value::UInt(u64::from(self.attempt))),
            ("sharing", Value::UInt(u64::from(self.sharing))),
            ("dest_mask", Value::UInt(self.dest_mask)),
            ("delivered", Value::UInt(self.delivered)),
            ("tokens_moved", Value::UInt(u64::from(self.tokens_moved))),
            (
                "filtered",
                Value::Bool(self.flags & Self::FLAG_FILTERED != 0),
            ),
            (
                "degraded",
                Value::Bool(self.flags & Self::FLAG_DEGRADED != 0),
            ),
            (
                "persistent",
                Value::Bool(self.flags & Self::FLAG_PERSISTENT != 0),
            ),
            ("memory", Value::Bool(self.flags & Self::FLAG_MEMORY != 0)),
            ("success", Value::Bool(self.flags & Self::FLAG_SUCCESS != 0)),
        ])
    }
}

/// The per-thread ring. `buf` grows up to `cap` then wraps at `head`.
struct Ring {
    buf: Vec<FlightEvent>,
    cap: usize,
    head: usize,
    total: u64,
}

impl Ring {
    fn new() -> Self {
        Ring {
            buf: Vec::new(),
            cap: flight_capacity(),
            head: 0,
            total: 0,
        }
    }

    fn push(&mut self, ev: FlightEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
        }
        self.total += 1;
    }

    /// Events oldest-first.
    fn ordered(&self) -> impl Iterator<Item = &FlightEvent> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }
}

thread_local! {
    static RING: RefCell<Option<Ring>> = const { RefCell::new(None) };
}

/// Ring capacity: `VSNOOP_FLIGHT_CAP` (minimum 1), else
/// [`DEFAULT_FLIGHT_CAP`]. Read when a thread's ring is first created.
pub fn flight_capacity() -> usize {
    crate::knob::env_positive_usize("VSNOOP_FLIGHT_CAP").unwrap_or(DEFAULT_FLIGHT_CAP)
}

/// Records one transaction event into this thread's ring.
///
/// Call sites gate on [`obs::enabled`](super::enabled) so that the
/// event is never even constructed when tracing is off; the ring is
/// allocated on the first call.
pub fn record_tx(ev: FlightEvent) {
    RING.with(|r| r.borrow_mut().get_or_insert_with(Ring::new).push(ev));
}

/// Number of events currently held in this thread's ring.
pub fn recorded_len() -> usize {
    RING.with(|r| r.borrow().as_ref().map_or(0, |ring| ring.buf.len()))
}

/// Total events ever recorded on this thread (including overwritten).
pub fn recorded_total() -> u64 {
    RING.with(|r| r.borrow().as_ref().map_or(0, |ring| ring.total))
}

/// The most recent event recorded on this thread, if any.
pub fn last_event() -> Option<FlightEvent> {
    RING.with(|r| {
        r.borrow()
            .as_ref()
            .and_then(|ring| ring.ordered().last().copied())
    })
}

/// Drops this thread's ring (tests use this to isolate scenarios).
pub fn clear_ring() {
    RING.with(|r| *r.borrow_mut() = None);
}

/// Dumps this thread's ring as JSONL into the trace directory and
/// returns the file path, or `None` when tracing is off, the ring is
/// empty, or the write fails (dumping is best-effort by design: it
/// runs on panic/violation paths and must never mask the original
/// failure).
///
/// The file is `flight-<scope>-<reason>.jsonl`; `reason` is one of
/// `violation`, `panic`, `timeout`, or `shard-panic`. A later dump for
/// the same scope and reason overwrites the earlier one — last failure
/// wins, matching the crash-reproducer convention.
pub fn dump_flight(reason: &str) -> Option<PathBuf> {
    if !super::enabled() {
        return None;
    }
    let dir = super::trace_dir()?;
    let (header, lines) = RING.with(|r| {
        let borrow = r.borrow();
        let ring = borrow.as_ref()?;
        if ring.buf.is_empty() {
            return None;
        }
        let header = Value::obj([
            ("schema", Value::Str(FLIGHT_SCHEMA.to_string())),
            ("scope", Value::Str(super::scope_label())),
            ("reason", Value::Str(reason.to_string())),
            ("events", Value::UInt(ring.buf.len() as u64)),
            ("recorded_total", Value::UInt(ring.total)),
            ("capacity", Value::UInt(ring.cap as u64)),
        ]);
        let lines: Vec<String> = ring.ordered().map(|ev| ev.to_value().to_json()).collect();
        Some((header, lines))
    })?;

    if std::fs::create_dir_all(&dir).is_err() {
        return None;
    }
    let path = dir.join(format!(
        "flight-{}-{}.jsonl",
        super::sanitize(&super::scope_label()),
        super::sanitize(reason)
    ));
    let file = std::fs::File::create(&path).ok()?;
    let mut w = std::io::BufWriter::new(file);
    writeln!(w, "{}", header.to_json()).ok()?;
    for line in &lines {
        writeln!(w, "{line}").ok()?;
    }
    w.flush().ok()?;
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64) -> FlightEvent {
        FlightEvent {
            cycle,
            block: 0x40 + cycle,
            dest_mask: 0b1010,
            delivered: 0b1010,
            core: 3,
            tokens_moved: 1,
            attempt: 0,
            sharing: 2,
            flags: FlightEvent::FLAG_SUCCESS | FlightEvent::FLAG_FILTERED,
        }
    }

    #[test]
    fn ring_wraps_keeping_newest() {
        let mut ring = Ring {
            buf: Vec::new(),
            cap: 4,
            head: 0,
            total: 0,
        };
        for c in 0..10 {
            ring.push(ev(c));
        }
        let cycles: Vec<u64> = ring.ordered().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![6, 7, 8, 9]);
        assert_eq!(ring.total, 10);
    }

    #[test]
    fn event_json_is_ordered_and_complete() {
        let json = ev(7).to_value().to_json();
        assert!(json.starts_with("{\"cycle\":7,\"core\":3,\"block\":71,"));
        for key in [
            "kind",
            "attempt",
            "sharing",
            "dest_mask",
            "delivered",
            "tokens_moved",
            "filtered",
            "degraded",
            "persistent",
            "memory",
            "success",
        ] {
            assert!(json.contains(&format!("\"{key}\":")), "missing {key}");
        }
    }

    #[test]
    fn dump_without_tracing_is_none() {
        record_tx(ev(1));
        // The global trace dir may be toggled by other tests in other
        // *files*, but unit tests in this binary never enable it.
        if !super::super::enabled() {
            assert_eq!(dump_flight("panic"), None);
        }
        clear_ring();
        assert_eq!(recorded_len(), 0);
    }
}

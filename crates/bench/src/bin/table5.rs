//! Table V — percentages of L1 accesses and L2 misses on content-shared
//! pages.

use vsnoop_bench::{reports, scale_from_env};

fn main() {
    vsnoop_bench::init_obs();
    match reports::table5(scale_from_env()) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("table5: {e}");
            std::process::exit(1);
        }
    }
}

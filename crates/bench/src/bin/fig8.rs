//! Fig. 8 — total snoops under VM relocation every 0.5 / 0.1 (scaled) ms.

use vsnoop::experiments::{migration_policies, migration_sweep};
use vsnoop_bench::{f1, heading, scale_from_env, TextTable};
use workloads::simulation_apps;

fn main() {
    heading(
        "Figure 8: normalized total snoops, vCPU relocated every 0.5 / 0.1 ms",
        "Percent of the TokenB baseline (ideal = 25%). Paper: at 0.1 ms\n\
         vsnoop-base only reduces ~4% of snoops; the counter mechanism\n\
         still reduces ~45%; counter-threshold adds a small increment.",
    );
    let points = migration_sweep(&[0.5, 0.1], scale_from_env().for_migration());
    let mut t = TextTable::new([
        "workload",
        "period ms",
        "vsnoop-base %",
        "counter %",
        "counter-thr %",
    ]);
    for app in simulation_apps() {
        for period in [0.5f64, 0.1] {
            let mut cells = vec![app.name.to_string(), format!("{period}")];
            for policy in migration_policies() {
                let p = points
                    .iter()
                    .find(|p| {
                        p.name == app.name
                            && (p.period_ms - period).abs() < 1e-9
                            && p.policy == policy
                    })
                    .expect("point present");
                cells.push(f1(p.norm_snoops_pct));
            }
            t.row(cells);
        }
    }
    t.maybe_dump_csv("fig8").expect("csv dump");
    println!("{t}");
}

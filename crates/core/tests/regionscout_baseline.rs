//! End-to-end behaviour of the RegionScout baseline, and its comparison
//! against virtual snooping — the contrast the paper's related-work
//! section draws.

use sim_mem::BlockAddr;
use vsnoop::{ContentPolicy, EnergyModel, FilterPolicy, Simulator, SystemConfig};
use workloads::{profile, Workload, WorkloadConfig};

fn run(policy: FilterPolicy, rounds: u64) -> Simulator {
    let cfg = SystemConfig::paper_default();
    let mut sim = Simulator::new(cfg, policy, ContentPolicy::Broadcast);
    let mut wl = Workload::homogeneous(
        profile("cholesky").unwrap(),
        cfg.n_vms,
        WorkloadConfig {
            vcpus_per_vm: cfg.vcpus_per_vm,
            ..Default::default()
        },
    );
    sim.run(&mut wl, rounds);
    sim
}

#[test]
fn regionscout_learns_private_regions_and_filters() {
    let sim = run(FilterPolicy::REGION_SCOUT_4K, 15_000);
    let rf = sim.region_filter().expect("region filter active");
    assert!(rf.inserts() > 0, "NSRT must learn not-shared regions");
    assert!(rf.hits() > 0, "NSRT hits must occur for private data");
    let s = sim.stats();
    // Filtering happened: fewer lookups than pure broadcast...
    assert!(s.snoops < s.l2_misses * 16);
    // ...but (with thread-local chunks being re-verified after every
    // conflict) far less than virtual snooping achieves.
    assert!(s.snoops > s.l2_misses * 4);
}

#[test]
fn regionscout_never_breaks_coherence() {
    let sim = run(FilterPolicy::REGION_SCOUT_4K, 10_000);
    for b in 0..30_000u64 {
        assert!(sim.check_invariant(BlockAddr::new(b)), "block {b}");
    }
    let s = sim.stats();
    assert_eq!(s.l1_hits + s.l2_hits + s.l2_misses, s.accesses);
}

#[test]
fn region_counts_match_cache_scan() {
    let sim = run(FilterPolicy::REGION_SCOUT_4K, 5_000);
    let rf = sim.region_filter().unwrap();
    // Recount regions from actual cache contents on a few cores and
    // compare with the filter's incremental counters.
    for core in [0usize, 7, 15] {
        let mut recount: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
        for line in sim.debug_l2_lines(core) {
            *recount.entry(rf.region_of(line)).or_insert(0) += 1;
        }
        for (&region, &n) in &recount {
            assert_eq!(
                rf.count(core, region),
                n,
                "core {core} region {region} diverged"
            );
        }
    }
}

#[test]
fn vsnoop_beats_regionscout_on_both_metrics() {
    let rounds = 15_000;
    let base = run(FilterPolicy::TokenBroadcast, rounds);
    let rs = run(FilterPolicy::REGION_SCOUT_4K, rounds);
    let vs = run(FilterPolicy::VsnoopBase, rounds);
    assert_eq!(base.stats().l2_misses, vs.stats().l2_misses);

    // Snoops: tokenB > regionscout > vsnoop.
    assert!(rs.stats().snoops < base.stats().snoops);
    assert!(vs.stats().snoops < rs.stats().snoops);

    // Traffic: vsnoop reduces most (RegionScout only saves on NSRT hits).
    assert!(vs.traffic().byte_links() < rs.traffic().byte_links());
    assert!(rs.traffic().byte_links() <= base.traffic().byte_links());

    // Energy: same ordering.
    let m = EnergyModel::default();
    let e_base = m.breakdown(base.stats(), base.traffic());
    let e_rs = m.breakdown(rs.stats(), rs.traffic());
    let e_vs = m.breakdown(vs.stats(), vs.traffic());
    assert!(e_vs.total_pj() < e_rs.total_pj());
    assert!(e_rs.total_pj() < e_base.total_pj());
}

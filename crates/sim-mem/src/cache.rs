//! Set-associative caches with LRU replacement and per-VM residence
//! counters.
//!
//! The residence counters are the paper's key hardware addition for
//! supporting VM relocation (Section IV-B): "Each per-VM counter records
//! the number of VM-private blocks in the cache for a VM. Whenever a block
//! is added to a cache, the corresponding counter for the current VM is
//! increased. [...] When a cacheline is evicted by replacement or
//! invalidated by snoops, the counter of the corresponding VM is
//! decreased. When the counter becomes zero, it is certain that the
//! private data of the VM do not exist in the cache," at which point the
//! core can safely leave the VM's snoop domain.

use sim_vm::VmId;

use crate::addr::{BlockAddr, BLOCK_BYTES};
use crate::line::{CacheLine, LineTag};

/// Geometry of a cache: capacity, associativity, block size.
///
/// # Examples
///
/// ```
/// use sim_mem::CacheGeometry;
///
/// // The paper's 256 KB 8-way L2 with 64-byte blocks:
/// let g = CacheGeometry::new(256 * 1024, 8);
/// assert_eq!(g.sets(), 512);
/// assert_eq!(g.lines(), 4096);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheGeometry {
    bytes: u64,
    ways: usize,
    /// `sets() - 1`, precomputed: set selection is on the hot path of
    /// every probe, and the set count is only known at runtime, so the
    /// modulo would otherwise compile to a hardware divide.
    set_mask: u64,
}

impl CacheGeometry {
    /// Creates a geometry for a cache of `bytes` capacity and `ways`
    /// associativity, with [`BLOCK_BYTES`]-byte blocks.
    ///
    /// # Panics
    ///
    /// Panics unless `bytes` is a positive multiple of
    /// `ways * BLOCK_BYTES` and the resulting set count is a power of two.
    pub fn new(bytes: u64, ways: usize) -> Self {
        assert!(ways > 0, "associativity must be positive");
        let line_bytes = ways as u64 * BLOCK_BYTES;
        assert!(
            bytes > 0 && bytes.is_multiple_of(line_bytes),
            "capacity must be a positive multiple of ways * block size"
        );
        let sets = bytes / line_bytes;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        CacheGeometry {
            bytes,
            ways,
            set_mask: sets - 1,
        }
    }

    /// Total capacity in bytes.
    pub const fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Associativity.
    pub const fn ways(&self) -> usize {
        self.ways
    }

    /// Number of sets.
    pub const fn sets(&self) -> u64 {
        self.bytes / (self.ways as u64 * BLOCK_BYTES)
    }

    /// Total number of lines.
    pub const fn lines(&self) -> u64 {
        self.bytes / BLOCK_BYTES
    }

    /// The set index of `block`.
    pub const fn set_of(&self, block: BlockAddr) -> usize {
        (block.index() & self.set_mask) as usize
    }
}

/// Basic hit/miss statistics of one cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Lookups performed via [`Cache::access`].
    pub accesses: u64,
    /// Lookups that found a valid line.
    pub hits: u64,
    /// Lines displaced by insertion.
    pub evictions: u64,
}

impl CacheStats {
    /// Misses (accesses that did not hit).
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }
}

/// A set-associative, LRU-replaced cache with VM-tagged lines.
///
/// The cache tracks, for every VM, how many valid lines tagged with that VM
/// it currently holds (the paper's per-VM cache residence counters).
///
/// # Examples
///
/// ```
/// use sim_mem::{Cache, CacheGeometry, CacheLine, TokenState, LineTag, BlockAddr};
/// use sim_vm::VmId;
///
/// let mut c = Cache::new(CacheGeometry::new(4096, 2), 4);
/// let vm = VmId::new(1);
/// c.insert(CacheLine::new(BlockAddr::new(7), TokenState::shared_one(), LineTag::Vm(vm)));
/// assert_eq!(c.residence(vm), 1);
/// assert!(c.access(BlockAddr::new(7)));
/// c.remove(BlockAddr::new(7));
/// assert_eq!(c.residence(vm), 0);
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    geometry: CacheGeometry,
    sets: Vec<Vec<CacheLine>>,
    residence: Vec<u64>,
    host_residence: u64,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache able to track residence for `n_vms` VMs.
    pub fn new(geometry: CacheGeometry, n_vms: usize) -> Self {
        Cache {
            geometry,
            sets: vec![Vec::with_capacity(geometry.ways()); geometry.sets() as usize],
            residence: vec![0; n_vms],
            host_residence: 0,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Returns the cache geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Returns hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Performs a stats-counting lookup, touching LRU state on a hit.
    /// Returns `true` on hit.
    pub fn access(&mut self, block: BlockAddr) -> bool {
        self.stats.accesses += 1;
        self.clock += 1;
        let clock = self.clock;
        let set = self.geometry.set_of(block);
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.block == block) {
            line.last_use = clock;
            self.stats.hits += 1;
            true
        } else {
            false
        }
    }

    /// Returns the line caching `block`, if present, without touching LRU
    /// or statistics.
    pub fn probe(&self, block: BlockAddr) -> Option<&CacheLine> {
        let set = self.geometry.set_of(block);
        self.sets[set].iter().find(|l| l.block == block)
    }

    /// Returns a mutable reference to the line caching `block` for in-place
    /// token updates, without touching LRU or statistics.
    ///
    /// Callers must not set `state.tokens` to zero through this reference;
    /// use [`remove`](Self::remove) to drop a line so residence counters
    /// stay consistent.
    pub fn probe_mut(&mut self, block: BlockAddr) -> Option<&mut CacheLine> {
        let set = self.geometry.set_of(block);
        self.sets[set].iter_mut().find(|l| l.block == block)
    }

    /// Inserts `line`, returning the evicted victim if the set was full.
    ///
    /// If the block is already present its state and tag are replaced
    /// (residence counters adjusted accordingly) and nothing is evicted.
    pub fn insert(&mut self, mut line: CacheLine) -> Option<CacheLine> {
        self.clock += 1;
        line.last_use = self.clock;
        let set_idx = self.geometry.set_of(line.block);
        if let Some(existing) = self.sets[set_idx]
            .iter_mut()
            .find(|l| l.block == line.block)
        {
            let old_tag = existing.tag;
            *existing = line;
            self.dec_residence(old_tag);
            self.inc_residence(line.tag);
            return None;
        }
        let ways = self.geometry.ways();
        self.inc_residence(line.tag);
        let set = &mut self.sets[set_idx];
        if set.len() < ways {
            set.push(line);
            return None;
        }
        // Evict the least recently used line.
        let victim_idx = set
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.last_use)
            .map(|(i, _)| i)
            .expect("full set is non-empty");
        let victim = std::mem::replace(&mut set[victim_idx], line);
        self.dec_residence(victim.tag);
        self.stats.evictions += 1;
        Some(victim)
    }

    /// Removes and returns the line caching `block` (snoop invalidation or
    /// full token surrender).
    pub fn remove(&mut self, block: BlockAddr) -> Option<CacheLine> {
        let set = self.geometry.set_of(block);
        let pos = self.sets[set].iter().position(|l| l.block == block)?;
        let line = self.sets[set].swap_remove(pos);
        self.dec_residence(line.tag);
        Some(line)
    }

    /// Returns the residence counter of `vm`: the number of valid lines
    /// tagged with that VM.
    ///
    /// # Panics
    ///
    /// Panics if `vm` is outside the range configured at construction.
    pub fn residence(&self, vm: VmId) -> u64 {
        self.residence[vm.index()]
    }

    /// Returns the number of valid lines tagged as host (hypervisor/dom0).
    pub fn host_residence(&self) -> u64 {
        self.host_residence
    }

    /// Returns the number of valid lines.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Iterates over all valid lines (for invariant checks and tests).
    pub fn lines(&self) -> impl Iterator<Item = &CacheLine> {
        self.sets.iter().flatten()
    }

    fn inc_residence(&mut self, tag: LineTag) {
        match tag {
            LineTag::Vm(vm) => self.residence[vm.index()] += 1,
            LineTag::Host => self.host_residence += 1,
        }
    }

    fn dec_residence(&mut self, tag: LineTag) {
        match tag {
            LineTag::Vm(vm) => {
                debug_assert!(self.residence[vm.index()] > 0, "residence underflow");
                self.residence[vm.index()] -= 1;
            }
            LineTag::Host => {
                debug_assert!(self.host_residence > 0, "host residence underflow");
                self.host_residence -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line::TokenState;

    fn line(block: u64, vm: u16) -> CacheLine {
        CacheLine::new(
            BlockAddr::new(block),
            TokenState::shared_one(),
            LineTag::Vm(VmId::new(vm)),
        )
    }

    fn small_cache() -> Cache {
        // 2 sets x 2 ways.
        Cache::new(CacheGeometry::new(2 * 2 * 64, 2), 4)
    }

    #[test]
    fn geometry_paper_l2() {
        let g = CacheGeometry::new(256 * 1024, 8);
        assert_eq!(g.sets(), 512);
        assert_eq!(g.lines(), 4096);
        assert_eq!(g.ways(), 8);
        // Blocks that differ by the set count map to the same set.
        assert_eq!(
            g.set_of(BlockAddr::new(3)),
            g.set_of(BlockAddr::new(3 + 512))
        );
    }

    #[test]
    fn hit_after_insert_miss_after_remove() {
        let mut c = small_cache();
        assert!(!c.access(BlockAddr::new(0)));
        c.insert(line(0, 0));
        assert!(c.access(BlockAddr::new(0)));
        c.remove(BlockAddr::new(0));
        assert!(!c.access(BlockAddr::new(0)));
        assert_eq!(c.stats().accesses, 3);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses(), 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small_cache();
        // Blocks 0, 2, 4 all map to set 0 (2 sets).
        c.insert(line(0, 0));
        c.insert(line(2, 0));
        // Touch block 0 so block 2 is LRU.
        assert!(c.access(BlockAddr::new(0)));
        let victim = c.insert(line(4, 0)).expect("set was full");
        assert_eq!(victim.block, BlockAddr::new(2));
        assert!(c.probe(BlockAddr::new(0)).is_some());
        assert!(c.probe(BlockAddr::new(4)).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn residence_counters_track_inserts_evictions_removals() {
        let mut c = small_cache();
        let vm0 = VmId::new(0);
        let vm1 = VmId::new(1);
        c.insert(line(0, 0));
        c.insert(line(2, 1));
        assert_eq!(c.residence(vm0), 1);
        assert_eq!(c.residence(vm1), 1);
        // Evicts LRU (block 0, vm0).
        let victim = c.insert(line(4, 1)).unwrap();
        assert_eq!(victim.block, BlockAddr::new(0));
        assert_eq!(c.residence(vm0), 0);
        assert_eq!(c.residence(vm1), 2);
        c.remove(BlockAddr::new(2));
        assert_eq!(c.residence(vm1), 1);
    }

    #[test]
    fn host_lines_counted_separately() {
        let mut c = small_cache();
        c.insert(CacheLine::new(
            BlockAddr::new(1),
            TokenState::shared_one(),
            LineTag::Host,
        ));
        assert_eq!(c.host_residence(), 1);
        assert_eq!(c.residence(VmId::new(0)), 0);
        c.remove(BlockAddr::new(1));
        assert_eq!(c.host_residence(), 0);
    }

    #[test]
    fn reinsert_same_block_replaces_in_place() {
        let mut c = small_cache();
        c.insert(line(0, 0));
        // Re-insert with a different tag: counters move, no eviction.
        let evicted = c.insert(line(0, 1));
        assert!(evicted.is_none());
        assert_eq!(c.occupancy(), 1);
        assert_eq!(c.residence(VmId::new(0)), 0);
        assert_eq!(c.residence(VmId::new(1)), 1);
    }

    #[test]
    fn residence_matches_line_scan() {
        let mut c = Cache::new(CacheGeometry::new(16 * 4 * 64, 4), 3);
        for i in 0..100u64 {
            c.insert(line(i * 3, (i % 3) as u16));
        }
        for vm in 0..3u16 {
            let counted = c
                .lines()
                .filter(|l| l.tag == LineTag::Vm(VmId::new(vm)))
                .count() as u64;
            assert_eq!(c.residence(VmId::new(vm)), counted);
        }
        assert!(c.occupancy() <= 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        let _ = CacheGeometry::new(3 * 64, 1);
    }
}

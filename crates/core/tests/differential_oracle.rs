//! Differential oracle: snoop filtering must never change architecture.
//!
//! Virtual snooping's whole claim (paper Section III) is that a snoop a
//! filter drops is one the target could not have served: the VM owning
//! the block never ran there, so no valid copy can exist. If that holds,
//! a filtered machine and a broadcast machine fed the same access stream
//! must end in the *same architectural state* — identical cache lines
//! with identical token holdings, and an identical memory-side ledger —
//! while differing only in how many snoops were sent. This test runs
//! both machines over a seeded mixed workload (guest sharing plus
//! hypervisor/dom0 host activity) and compares the
//! [`Simulator::arch_state`] digests byte for byte.
//!
//! `ContentPolicy::MemoryDirect` is deliberately excluded: routing
//! content requests to memory instead of the owner legitimately changes
//! *where* tokens end up (memory supplies data and tokens it holds), so
//! only the snoop-filter axis is differential-tested here.

use vsnoop::experiments::{run_pinned, RunScale};
use vsnoop::{ContentPolicy, FilterPolicy, Simulator, SystemConfig};
use workloads::profile;

fn digest(policy: FilterPolicy, cfg: SystemConfig, scale: RunScale) -> (String, u64) {
    let sim: Simulator = run_pinned(
        profile("SPECweb").unwrap(),
        policy,
        ContentPolicy::Broadcast,
        true, // content_sharing: inter-VM read-only sharing in the mix
        true, // host_activity: hypervisor + dom0 accesses in the mix
        cfg,
        scale,
    );
    (sim.arch_state(), sim.stats().snoops)
}

fn assert_filter_is_transparent(policy: FilterPolicy) {
    let cfg = SystemConfig::small_test();
    let scale = RunScale::quick();
    let (base_state, base_snoops) = digest(FilterPolicy::TokenBroadcast, cfg, scale);
    let (filt_state, filt_snoops) = digest(policy, cfg, scale);

    // The oracle must not be vacuous: the filter has to actually have
    // dropped snoops on this workload before equality means anything.
    assert!(
        filt_snoops < base_snoops,
        "{policy:?} filtered nothing ({filt_snoops} vs {base_snoops} snoops); \
         the state comparison below would be trivially true"
    );
    assert!(
        !base_state.is_empty(),
        "empty digest: caches never filled, the comparison is vacuous"
    );
    if base_state != filt_state {
        let diff = base_state
            .lines()
            .zip(filt_state.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b);
        panic!(
            "{policy:?} diverged from TokenBroadcast architectural state \
             (first differing line: {diff:?}; baseline {} lines, filtered {} lines)",
            base_state.lines().count(),
            filt_state.lines().count(),
        );
    }
}

#[test]
fn vsnoop_base_preserves_architectural_state() {
    assert_filter_is_transparent(FilterPolicy::VsnoopBase);
}

#[test]
fn counter_filter_preserves_architectural_state() {
    assert_filter_is_transparent(FilterPolicy::Counter);
}

#[test]
fn counter_threshold_preserves_architectural_state() {
    assert_filter_is_transparent(FilterPolicy::CounterThreshold { threshold: 10 });
}

#[test]
fn identical_runs_have_identical_digests() {
    // Self-consistency: the digest itself must be deterministic (sorted,
    // no HashMap iteration order, no timestamps) before cross-policy
    // equality can be trusted.
    let cfg = SystemConfig::small_test();
    let scale = RunScale::quick();
    let (a, _) = digest(FilterPolicy::TokenBroadcast, cfg, scale);
    let (b, _) = digest(FilterPolicy::TokenBroadcast, cfg, scale);
    assert_eq!(a, b);
}

//! The full-system virtual-snooping simulator.
//!
//! [`Simulator`] glues every substrate together: per-core L1/L2 caches and
//! the TokenB engine (`sim-mem`), the 2D-mesh network with traffic and
//! latency accounting (`sim-net`), the hypervisor's vCPU placement and the
//! page-sharing directory (`sim-vm`), and this crate's vCPU maps and
//! filtering policies. It is trace-driven: each *round* issues one memory
//! access per core, taken from an [`AccessStream`].
//!
//! The flow of one coherence transaction (Section IV-A of the paper):
//!
//! 1. address translation consults the sharing-type TLB (two PTE bits);
//! 2. the filter picks snoop destinations — broadcast for host agents and
//!    RW-shared pages, the VM's vCPU map for private pages, the configured
//!    [`ContentPolicy`] route for content-shared pages;
//! 3. the token protocol executes the snoop; a failed transient attempt is
//!    retried (twice filtered, then broadcast — the paper's
//!    counter-threshold fallback);
//! 4. residence-counter events may shrink vCPU maps (counter /
//!    counter-threshold policies), logged for Fig. 9.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sim_mem::{
    mask_cores, BlockAddr, Cache, CacheGeometry, CacheLine, DataSource, LineTag, ReadMode,
    ReferenceProtocol, TokenLedger, TokenProtocol, TokenState, PAGE_BYTES,
};
use sim_net::{LinkFaults, Mesh, MessageKind, Network, NodeId};
use sim_vm::{
    Agent, CoreId, Hypervisor, SharingDirectory, SharingType, TypeTlb, UnplacedVcpu, VcpuId, VmId,
    VmSpec,
};
use workloads::{AccessStream, TraceAccess, Workload};

use crate::checker::{valid_core_mask, CheckerConfig, CheckerCtx, InvariantChecker};
use crate::config::SystemConfig;
use crate::error::SimError;
use crate::fault::{FaultInjectionStats, FaultPlan, MapCorruption};
use crate::policy::{ContentPolicy, FilterPolicy};
use crate::region_filter::RegionFilter;
use crate::stats::{RemovalEvent, SimStats};
use crate::vcpu_map::{VcpuMap, VcpuMapFile};

/// The frozen pre-optimization transaction path, kept verbatim as the
/// differential oracle for the allocation-free fast path. A child module
/// of `simulator` so it can reach the `Simulator` internals directly.
#[path = "reference_path.rs"]
mod reference_path;

/// The data-oriented parallel engine (staged phases over block-address
/// shards; see its module docs). A child module of `simulator` so the
/// transcription twins can reach the `Simulator` internals directly.
#[path = "engine.rs"]
mod engine;

/// The coherence engine behind a [`Simulator`]: the optimized
/// allocation-free [`TokenProtocol`], or the frozen pre-optimization
/// [`ReferenceProtocol`] (selected via
/// [`crate::testing::set_reference_engine`]) that the differential guard
/// runs against.
#[derive(Clone, Debug)]
enum Engine {
    Fast(TokenProtocol),
    Reference(ReferenceProtocol),
}

impl Engine {
    fn is_reference(&self) -> bool {
        matches!(self, Engine::Reference(_))
    }

    /// The memory-side token ledger view shared by both engines (what the
    /// invariant checker and the architectural-state digest consume).
    fn ledger(&self) -> &dyn TokenLedger {
        match self {
            Engine::Fast(p) => p,
            Engine::Reference(p) => p,
        }
    }

    fn fast_mut(&mut self) -> &mut TokenProtocol {
        match self {
            Engine::Fast(p) => p,
            Engine::Reference(_) => unreachable!("fast path entered on reference engine"),
        }
    }

    fn reference_mut(&mut self) -> &mut ReferenceProtocol {
        match self {
            Engine::Reference(p) => p,
            Engine::Fast(_) => unreachable!("reference path entered on fast engine"),
        }
    }

    fn writeback(&mut self, line: &CacheLine) -> bool {
        match self {
            Engine::Fast(p) => p.writeback(line),
            Engine::Reference(p) => p.writeback(line),
        }
    }

    fn check_invariant(&self, caches: &[Cache], block: BlockAddr) -> bool {
        match self {
            Engine::Fast(p) => p.check_invariant(caches, block),
            Engine::Reference(p) => p.check_invariant(caches, block),
        }
    }
}

/// A workload the simulator can drive end to end: an access stream plus
/// the hypervisor-owned page metadata the filter consults.
pub trait SystemWorkload: AccessStream {
    /// The page-sharing directory (shadow/nested page table contents).
    fn directory(&self) -> &SharingDirectory;
    /// The friend VM of `vm` (most content pages shared), if any.
    fn friend_of(&self, vm: VmId) -> Option<VmId>;
}

impl SystemWorkload for Workload {
    fn directory(&self) -> &SharingDirectory {
        Workload::directory(self)
    }
    fn friend_of(&self, vm: VmId) -> Option<VmId> {
        self.content().friend_of(vm)
    }
}

/// Recording passes through the wrapped workload's page metadata, so a
/// recorder can drive the simulator directly.
impl<W: SystemWorkload> SystemWorkload for workloads::TraceRecorder<W> {
    fn directory(&self) -> &SharingDirectory {
        self.inner().directory()
    }
    fn friend_of(&self, vm: VmId) -> Option<VmId> {
        self.inner().friend_of(vm)
    }
}

/// A recorded trace paired with the page metadata it was captured against,
/// ready to drive the simulator (e.g. for bit-identical cross-policy
/// comparisons).
///
/// # Examples
///
/// ```
/// use vsnoop::{ReplayWorkload, Simulator, SystemConfig, FilterPolicy, ContentPolicy};
/// use workloads::{profile, AccessStream, TraceRecorder, Workload, WorkloadConfig};
/// use sim_vm::{VcpuId, VmId};
///
/// let cfg = SystemConfig::small_test();
/// let wl = Workload::homogeneous(
///     profile("lu").unwrap(),
///     cfg.n_vms,
///     WorkloadConfig { vcpus_per_vm: cfg.vcpus_per_vm, ..Default::default() },
/// );
/// let mut rec = TraceRecorder::new(wl);
/// let mut sim = Simulator::new(cfg, FilterPolicy::TokenBroadcast, ContentPolicy::Broadcast);
/// sim.run(&mut rec, 100);
/// let (trace, wl) = rec.finish();
///
/// // Replay the exact same accesses under virtual snooping.
/// let mut replay = ReplayWorkload::new(trace.replay(), &wl);
/// let mut sim2 = Simulator::new(cfg, FilterPolicy::VsnoopBase, ContentPolicy::Broadcast);
/// sim2.run(&mut replay, 100);
/// assert_eq!(sim.stats().l2_misses, sim2.stats().l2_misses);
/// ```
#[derive(Debug)]
pub struct ReplayWorkload<'a> {
    replayer: workloads::TraceReplayer<'a>,
    source: &'a Workload,
}

impl<'a> ReplayWorkload<'a> {
    /// Pairs a replayer with the workload whose pages it addresses.
    pub fn new(replayer: workloads::TraceReplayer<'a>, source: &'a Workload) -> Self {
        ReplayWorkload { replayer, source }
    }
}

impl AccessStream for ReplayWorkload<'_> {
    fn next_access(&mut self, vcpu: VcpuId) -> TraceAccess {
        self.replayer.next_access(vcpu)
    }
}

impl SystemWorkload for ReplayWorkload<'_> {
    fn directory(&self) -> &SharingDirectory {
        Workload::directory(self.source)
    }
    fn friend_of(&self, vm: VmId) -> Option<VmId> {
        self.source.content().friend_of(vm)
    }
}

/// The assembled machine.
///
/// `Simulator` is `Clone`: the copy carries the complete architectural
/// and micro-architectural state — caches (contents *and* LRU order),
/// the token ledger, network traffic counters, hypervisor placement,
/// vCPU maps, TLBs, removal timers, fault and checker state — so a
/// clone taken after a warm-up phase behaves bit-identically to the
/// original from that point on. [`Simulator::snapshot`] packages a
/// clone together with the matching [`Workload`] position.
#[derive(Clone)]
pub struct Simulator {
    cfg: SystemConfig,
    policy: FilterPolicy,
    content_policy: ContentPolicy,
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    protocol: Engine,
    net: Network,
    hv: Hypervisor,
    maps: VcpuMapFile,
    tlbs: Vec<TypeTlb>,
    friends: Vec<Option<VmId>>,
    /// RegionScout baseline state (present only under that policy).
    region_filter: Option<RegionFilter>,
    /// `[core][vm]` — cycle at which the VM's last vCPU left the core,
    /// pending a counter-driven removal (Fig. 9's measurement start).
    removal_pending: Vec<Vec<Option<u64>>>,
    removal_log: Vec<RemovalEvent>,
    cycle: u64,
    stats: SimStats,
    /// Fault-injection state; `None` means the fault-free fast path (the
    /// behaviour is then bit-identical to a build without this feature).
    faults: Option<FaultState>,
    /// Runtime invariant checker, enabled via [`Simulator::enable_checker`].
    checker: Option<InvariantChecker>,
    /// Bounded log of recoverable internal inconsistencies.
    diagnostics: Vec<SimError>,
    diagnostics_total: u64,
    /// Per-epoch time-series recorder (observability layer); `None` —
    /// the default — keeps the hot path to a single branch per round.
    epochs: Option<Box<crate::obs::EpochRecorder>>,
    /// Latch so the flight recorder is dumped at most once per simulator
    /// on the first checker violation.
    flight_dumped: bool,
    /// Per-instance worker-count override for the parallel engine; when
    /// unset the `VSNOOP_ENGINE_WORKERS` knob (default 1) decides.
    engine_workers: Option<usize>,
    /// Latch so a saturated traffic counter is diagnosed once.
    traffic_overflow_reported: bool,
}

/// One deferred vCPU-map register update (map-sync-delay fault).
#[derive(Clone)]
struct PendingSync {
    due: u64,
    vm: VmId,
    core: CoreId,
}

/// Live state derived from a [`FaultPlan`].
#[derive(Clone)]
struct FaultState {
    plan: FaultPlan,
    rng: SmallRng,
    pending_syncs: Vec<PendingSync>,
    next_audit: u64,
    injected: FaultInjectionStats,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("cores", &self.cfg.n_cores())
            .field("policy", &self.policy)
            .field("content_policy", &self.content_policy)
            .field("cycle", &self.cycle)
            .finish_non_exhaustive()
    }
}

impl Simulator {
    /// Builds a simulator for `cfg` under the given policies, with all
    /// vCPUs pinned round-robin (VM0 on the first cores, etc.).
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SystemConfig::validate`];
    /// use [`Simulator::try_new`] to handle that as a typed error.
    pub fn new(cfg: SystemConfig, policy: FilterPolicy, content_policy: ContentPolicy) -> Self {
        match Self::try_new(cfg, policy, content_policy) {
            Ok(sim) => sim,
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds a simulator like [`Simulator::new`], but surfaces an
    /// invalid configuration as [`SimError::InvalidConfig`] instead of
    /// panicking — campaign runners and other supervised callers report
    /// the violated constraint rather than unwinding.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the configuration fails
    /// [`SystemConfig::validate`].
    pub fn try_new(
        cfg: SystemConfig,
        policy: FilterPolicy,
        content_policy: ContentPolicy,
    ) -> Result<Self, SimError> {
        cfg.validate()?;
        let n = cfg.n_cores();
        let specs: Vec<VmSpec> = (0..cfg.n_vms)
            .map(|i| VmSpec::new(VmId::new(i as u16), cfg.vcpus_per_vm, 0))
            .collect();
        let mut hv = Hypervisor::new(n, &specs);
        hv.place_round_robin();
        hv.clear_relocations();

        let mut maps = VcpuMapFile::new(cfg.n_vms);
        for vm in 0..cfg.n_vms {
            maps.set(vm, VcpuMap::from_mask(hv.cores_of_vm(VmId::new(vm as u16))));
        }

        let region_filter = match policy {
            FilterPolicy::RegionScout {
                region_blocks,
                nsrt_entries,
            } => Some(RegionFilter::new(n, region_blocks, nsrt_entries)),
            _ => None,
        };

        Ok(Simulator {
            region_filter,
            l1: vec![Cache::new(CacheGeometry::new(cfg.l1_bytes, cfg.l1_ways), cfg.n_vms); n],
            l2: vec![Cache::new(CacheGeometry::new(cfg.l2_bytes, cfg.l2_ways), cfg.n_vms); n],
            protocol: if crate::testing::reference_engine() {
                Engine::Reference(ReferenceProtocol::new(n as u32))
            } else {
                Engine::Fast(TokenProtocol::new(n as u32))
            },
            net: {
                let mesh = Mesh::try_new(cfg.mesh_width, cfg.mesh_height)?;
                Network::try_with_config(mesh, cfg.network, mesh.corner_ports())?
            },
            hv,
            maps,
            tlbs: vec![TypeTlb::new(cfg.tlb_slots); n],
            friends: vec![None; cfg.n_vms],
            removal_pending: vec![vec![None; cfg.n_vms]; n],
            removal_log: Vec::new(),
            cycle: 0,
            stats: SimStats::new(n),
            faults: None,
            checker: None,
            diagnostics: Vec::new(),
            diagnostics_total: 0,
            epochs: None,
            flight_dumped: false,
            engine_workers: None,
            traffic_overflow_reported: false,
            cfg,
            policy,
            content_policy,
        })
    }

    /// Installs a fault-injection plan. Link faults (drops/delays) are
    /// threaded into the network; map corruption, delayed synchronization
    /// and spurious bounces are injected at round boundaries; the
    /// hypervisor audit repairs registers every `audit_period_cycles`.
    ///
    /// Installing [`FaultPlan::none`] (or never calling this) keeps the
    /// simulator on the fault-free fast path.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        if plan.any_link() {
            // Derive the link seed from the plan seed so one seed
            // reproduces the whole campaign.
            self.net.install_faults(Some(LinkFaults::new(
                plan.link_config(),
                plan.seed ^ 0x9E37_79B9_7F4A_7C15,
            )));
        } else {
            self.net.install_faults(None);
        }
        self.faults = Some(FaultState {
            rng: SmallRng::seed_from_u64(plan.seed),
            pending_syncs: Vec::new(),
            next_audit: if plan.audit_period_cycles > 0 {
                self.cycle + plan.audit_period_cycles
            } else {
                u64::MAX
            },
            injected: FaultInjectionStats::default(),
            plan,
        });
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(|f| &f.plan)
    }

    /// Counts of faults actually injected so far, if a plan is installed.
    pub fn fault_injections(&self) -> Option<&FaultInjectionStats> {
        self.faults.as_ref().map(|f| &f.injected)
    }

    /// Link-level fault counters (drops/delays), when link faults are on.
    pub fn link_faults(&self) -> Option<&LinkFaults> {
        self.net.link_faults()
    }

    /// Enables the runtime invariant checker: hard invariants on every
    /// transaction's block, full-machine sweeps per
    /// [`CheckerConfig::sweep_every`].
    pub fn enable_checker(&mut self, cfg: CheckerConfig) {
        self.checker = Some(InvariantChecker::new(cfg));
    }

    /// The invariant checker, if enabled.
    pub fn checker(&self) -> Option<&InvariantChecker> {
        self.checker.as_ref()
    }

    /// Forces a full-machine invariant sweep now (e.g. at the end of a
    /// soak phase). No-op when the checker is disabled.
    pub fn run_checker_sweep(&mut self) {
        self.surface_traffic_overflow();
        let trusted = self.maps_trusted();
        let Some(mut ch) = self.checker.take() else {
            return;
        };
        let before = ch.total_violations();
        ch.full_sweep(
            self.cycle,
            &CheckerCtx {
                l1: &self.l1,
                l2: &self.l2,
                protocol: self.protocol.ledger(),
                maps: &self.maps,
                hv: &self.hv,
                maps_trusted: trusted,
            },
        );
        self.checker = Some(ch);
        self.after_check(before);
    }

    /// Recoverable internal inconsistencies observed so far (bounded log;
    /// see [`Simulator::diagnostics_total`] for the unbounded count).
    pub fn diagnostics(&self) -> &[SimError] {
        &self.diagnostics
    }

    /// Total diagnostics recorded, including any past the log cap.
    pub fn diagnostics_total(&self) -> u64 {
        self.diagnostics_total
    }

    fn diagnose(&mut self, e: SimError) {
        self.diagnostics_total += 1;
        if self.diagnostics.len() < 64 {
            self.diagnostics.push(e);
        }
    }

    /// Whether the vCPU-map registers are guaranteed in sync with the
    /// hypervisor (no corruption or delayed-sync faults in the plan).
    fn maps_trusted(&self) -> bool {
        self.faults
            .as_ref()
            .is_none_or(|f| !f.plan.maps_can_diverge())
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The filter policy in force.
    pub fn policy(&self) -> FilterPolicy {
        self.policy
    }

    /// Collected statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Network traffic statistics.
    pub fn traffic(&self) -> &sim_net::TrafficStats {
        self.net.traffic()
    }

    /// A canonical digest of the architectural state: every valid cache
    /// line (block, tokens, owner, dirty, VM tag) per core and level,
    /// plus the memory-side token ledger, each sorted by block address.
    ///
    /// Deliberately excludes micro-architectural bookkeeping — LRU
    /// timestamps, statistics, vCPU maps, filter state — so two
    /// simulations agree iff they cached the same data with the same
    /// coherence permissions. The differential oracle uses this to check
    /// that snoop *filtering* never changes what the machine computes.
    pub fn arch_state(&self) -> String {
        use std::fmt::Write as _;

        fn dump(out: &mut String, label: &str, cache: &sim_mem::Cache) {
            let mut lines: Vec<_> = cache
                .lines()
                .map(|l| (l.block, l.state.tokens, l.state.owner, l.state.dirty, l.tag))
                .collect();
            lines.sort_unstable_by_key(|&(block, ..)| block);
            for (block, tokens, owner, dirty, tag) in lines {
                let _ = writeln!(
                    out,
                    "{label} {block:?} t={tokens} o={owner} d={dirty} {tag:?}"
                );
            }
        }

        let mut out = String::new();
        for (core, (l1, l2)) in self.l1.iter().zip(&self.l2).enumerate() {
            dump(&mut out, &format!("core{core} L1"), l1);
            dump(&mut out, &format!("core{core} L2"), l2);
        }
        for (block, tokens, owner) in self.protocol.ledger().memory_entries_sorted() {
            let _ = writeln!(&mut out, "mem {block:?} t={tokens} o={owner}");
        }
        out
    }

    /// Core-removal events (Fig. 9).
    pub fn removal_log(&self) -> &[RemovalEvent] {
        &self.removal_log
    }

    /// Current global cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Current vCPU map of `vm`.
    pub fn vcpu_map(&self, vm: VmId) -> VcpuMap {
        self.maps.map(vm.index())
    }

    /// The hypervisor state (vCPU placement).
    pub fn hypervisor(&self) -> &Hypervisor {
        &self.hv
    }

    /// The RegionScout baseline state, when that policy is active.
    pub fn region_filter(&self) -> Option<&RegionFilter> {
        self.region_filter.as_ref()
    }

    /// Clears statistics, traffic, and logs while *keeping caches, maps
    /// and placement warm* — call after a warm-up phase. An enabled
    /// epoch recorder is rebaselined at the cleared state, so epochs
    /// cover only the measured phase.
    pub fn reset_measurement(&mut self) {
        self.stats = SimStats::new(self.cfg.n_cores());
        self.net.reset_traffic();
        self.removal_log.clear();
        if let Some(ep) = self.epochs.as_deref_mut() {
            ep.rebaseline(
                self.cycle,
                &self.stats,
                self.net.traffic(),
                self.net.node_bytes(),
                self.hv.swaps(),
            );
        }
    }

    /// Enables per-epoch time-series recording: an epoch is cut every
    /// `every` rounds, capturing the delta of every statistic plus the
    /// snoop fan-out histogram and per-link traffic (the network's
    /// per-node byte tally is switched on as the heatmap source).
    /// Baselines anchor at the *current* state, so enabling after a
    /// warm-up phase records only what follows. See
    /// [`EpochRecorder`](crate::obs::EpochRecorder) for export formats.
    pub fn enable_epochs(&mut self, every: u64) {
        self.net.enable_node_tally();
        let mut rec = Box::new(crate::obs::EpochRecorder::new(every));
        rec.rebaseline(
            self.cycle,
            &self.stats,
            self.net.traffic(),
            self.net.node_bytes(),
            self.hv.swaps(),
        );
        self.epochs = Some(rec);
    }

    /// The per-epoch recorder, when enabled via
    /// [`Simulator::enable_epochs`].
    pub fn epochs(&self) -> Option<&crate::obs::EpochRecorder> {
        self.epochs.as_deref()
    }

    /// Cuts the current partial epoch so an end-of-run tail shorter
    /// than the epoch length is not lost. No-op when epoch recording
    /// is disabled or no rounds have run since the last cut.
    pub fn flush_epochs(&mut self) {
        if let Some(ep) = self.epochs.as_deref_mut() {
            ep.flush(
                self.cycle,
                &self.stats,
                self.net.traffic(),
                self.net.node_bytes(),
                self.hv.swaps(),
            );
        }
    }

    /// End-of-round observability bookkeeping: the process-wide round
    /// counter (heartbeat rate source) and the epoch recorder's tick.
    /// When tracing is off this is one relaxed atomic load and one
    /// `Option` branch.
    fn obs_round_tick(&mut self) {
        if crate::obs::enabled() {
            crate::obs::count_round();
        }
        if let Some(ep) = self.epochs.as_deref_mut() {
            ep.tick_round(
                self.cycle,
                &self.stats,
                self.net.traffic(),
                self.net.node_bytes(),
                self.hv.swaps(),
            );
        }
    }

    /// Deliberately corrupts one cached L2 line's coherence metadata so
    /// the next checker pass reports `DirtyWithoutOwner` — scaffolding
    /// for exercising the violation-dump path in tests and the soak
    /// harness (`SOAK_FORCE_VIOLATION`). Returns the corrupted block
    /// number, or `None` when no line is cached anywhere yet.
    #[doc(hidden)]
    pub fn debug_corrupt_token_state(&mut self) -> Option<u64> {
        // Prefer a tokened-but-unowned line: marking it dirty yields a
        // violation without touching token conservation. Fall back to
        // stripping ownership from an owner line.
        for l2 in &mut self.l2 {
            let candidate = l2
                .lines()
                .find(|l| !l.state.owner && l.state.tokens > 0)
                .map(|l| l.block);
            if let Some(block) = candidate {
                let line = l2.probe_mut(block)?;
                line.state.dirty = true;
                return Some(block.index());
            }
        }
        for l2 in &mut self.l2 {
            let candidate = l2.lines().find(|l| l.state.owner).map(|l| l.block);
            if let Some(block) = candidate {
                let line = l2.probe_mut(block)?;
                line.state.dirty = true;
                line.state.owner = false;
                return Some(block.index());
            }
        }
        None
    }

    /// First-violation hook: the first time the checker's violation
    /// count rises, dump the flight recorder and emit a telemetry
    /// record. Latched per simulator so later violations never
    /// overwrite the dump closest to the root cause. No-op when
    /// tracing is off.
    fn after_check(&mut self, violations_before: u64) {
        let Some(ch) = self.checker.as_ref() else {
            return;
        };
        let total = ch.total_violations();
        if total <= violations_before || self.flight_dumped || !crate::obs::enabled() {
            return;
        }
        self.flight_dumped = true;
        use crate::runner::json::Value;
        let kind = ch
            .violations()
            .last()
            .map_or_else(|| "unknown".to_string(), |v| format!("{:?}", v.kind));
        let path = crate::obs::dump_flight("violation");
        crate::obs::telemetry::emit(
            "checker_violation",
            vec![
                ("kind", Value::Str(kind)),
                ("cycle", Value::UInt(self.cycle)),
                ("total_violations", Value::UInt(total)),
                (
                    "flight_dump",
                    path.map_or(Value::Null, |p| Value::Str(p.display().to_string())),
                ),
            ],
        );
    }

    /// Captures a warm-state snapshot: the complete machine state plus
    /// the workload's position in its access stream (memory layout,
    /// sharing state, reuse bursts, RNG state).
    ///
    /// Snapshotting is a pure copy — it consumes no workload RNG and
    /// does not perturb the simulator — so interposing a snapshot
    /// between a warm-up and a measurement phase leaves both
    /// bit-identical to an uninterrupted run. [`SimSnapshot::fork`]
    /// resumes from the captured point as many times as needed.
    pub fn snapshot(&self, workload: &Workload) -> SimSnapshot {
        SimSnapshot {
            sim: self.clone(),
            workload: workload.clone(),
        }
    }

    /// Pins the parallel engine's worker count for this simulator,
    /// overriding the `VSNOOP_ENGINE_WORKERS` environment knob. `1`
    /// forces the serial path; `None` auto-picks the host's available
    /// parallelism (same resolution as `VSNOOP_ENGINE_WORKERS=auto`);
    /// higher counts take effect only for runs the batched engine can
    /// execute bit-identically (see its eligibility gate) — everything
    /// else stays serial regardless.
    pub fn set_engine_workers(&mut self, workers: impl Into<Option<usize>>) {
        self.engine_workers = Some(match workers.into() {
            Some(w) => w.max(1),
            None => crate::knob::auto_workers(),
        });
    }

    /// Worker count in force: instance override, else the
    /// `VSNOOP_ENGINE_WORKERS` knob (a count, or `auto` for the host's
    /// available parallelism), else 1 (serial).
    fn resolved_engine_workers(&self) -> usize {
        self.engine_workers
            .or_else(|| crate::knob::env_worker_count("VSNOOP_ENGINE_WORKERS"))
            .unwrap_or(1)
    }

    /// Surfaces a saturated network-traffic counter as a typed
    /// diagnostic (and a checker violation when the checker is on),
    /// once per simulator: every byte-derived metric is a lower bound
    /// from the saturation point on, silently-correct-looking output
    /// would hide that.
    fn surface_traffic_overflow(&mut self) {
        if self.traffic_overflow_reported || !self.net.traffic().overflowed() {
            return;
        }
        self.traffic_overflow_reported = true;
        const COUNTER: &str = "network traffic byte-links";
        self.diagnose(SimError::CounterSaturated { counter: COUNTER });
        if let Some(ch) = self.checker.as_mut() {
            ch.note_counter_saturated(self.cycle, COUNTER);
        }
    }

    /// Runs `rounds` rounds, each issuing one access per core from
    /// `workload`.
    pub fn run<W: SystemWorkload>(&mut self, workload: &mut W, rounds: u64) {
        self.refresh_friends(workload);
        let workers = self.resolved_engine_workers();
        if workers > 1 && engine::eligible(self) {
            engine::run_batched(self, workload, rounds, None, workers);
            self.surface_traffic_overflow();
            return;
        }
        for _ in 0..rounds {
            // Deadline checkpoint for supervised campaign jobs; a plain
            // thread-local read outside of them.
            crate::runner::poll_current();
            self.cycle += self.cfg.cycles_per_access;
            self.stats.rounds += 1;
            self.on_round_start();
            for core in CoreId::all(self.cfg.n_cores()) {
                let Some(vcpu) = self.hv.vcpu_on(core) else {
                    continue;
                };
                let access = workload.next_access(vcpu);
                self.step(core, access, workload.directory());
            }
            self.obs_round_tick();
        }
        self.surface_traffic_overflow();
    }

    /// Runs with a periodic cross-VM vCPU shuffle: every
    /// `period_cycles`, two vCPUs from *different* VMs (chosen by the
    /// deterministic `pick` callback) exchange cores — the paper's
    /// approximate migration model (Section V-C).
    pub fn run_with_migration<W: SystemWorkload>(
        &mut self,
        workload: &mut W,
        rounds: u64,
        period_cycles: u64,
        mut pick: impl FnMut(u64) -> (VcpuId, VcpuId),
    ) {
        assert!(period_cycles > 0, "migration period must be positive");
        self.refresh_friends(workload);
        let workers = self.resolved_engine_workers();
        if workers > 1 && engine::eligible(self) {
            engine::run_batched(
                self,
                workload,
                rounds,
                Some((period_cycles, &mut pick)),
                workers,
            );
            self.surface_traffic_overflow();
            return;
        }
        let mut next_migration = self.cycle + period_cycles;
        let mut migration_no = 0u64;
        for _ in 0..rounds {
            crate::runner::poll_current();
            self.cycle += self.cfg.cycles_per_access;
            self.stats.rounds += 1;
            self.on_round_start();
            if self.cycle >= next_migration {
                next_migration += period_cycles;
                let (a, b) = pick(migration_no);
                migration_no += 1;
                if a.vm() != b.vm() {
                    // An unplaced pick is recorded as a diagnostic inside
                    // swap_vcpus; the storm simply continues.
                    let _ = self.swap_vcpus(a, b);
                }
            }
            for core in CoreId::all(self.cfg.n_cores()) {
                let Some(vcpu) = self.hv.vcpu_on(core) else {
                    continue;
                };
                let access = workload.next_access(vcpu);
                self.step(core, access, workload.directory());
            }
            self.obs_round_tick();
        }
        self.surface_traffic_overflow();
    }

    /// Exchanges the physical cores of two vCPUs, maintaining vCPU maps
    /// (new cores are added; old cores stay until the counter mechanism
    /// clears them) and starting Fig. 9 removal timers.
    ///
    /// An unplaced vCPU is not a panic: the swap is skipped, the
    /// inconsistency is recorded in [`Simulator::diagnostics`], and the
    /// error is returned for callers that want to react.
    pub fn swap_vcpus(&mut self, a: VcpuId, b: VcpuId) -> Result<(), SimError> {
        let (ca, cb) = match self.hv.try_swap(self.cycle, a, b) {
            Ok(cores) => cores,
            Err(UnplacedVcpu(vcpu)) => {
                let e = SimError::VcpuNotPlaced {
                    vcpu,
                    context: "swap_vcpus",
                };
                self.diagnose(e.clone());
                return Err(e);
            }
        };
        if ca == cb {
            return Ok(());
        }
        for (vcpu, old, new) in [(a, ca, cb), (b, cb, ca)] {
            let vm = vcpu.vm();
            // Under the map-sync-delay fault the register update lags the
            // migration; the window where the new core is missing from its
            // own VM's map is exactly what the use-time validation and the
            // degraded broadcast fallback must absorb.
            let sync_delay = self
                .faults
                .as_ref()
                .map_or(0, |f| f.plan.map_sync_delay_cycles);
            if sync_delay > 0 && !self.maps.map(vm.index()).contains(new) {
                let due = self.cycle + sync_delay;
                if let Some(f) = &mut self.faults {
                    f.pending_syncs.push(PendingSync { due, vm, core: new });
                    f.injected.delayed_syncs += 1;
                }
            } else if self.maps.add_core(vm.index(), new) {
                self.stats.map_adds += 1;
                self.account_map_sync(vm);
            }
            // The VM reappeared on `new`: cancel any pending removal timer.
            self.removal_pending[new.index()][vm.index()] = None;
            // If the VM no longer runs on `old`, start the removal timer.
            if self.hv.cores_of_vm(vm) & (1 << old.index()) == 0 {
                self.removal_pending[old.index()][vm.index()] = Some(self.cycle);
                // The counter may already be below the removal threshold
                // (even zero) at departure time; check immediately.
                self.maybe_remove_core(old.index(), vm);
            }
        }
        Ok(())
    }

    /// Round-boundary fault machinery: applies due register syncs, injects
    /// the per-round fault classes, and runs the periodic hypervisor audit.
    /// A no-op without an installed plan.
    fn on_round_start(&mut self) {
        let Some(mut f) = self.faults.take() else {
            return;
        };
        let cycle = self.cycle;

        // 1. Deferred vCPU-map updates whose delay has elapsed.
        let mut i = 0;
        while i < f.pending_syncs.len() {
            if f.pending_syncs[i].due <= cycle {
                let p = f.pending_syncs.swap_remove(i);
                if self.maps.add_core(p.vm.index(), p.core) {
                    self.stats.map_adds += 1;
                    self.account_map_sync(p.vm);
                }
            } else {
                i += 1;
            }
        }

        // 2. vCPU-map register corruption.
        if f.plan.corrupt_map_p > 0.0 && f.rng.gen_bool(f.plan.corrupt_map_p) {
            let vm = f.rng.gen_range(0..self.cfg.n_vms);
            let cur = self.maps.map(vm);
            let mode = MapCorruption::ALL[f.rng.gen_range(0..MapCorruption::ALL.len())];
            match mode {
                MapCorruption::ClearBit => {
                    let bits: Vec<CoreId> = cur.cores().collect();
                    if !bits.is_empty() {
                        let victim = bits[f.rng.gen_range(0..bits.len())];
                        let mut m = cur;
                        m.remove(victim);
                        self.maps.corrupt(vm, m);
                        f.injected.maps_bit_cleared += 1;
                    }
                }
                MapCorruption::SetBit => {
                    // Any of the 64 register bits, including ones beyond
                    // the physical core count (an *invalid* register).
                    let bit = f.rng.gen_range(0..64u32);
                    self.maps
                        .corrupt(vm, VcpuMap::from_mask(cur.mask() | (1u64 << bit)));
                    f.injected.maps_bit_set += 1;
                }
                MapCorruption::Garbage => {
                    let garbage = f.rng.gen::<u64>();
                    self.maps.corrupt(vm, VcpuMap::from_mask(garbage));
                    f.injected.maps_garbaged += 1;
                }
            }
        }

        // 3. Spurious token bounce: a random cached line surrenders its
        // tokens to memory, as if a transient request had failed.
        if f.plan.spurious_bounce_p > 0.0 && f.rng.gen_bool(f.plan.spurious_bounce_p) {
            let core = f.rng.gen_range(0..self.cfg.n_cores());
            let occ = self.l2[core].occupancy();
            if occ > 0 {
                let idx = f.rng.gen_range(0..occ);
                let victim = self.l2[core].lines().nth(idx).map(|l| l.block);
                if let Some(block) = victim {
                    if let Some(line) = self.l2[core].remove(block) {
                        let dirty = self.protocol.writeback(&line);
                        self.handle_eviction(core, line, dirty);
                        f.injected.spurious_bounces += 1;
                    }
                }
            }
        }

        // 4. Periodic hypervisor audit: scrub every register back to a
        // valid, covering state. Right after the audit the registers are
        // known-good, so the map invariants can be checked even under a
        // corrupting plan.
        if cycle >= f.next_audit {
            f.next_audit = cycle + f.plan.audit_period_cycles;
            self.audit_maps();
            self.faults = Some(f);
            self.checker_check_maps();
            return;
        }
        self.faults = Some(f);
    }

    /// The hypervisor's register scrubber: strips invalid bits and
    /// restores every running core, leaving legitimate stale-but-valid
    /// bits (old cores still caching the VM's data) untouched.
    fn audit_maps(&mut self) {
        let valid = valid_core_mask(self.cfg.n_cores());
        for vm_idx in 0..self.cfg.n_vms {
            let vm = VmId::new(vm_idx as u16);
            let cur = self.maps.map(vm_idx).mask();
            let repaired = (cur & valid) | self.hv.cores_of_vm(vm);
            if repaired != cur {
                self.maps.set(vm_idx, VcpuMap::from_mask(repaired));
                self.stats.map_repairs += 1;
                self.account_map_sync(vm);
            }
        }
    }

    /// Runs the checker's map audit with the registers marked trusted —
    /// valid only immediately after [`Simulator::audit_maps`].
    fn checker_check_maps(&mut self) {
        let Some(mut ch) = self.checker.take() else {
            return;
        };
        let before = ch.total_violations();
        ch.check_maps(
            self.cycle,
            &CheckerCtx {
                l1: &self.l1,
                l2: &self.l2,
                protocol: self.protocol.ledger(),
                maps: &self.maps,
                hv: &self.hv,
                maps_trusted: true,
            },
        );
        self.checker = Some(ch);
        self.after_check(before);
    }

    /// One access slot on `core`.
    fn step(&mut self, core: CoreId, access: TraceAccess, dir: &SharingDirectory) {
        let c = core.index();
        self.stats.accesses += 1;
        let block = BlockAddr::new(access.addr / sim_mem::BLOCK_BYTES);
        let page = access.addr / PAGE_BYTES;
        let sharing = self.tlbs[c].lookup(page, dir);
        if sharing == SharingType::RoShared {
            self.stats.content_accesses += 1;
        }

        // L1.
        if self.l1[c].access(block) {
            if access.write {
                // A store needs write permission at the (inclusive) L2; if
                // the L2 line holds all tokens the store completes locally.
                if let Some(line) = self.l2[c].probe_mut(block) {
                    if line.state.can_write(self.cfg.n_cores() as u32) {
                        line.state.dirty = true;
                        self.stats.l1_hits += 1;
                        return;
                    }
                }
                // No write permission at L2: this access is an upgrade
                // transaction, not an L1 hit.
                self.l1[c].remove(block);
            } else {
                self.stats.l1_hits += 1;
                return;
            }
        }

        // L2.
        let total = self.cfg.n_cores() as u32;
        let hit = {
            let present = self.l2[c].access(block);
            if present {
                match self.l2[c].probe_mut(block) {
                    Some(line) => {
                        if access.write {
                            if line.state.can_write(total) {
                                line.state.dirty = true;
                                true
                            } else {
                                false
                            }
                        } else {
                            line.state.can_read()
                        }
                    }
                    // A hit that vanished between lookup and probe: the
                    // cache disagrees with itself. Diagnose and fall
                    // through to a (correct, if slower) miss.
                    None => {
                        self.diagnose(SimError::CacheDesync { core: c, block });
                        false
                    }
                }
            } else {
                false
            }
        };
        if hit {
            self.stats.l2_hits += 1;
            self.fill_l1(c, block, access.agent);
            return;
        }

        // Coherence transaction.
        self.stats.count_miss(access.agent, sharing);
        if sharing == SharingType::RoShared && !access.write {
            self.classify_holders(block, access.agent.guest_vm());
        }
        self.transaction(core, access, block, sharing);
        self.run_checker(block);
    }

    /// Post-transaction invariant check on the touched block (plus the
    /// periodic full sweep). No-op when the checker is disabled.
    fn run_checker(&mut self, block: BlockAddr) {
        let trusted = self.maps_trusted();
        let Some(mut ch) = self.checker.take() else {
            return;
        };
        let before = ch.total_violations();
        ch.on_transaction(
            self.cycle,
            block,
            &CheckerCtx {
                l1: &self.l1,
                l2: &self.l2,
                protocol: self.protocol.ledger(),
                maps: &self.maps,
                hv: &self.hv,
                maps_trusted: trusted,
            },
        );
        self.checker = Some(ch);
        self.after_check(before);
    }

    /// Executes one coherence transaction: the paper's bounded transient
    /// retry ladder (two filtered attempts, then broadcast), hardened for
    /// fault injection with extra broadcast retries under exponential
    /// backoff and a final escalation to a guaranteed *persistent request*
    /// (Token Coherence's forward-progress mechanism, carried on the
    /// reliable virtual channel). Fault-free, the first broadcast attempt
    /// always succeeds, so the extra rungs are never exercised and the
    /// ladder is exactly the original three attempts.
    ///
    /// This is the allocation-free fast path: destination sets, delivered
    /// sets, and invalidation sets are `u64` core bitmasks end to end, and
    /// fault-free request fan-out and token replies are accounted as
    /// batched multicasts. [`reference_path::transaction`] keeps the
    /// original `Vec`-collecting implementation verbatim; the differential
    /// guard pins the two to bit-identical statistics and state.
    fn transaction(
        &mut self,
        core: CoreId,
        access: TraceAccess,
        block: BlockAddr,
        sharing: SharingType,
    ) {
        if self.protocol.is_reference() {
            return reference_path::transaction(self, core, access, block, sharing);
        }
        let c = core.index();
        let tag = LineTag::from(access.agent);
        let mode = self.read_mode(access.agent, sharing);
        // For region tracking: whether the requester already held the
        // block (an upgrade does not change its region count).
        let requester_had = self.l2[c].probe(block).is_some();

        let transient_attempts: u32 = if self.faults.is_some() { 5 } else { 3 };
        for attempt in 0..=transient_attempts {
            let persistent = attempt == transient_attempts;
            let filtered = attempt < 2;
            let (dest_mask, include_memory, degraded) = if persistent {
                let all = valid_core_mask(self.cfg.n_cores()) & !(1u64 << c);
                (all, true, false)
            } else {
                self.destinations(c, access.agent, sharing, filtered, block)
            };
            if attempt > 0 {
                self.stats.retries += 1;
                if attempt == 2 {
                    self.stats.broadcast_fallbacks += 1;
                }
            }
            if persistent {
                self.stats.persistent_requests += 1;
            }
            if degraded && attempt == 0 {
                // The requester's map register failed validation; this
                // transaction runs as a full broadcast (degraded mode).
                self.stats.degraded_broadcasts += 1;
            }

            // Request traffic: one control message per snooped cache, plus
            // one to the memory controller when memory participates. The
            // *worst* leg only matters for failed attempts (the requester
            // must conclude nobody will answer); successful transactions
            // are gated by the leg to the actual responder, computed below.
            // Fault-free, every request is delivered at its base latency,
            // so the whole fan-out is one batched multicast (same traffic,
            // and the multicast's worst leg equals the per-send maximum
            // because latency is monotone in hops). Under link faults each
            // request must be judged individually — and in ascending
            // destination order, to preserve the fault RNG stream.
            let req_kind = if persistent {
                MessageKind::Persistent
            } else {
                MessageKind::Request
            };
            let src = NodeId::new(c as u16);
            let mut delivered: u64 = dest_mask;
            let mut worst_req_lat;
            if self.net.link_faults().is_some() {
                delivered = 0;
                worst_req_lat = 0;
                for d in mask_cores(dest_mask) {
                    let out = self.net.send(src, NodeId::new(d as u16), req_kind);
                    worst_req_lat = worst_req_lat.max(out.latency);
                    if out.delivered {
                        delivered |= 1u64 << d;
                    }
                }
            } else {
                worst_req_lat = self.net.multicast(
                    src,
                    mask_cores(dest_mask).map(|d| NodeId::new(d as u16)),
                    req_kind,
                );
            }
            let mut memory_heard = include_memory;
            if include_memory {
                let out = self.net.send_to_memory(src, req_kind);
                worst_req_lat = worst_req_lat.max(out.latency);
                memory_heard = out.delivered;
            }

            // The paper counts the requester's own tag lookup too (ideal
            // filtering on 16 cores -> 25% of baseline snoops). A dropped
            // request never reaches a tag array, so only delivered ones
            // count.
            self.stats.snoops += u64::from(delivered.count_ones()) + 1;

            let tokens_moved: u32;
            let outcome = if access.write {
                let w = self.protocol.fast_mut().write_miss_masked(
                    self.l2.as_mut_slice(),
                    c,
                    delivered,
                    block,
                    memory_heard,
                    tag,
                );
                // Token-only replies, all converging on the requester.
                // Mesh hops are symmetric, so accounting them as one
                // multicast *from* the requester moves exactly the same
                // byte-links (the per-reply latency was never used).
                if w.token_repliers != 0 {
                    self.net.multicast(
                        src,
                        mask_cores(w.token_repliers).map(|r| NodeId::new(r as u16)),
                        MessageKind::TokenReply,
                    );
                }
                tokens_moved = w.tokens_moved();
                TxOutcome {
                    success: w.success,
                    source: w.source,
                    invalidated: w.invalidated,
                    evicted: w.evicted,
                    evicted_dirty: w.evicted_dirty,
                }
            } else {
                let r = self.protocol.fast_mut().read_miss_masked(
                    self.l2.as_mut_slice(),
                    c,
                    delivered,
                    block,
                    memory_heard,
                    tag,
                    mode,
                );
                tokens_moved = r.tokens_moved();
                TxOutcome {
                    success: r.success,
                    source: r.source,
                    invalidated: r.invalidated,
                    evicted: r.evicted,
                    evicted_dirty: r.evicted_dirty,
                }
            };

            // Observability hook: one flight-recorder event and one
            // fan-out histogram sample per attempt. Off, this is a
            // single relaxed atomic load plus one `Option` branch.
            if crate::obs::enabled() {
                use crate::obs::FlightEvent;
                let mut flags = 0u8;
                if access.write {
                    flags |= FlightEvent::FLAG_WRITE;
                }
                if filtered && dest_mask != valid_core_mask(self.cfg.n_cores()) & !(1u64 << c) {
                    flags |= FlightEvent::FLAG_FILTERED;
                }
                if degraded {
                    flags |= FlightEvent::FLAG_DEGRADED;
                }
                if persistent {
                    flags |= FlightEvent::FLAG_PERSISTENT;
                }
                if memory_heard {
                    flags |= FlightEvent::FLAG_MEMORY;
                }
                if outcome.success {
                    flags |= FlightEvent::FLAG_SUCCESS;
                }
                crate::obs::record_tx(FlightEvent {
                    cycle: self.cycle,
                    block: block.index(),
                    dest_mask,
                    delivered,
                    core: c as u16,
                    tokens_moved: tokens_moved.min(u32::from(u16::MAX)) as u16,
                    attempt: attempt as u8,
                    sharing: sharing as u8,
                    flags,
                });
            }
            if let Some(ep) = self.epochs.as_deref_mut() {
                ep.record_fanout(delivered.count_ones() as usize + 1);
            }

            // Response traffic and latency. The transaction is gated by
            // the round trip to the responder (the data holder answers as
            // soon as *it* receives the request, regardless of how far the
            // other snooped caches are).
            let lm = *self.net.latency_model();
            let round_trip = match outcome.source {
                Some(DataSource::Cache(h)) => {
                    let resp = self
                        .net
                        .unicast(NodeId::new(h as u16), src, MessageKind::Data);
                    self.count_data_source(h, access.agent.guest_vm());
                    let req_leg = lm.base_latency(
                        self.net.mesh().hops(src, NodeId::new(h as u16)),
                        MessageKind::Request.bytes(),
                    );
                    req_leg + resp
                }
                Some(DataSource::Memory) => {
                    let resp =
                        self.net.from_memory(src, MessageKind::Data) + self.cfg.memory_latency;
                    self.stats.data_memory += 1;
                    let port = self.net.mesh().nearest_port(src, self.net.memory_ports());
                    let req_leg = lm.base_latency(
                        self.net.mesh().hops(src, port),
                        MessageKind::Request.bytes(),
                    );
                    req_leg + resp
                }
                // Failed attempt (or a dataless upgrade): the requester
                // waits out the worst request leg plus a reply leg before
                // concluding/collecting.
                None => 2 * worst_req_lat,
            };

            // Charge the stall (contention-scaled) whether or not the
            // attempt succeeded: failed attempts cost real time.
            let base = self.cfg.l2_latency + round_trip;
            let stall = self.cfg.network.contended_latency(base, self.utilization());
            self.stats.stall_cycles[c] += stall;

            // Region tracking (RegionScout baseline): lines that left
            // remote caches or were displaced locally.
            if let Some(rf) = &mut self.region_filter {
                let region = rf.region_of(block);
                if filtered && dest_mask == 0 {
                    rf.record_hit();
                }
                for j in mask_cores(outcome.invalidated) {
                    rf.on_remove(j, region);
                }
                if let Some(v) = &outcome.evicted {
                    let vr = rf.region_of(v.block);
                    rf.on_remove(c, vr);
                }
            }

            // Post-transaction bookkeeping.
            self.apply_invalidations_mask(outcome.invalidated, block);
            if let Some(victim) = outcome.evicted {
                self.handle_eviction(c, victim, outcome.evicted_dirty);
            }

            if outcome.success {
                if let Some(rf) = &mut self.region_filter {
                    let region = rf.region_of(block);
                    if !requester_had {
                        // The fill also shoots down other cores' NSRT
                        // entries for the region (the broadcast doubles as
                        // the notification).
                        rf.on_fill(c, region);
                    }
                    // A broadcast that reached every other core and found
                    // no holder of the region verifies it as not-shared
                    // (a dropped request verifies nothing).
                    if delivered.count_ones() as usize + 1 == self.cfg.n_cores()
                        && !rf.shared_elsewhere(c, region)
                    {
                        rf.learn(c, region);
                    }
                }
                self.fill_l1(c, block, access.agent);
                return;
            } else if let Some(rf) = &mut self.region_filter {
                // A failed memory-direct attempt means the NSRT entry was
                // stale; drop it so the broadcast retry re-verifies.
                if dest_mask == 0 {
                    rf.forget(c, rf.region_of(block));
                }
            }

            assert!(
                !persistent,
                "persistent broadcast with memory cannot fail: it reaches \
                 every token holder on the reliable channel"
            );
            // Exponential escalation: each failed broadcast rung backs off
            // twice as long before re-arbitrating (reachable only under
            // link faults — fault-free, the first broadcast succeeds).
            if attempt >= 2 {
                let backoff = worst_req_lat.saturating_mul(1u64 << (attempt - 2).min(8));
                self.stats.stall_cycles[c] += backoff;
            }
        }
        unreachable!("the persistent attempt either succeeds or asserts");
    }

    /// Computes the snoop destination set (as a core bitmask), whether
    /// memory participates, and whether the filter had to *degrade* to
    /// broadcast because the requester's vCPU-map register failed
    /// validation (see [`Simulator::map_usable`]).
    fn destinations(
        &self,
        requester: usize,
        agent: Agent,
        sharing: SharingType,
        filtered: bool,
        block: BlockAddr,
    ) -> (u64, bool, bool) {
        let broadcast = valid_core_mask(self.cfg.n_cores()) & !(1u64 << requester);
        if !filtered || !self.policy.filters() {
            return (broadcast, true, false);
        }
        if let Some(rf) = &self.region_filter {
            // Region filtering is address-based, not VM-based: a miss to a
            // region this core verified as not-shared goes memory-direct;
            // everything else broadcasts (RegionScout has no multicast).
            let region = rf.region_of(block);
            return if rf.nsrt_contains(requester, region) {
                (0, true, false)
            } else {
                (broadcast, true, false)
            };
        }
        let Some(vm) = agent.guest_vm() else {
            // Hypervisor and dom0 requests must always be broadcast.
            return (broadcast, true, false);
        };
        // Validate the register(s) the filter is about to trust; a failed
        // check falls back to full broadcast (correct by construction —
        // broadcast is what an unfiltered protocol would do) and is
        // counted as a degraded-mode transaction.
        let usable = |ok: bool, dests: u64| {
            if ok {
                (dests, true, false)
            } else {
                (broadcast, true, true)
            }
        };
        match sharing {
            SharingType::RwShared => (broadcast, true, false),
            SharingType::VmPrivate => usable(
                self.map_usable(vm, None, requester),
                self.map_dests(vm, None, requester),
            ),
            SharingType::RoShared => match self.content_policy {
                ContentPolicy::Broadcast => (broadcast, true, false),
                ContentPolicy::MemoryDirect => (0, true, false),
                ContentPolicy::IntraVm => usable(
                    self.map_usable(vm, None, requester),
                    self.map_dests(vm, None, requester),
                ),
                ContentPolicy::FriendVm => {
                    let friend = self.friends[vm.index()];
                    usable(
                        self.map_usable(vm, friend, requester),
                        self.map_dests(vm, friend, requester),
                    )
                }
            },
        }
    }

    /// Requester-side validation of the vCPU-map register(s) a filtered
    /// snoop is about to trust — both checks are local and cheap, exactly
    /// what filter hardware could implement:
    ///
    /// * no bit beyond the physical core count (a garbage register), and
    /// * the requester's own core present in its VM's map (a core running
    ///   the VM is by definition in its snoop domain — its absence means
    ///   the register is stale or corrupted).
    ///
    /// A friend VM's register only needs the validity check: the friend
    /// does not run on the requester's core, and a *missing* friend bit
    /// merely under-filters, which the transient retry ladder already
    /// absorbs (the safe-retry property).
    fn map_usable(&self, vm: VmId, friend: Option<VmId>, requester: usize) -> bool {
        let valid = valid_core_mask(self.cfg.n_cores());
        let own = self.maps.map(vm.index()).mask();
        if own & !valid != 0 || own & (1u64 << requester) == 0 {
            return false;
        }
        match friend {
            Some(f) => self.maps.map(f.index()).mask() & !valid == 0,
            None => true,
        }
    }

    /// Snoop destinations from the VM's (and optionally a friend's) vCPU
    /// map: the union mask clipped to physical cores, minus the requester.
    fn map_dests(&self, vm: VmId, friend: Option<VmId>, requester: usize) -> u64 {
        let mut mask = self.maps.map(vm.index()).mask();
        if let Some(f) = friend {
            mask |= self.maps.map(f.index()).mask();
        }
        mask & valid_core_mask(self.cfg.n_cores()) & !(1u64 << requester)
    }

    fn read_mode(&self, agent: Agent, sharing: SharingType) -> ReadMode {
        // The relaxed clean-shared provider rule is the Section VI protocol
        // modification; it only applies when virtual snooping routes
        // content pages away from broadcast.
        if sharing == SharingType::RoShared
            && agent.guest_vm().is_some()
            && self.policy.uses_vcpu_maps()
            && self.content_policy != ContentPolicy::Broadcast
        {
            ReadMode::CleanShared
        } else {
            ReadMode::Strict
        }
    }

    fn fill_l1(&mut self, c: usize, block: BlockAddr, agent: Agent) {
        self.l1[c].insert(CacheLine::new(
            block,
            TokenState::shared_one(),
            LineTag::from(agent),
        ));
    }

    /// Applies L1 back-invalidation and residence-counter events for lines
    /// the protocol removed from remote caches.
    fn apply_invalidations(&mut self, invalidated: &[usize], block: BlockAddr) {
        for &j in invalidated {
            self.apply_invalidation(j, block);
        }
    }

    /// Mask form of [`Simulator::apply_invalidations`] for the
    /// allocation-free path (cores visited in the same ascending order).
    fn apply_invalidations_mask(&mut self, invalidated: u64, block: BlockAddr) {
        for j in mask_cores(invalidated) {
            self.apply_invalidation(j, block);
        }
    }

    fn apply_invalidation(&mut self, j: usize, block: BlockAddr) {
        if let Some(line) = self.l1[j].remove(block) {
            debug_assert_eq!(line.block, block);
        }
        // The removed L2 line's tag determined which VM's counter
        // dropped; rather than thread the tag through, check every VM
        // with a pending removal on that cache.
        self.check_pending_removals(j);
    }

    fn handle_eviction(&mut self, c: usize, victim: CacheLine, dirty: bool) {
        // Inclusive hierarchy: the L1 copy goes too.
        self.l1[c].remove(victim.block);
        let kind = if dirty {
            self.stats.writebacks += 1;
            MessageKind::Writeback
        } else {
            MessageKind::TokenReply
        };
        self.net.to_memory(NodeId::new(c as u16), kind);
        if let LineTag::Vm(vm) = victim.tag {
            let _ = vm;
        }
        self.check_pending_removals(c);
    }

    /// Re-evaluates counter-based removal for every VM with a pending
    /// timer on cache `j`, plus any VM whose counter is at zero while not
    /// running there.
    fn check_pending_removals(&mut self, j: usize) {
        if !self.policy.removes_cores() {
            return;
        }
        for vm_idx in 0..self.cfg.n_vms {
            let vm = VmId::new(vm_idx as u16);
            self.maybe_remove_core(j, vm);
        }
    }

    fn maybe_remove_core(&mut self, j: usize, vm: VmId) {
        if !self.policy.removes_cores() {
            return;
        }
        let threshold = match self.policy {
            FilterPolicy::Counter => 1,
            FilterPolicy::CounterThreshold { threshold } => threshold.max(1),
            _ => return,
        };
        if self.l2[j].residence(vm) >= threshold {
            return;
        }
        // Never remove a core the VM is currently running on.
        if self.hv.cores_of_vm(vm) & (1 << j) != 0 {
            return;
        }
        if !self.maps.map(vm.index()).contains(CoreId::new(j as u16)) {
            return;
        }
        self.maps.remove_core(vm.index(), CoreId::new(j as u16));
        self.stats.map_removes += 1;
        self.account_map_sync(vm);
        let period = self.removal_pending[j][vm.index()]
            .take()
            .map(|t0| self.cycle - t0);
        self.removal_log.push(RemovalEvent {
            cycle: self.cycle,
            core: j,
            vm: vm.index(),
            period,
        });
    }

    /// Charges the vCPU-map synchronization messages: the hypervisor sends
    /// the new value to every core in the (updated) map.
    fn account_map_sync(&mut self, vm: VmId) {
        if self.protocol.is_reference() {
            return reference_path::account_map_sync(self, vm);
        }
        // Mask to physical cores: a corrupted register can hold bits
        // beyond the mesh, but the hypervisor's update broadcast only ever
        // targets real cores.
        let mask = self.maps.map(vm.index()).mask() & valid_core_mask(self.cfg.n_cores());
        if mask == 0 {
            return;
        }
        let first = mask.trailing_zeros();
        let src = NodeId::new(first as u16);
        let rest = mask & (mask - 1);
        self.net.multicast(
            src,
            mask_cores(rest).map(|c| NodeId::new(c as u16)),
            MessageKind::MapUpdate,
        );
    }

    fn count_data_source(&mut self, holder: usize, vm: Option<VmId>) {
        match vm {
            Some(vm)
                if self
                    .maps
                    .map(vm.index())
                    .contains(CoreId::new(holder as u16)) =>
            {
                self.stats.data_intra_vm += 1;
            }
            _ => self.stats.data_other_vm += 1,
        }
    }

    /// Table VI: who *could* supply a content-shared read miss.
    fn classify_holders(&mut self, block: BlockAddr, vm: Option<VmId>) {
        if self.protocol.is_reference() {
            return reference_path::classify_holders(self, block, vm);
        }
        let mut holders = 0u64;
        for j in 0..self.cfg.n_cores() {
            if self.l2[j].probe(block).is_some() {
                holders |= 1u64 << j;
            }
        }
        if holders == 0 {
            self.stats.holders_memory += 1;
            return;
        }
        self.stats.holders_any_cache += 1;
        let Some(vm) = vm else { return };
        if holders & self.maps.map(vm.index()).mask() != 0 {
            self.stats.holders_intra_vm += 1;
        } else if let Some(f) = self.friends[vm.index()] {
            if holders & self.maps.map(f.index()).mask() != 0 {
                self.stats.holders_friend_vm += 1;
            }
        }
    }

    fn refresh_friends(&mut self, workload: &impl SystemWorkload) {
        self.friends = (0..self.cfg.n_vms)
            .map(|v| workload.friend_of(VmId::new(v as u16)))
            .collect();
    }

    /// Average link utilization so far (for the contention factor).
    fn utilization(&self) -> f64 {
        if self.cycle == 0 {
            return 0.0;
        }
        let w = self.cfg.mesh_width;
        let h = self.cfg.mesh_height;
        let links = (2 * ((w - 1) * h + w * (h - 1))) as f64;
        let capacity = links * self.cfg.network.link_bytes as f64 * self.cycle as f64;
        self.net.traffic().byte_links() as f64 / capacity
    }

    /// Verifies token conservation for `block` across the whole machine
    /// (test hook).
    pub fn check_invariant(&self, block: BlockAddr) -> bool {
        self.protocol.check_invariant(&self.l2, block)
    }
}

/// A warm-state snapshot: a frozen copy of a [`Simulator`] paired with
/// the [`Workload`] position that produced it, taken with
/// [`Simulator::snapshot`].
///
/// Forking re-clones both halves, so one snapshot can seed any number
/// of runs; each fork continues the bit-identical access stream from
/// the captured point. [`SimSnapshot::fork_with_policy`] additionally
/// retargets the filter policy, which is sound for warm state the
/// policies agree on (see the broadcast-vs-filtered architectural-state
/// oracle in `tests/differential_oracle.rs`) — the one exception,
/// RegionScout's per-core region-filter state, is rejected.
#[derive(Clone, Debug)]
pub struct SimSnapshot {
    sim: Simulator,
    workload: Workload,
}

impl SimSnapshot {
    /// Resumes from the captured state under the policy it was warmed
    /// with.
    pub fn fork(&self) -> (Simulator, Workload) {
        (self.sim.clone(), self.workload.clone())
    }

    /// Resumes from the captured state under a different filter /
    /// content-routing policy.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the retarget crosses the
    /// RegionScout boundary in either direction: the region filter's
    /// per-core not-shared-region tables are warmed by the policy itself,
    /// so a snapshot warmed without them (or with them) cannot stand in
    /// for a fresh warm-up under the other family.
    pub fn fork_with_policy(
        &self,
        policy: FilterPolicy,
        content_policy: ContentPolicy,
    ) -> Result<(Simulator, Workload), SimError> {
        let warmed = self.sim.policy;
        let scout = |p: FilterPolicy| matches!(p, FilterPolicy::RegionScout { .. });
        if (scout(warmed) || scout(policy)) && policy != warmed {
            return Err(SimError::InvalidConfig(crate::config::ConfigError::new(
                format!(
                    "cannot retarget a warm snapshot across the RegionScout boundary \
                     (warmed under {warmed}, requested {policy}): region-filter state \
                     is policy-specific"
                ),
            )));
        }
        let mut sim = self.sim.clone();
        sim.policy = policy;
        sim.content_policy = content_policy;
        Ok((sim, self.workload.clone()))
    }

    /// The filter policy the snapshot was warmed under.
    pub fn warmed_policy(&self) -> FilterPolicy {
        self.sim.policy
    }
}

/// Engine-agnostic view of one protocol attempt, with the invalidated
/// remote cores as a bitmask (the fast path never materializes the set).
struct TxOutcome {
    success: bool,
    source: Option<DataSource>,
    invalidated: u64,
    evicted: Option<CacheLine>,
    evicted_dirty: bool,
}

impl Simulator {
    /// Test/diagnostic hook: whether this simulator runs on the frozen
    /// reference engine (see [`crate::testing::set_reference_engine`]).
    #[doc(hidden)]
    pub fn debug_is_reference_engine(&self) -> bool {
        self.protocol.is_reference()
    }

    /// Test/diagnostic hook: residence counter of `vm` on cache `core`.
    pub fn debug_residence(&self, core: usize, vm: sim_vm::VmId) -> u64 {
        self.l2[core].residence(vm)
    }

    /// Test/diagnostic hook: the blocks currently valid in `core`'s L2.
    pub fn debug_l2_lines(&self, core: usize) -> Vec<BlockAddr> {
        self.l2[core].lines().map(|l| l.block).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{profile, Workload, WorkloadConfig};

    fn small_sim(policy: FilterPolicy) -> (Simulator, Workload) {
        let cfg = SystemConfig::small_test();
        let sim = Simulator::new(cfg, policy, ContentPolicy::Broadcast);
        let wl = Workload::homogeneous(
            profile("cholesky").unwrap(),
            cfg.n_vms,
            WorkloadConfig {
                vcpus_per_vm: cfg.vcpus_per_vm,
                ..Default::default()
            },
        );
        (sim, wl)
    }

    #[test]
    fn engine_workers_none_auto_picks_available_parallelism() {
        let (mut sim, _) = small_sim(FilterPolicy::TokenBroadcast);
        sim.set_engine_workers(None);
        assert_eq!(sim.resolved_engine_workers(), crate::knob::auto_workers());
        sim.set_engine_workers(4);
        assert_eq!(sim.resolved_engine_workers(), 4);
        sim.set_engine_workers(0); // clamped to the serial floor
        assert_eq!(sim.resolved_engine_workers(), 1);
    }

    #[test]
    fn baseline_broadcasts_everything() {
        let (mut sim, mut wl) = small_sim(FilterPolicy::TokenBroadcast);
        sim.run(&mut wl, 500);
        let s = sim.stats();
        assert!(s.l2_misses > 0, "workload must miss");
        // Every transaction snoops all 4 cores (3 remote + requester),
        // possibly more due to retries (there are none for broadcast).
        assert_eq!(s.snoops, s.l2_misses * 4);
        assert_eq!(s.retries, 0);
    }

    #[test]
    fn vsnoop_filters_private_misses_to_vm_domain() {
        let (mut sim, mut wl) = small_sim(FilterPolicy::VsnoopBase);
        sim.run(&mut wl, 500);
        let s = sim.stats();
        assert!(s.l2_misses > 0);
        // 2 VMs x 2 cores on 4 cores: private misses snoop 2 cores
        // (1 remote + requester). No host or content traffic here.
        assert_eq!(s.misses_private, s.l2_misses);
        assert_eq!(s.snoops, s.l2_misses * 2);
        assert_eq!(s.retries, 0, "correct filtering never needs retries");
    }

    #[test]
    fn filtering_halves_snoops_and_cuts_traffic() {
        let (mut base_sim, mut wl_a) = small_sim(FilterPolicy::TokenBroadcast);
        let (mut filt_sim, mut wl_b) = small_sim(FilterPolicy::VsnoopBase);
        base_sim.run(&mut wl_a, 800);
        filt_sim.run(&mut wl_b, 800);
        assert_eq!(
            base_sim.stats().l2_misses,
            filt_sim.stats().l2_misses,
            "same seed, same trace, same misses"
        );
        assert!(filt_sim.stats().snoops * 2 <= base_sim.stats().snoops);
        assert!(filt_sim.traffic().byte_links() < base_sim.traffic().byte_links());
    }

    /// Regression test for the empty-register corner: `ClearBit`
    /// corruption can strip a VM's vCPU map bit by bit, and `Garbage` can
    /// zero it outright. The requester-side validation must then degrade
    /// the snoop to a full broadcast — a *zero-destination* filtered
    /// snoop would skip every remote copy and silently break coherence.
    #[test]
    fn emptied_vcpu_map_degrades_to_broadcast_not_zero_destinations() {
        let (mut sim, mut wl) = small_sim(FilterPolicy::VsnoopBase);
        sim.enable_checker(CheckerConfig::default());
        sim.run(&mut wl, 300);

        // Empty VM 0's register the way the fault injector would.
        sim.maps.corrupt(0, VcpuMap::from_mask(0));
        assert_eq!(sim.vcpu_map(VmId::new(0)).len(), 0);

        // Direct pin on the destination computation: with the requester's
        // own bit gone (vacuously true of an empty register), validation
        // fails and the filter falls back to all remote cores + memory.
        let agent = Agent::Guest(VcpuId::new(VmId::new(0), 0));
        let (dests, memory, degraded) =
            sim.destinations(0, agent, SharingType::VmPrivate, true, BlockAddr::new(0));
        assert!(degraded, "empty map must fail use-time validation");
        assert!(memory, "degraded broadcast still includes memory");
        assert_eq!(
            dests,
            valid_core_mask(sim.cfg.n_cores()) & !1,
            "fallback must be a full broadcast, never an empty snoop set"
        );

        // End-to-end: keep running on the emptied register (no fault plan
        // is installed, so no audit repairs it). Every VM-0 private miss
        // degrades to broadcast; the checker proves coherence held.
        let degraded_before = sim.stats().degraded_broadcasts;
        sim.run(&mut wl, 300);
        assert!(
            sim.stats().degraded_broadcasts > degraded_before,
            "runs on an emptied register must be counted as degraded"
        );
        sim.run_checker_sweep();
        let checker = sim.checker().expect("checker enabled");
        // The map audit is *supposed* to flag the corrupted register
        // (`MapCoverage`); what must not appear is any token/data
        // violation, which is what a zero-destination snoop would cause.
        let coherence: Vec<_> = checker
            .violations()
            .iter()
            .filter(|v| v.kind != crate::checker::InvariantKind::MapCoverage)
            .collect();
        assert!(
            coherence.is_empty(),
            "degraded broadcasts must preserve coherence: {coherence:?}"
        );
    }

    #[test]
    fn invariants_hold_after_mixed_run() {
        let (mut sim, mut wl) = small_sim(FilterPolicy::VsnoopBase);
        sim.run(&mut wl, 400);
        // Probe a swath of blocks across every VM's address space.
        for b in 0..2000u64 {
            assert!(sim.check_invariant(BlockAddr::new(b)), "block {b}");
        }
    }

    #[test]
    fn swap_grows_map_and_counter_later_shrinks_it() {
        let (mut sim, mut wl) = small_sim(FilterPolicy::Counter);
        sim.run(&mut wl, 300);
        let vm0 = VmId::new(0);
        let vm1 = VmId::new(1);
        assert_eq!(sim.vcpu_map(vm0).len(), 2);
        let a = VcpuId::new(vm0, 0);
        let b = VcpuId::new(vm1, 0);
        sim.swap_vcpus(a, b).unwrap();
        // Both VMs' maps grew to include the new core.
        assert_eq!(sim.vcpu_map(vm0).len(), 3);
        assert_eq!(sim.vcpu_map(vm1).len(), 3);
        // Run long enough for the new tenants to evict the old lines.
        sim.run(&mut wl, 8_000);
        assert!(
            sim.stats().map_removes > 0,
            "counter mechanism should have removed obsolete cores"
        );
        assert!(
            sim.vcpu_map(vm0).len() <= 3 && sim.vcpu_map(vm1).len() <= 3,
            "maps must not grow unboundedly"
        );
        // Removal events carry measured periods.
        assert!(sim.removal_log().iter().any(|e| e.period.is_some()));
    }

    #[test]
    fn vsnoop_base_never_shrinks_maps() {
        let (mut sim, mut wl) = small_sim(FilterPolicy::VsnoopBase);
        sim.run(&mut wl, 200);
        sim.swap_vcpus(VcpuId::new(VmId::new(0), 0), VcpuId::new(VmId::new(1), 0))
            .unwrap();
        sim.run(&mut wl, 5_000);
        assert_eq!(sim.stats().map_removes, 0);
        assert_eq!(sim.vcpu_map(VmId::new(0)).len(), 3);
    }

    #[test]
    fn reset_measurement_keeps_caches_warm() {
        let (mut sim, mut wl) = small_sim(FilterPolicy::TokenBroadcast);
        sim.run(&mut wl, 500);
        let misses_cold = sim.stats().miss_rate();
        sim.reset_measurement();
        assert_eq!(sim.stats().accesses, 0);
        sim.run(&mut wl, 500);
        let misses_warm = sim.stats().miss_rate();
        assert!(
            misses_warm < misses_cold,
            "warm run ({misses_warm}) should miss less than cold ({misses_cold})"
        );
    }

    #[test]
    fn host_misses_are_broadcast_under_filtering() {
        let cfg = SystemConfig::small_test();
        let mut sim = Simulator::new(cfg, FilterPolicy::VsnoopBase, ContentPolicy::Broadcast);
        let mut wl = Workload::homogeneous(
            profile("SPECweb").unwrap(),
            cfg.n_vms,
            WorkloadConfig {
                vcpus_per_vm: cfg.vcpus_per_vm,
                host_activity: true,
                ..Default::default()
            },
        );
        sim.run(&mut wl, 3_000);
        let s = sim.stats();
        assert!(s.misses_dom0 + s.misses_hyp > 0, "host activity expected");
        assert!(s.host_miss_fraction() > 0.0);
        // Host misses snoop all 4; guest misses snoop 2. Total snoops sit
        // strictly between the two extremes.
        assert!(s.snoops > s.l2_misses * 2);
        assert!(s.snoops < s.l2_misses * 4);
    }
}

//! Memory-system substrate for the *virtual snooping* reproduction.
//!
//! Everything below the snoop filter lives here:
//!
//! * [`Addr`] / [`BlockAddr`] — 64-byte-block / 4-KB-page address
//!   arithmetic (Table II geometry).
//! * [`TokenState`] / [`Moesi`] / [`CacheLine`] / [`LineTag`] — token
//!   coherence line state with the VM-identifier tag extension the paper
//!   adds for residence counting.
//! * [`Cache`] / [`CacheGeometry`] — set-associative LRU caches with
//!   per-VM residence counters (Section IV-B).
//! * [`TokenProtocol`] — the TokenB engine with safe transient-request
//!   retries, the substrate the counter-threshold policy relies on.
//!
//! # Examples
//!
//! ```
//! use sim_mem::{Cache, CacheGeometry, TokenProtocol, BlockAddr, LineTag};
//! use sim_vm::VmId;
//!
//! let mut caches = vec![Cache::new(CacheGeometry::new(256 * 1024, 8), 4); 16];
//! let mut protocol = TokenProtocol::new(16);
//! let block = BlockAddr::new(42);
//! let dests: Vec<usize> = (1..16).collect(); // broadcast snoop
//! let r = protocol.read_miss(&mut caches, 0, &dests, block, true, LineTag::Vm(VmId::new(0)),
//!                            sim_mem::ReadMode::Strict);
//! assert!(r.success);
//! assert!(protocol.check_invariant(&caches, block));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod addr;
mod cache;
mod line;
mod protocol;
mod reference;
mod table;

pub use addr::{Addr, BlockAddr, BLOCKS_PER_PAGE, BLOCK_BYTES, PAGE_BYTES};
pub use cache::{Cache, CacheDelta, CacheGeometry, CacheSet, CacheShard, CacheStats};
pub use line::{CacheLine, LineTag, Moesi, TokenState};
pub use protocol::{
    mask_cores, CacheBank, DataSource, ReadMode, ReadOutcome, ReadResult, TokenLedger, TokenMemory,
    TokenProtocol, WriteOutcome, WriteResult,
};
pub use reference::ReferenceProtocol;
pub use table::BlockMap;

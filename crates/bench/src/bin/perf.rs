//! Steady-state throughput harness: how fast does the simulator simulate?
//!
//! Every paper metric is produced by the same serial per-round transaction
//! loop, so simulator throughput bounds how much of the design space a
//! campaign can explore. This binary measures it directly: each *bin* is a
//! fixed machine profile driven for a warm-up phase and then `--reps`
//! timed measurement windows of `--rounds` rounds each; the best window's
//! access-steps/second and rounds/second are reported, along with the
//! process peak RSS. Bins run as supervised campaign jobs (one worker, so
//! timings never contend with each other).
//!
//! Bins:
//!
//! * `storm` — the soak storm profile: paper machine, counter policy,
//!   every fault class enabled, invariant checker on, 0.1 ms migration
//!   storm. The acceptance profile for hot-path optimisation work.
//! * `storm_unchecked` — the storm without the invariant checker,
//!   isolating checker overhead from protocol/network cost.
//! * `storm_traced` — the storm with the observability layer forced on
//!   (flight recorder + telemetry to `target/perf-trace/`), isolating
//!   tracing overhead. It has no entry in the committed baseline, so
//!   `--check` never gates on it; compare it against `storm` in the
//!   same run instead.
//! * `storm_par1` / `storm_par2` / `storm_par4` / `storm_par8` — the
//!   *parallel-eligible* storm: the same paper machine and 0.1 ms
//!   migration storm, but fault-free, checker off, vsnoop-base — the
//!   profile the batched data-oriented engine accepts (faults and the
//!   checker are inherently serial, so the checkered `storm` bin cannot
//!   parallelize). The four bins differ only in
//!   `Simulator::set_engine_workers`; `storm_par1` pins the serial path
//!   as the in-run denominator of the reported `storm_par_speedup`
//!   (storm_par8 vs storm_par1 steps/sec). Worker scaling is bounded by
//!   physical cores: the committed baseline was captured on a 1-CPU
//!   container (`nproc` = 1), where all four bins necessarily time the
//!   same — the ≥3x speedup target at 8 workers is only observable on a
//!   multi-core host (16-core reference), so `--check` gates each bin
//!   against its own same-host baseline rather than against the ratio.
//!   Like the campaign pair, the four bins run at their own pinned
//!   window length (`PERF_PAR_ROUNDS`, default 20 000, independent of
//!   `--rounds`): the scoped worker pool is spawned per window, so a
//!   short `PERF_ROUNDS` smoke amortizes that fixed cost over too few
//!   rounds and reads systematically low against the committed
//!   full-length baseline.
//! * `storm_metrics` — `storm_par8` with the engine-phase metrics gate
//!   (`VSNOOP_METRICS`) forced on, so the per-phase histograms
//!   (update-procs / update-caches / update-net, shard imbalance) are
//!   recorded while the batched engine runs. Like `storm_traced` it has
//!   no committed baseline entry, so `--check` never gates on it —
//!   compare it against `storm_par8` in the same run to bound the
//!   instrumentation cost.
//! * `pinned` — fault-free vsnoop-base with pinned vCPUs: the filtered
//!   fast path (small destination sets).
//! * `broadcast` — fault-free TokenBroadcast: every transaction snoops
//!   all cores, stressing destination iteration and snoop accounting.
//! * `campaign` — the campaign's duplication-heavy report set (Table
//!   IV/Fig. 6 run twice from the same cells, Table V and Table VI
//!   sharing one cell per app) with warm-state reuse and parallel
//!   sharding on. The warm pool and cell memo are cleared before every
//!   timed window, so each rep pays the full warm-up cost honestly.
//! * `service` — the multi-tenant service soak (`loadtest`'s default
//!   scenario: 32 concurrent clients over 4 tenants submitting short
//!   cancellable jobs to an in-process server): completed requests/sec
//!   is the gated throughput, and the bin's JSON carries the p99
//!   request latency in `p99_ms` alongside its RSS delta. The committed
//!   baseline for this bin is **measured, then de-rated by 25%**
//!   (throughput floor = 0.75 x the best of repeated measured runs;
//!   the recorded `p99_ms` is likewise the measured p99 padded +25%):
//!   the soak schedules real threads against wall-clock deadlines, so
//!   its run-to-run variance is far above the simulator bins', and a
//!   raw best-run baseline would flake `--check` on a loaded host. The
//!   de-rate is deliberately wider than the default 20% `--tolerance`
//!   so the effective gate is the headroom margin, not the tolerance.
//! * `service_conns` — the high-concurrency connection soak: 512
//!   concurrent client connections over 8 tenants, two zero-spin
//!   submits each, against the reactor's single event loop. The gated
//!   `steps_per_sec` is completed requests/sec, and `p99_ms` is gated
//!   too (a bin with a baseline `p99_ms` fails `--check` when the
//!   measured p99 exceeds it by more than the tolerance). Because the
//!   jobs are zero-work, this bin times the connection layer itself —
//!   accept storm, frame assembly, pipelined dispatch and outbox
//!   flushing — not the scheduler. Baseline de-rated 25% like
//!   `service`.
//! * `campaign_serial` — the identical report set with reuse off and
//!   one shard worker: the legacy serial path. `campaign` vs
//!   `campaign_serial` is the measured end-to-end speedup of the
//!   warm-state layer (both report the same nominal step count, so the
//!   steps/sec ratio is exactly the wall-clock ratio). The two bins
//!   are timed as one interleaved pair at their own pinned window
//!   length (`PERF_CAMPAIGN_ROUNDS`, default 20 000, independent of
//!   `--rounds`) so a short `PERF_ROUNDS` smoke still compares them
//!   against the committed full-length baseline at equal scale.
//!
//! ```text
//! perf [--out FILE] [--check FILE] [--tolerance PCT] [--rounds N]
//!      [--warmup N] [--reps N] [--only NAME]... [--list] [--trace-dir DIR]
//! ```
//!
//! `--out` writes the machine-readable `BENCH_throughput.json` (schema
//! `vsnoop-perf/v2`: per-bin `rss_delta_bytes` records how much each bin
//! raised the process peak RSS — bins run serially in listed order, so
//! the deltas attribute the high-water mark); `--check` compares the run
//! against a committed baseline and fails (exit 1) if any bin's
//! steps/sec regressed by more than `--tolerance` percent (default 20,
//! env `PERF_REGRESSION_PCT`). Timed values vary run to run; the JSON is
//! *not* byte-deterministic, unlike the campaign artifacts.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sim_vm::{VcpuId, VmId};
use vsnoop::runner::{json::Value, run_campaign, Job, RunnerConfig};
use vsnoop::{
    CheckerConfig, ContentPolicy, FaultPlan, FilterPolicy, Simulator, SystemConfig, SystemWorkload,
};
use workloads::{try_profile, Workload, WorkloadConfig};

const SCHEMA: &str = "vsnoop-perf/v2";
const DEFAULT_TOLERANCE_PCT: f64 = 20.0;

struct Cli {
    out: Option<PathBuf>,
    check: Option<PathBuf>,
    tolerance_pct: f64,
    rounds: u64,
    warmup: u64,
    reps: u32,
    only: Vec<String>,
    list: bool,
    trace_dir: Option<PathBuf>,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        out: None,
        check: None,
        tolerance_pct: std::env::var("PERF_REGRESSION_PCT")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_TOLERANCE_PCT),
        rounds: env_u64("PERF_ROUNDS", 20_000),
        warmup: env_u64("PERF_WARMUP", 5_000),
        reps: 3,
        only: Vec::new(),
        list: false,
        trace_dir: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--out" => cli.out = Some(PathBuf::from(value("--out")?)),
            "--check" => cli.check = Some(PathBuf::from(value("--check")?)),
            "--tolerance" => {
                cli.tolerance_pct = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}"))?;
            }
            "--rounds" => {
                cli.rounds = value("--rounds")?
                    .parse()
                    .map_err(|e| format!("--rounds: {e}"))?;
            }
            "--warmup" => {
                cli.warmup = value("--warmup")?
                    .parse()
                    .map_err(|e| format!("--warmup: {e}"))?;
            }
            "--reps" => {
                cli.reps = value("--reps")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?;
            }
            "--only" => cli.only.push(value("--only")?),
            "--list" => cli.list = true,
            "--trace-dir" => cli.trace_dir = Some(PathBuf::from(value("--trace-dir")?)),
            "--help" | "-h" => {
                return Err(
                    "usage: perf [--out FILE] [--check FILE] [--tolerance PCT] [--rounds N]\n\
                     \u{20}           [--warmup N] [--reps N] [--only NAME]... [--list] \
                     [--trace-dir DIR]\n\
                     bins: storm, storm_unchecked, storm_traced, storm_par1, storm_par2, \
                     storm_par4, storm_par8, storm_metrics, pinned, broadcast, campaign, \
                     campaign_serial, service, service_conns"
                        .into(),
                );
            }
            other => return Err(format!("unknown argument: {other} (try --help)")),
        }
    }
    if cli.rounds == 0 || cli.reps == 0 {
        return Err("--rounds and --reps must be positive".into());
    }
    Ok(cli)
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One measured bin: the best (highest-throughput) measurement window.
#[derive(Clone, Debug)]
struct BinResult {
    name: &'static str,
    rounds: u64,
    reps: u32,
    steps: u64,
    best_elapsed_s: f64,
    steps_per_sec: f64,
    rounds_per_sec: f64,
    /// How much this bin raised the process peak RSS (`VmHWM` after
    /// minus before). Bins run serially on one worker, so the deltas
    /// attribute the global high-water mark bin by bin; a bin that
    /// stays under an earlier bin's peak reports 0.
    rss_delta_bytes: u64,
    /// p99 request latency in milliseconds — only the `service` bin
    /// reports one; `None` elsewhere keeps the schema unchanged for
    /// the simulator bins.
    p99_ms: Option<f64>,
}

impl BinResult {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("name", Value::Str(self.name.into())),
            ("rounds", Value::UInt(self.rounds)),
            ("reps", Value::UInt(u64::from(self.reps))),
            ("steps", Value::UInt(self.steps)),
            ("best_elapsed_s", Value::Float(self.best_elapsed_s)),
            ("steps_per_sec", Value::Float(self.steps_per_sec)),
            ("rounds_per_sec", Value::Float(self.rounds_per_sec)),
            ("rss_delta_bytes", Value::UInt(self.rss_delta_bytes)),
        ];
        if let Some(p99) = self.p99_ms {
            fields.push(("p99_ms", Value::Float(p99)));
        }
        Value::obj(fields)
    }
}

/// The storm profile's workload (the soak's "ocean" homogeneous mix).
fn storm_workload(cfg: &SystemConfig, seed: u64) -> Result<Workload, String> {
    Ok(Workload::homogeneous(
        try_profile("ocean").map_err(|e| e.to_string())?,
        cfg.n_vms,
        WorkloadConfig {
            vcpus_per_vm: cfg.vcpus_per_vm,
            seed,
            ..Default::default()
        },
    ))
}

fn picker(cfg: SystemConfig, seed: u64) -> impl FnMut(u64) -> (VcpuId, VcpuId) {
    let mut rng = SmallRng::seed_from_u64(seed);
    move |_| {
        let a = rng.gen_range(0..cfg.n_vms) as u16;
        let mut b = rng.gen_range(0..cfg.n_vms - 1) as u16;
        if b >= a {
            b += 1;
        }
        (
            VcpuId::new(VmId::new(a), rng.gen_range(0..cfg.vcpus_per_vm)),
            VcpuId::new(VmId::new(b), rng.gen_range(0..cfg.vcpus_per_vm)),
        )
    }
}

/// How a bin drives its simulator for one window of `rounds`.
#[derive(Clone, Copy)]
enum Drive {
    Plain,
    Migration {
        period_cycles: u64,
        seed: u64,
    },
    /// The campaign report set (see [`run_campaign_bin`]); `reuse`
    /// toggles the warm pool + cell memo + parallel sharding against
    /// the serial no-reuse control.
    Campaign {
        reuse: bool,
    },
    /// The multi-tenant service soak (see [`run_service_bin`]);
    /// `conns` switches to the 512-connection reactor soak.
    Service {
        conns: bool,
    },
}

struct BinSpec {
    name: &'static str,
    policy: FilterPolicy,
    faults: bool,
    checker: bool,
    /// Force the observability layer on for this bin (trace files under
    /// `target/perf-trace/`), so its throughput measures the hooks' cost.
    traced: bool,
    /// Worker count for the batched parallel engine
    /// ([`Simulator::set_engine_workers`]); 1 pins the serial path.
    workers: usize,
    /// Force the engine-phase metrics gate on for this bin
    /// ([`vsnoop::obs::metrics::set_enabled`]), so the per-phase
    /// histograms record while the batched engine runs.
    metrics: bool,
    drive: Drive,
}

fn bins() -> Vec<BinSpec> {
    let cfg = SystemConfig::paper_default();
    let storm_period = (cfg.cycles_per_ms / 10).max(1); // 0.1 scaled ms
    vec![
        BinSpec {
            name: "storm",
            policy: FilterPolicy::Counter,
            faults: true,
            checker: true,
            traced: false,
            workers: 1,
            metrics: false,
            drive: Drive::Migration {
                period_cycles: storm_period,
                seed: 0x51A9,
            },
        },
        BinSpec {
            name: "storm_unchecked",
            policy: FilterPolicy::Counter,
            faults: true,
            checker: false,
            traced: false,
            workers: 1,
            metrics: false,
            drive: Drive::Migration {
                period_cycles: storm_period,
                seed: 0x51A9,
            },
        },
        BinSpec {
            name: "storm_traced",
            policy: FilterPolicy::Counter,
            faults: true,
            checker: true,
            traced: true,
            workers: 1,
            metrics: false,
            drive: Drive::Migration {
                period_cycles: storm_period,
                seed: 0x51A9,
            },
        },
        BinSpec {
            name: "storm_par1",
            policy: FilterPolicy::VsnoopBase,
            faults: false,
            checker: false,
            traced: false,
            workers: 1,
            metrics: false,
            drive: Drive::Migration {
                period_cycles: storm_period,
                seed: 0x51A9,
            },
        },
        BinSpec {
            name: "storm_par2",
            policy: FilterPolicy::VsnoopBase,
            faults: false,
            checker: false,
            traced: false,
            workers: 2,
            metrics: false,
            drive: Drive::Migration {
                period_cycles: storm_period,
                seed: 0x51A9,
            },
        },
        BinSpec {
            name: "storm_par4",
            policy: FilterPolicy::VsnoopBase,
            faults: false,
            checker: false,
            traced: false,
            workers: 4,
            metrics: false,
            drive: Drive::Migration {
                period_cycles: storm_period,
                seed: 0x51A9,
            },
        },
        BinSpec {
            name: "storm_par8",
            policy: FilterPolicy::VsnoopBase,
            faults: false,
            checker: false,
            traced: false,
            workers: 8,
            metrics: false,
            drive: Drive::Migration {
                period_cycles: storm_period,
                seed: 0x51A9,
            },
        },
        BinSpec {
            name: "storm_metrics",
            policy: FilterPolicy::VsnoopBase,
            faults: false,
            checker: false,
            traced: false,
            workers: 8,
            metrics: true,
            drive: Drive::Migration {
                period_cycles: storm_period,
                seed: 0x51A9,
            },
        },
        BinSpec {
            name: "pinned",
            policy: FilterPolicy::VsnoopBase,
            faults: false,
            checker: false,
            traced: false,
            workers: 1,
            metrics: false,
            drive: Drive::Plain,
        },
        BinSpec {
            name: "broadcast",
            policy: FilterPolicy::TokenBroadcast,
            faults: false,
            checker: false,
            traced: false,
            workers: 1,
            metrics: false,
            drive: Drive::Plain,
        },
        BinSpec {
            name: "campaign",
            policy: FilterPolicy::VsnoopBase, // unused: campaign bins pick per-cell policies
            faults: false,
            checker: false,
            traced: false,
            workers: 1,
            metrics: false,
            drive: Drive::Campaign { reuse: true },
        },
        BinSpec {
            name: "campaign_serial",
            policy: FilterPolicy::VsnoopBase,
            faults: false,
            checker: false,
            traced: false,
            workers: 1,
            metrics: false,
            drive: Drive::Campaign { reuse: false },
        },
        BinSpec {
            name: "service",
            policy: FilterPolicy::VsnoopBase, // unused: the soak runs synthetic jobs
            faults: false,
            checker: false,
            traced: false,
            workers: 1,
            metrics: false,
            drive: Drive::Service { conns: false },
        },
        BinSpec {
            name: "service_conns",
            policy: FilterPolicy::VsnoopBase, // unused: the soak runs synthetic jobs
            faults: false,
            checker: false,
            traced: false,
            workers: 1,
            metrics: false,
            drive: Drive::Service { conns: true },
        },
    ]
}

/// Runs a service soak bin, `reps` times, keeping the window with the
/// highest completed-request throughput. "Steps" are terminal
/// non-shed requests, so `steps_per_sec` gates end-to-end service
/// throughput; the p99 request latency of the best window rides along
/// in the JSON (and is itself gated when the baseline records one).
///
/// `service` is the `loadtest` default scenario (32 clients x 4
/// tenants, 2 ms spin jobs): end-to-end service throughput including
/// real work. `service_conns` (`conns`) is the connection-layer soak:
/// 512 concurrent connections over 8 tenants submitting zero-spin
/// jobs, so the reactor — accept, frame assembly, pipelining, outbox
/// flushing — dominates the measurement, with quotas opened wide
/// enough that healthy runs shed nothing.
fn run_service_bin(reps: u32, conns: bool) -> BinResult {
    use vsnoop::service::TenantQuota;
    use vsnoop_bench::service_load::{run_load, LoadOptions};

    let opts = if conns {
        LoadOptions {
            clients: 512,
            tenants: 8,
            jobs_per_client: 2,
            spin_ms: 0,
            workers: 4,
            queue_cap: 2048,
            quota: TenantQuota {
                max_inflight: 8,
                max_queued: 512,
                max_queued_bytes: 1 << 22,
            },
            deadline_ms: 60_000,
            ..LoadOptions::default()
        }
    } else {
        LoadOptions::default()
    };
    let rss_before = peak_rss_bytes();
    let mut best: Option<vsnoop_bench::service_load::LoadReport> = None;
    for _ in 0..reps {
        let report = run_load(&opts, &mut |_| {}).expect("service soak runs");
        assert_eq!(
            report.unanswered, 0,
            "service soak: every request must get a terminal answer"
        );
        if best
            .as_ref()
            .is_none_or(|b| report.requests_per_sec > b.requests_per_sec)
        {
            best = Some(report);
        }
    }
    let best = best.expect("reps >= 1");
    let completed = best.ok + best.failed;
    BinResult {
        name: if conns { "service_conns" } else { "service" },
        rounds: best.requests,
        reps,
        steps: completed,
        best_elapsed_s: best.elapsed_s,
        steps_per_sec: best.requests_per_sec,
        rounds_per_sec: best.requests_per_sec,
        rss_delta_bytes: peak_rss_bytes().saturating_sub(rss_before),
        p99_ms: Some(best.p99_ms),
    }
}

/// The stashed counterpart result from [`run_campaign_pair`]: the two
/// campaign bins exist to report a *ratio* of best-windows, so they
/// are timed as one interleaved pair and whichever bin runs first
/// computes both, leaving the other's result here.
static CAMPAIGN_COUNTERPART: Mutex<Option<BinResult>> = Mutex::new(None);

/// Runs one campaign bin: the campaign's duplication-heavy report set —
/// Table IV / Fig. 6 computed twice (the real campaign renders both
/// artifacts from the same cells), plus Table V and Table VI (one
/// shared cell per content app) — at a scale derived from `--rounds`.
/// With `reuse` the warm pool, cell memo and parallel shard pool are
/// active (cleared before every timed rep so each window pays its
/// warm-ups); without it every cell warms and measures serially, which
/// is the legacy campaign path.
fn run_campaign_bin(reuse: bool, reps: u32, seed: u64) -> BinResult {
    let want = if reuse { "campaign" } else { "campaign_serial" };
    let stashed = {
        let mut stash = CAMPAIGN_COUNTERPART.lock().unwrap();
        if stash.as_ref().is_some_and(|r| r.name == want) {
            stash.take()
        } else {
            None
        }
    };
    if let Some(r) = stashed {
        return r;
    }
    let (fast, serial) = run_campaign_pair(reps, seed);
    let (ret, other) = if reuse {
        (fast, serial)
    } else {
        (serial, fast)
    };
    *CAMPAIGN_COUNTERPART.lock().unwrap() = Some(other);
    ret
}

/// Times the campaign report set with warm-state reuse on and off as
/// one interleaved sequence (fast window, serial window, fast, ...),
/// so slow host phases hit both variants alike instead of landing in
/// whichever bin happened to run then — the reported
/// `campaign_speedup` ratio would otherwise absorb the drift twice.
/// For the same reason the pair runs at least six windows apiece.
///
/// The window length is pinned by `PERF_CAMPAIGN_ROUNDS` (default
/// 20 000), *not* by `--rounds`: per-cell fixed costs (simulator
/// construction, snapshot forks) amortize over the rounds, so the
/// bins' steps/sec only compares against a baseline taken at the same
/// scale — a short `PERF_ROUNDS` smoke must still gate these bins
/// against the committed full-length baseline.
///
/// Both variants report the same *nominal* step count (the serial
/// access total), so `steps_per_sec` ratios between them are exactly
/// wall-clock ratios for the same work product.
fn run_campaign_pair(reps: u32, seed: u64) -> (BinResult, BinResult) {
    use vsnoop::experiments::{table4_fig6, table5, table6, RunScale};

    let reps = reps.max(6);
    let rounds = env_u64("PERF_CAMPAIGN_ROUNDS", 20_000);
    let cfg = SystemConfig::paper_default();
    let scale = RunScale {
        warmup_rounds: rounds,
        measure_rounds: rounds,
        seed,
    };

    // [fast, serial]
    let mut best_elapsed = [f64::INFINITY; 2];
    let mut rss_delta = [0u64; 2];
    for _ in 0..reps {
        for (slot, reuse) in [(0usize, true), (1usize, false)] {
            vsnoop::set_warm_reuse(reuse);
            // 0 clears the override: environment / host parallelism decides.
            vsnoop::runner::set_shard_workers(if reuse { 0 } else { 1 });
            vsnoop::clear_warm_pool();
            let rss_before = peak_rss_bytes();
            let t0 = Instant::now();
            let t4 = table4_fig6(scale);
            let f6 = table4_fig6(scale);
            let t5 = table5(scale);
            let t6 = table6(scale);
            let elapsed = t0.elapsed().as_secs_f64();
            assert_eq!(t4.len(), f6.len());
            assert!(!t5.is_empty() && !t6.is_empty());
            if elapsed < best_elapsed[slot] {
                best_elapsed[slot] = elapsed;
            }
            rss_delta[slot] = rss_delta[slot].max(peak_rss_bytes().saturating_sub(rss_before));
        }
    }
    // Restore the defaults for whatever bin runs next.
    vsnoop::set_warm_reuse(true);
    vsnoop::runner::set_shard_workers(0);
    vsnoop::clear_warm_pool();

    // Nominal serial work: every cell the report set runs without any
    // reuse, warm-up plus measurement, one access per core per round.
    let n_sim = workloads::simulation_apps().len() as u64;
    let n_content = workloads::content_apps().len() as u64;
    let cell_runs = 2 * (2 * n_sim) // table4_fig6 twice: TokenB + base per app
        + n_content // table5
        + n_content; // table6 (the same cell as table5)
    let steps = cell_runs * (scale.warmup_rounds + scale.measure_rounds) * cfg.n_cores() as u64;
    let result = |name: &'static str, best: f64, rss: u64| BinResult {
        name,
        rounds,
        reps,
        steps,
        best_elapsed_s: best,
        steps_per_sec: steps as f64 / best,
        rounds_per_sec: cell_runs as f64 * 2.0 * rounds as f64 / best,
        rss_delta_bytes: rss,
        p99_ms: None,
    };
    (
        result("campaign", best_elapsed[0], rss_delta[0]),
        result("campaign_serial", best_elapsed[1], rss_delta[1]),
    )
}

/// Runs one bin: builds the machine, warms it up, then times `reps`
/// measurement windows and keeps the fastest.
fn run_bin(spec: &BinSpec, cli_rounds: u64, warmup: u64, reps: u32, seed: u64) -> BinResult {
    if let Drive::Campaign { reuse } = spec.drive {
        return run_campaign_bin(reuse, reps, seed);
    }
    if let Drive::Service { conns } = spec.drive {
        return run_service_bin(reps, conns);
    }
    // The parallel-engine bins spawn their scoped worker pool once per
    // timed window, so steps/sec only compares against a baseline taken
    // at the same window length — pin it (`PERF_PAR_ROUNDS`, default
    // 20 000), the same convention as the campaign pair, so a short
    // `PERF_ROUNDS` smoke still gates them at full scale.
    // `storm_metrics` shares the pinned window so it compares against
    // `storm_par8` at equal scale.
    let cli_rounds = if spec.name.starts_with("storm_par") || spec.name == "storm_metrics" {
        env_u64("PERF_PAR_ROUNDS", 20_000)
    } else {
        cli_rounds
    };
    // `storm_traced`: force the observability layer on for the duration
    // of this bin only, restoring the prior state afterwards so later
    // bins keep measuring the untraced hot path.
    struct TraceGuard(bool);
    impl Drop for TraceGuard {
        fn drop(&mut self) {
            if self.0 {
                vsnoop::obs::set_trace_dir(None);
            }
        }
    }
    let _trace = TraceGuard(if spec.traced && !vsnoop::obs::enabled() {
        vsnoop::obs::set_trace_dir(Some(PathBuf::from("target/perf-trace")));
        true
    } else {
        false
    });
    // `storm_metrics`: force the engine-phase metrics gate on for this
    // bin only, restoring the disabled (zero-cost) state afterwards so
    // the other bins keep measuring the ungated hot path.
    struct MetricsGuard(bool);
    impl Drop for MetricsGuard {
        fn drop(&mut self) {
            if self.0 {
                vsnoop::obs::metrics::set_enabled(false);
            }
        }
    }
    let _metrics = MetricsGuard(if spec.metrics && !vsnoop::obs::metrics::enabled() {
        vsnoop::obs::metrics::set_enabled(true);
        true
    } else {
        false
    });
    let rss_before = peak_rss_bytes();
    let cfg = SystemConfig::paper_default();
    let mut sim = Simulator::new(cfg, spec.policy, ContentPolicy::Broadcast);
    sim.set_engine_workers(spec.workers);
    if spec.faults {
        sim.set_fault_plan(FaultPlan::all(seed));
    }
    if spec.checker {
        sim.enable_checker(CheckerConfig::default());
    }
    let mut wl = storm_workload(&cfg, seed ^ 0xD15EA5E).expect("ocean profile registered");
    let drive = |sim: &mut Simulator, wl: &mut dyn DriveWorkload, rounds: u64| match spec.drive {
        Drive::Plain => wl.run_plain(sim, rounds),
        Drive::Migration { period_cycles, .. } => wl.run_migration(sim, rounds, period_cycles),
        Drive::Campaign { .. } | Drive::Service { .. } => {
            unreachable!("handled by run_campaign_bin / run_service_bin")
        }
    };
    // The migration picker must live across windows so the storm keeps
    // shuffling new pairs instead of replaying the first ones.
    let picker_seed = match spec.drive {
        Drive::Migration { seed: s, .. } => seed ^ s,
        Drive::Plain | Drive::Campaign { .. } | Drive::Service { .. } => 0,
    };
    let mut wl = DrivenWorkload {
        wl: &mut wl,
        pick: Box::new(picker(cfg, picker_seed)),
    };

    drive(&mut sim, &mut wl, warmup);
    let mut best_elapsed = f64::INFINITY;
    for _ in 0..reps {
        let steps_before = sim.stats().accesses;
        let t0 = Instant::now();
        drive(&mut sim, &mut wl, cli_rounds);
        let elapsed = t0.elapsed().as_secs_f64();
        let steps = sim.stats().accesses - steps_before;
        debug_assert_eq!(steps, cli_rounds * cfg.n_cores() as u64);
        if elapsed < best_elapsed {
            best_elapsed = elapsed;
        }
    }
    let steps_per_window = cli_rounds * cfg.n_cores() as u64;
    BinResult {
        name: spec.name,
        rounds: cli_rounds,
        reps,
        steps: steps_per_window,
        best_elapsed_s: best_elapsed,
        steps_per_sec: steps_per_window as f64 / best_elapsed,
        rounds_per_sec: cli_rounds as f64 / best_elapsed,
        rss_delta_bytes: peak_rss_bytes().saturating_sub(rss_before),
        p99_ms: None,
    }
}

/// Object-safe bridge so one closure can drive both run modes while the
/// migration picker keeps its state across measurement windows.
trait DriveWorkload {
    fn run_plain(&mut self, sim: &mut Simulator, rounds: u64);
    fn run_migration(&mut self, sim: &mut Simulator, rounds: u64, period_cycles: u64);
}

struct DrivenWorkload<'a, W: SystemWorkload> {
    wl: &'a mut W,
    pick: Box<dyn FnMut(u64) -> (VcpuId, VcpuId)>,
}

impl<W: SystemWorkload> DriveWorkload for DrivenWorkload<'_, W> {
    fn run_plain(&mut self, sim: &mut Simulator, rounds: u64) {
        sim.run(self.wl, rounds);
    }
    fn run_migration(&mut self, sim: &mut Simulator, rounds: u64, period_cycles: u64) {
        sim.run_with_migration(self.wl, rounds, period_cycles, &mut self.pick);
    }
}

/// Peak resident set size of this process in bytes (`VmHWM`), or 0 when
/// the platform does not expose it.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// The `campaign` / `campaign_serial` wall-clock ratio, when both ran.
fn campaign_speedup(results: &[BinResult]) -> Option<f64> {
    let get = |n: &str| results.iter().find(|r| r.name == n);
    let (fast, serial) = (get("campaign")?, get("campaign_serial")?);
    (fast.best_elapsed_s > 0.0).then(|| serial.best_elapsed_s / fast.best_elapsed_s)
}

/// The `storm_par8` / `storm_par1` steps/sec ratio, when both ran: the
/// batched parallel engine's measured scaling on *this* host (1.0-ish
/// on a single-core container; the ≥3x target applies to the 16-core
/// reference host).
fn storm_par_speedup(results: &[BinResult]) -> Option<f64> {
    let get = |n: &str| results.iter().find(|r| r.name == n);
    let (par, serial) = (get("storm_par8")?, get("storm_par1")?);
    (serial.steps_per_sec > 0.0).then(|| par.steps_per_sec / serial.steps_per_sec)
}

fn report_json(results: &[BinResult], rounds: u64, reps: u32) -> Value {
    let mut fields = vec![
        ("schema", Value::Str(SCHEMA.into())),
        ("rounds_per_window", Value::UInt(rounds)),
        ("reps", Value::UInt(u64::from(reps))),
        (
            "bins",
            Value::Arr(results.iter().map(BinResult::to_value).collect()),
        ),
        ("peak_rss_bytes", Value::UInt(peak_rss_bytes())),
    ];
    if let Some(speedup) = campaign_speedup(results) {
        fields.push(("campaign_speedup", Value::Float(speedup)));
    }
    if let Some(speedup) = storm_par_speedup(results) {
        fields.push(("storm_par_speedup", Value::Float(speedup)));
    }
    Value::obj(fields)
}

/// Compares `current` against a baseline file; returns the list of bins
/// whose steps/sec regressed beyond `tolerance_pct`, or whose p99
/// latency grew past the baseline's `p99_ms` by more than
/// `tolerance_pct` (latency gating only applies to bins whose baseline
/// entry records a `p99_ms` — the service bins).
fn check_regressions(
    current: &[BinResult],
    baseline_path: &PathBuf,
    tolerance_pct: f64,
) -> Result<Vec<String>, String> {
    let text = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("reading {}: {e}", baseline_path.display()))?;
    let baseline =
        Value::parse(&text).map_err(|e| format!("parsing {}: {e}", baseline_path.display()))?;
    let bins = baseline
        .get("bins")
        .ok_or("baseline has no \"bins\" array")?;
    let Value::Arr(bins) = bins else {
        return Err("baseline \"bins\" is not an array".into());
    };
    let mut failures = Vec::new();
    for r in current {
        let Some(base) = bins
            .iter()
            .find(|b| b.get("name").and_then(Value::as_str) == Some(r.name))
        else {
            continue; // a new bin has no baseline yet
        };
        if let Some(base_sps) = base.get("steps_per_sec").and_then(Value::as_f64) {
            let floor = base_sps * (1.0 - tolerance_pct / 100.0);
            if r.steps_per_sec < floor {
                failures.push(format!(
                    "{}: {:.0} steps/s < {:.0} (baseline {:.0} - {tolerance_pct}%)",
                    r.name, r.steps_per_sec, floor, base_sps
                ));
            }
        }
        if let (Some(base_p99), Some(cur_p99)) =
            (base.get("p99_ms").and_then(Value::as_f64), r.p99_ms)
        {
            let ceiling = base_p99 * (1.0 + tolerance_pct / 100.0);
            if cur_p99 > ceiling {
                failures.push(format!(
                    "{}: p99 {:.2}ms > {:.2}ms (baseline {:.2}ms + {tolerance_pct}%)",
                    r.name, cur_p99, ceiling, base_p99
                ));
            }
        }
    }
    Ok(failures)
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    // Tracing stays off unless asked for: the timed loops must measure
    // the disabled-hook cost by default. `storm_traced` flips it on
    // for its own windows regardless.
    match &cli.trace_dir {
        Some(dir) => vsnoop::obs::set_trace_dir(Some(dir.clone())),
        None => vsnoop::obs::init_from_env(),
    }
    let specs: Vec<BinSpec> = bins()
        .into_iter()
        .filter(|b| cli.only.is_empty() || cli.only.iter().any(|o| o == b.name))
        .collect();
    if cli.list {
        for s in &specs {
            println!("{}", s.name);
        }
        return ExitCode::SUCCESS;
    }
    if specs.is_empty() {
        eprintln!("no bins match --only filters");
        return ExitCode::from(2);
    }

    let seed = env_u64("PERF_SEED", 0x50AC);
    let results: Arc<Mutex<Vec<BinResult>>> = Arc::new(Mutex::new(Vec::new()));
    let jobs: Vec<Job> = specs
        .iter()
        .map(|spec| {
            let params = Value::obj([
                ("rounds", Value::UInt(cli.rounds)),
                ("warmup", Value::UInt(cli.warmup)),
                ("reps", Value::UInt(u64::from(cli.reps))),
            ]);
            let name = spec.name;
            let policy = spec.policy;
            let faults = spec.faults;
            let checker = spec.checker;
            let traced = spec.traced;
            let workers = spec.workers;
            let metrics = spec.metrics;
            let drive = spec.drive;
            let (rounds, warmup, reps) = (cli.rounds, cli.warmup, cli.reps);
            let sink = Arc::clone(&results);
            Job::new(name, seed, params, move |_ctx| {
                let spec = BinSpec {
                    name,
                    policy,
                    faults,
                    checker,
                    traced,
                    workers,
                    metrics,
                    drive,
                };
                let r = run_bin(&spec, rounds, warmup, reps, seed);
                let line = format!(
                    "{:<16} {:>12.0} steps/s  {:>9.0} rounds/s  ({} rounds x {} reps)\n",
                    r.name, r.steps_per_sec, r.rounds_per_sec, r.rounds, r.reps
                );
                sink.lock().expect("results lock").push(r);
                Ok(line)
            })
            .with_step_window(0, warmup + u64::from(reps) * rounds)
        })
        .collect();

    // One worker: timing windows must not contend for cores.
    let runner_cfg = RunnerConfig {
        workers: 1,
        ..RunnerConfig::default()
    };
    let report = match run_campaign(&jobs, &runner_cfg, &mut |msg| eprintln!("[perf] {msg}")) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("perf aborted: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", report.merged_output());
    if !report.all_ok() {
        for r in &report.records {
            if let Err(e) = &r.outcome {
                eprintln!("PERF FAIL [{}]: {e}", r.spec.name);
            }
        }
        return ExitCode::FAILURE;
    }

    // Job order == spec order (one worker), but sort defensively so the
    // JSON bin order is stable regardless of scheduling.
    let mut results = Arc::try_unwrap(results)
        .map(|m| m.into_inner().expect("results lock"))
        .unwrap_or_else(|arc| arc.lock().expect("results lock").clone());
    let order: Vec<&str> = specs.iter().map(|s| s.name).collect();
    results.sort_by_key(|r| order.iter().position(|n| *n == r.name));

    let json = report_json(&results, cli.rounds, cli.reps);
    println!("peak RSS: {} MiB", peak_rss_bytes() / (1024 * 1024));
    if let Some(speedup) = campaign_speedup(&results) {
        println!("campaign speedup (warm reuse + sharding vs serial): {speedup:.2}x");
    }
    if let Some(speedup) = storm_par_speedup(&results) {
        println!("storm_par speedup (batched engine, 8 workers vs serial): {speedup:.2}x");
    }
    if let Some(out) = &cli.out {
        if let Some(dir) = out.parent() {
            if !dir.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("perf: creating {}: {e}", dir.display());
                    return ExitCode::from(2);
                }
            }
        }
        if let Err(e) = std::fs::write(out, json.to_json() + "\n") {
            eprintln!("perf: writing {}: {e}", out.display());
            return ExitCode::from(2);
        }
        eprintln!("[perf] wrote {}", out.display());
    }

    if let Some(baseline) = &cli.check {
        match check_regressions(&results, baseline, cli.tolerance_pct) {
            Ok(failures) if failures.is_empty() => {
                eprintln!(
                    "[perf] no regression vs {} (tolerance {}%)",
                    baseline.display(),
                    cli.tolerance_pct
                );
            }
            Ok(failures) => {
                for f in &failures {
                    eprintln!("PERF REGRESSION: {f}");
                }
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("perf: {e}");
                return ExitCode::from(2);
            }
        }
    }
    ExitCode::SUCCESS
}

//! Fig. 2 — potential snoop reductions vs. number of VMs and hypervisor
//! transaction ratio.

use vsnoop_bench::{reports, scale_from_env};

fn main() {
    vsnoop_bench::init_obs();
    match reports::fig2(scale_from_env()) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("fig2: {e}");
            std::process::exit(1);
        }
    }
}

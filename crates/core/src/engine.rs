//! The data-oriented parallel engine (ROADMAP item 1).
//!
//! One simulation is sharded by **block address**: shard `k` owns every
//! block with `block % N_SHARDS == k`. Because every cache geometry in the
//! machine selects sets by the block's low bits and has at least
//! [`N_SHARDS`] (power-of-two) sets, a block lands in set
//! `s ≡ block (mod N_SHARDS)` of *every* cache — so shard `k` owns the
//! interleaved set group `{s : s % N_SHARDS == k}` of every L1 and L2, one
//! [`TokenProtocol`] ledger bank, and a private traffic lens. Everything a
//! coherence transaction touches (the requester's L1/L2 sets for the block,
//! every remote cache's sets for the block, fill victims — which are
//! same-set by definition — and the memory-side ledger entry) belongs to
//! one shard, so shards never share mutable state.
//!
//! Execution is staged per *batch* of rounds with deterministic barriers:
//!
//! 1. **update-procs** (serial, main thread): cycle advance, migrations,
//!    access generation in exact `(round, core)` order — the workload RNG
//!    and per-core sharing-type TLBs are inherently serial state — into an
//!    immutable [`BatchPlan`].
//! 2. **update-caches** (parallel): each worker walks the plan in order and
//!    executes the full transaction ladder for entries whose shard it owns,
//!    against its shard's cache sets, ledger bank, and traffic lens. Every
//!    attempt's latency inputs are logged instead of charged.
//! 3. **update-net** (serial, main thread): the attempt logs are replayed
//!    in `(round, core, attempt)` order against the *global* byte-links
//!    counter, reproducing the serial engine's contention-scaled stall
//!    cycles bit for bit.
//!
//! Per-shard [`SimStats`], traffic, cache-counter deltas and ledger banks
//! merge back in fixed shard order at the end of the run, so the final
//! state and statistics are **bit-identical** to the serial engine — the
//! worker-sweep differential tests and the frozen reference engine hold
//! that line. Workloads that need serial-only machinery (fault injection,
//! the runtime checker, counter-based map shrinking, RegionScout, epoch
//! recording) are rejected by [`eligible`] and fall back to the untouched
//! serial path.

use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::Instant;

use super::*;

use crate::obs::metrics;

/// Number of block-address shards. Eight keeps the eligibility bar low
/// (every cache with >= 8 sets qualifies — the smallest test geometry has
/// 16) while still feeding 8 workers.
pub(super) const N_SHARDS: usize = 8;

/// Rounds per batch between update-procs and update-caches. Large enough
/// to amortize the channel round-trip, small enough that migration storms
/// (which force a flush at every migration) stay responsive.
const BATCH_ROUNDS: usize = 128;

/// Whether the batched parallel engine can run this simulator
/// bit-identically. Anything that couples transactions across shards or
/// observes mid-round global state keeps the serial path.
pub(super) fn eligible(sim: &Simulator) -> bool {
    !sim.protocol.is_reference()
        && sim.faults.is_none()
        && sim.net.link_faults().is_none()
        && !sim.policy.removes_cores()
        && sim.region_filter.is_none()
        && sim.checker.is_none()
        && sim.epochs.is_none()
        && !crate::obs::enabled()
        && sim
            .l1
            .first()
            .is_some_and(|c| c.geometry().sets() >= N_SHARDS as u64)
        && sim
            .l2
            .first()
            .is_some_and(|c| c.geometry().sets() >= N_SHARDS as u64)
}

/// One planned access slot: everything phase 2 needs to execute the
/// transaction, captured in serial `(round, core)` order.
struct PlanEntry {
    /// Round index into [`BatchPlan::round_cycles`].
    round: u32,
    core: u16,
    write: bool,
    sharing: SharingType,
    agent: Agent,
    block: BlockAddr,
}

impl PlanEntry {
    fn shard(&self) -> usize {
        (self.block.index() as usize) & (N_SHARDS - 1)
    }
}

/// The immutable per-batch work description built by update-procs. The
/// vCPU maps and friend table are frozen per batch — batches are flushed
/// before every migration, the only event that changes them on the
/// eligible path.
struct BatchPlan {
    /// Global cycle at each round of the batch (round `r` of the batch
    /// executed at `round_cycles[r]` in the serial engine).
    round_cycles: Vec<u64>,
    entries: Vec<PlanEntry>,
    maps: VcpuMapFile,
    friends: Vec<Option<VmId>>,
}

/// One transaction attempt's deferred latency charge: enough to replay
/// `contended_latency(l2_latency + round_trip, utilization())` against the
/// running global byte-links counter in serial order.
struct AttemptLog {
    round: u32,
    core: u16,
    attempt: u8,
    /// `cfg.l2_latency + round_trip` — the uncontended stall.
    base: u64,
    /// Byte-links this attempt put on the wire *before* the serial
    /// engine's utilization read (request fan-out, memory request, token
    /// replies, data response).
    pre_bytes: u64,
    /// Byte-links after the utilization read (eviction traffic).
    post_bytes: u64,
    /// Exponential-backoff charge for a failed broadcast rung
    /// (unreachable fault-free; kept for exactness).
    backoff: u64,
}

enum WorkerMsg {
    Batch(Arc<BatchPlan>),
    Finish,
}

enum WorkerReply {
    Batch(Vec<AttemptLog>),
    Final(Box<ShardOut>),
}

/// Everything a shard hands back at shutdown, merged in fixed shard order.
struct ShardOut {
    k: usize,
    stats: SimStats,
    traffic: sim_net::TrafficStats,
    l1_deltas: Vec<sim_mem::CacheDelta>,
    l2_deltas: Vec<sim_mem::CacheDelta>,
    bank: TokenProtocol,
    diags: Vec<SimError>,
    diags_total: u64,
}

/// One worker shard's execution context: its interleaved set group of
/// every cache, its ledger bank, and a private network lens (a clone of
/// the real network with zeroed counters — traffic accounting is
/// bit-identical by construction because it *is* the same code).
struct ShardCtx<'a> {
    k: usize,
    cfg: SystemConfig,
    policy: FilterPolicy,
    content_policy: ContentPolicy,
    /// Per-core L1 shard views, indexed by core.
    l1: Vec<sim_mem::CacheShard<'a>>,
    /// Per-core L2 shard views, indexed by core (the protocol's
    /// [`sim_mem::CacheBank`]).
    l2: Vec<sim_mem::CacheShard<'a>>,
    bank: TokenProtocol,
    lens: Network,
    stats: SimStats,
    log: Vec<AttemptLog>,
    diags: Vec<SimError>,
    diags_total: u64,
}

/// The migration hook of [`Simulator::run_with_migration`]: the period
/// in cycles and the vCPU-pair picker.
pub(super) type MigrationHook<'a> = (u64, &'a mut dyn FnMut(u64) -> (VcpuId, VcpuId));

/// Runs `rounds` rounds on the batched engine. `migration` carries the
/// periodic cross-VM shuffle of [`Simulator::run_with_migration`]; the
/// caller has already verified [`eligible`] and refreshed the friend
/// table.
pub(super) fn run_batched<W: SystemWorkload>(
    sim: &mut Simulator,
    workload: &mut W,
    rounds: u64,
    mut migration: Option<MigrationHook<'_>>,
    workers: usize,
) {
    let cfg = sim.cfg;
    let policy = sim.policy;
    let content_policy = sim.content_policy;
    let n = cfg.n_cores();
    let w = workers.clamp(1, N_SHARDS);

    // Split the simulator into the disjoint pieces each stage owns.
    let Simulator {
        l1,
        l2,
        protocol,
        net,
        hv,
        maps,
        tlbs,
        friends,
        removal_pending,
        cycle,
        stats,
        diagnostics,
        diagnostics_total,
        ..
    } = sim;

    let banks = protocol.fast_mut().split_banks(N_SHARDS);
    let mut per_shard_l1: Vec<Vec<sim_mem::CacheShard<'_>>> =
        (0..N_SHARDS).map(|_| Vec::with_capacity(n)).collect();
    for cache in l1.iter_mut() {
        for (k, sh) in cache.shards(N_SHARDS).into_iter().enumerate() {
            per_shard_l1[k].push(sh);
        }
    }
    let mut per_shard_l2: Vec<Vec<sim_mem::CacheShard<'_>>> =
        (0..N_SHARDS).map(|_| Vec::with_capacity(n)).collect();
    for cache in l2.iter_mut() {
        for (k, sh) in cache.shards(N_SHARDS).into_iter().enumerate() {
            per_shard_l2[k].push(sh);
        }
    }
    let ctxs: Vec<ShardCtx<'_>> = per_shard_l1
        .into_iter()
        .zip(per_shard_l2)
        .zip(banks)
        .enumerate()
        .map(|(k, ((l1s, l2s), bank))| ShardCtx {
            k,
            cfg,
            policy,
            content_policy,
            l1: l1s,
            l2: l2s,
            bank,
            lens: {
                let mut lens = net.clone();
                lens.reset_traffic();
                lens
            },
            stats: SimStats::new(n),
            log: Vec::new(),
            diags: Vec::new(),
            diags_total: 0,
        })
        .collect();
    // Worker t owns shards {k : k % w == t}, at local index k / w.
    let mut worker_ctxs: Vec<Vec<ShardCtx<'_>>> = (0..w).map(|_| Vec::new()).collect();
    for ctx in ctxs {
        worker_ctxs[ctx.k % w].push(ctx);
    }

    let mut shard_outs: Vec<ShardOut> = Vec::with_capacity(N_SHARDS);
    std::thread::scope(|s| {
        let (out_tx, out_rx) = std::sync::mpsc::channel::<WorkerReply>();
        let mut plan_txs: Vec<Sender<WorkerMsg>> = Vec::with_capacity(w);
        for (t, ctxs) in worker_ctxs.into_iter().enumerate() {
            let (tx, rx) = std::sync::mpsc::channel::<WorkerMsg>();
            plan_txs.push(tx);
            let out_tx = out_tx.clone();
            s.spawn(move || worker_loop(t, w, ctxs, rx, out_tx));
        }
        drop(out_tx);

        // Byte-links already replayed from worker lenses: the serial
        // engine's global counter at any replay point is the main
        // network's counter (map-sync traffic only, on this path) plus
        // this.
        let mut replayed_bytes: u64 = 0;
        let mut next_migration = migration.as_ref().map(|(p, _)| *cycle + p);
        let mut migration_no = 0u64;
        let mut plan = new_plan(maps, friends);

        // Engine-phase metrics are explicitly gated (VSNOOP_METRICS /
        // `metrics::set_enabled`): with the gate off this path takes no
        // clock readings at all, preserving the zero-cost contract.
        let metrics_on = metrics::enabled();
        let mut batch_start = metrics_on.then(Instant::now);

        for _ in 0..rounds {
            crate::runner::poll_current();
            *cycle += cfg.cycles_per_access;
            stats.rounds += 1;
            if let (Some((period, pick)), Some(due)) = (migration.as_mut(), next_migration.as_mut())
            {
                if *cycle >= *due {
                    // The swap's map updates (and their sync traffic)
                    // happen-before this round's accesses: flush first.
                    note_procs_phase(&mut batch_start);
                    flush_batch(
                        std::mem::replace(&mut plan, new_plan(maps, friends)),
                        &plan_txs,
                        &out_rx,
                        stats,
                        net.traffic().byte_links(),
                        &mut replayed_bytes,
                        &cfg,
                        metrics_on,
                    );
                    batch_start = metrics_on.then(Instant::now);
                    *due += *period;
                    let (a, b) = pick(migration_no);
                    migration_no += 1;
                    if a.vm() != b.vm() {
                        swap_vcpus_inline(
                            hv,
                            maps,
                            net,
                            stats,
                            removal_pending,
                            diagnostics,
                            diagnostics_total,
                            &cfg,
                            *cycle,
                            a,
                            b,
                        );
                    }
                    // Re-freeze the (possibly changed) maps.
                    plan = new_plan(maps, friends);
                }
            }
            plan.round_cycles.push(*cycle);
            let round = (plan.round_cycles.len() - 1) as u32;
            for core in CoreId::all(n) {
                let Some(vcpu) = hv.vcpu_on(core) else {
                    continue;
                };
                let access = workload.next_access(vcpu);
                stats.accesses += 1;
                let c = core.index();
                let block = BlockAddr::new(access.addr / sim_mem::BLOCK_BYTES);
                let page = access.addr / PAGE_BYTES;
                let sharing = tlbs[c].lookup(page, workload.directory());
                if sharing == SharingType::RoShared {
                    stats.content_accesses += 1;
                }
                plan.entries.push(PlanEntry {
                    round,
                    core: c as u16,
                    write: access.write,
                    sharing,
                    agent: access.agent,
                    block,
                });
            }
            if plan.round_cycles.len() >= BATCH_ROUNDS {
                note_procs_phase(&mut batch_start);
                flush_batch(
                    std::mem::replace(&mut plan, new_plan(maps, friends)),
                    &plan_txs,
                    &out_rx,
                    stats,
                    net.traffic().byte_links(),
                    &mut replayed_bytes,
                    &cfg,
                    metrics_on,
                );
                batch_start = metrics_on.then(Instant::now);
            }
        }
        note_procs_phase(&mut batch_start);
        flush_batch(
            plan,
            &plan_txs,
            &out_rx,
            stats,
            net.traffic().byte_links(),
            &mut replayed_bytes,
            &cfg,
            metrics_on,
        );

        for tx in &plan_txs {
            let _ = tx.send(WorkerMsg::Finish);
        }
        for _ in 0..N_SHARDS {
            match out_rx.recv() {
                Ok(WorkerReply::Final(out)) => shard_outs.push(*out),
                Ok(WorkerReply::Batch(_)) => unreachable!("batch reply after Finish"),
                Err(_) => panic!("engine worker exited early"),
            }
        }
    });

    // All shard borrows are gone; fold the deltas back in fixed shard
    // order so the merge itself is deterministic.
    shard_outs.sort_unstable_by_key(|o| o.k);
    let mut banks_back = Vec::with_capacity(N_SHARDS);
    for out in shard_outs {
        stats.add_delta(&out.stats);
        for (cache, delta) in l1.iter_mut().zip(&out.l1_deltas) {
            cache.apply_delta(delta);
        }
        for (cache, delta) in l2.iter_mut().zip(&out.l2_deltas) {
            cache.apply_delta(delta);
        }
        net.merge_traffic(&out.traffic);
        *diagnostics_total += out.diags_total;
        for e in out.diags {
            if diagnostics.len() < 64 {
                diagnostics.push(e);
            }
        }
        banks_back.push(out.bank);
    }
    protocol.fast_mut().absorb_banks(banks_back);
}

fn new_plan(maps: &VcpuMapFile, friends: &[Option<VmId>]) -> BatchPlan {
    BatchPlan {
        round_cycles: Vec::with_capacity(BATCH_ROUNDS),
        entries: Vec::with_capacity(BATCH_ROUNDS * 16),
        maps: maps.clone(),
        friends: friends.to_vec(),
    }
}

/// Closes an update-procs timing window (if one is open) into its
/// histogram. The window is `Some` only while engine-phase metrics are
/// enabled, so the disabled path never reads the clock.
fn note_procs_phase(batch_start: &mut Option<Instant>) {
    if let Some(t0) = batch_start.take() {
        metrics::ENGINE_UPDATE_PROCS_US.record(t0.elapsed().as_micros() as u64);
    }
}

/// Dispatches one batch to every worker, then replays the collected
/// attempt logs (stage 3, update-net): the stall for every attempt is
/// recomputed against the running global byte-links counter in exact
/// serial `(round, core, attempt)` order.
///
/// With `metrics_on`, the update-caches wall time (dispatch → last
/// worker reply), the shard imbalance (last reply − first reply) and
/// the update-net replay time land in their histograms; off, no clock
/// is read.
#[allow(clippy::too_many_arguments)]
fn flush_batch(
    plan: BatchPlan,
    plan_txs: &[Sender<WorkerMsg>],
    out_rx: &Receiver<WorkerReply>,
    stats: &mut SimStats,
    net_bytes: u64,
    replayed_bytes: &mut u64,
    cfg: &SystemConfig,
    metrics_on: bool,
) {
    if plan.round_cycles.is_empty() {
        return;
    }
    let dispatch_start = metrics_on.then(Instant::now);
    let plan = Arc::new(plan);
    for tx in plan_txs {
        tx.send(WorkerMsg::Batch(Arc::clone(&plan)))
            .expect("engine worker hung up");
    }
    let mut logs: Vec<AttemptLog> = Vec::new();
    let mut first_reply: Option<Instant> = None;
    let mut last_reply: Option<Instant> = None;
    for _ in 0..plan_txs.len() {
        match out_rx.recv() {
            Ok(WorkerReply::Batch(mut l)) => logs.append(&mut l),
            Ok(WorkerReply::Final(_)) => unreachable!("final reply mid-run"),
            Err(_) => panic!("engine worker exited early"),
        }
        if metrics_on {
            let now = Instant::now();
            first_reply.get_or_insert(now);
            last_reply = Some(now);
        }
    }
    if let (Some(t0), Some(first), Some(last)) = (dispatch_start, first_reply, last_reply) {
        metrics::ENGINE_UPDATE_CACHES_US.record(last.duration_since(t0).as_micros() as u64);
        metrics::ENGINE_SHARD_IMBALANCE_US.record(last.duration_since(first).as_micros() as u64);
    }
    let replay_start = metrics_on.then(Instant::now);
    // One transaction per (round, core), attempts in ladder order: the
    // key is unique and reconstructs the serial charge order.
    logs.sort_unstable_by_key(|l| (l.round, l.core, l.attempt));
    let mut running = net_bytes + *replayed_bytes;
    for l in &logs {
        running += l.pre_bytes;
        let cycle = plan.round_cycles[l.round as usize];
        let stall = cfg
            .network
            .contended_latency(l.base, utilization_at(cfg, running, cycle));
        stats.stall_cycles[l.core as usize] += stall + l.backoff;
        running += l.post_bytes;
    }
    *replayed_bytes = running - net_bytes;
    if let Some(t0) = replay_start {
        metrics::ENGINE_UPDATE_NET_US.record(t0.elapsed().as_micros() as u64);
    }
}

/// [`Simulator::utilization`] with explicit inputs (the replay walks a
/// reconstructed byte-links counter, not the live network's).
fn utilization_at(cfg: &SystemConfig, byte_links: u64, cycle: u64) -> f64 {
    if cycle == 0 {
        return 0.0;
    }
    let w = cfg.mesh_width;
    let h = cfg.mesh_height;
    let links = (2 * ((w - 1) * h + w * (h - 1))) as f64;
    let capacity = links * cfg.network.link_bytes as f64 * cycle as f64;
    byte_links as f64 / capacity
}

/// [`Simulator::swap_vcpus`] specialized to the eligible path (no fault
/// plan, a policy that never removes cores), over the split borrows the
/// batched run holds.
#[allow(clippy::too_many_arguments)]
fn swap_vcpus_inline(
    hv: &mut Hypervisor,
    maps: &mut VcpuMapFile,
    net: &mut Network,
    stats: &mut SimStats,
    removal_pending: &mut [Vec<Option<u64>>],
    diagnostics: &mut Vec<SimError>,
    diagnostics_total: &mut u64,
    cfg: &SystemConfig,
    cycle: u64,
    a: VcpuId,
    b: VcpuId,
) {
    let (ca, cb) = match hv.try_swap(cycle, a, b) {
        Ok(cores) => cores,
        Err(UnplacedVcpu(vcpu)) => {
            *diagnostics_total += 1;
            if diagnostics.len() < 64 {
                diagnostics.push(SimError::VcpuNotPlaced {
                    vcpu,
                    context: "swap_vcpus",
                });
            }
            return;
        }
    };
    if ca == cb {
        return;
    }
    for (vcpu, old, new) in [(a, ca, cb), (b, cb, ca)] {
        let vm = vcpu.vm();
        if maps.add_core(vm.index(), new) {
            stats.map_adds += 1;
            account_map_sync_inline(net, maps, cfg, vm);
        }
        removal_pending[new.index()][vm.index()] = None;
        if hv.cores_of_vm(vm) & (1 << old.index()) == 0 {
            removal_pending[old.index()][vm.index()] = Some(cycle);
            // The serial path re-checks counter-based removal here;
            // eligibility guarantees the policy never removes cores.
        }
    }
}

/// [`Simulator::account_map_sync`] (fast path) over split borrows.
fn account_map_sync_inline(net: &mut Network, maps: &VcpuMapFile, cfg: &SystemConfig, vm: VmId) {
    let mask = maps.map(vm.index()).mask() & valid_core_mask(cfg.n_cores());
    if mask == 0 {
        return;
    }
    let first = mask.trailing_zeros();
    let src = NodeId::new(first as u16);
    let rest = mask & (mask - 1);
    net.multicast(
        src,
        mask_cores(rest).map(|c| NodeId::new(c as u16)),
        MessageKind::MapUpdate,
    );
}

fn worker_loop(
    t: usize,
    w: usize,
    mut ctxs: Vec<ShardCtx<'_>>,
    rx: Receiver<WorkerMsg>,
    out: Sender<WorkerReply>,
) {
    while let Ok(msg) = rx.recv() {
        match msg {
            WorkerMsg::Batch(plan) => {
                for e in &plan.entries {
                    let k = e.shard();
                    if k % w == t {
                        ctxs[k / w].step(e, &plan);
                    }
                }
                let logs: Vec<AttemptLog> = ctxs.iter_mut().flat_map(|c| c.log.drain(..)).collect();
                if out.send(WorkerReply::Batch(logs)).is_err() {
                    return;
                }
            }
            WorkerMsg::Finish => {
                for ctx in ctxs {
                    let _ = out.send(WorkerReply::Final(Box::new(ctx.finish())));
                }
                return;
            }
        }
    }
}

impl ShardCtx<'_> {
    fn finish(self) -> ShardOut {
        ShardOut {
            k: self.k,
            stats: self.stats,
            traffic: *self.lens.traffic(),
            l1_deltas: self.l1.into_iter().map(|s| s.into_delta()).collect(),
            l2_deltas: self.l2.into_iter().map(|s| s.into_delta()).collect(),
            bank: self.bank,
            diags: self.diags,
            diags_total: self.diags_total,
        }
    }

    fn diagnose(&mut self, e: SimError) {
        self.diags_total += 1;
        if self.diags.len() < 64 {
            self.diags.push(e);
        }
    }

    /// [`Simulator::step`] transcribed against the shard view (the L1/L2
    /// probing, hit classification, and miss decomposition are verbatim;
    /// the serial-only prologue — access counting and TLB classification —
    /// already ran in update-procs).
    fn step(&mut self, e: &PlanEntry, plan: &BatchPlan) {
        let c = e.core as usize;
        let block = e.block;
        let total = self.cfg.n_cores() as u32;

        // L1.
        if self.l1[c].access(block) {
            if e.write {
                if let Some(line) = self.l2[c].probe_mut(block) {
                    if line.state.can_write(total) {
                        line.state.dirty = true;
                        self.stats.l1_hits += 1;
                        return;
                    }
                }
                self.l1[c].remove(block);
            } else {
                self.stats.l1_hits += 1;
                return;
            }
        }

        // L2.
        let hit = {
            let present = self.l2[c].access(block);
            if present {
                match self.l2[c].probe_mut(block) {
                    Some(line) => {
                        if e.write {
                            if line.state.can_write(total) {
                                line.state.dirty = true;
                                true
                            } else {
                                false
                            }
                        } else {
                            line.state.can_read()
                        }
                    }
                    None => {
                        self.diagnose(SimError::CacheDesync { core: c, block });
                        false
                    }
                }
            } else {
                false
            }
        };
        if hit {
            self.stats.l2_hits += 1;
            self.fill_l1(c, block, e.agent);
            return;
        }

        self.stats.count_miss(e.agent, e.sharing);
        if e.sharing == SharingType::RoShared && !e.write {
            self.classify_holders(block, e.agent.guest_vm(), plan);
        }
        self.transaction(e, plan);
    }

    /// [`Simulator::transaction`] transcribed against the shard view:
    /// same ladder, same traffic calls (through the lens), same protocol
    /// ops (through the bank) — but the stall charge is *logged* with its
    /// latency inputs instead of computed, because utilization is global.
    fn transaction(&mut self, e: &PlanEntry, plan: &BatchPlan) {
        let c = e.core as usize;
        let block = e.block;
        let tag = LineTag::from(e.agent);
        let mode = self.read_mode(e.agent, e.sharing);

        // Fault-free by eligibility: the original three-attempt ladder.
        let transient_attempts: u32 = 3;
        for attempt in 0..=transient_attempts {
            let persistent = attempt == transient_attempts;
            let filtered = attempt < 2;
            let (dest_mask, include_memory, degraded) = if persistent {
                let all = valid_core_mask(self.cfg.n_cores()) & !(1u64 << c);
                (all, true, false)
            } else {
                self.destinations(plan, c, e.agent, e.sharing, filtered)
            };
            if attempt > 0 {
                self.stats.retries += 1;
                if attempt == 2 {
                    self.stats.broadcast_fallbacks += 1;
                }
            }
            if persistent {
                self.stats.persistent_requests += 1;
            }
            if degraded && attempt == 0 {
                self.stats.degraded_broadcasts += 1;
            }

            let req_kind = if persistent {
                MessageKind::Persistent
            } else {
                MessageKind::Request
            };
            let src = NodeId::new(c as u16);
            let bytes_before = self.lens.traffic().byte_links();
            // No link faults on the eligible path: the whole fan-out is
            // one batched multicast and every request is delivered.
            let delivered: u64 = dest_mask;
            let mut worst_req_lat = self.lens.multicast(
                src,
                mask_cores(dest_mask).map(|d| NodeId::new(d as u16)),
                req_kind,
            );
            let memory_heard = include_memory;
            if include_memory {
                let lat = self.lens.to_memory(src, req_kind);
                worst_req_lat = worst_req_lat.max(lat);
            }

            self.stats.snoops += u64::from(delivered.count_ones()) + 1;

            let outcome = if e.write {
                let w = self.bank.write_miss_masked(
                    self.l2.as_mut_slice(),
                    c,
                    delivered,
                    block,
                    memory_heard,
                    tag,
                );
                if w.token_repliers != 0 {
                    self.lens.multicast(
                        src,
                        mask_cores(w.token_repliers).map(|r| NodeId::new(r as u16)),
                        MessageKind::TokenReply,
                    );
                }
                TxOutcome {
                    success: w.success,
                    source: w.source,
                    invalidated: w.invalidated,
                    evicted: w.evicted,
                    evicted_dirty: w.evicted_dirty,
                }
            } else {
                let r = self.bank.read_miss_masked(
                    self.l2.as_mut_slice(),
                    c,
                    delivered,
                    block,
                    memory_heard,
                    tag,
                    mode,
                );
                TxOutcome {
                    success: r.success,
                    source: r.source,
                    invalidated: r.invalidated,
                    evicted: r.evicted,
                    evicted_dirty: r.evicted_dirty,
                }
            };

            let lm = *self.lens.latency_model();
            let round_trip = match outcome.source {
                Some(DataSource::Cache(h)) => {
                    let resp = self
                        .lens
                        .unicast(NodeId::new(h as u16), src, MessageKind::Data);
                    self.count_data_source(plan, h, e.agent.guest_vm());
                    let req_leg = lm.base_latency(
                        self.lens.mesh().hops(src, NodeId::new(h as u16)),
                        MessageKind::Request.bytes(),
                    );
                    req_leg + resp
                }
                Some(DataSource::Memory) => {
                    let resp =
                        self.lens.from_memory(src, MessageKind::Data) + self.cfg.memory_latency;
                    self.stats.data_memory += 1;
                    let port = self.lens.mesh().nearest_port(src, self.lens.memory_ports());
                    let req_leg = lm.base_latency(
                        self.lens.mesh().hops(src, port),
                        MessageKind::Request.bytes(),
                    );
                    req_leg + resp
                }
                None => 2 * worst_req_lat,
            };
            let base = self.cfg.l2_latency + round_trip;
            // Serial charge point: the utilization read happens *here*,
            // before eviction traffic. Split this attempt's bytes at it.
            let pre_bytes = self.lens.traffic().byte_links() - bytes_before;

            for j in mask_cores(outcome.invalidated) {
                self.l1[j].remove(block);
                // check_pending_removals: no-op on the eligible path (the
                // policy never removes cores).
            }
            if let Some(victim) = outcome.evicted {
                self.handle_eviction(c, victim, outcome.evicted_dirty);
            }
            let post_bytes = self.lens.traffic().byte_links() - bytes_before - pre_bytes;

            let backoff = if !outcome.success && attempt >= 2 && !persistent {
                worst_req_lat.saturating_mul(1u64 << (attempt - 2).min(8))
            } else {
                0
            };
            self.log.push(AttemptLog {
                round: e.round,
                core: e.core,
                attempt: attempt as u8,
                base,
                pre_bytes,
                post_bytes,
                backoff,
            });

            if outcome.success {
                self.fill_l1(c, block, e.agent);
                return;
            }
            assert!(
                !persistent,
                "persistent broadcast with memory cannot fail: it reaches \
                 every token holder on the reliable channel"
            );
        }
        unreachable!("the persistent attempt either succeeds or asserts");
    }

    /// [`Simulator::destinations`] against the plan's frozen maps (the
    /// RegionScout branch is unreachable: that policy is ineligible).
    fn destinations(
        &self,
        plan: &BatchPlan,
        requester: usize,
        agent: Agent,
        sharing: SharingType,
        filtered: bool,
    ) -> (u64, bool, bool) {
        let broadcast = valid_core_mask(self.cfg.n_cores()) & !(1u64 << requester);
        if !filtered || !self.policy.filters() {
            return (broadcast, true, false);
        }
        let Some(vm) = agent.guest_vm() else {
            return (broadcast, true, false);
        };
        let usable = |ok: bool, dests: u64| {
            if ok {
                (dests, true, false)
            } else {
                (broadcast, true, true)
            }
        };
        match sharing {
            SharingType::RwShared => (broadcast, true, false),
            SharingType::VmPrivate => usable(
                self.map_usable(plan, vm, None, requester),
                self.map_dests(plan, vm, None, requester),
            ),
            SharingType::RoShared => match self.content_policy {
                ContentPolicy::Broadcast => (broadcast, true, false),
                ContentPolicy::MemoryDirect => (0, true, false),
                ContentPolicy::IntraVm => usable(
                    self.map_usable(plan, vm, None, requester),
                    self.map_dests(plan, vm, None, requester),
                ),
                ContentPolicy::FriendVm => {
                    let friend = plan.friends[vm.index()];
                    usable(
                        self.map_usable(plan, vm, friend, requester),
                        self.map_dests(plan, vm, friend, requester),
                    )
                }
            },
        }
    }

    /// [`Simulator::map_usable`] against the plan's frozen maps.
    fn map_usable(
        &self,
        plan: &BatchPlan,
        vm: VmId,
        friend: Option<VmId>,
        requester: usize,
    ) -> bool {
        let valid = valid_core_mask(self.cfg.n_cores());
        let own = plan.maps.map(vm.index()).mask();
        if own & !valid != 0 || own & (1u64 << requester) == 0 {
            return false;
        }
        match friend {
            Some(f) => plan.maps.map(f.index()).mask() & !valid == 0,
            None => true,
        }
    }

    /// [`Simulator::map_dests`] against the plan's frozen maps.
    fn map_dests(&self, plan: &BatchPlan, vm: VmId, friend: Option<VmId>, requester: usize) -> u64 {
        let mut mask = plan.maps.map(vm.index()).mask();
        if let Some(f) = friend {
            mask |= plan.maps.map(f.index()).mask();
        }
        mask & valid_core_mask(self.cfg.n_cores()) & !(1u64 << requester)
    }

    /// [`Simulator::read_mode`], verbatim.
    fn read_mode(&self, agent: Agent, sharing: SharingType) -> ReadMode {
        if sharing == SharingType::RoShared
            && agent.guest_vm().is_some()
            && self.policy.uses_vcpu_maps()
            && self.content_policy != ContentPolicy::Broadcast
        {
            ReadMode::CleanShared
        } else {
            ReadMode::Strict
        }
    }

    fn fill_l1(&mut self, c: usize, block: BlockAddr, agent: Agent) {
        self.l1[c].insert(CacheLine::new(
            block,
            TokenState::shared_one(),
            LineTag::from(agent),
        ));
    }

    /// [`Simulator::handle_eviction`]: the victim shares the fill's cache
    /// set, so it belongs to this shard by construction.
    fn handle_eviction(&mut self, c: usize, victim: CacheLine, dirty: bool) {
        self.l1[c].remove(victim.block);
        let kind = if dirty {
            self.stats.writebacks += 1;
            MessageKind::Writeback
        } else {
            MessageKind::TokenReply
        };
        self.lens.to_memory(NodeId::new(c as u16), kind);
    }

    /// [`Simulator::count_data_source`] against the plan's frozen maps.
    fn count_data_source(&mut self, plan: &BatchPlan, holder: usize, vm: Option<VmId>) {
        match vm {
            Some(vm)
                if plan
                    .maps
                    .map(vm.index())
                    .contains(CoreId::new(holder as u16)) =>
            {
                self.stats.data_intra_vm += 1;
            }
            _ => self.stats.data_other_vm += 1,
        }
    }

    /// [`Simulator::classify_holders`] against the shard view: every
    /// core's copy of `block` lives in this shard's set group.
    fn classify_holders(&mut self, block: BlockAddr, vm: Option<VmId>, plan: &BatchPlan) {
        let mut holders = 0u64;
        for (j, l2) in self.l2.iter().enumerate() {
            if l2.probe(block).is_some() {
                holders |= 1u64 << j;
            }
        }
        if holders == 0 {
            self.stats.holders_memory += 1;
            return;
        }
        self.stats.holders_any_cache += 1;
        let Some(vm) = vm else { return };
        if holders & plan.maps.map(vm.index()).mask() != 0 {
            self.stats.holders_intra_vm += 1;
        } else if let Some(f) = plan.friends[vm.index()] {
            if holders & plan.maps.map(f.index()).mask() != 0 {
                self.stats.holders_friend_vm += 1;
            }
        }
    }
}

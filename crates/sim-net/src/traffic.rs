//! Network traffic accounting.
//!
//! The paper's Table IV metric is the total amount of data moved through
//! the network: every message contributes `bytes x links-traversed`
//! ("byte-links"). Multicasts are modelled as one unicast per destination,
//! matching the repeated-unicast snooping of the TokenB baseline.

use crate::message::MessageKind;

/// Accumulated traffic statistics.
///
/// # Examples
///
/// ```
/// use sim_net::{TrafficStats, MessageKind};
///
/// let mut t = TrafficStats::default();
/// t.record(MessageKind::Request, 3);
/// t.record(MessageKind::Data, 2);
/// assert_eq!(t.byte_links(), 8 * 3 + 72 * 2);
/// assert_eq!(t.messages(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TrafficStats {
    byte_links: u64,
    per_kind_byte_links: [u64; MessageKind::ALL.len()],
    per_kind_messages: [u64; MessageKind::ALL.len()],
    /// Latched when any counter would have exceeded `u64::MAX`; the
    /// counters saturate instead of wrapping, and consumers (the runtime
    /// invariant checker, report writers) surface this flag as a typed
    /// error rather than silently publishing a wrapped metric.
    overflowed: bool,
}

impl TrafficStats {
    /// Records one message of `kind` crossing `hops` links.
    ///
    /// Zero-hop (local) deliveries consume no link bandwidth and add no
    /// traffic, but are still counted as messages. Shares the checked
    /// saturating accumulation of [`TrafficStats::record_batch`].
    pub fn record(&mut self, kind: MessageKind, hops: u32) {
        self.record_batch(kind, u64::from(hops), 1);
    }

    /// Records `messages` same-kind messages that together crossed
    /// `total_hops` links — the batched form a multicast uses to account
    /// a whole destination set in one call.
    ///
    /// Because every message of a kind has the same size, the batched
    /// contribution `bytes * total_hops` equals the sum of the
    /// per-unicast contributions exactly (no rounding is involved), so
    /// batching is invisible to the Table IV byte-links metric.
    ///
    /// All accumulation is checked: a contribution that would exceed
    /// `u64::MAX` (in the multiply or in any running counter) saturates
    /// and latches [`TrafficStats::overflowed`] instead of wrapping (the
    /// previous behaviour wrapped in release builds and panicked on the
    /// multiply), so a long soak degrades to a flagged saturated metric
    /// rather than a silently wrong one.
    pub fn record_batch(&mut self, kind: MessageKind, total_hops: u64, messages: u64) {
        let contribution = match u64::from(kind.bytes()).checked_mul(total_hops) {
            Some(c) => c,
            None => {
                self.overflowed = true;
                u64::MAX
            }
        };
        self.byte_links = self.add_checked(self.byte_links, contribution);
        self.per_kind_byte_links[kind.index()] =
            self.add_checked(self.per_kind_byte_links[kind.index()], contribution);
        self.per_kind_messages[kind.index()] =
            self.add_checked(self.per_kind_messages[kind.index()], messages);
    }

    /// `a + b`, saturating and latching the overflow flag on wrap.
    fn add_checked(&mut self, a: u64, b: u64) -> u64 {
        match a.checked_add(b) {
            Some(v) => v,
            None => {
                self.overflowed = true;
                u64::MAX
            }
        }
    }

    /// Whether any counter has saturated instead of wrapping. Once set,
    /// the flag stays set (and survives [`TrafficStats::merge`]), so a
    /// single check at reporting time covers the whole run.
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// Total byte-links accumulated.
    pub fn byte_links(&self) -> u64 {
        self.byte_links
    }

    /// Total messages recorded.
    pub fn messages(&self) -> u64 {
        self.per_kind_messages.iter().sum()
    }

    /// Byte-links attributable to `kind`.
    pub fn byte_links_of(&self, kind: MessageKind) -> u64 {
        self.per_kind_byte_links[kind.index()]
    }

    /// Messages of `kind` recorded.
    pub fn messages_of(&self, kind: MessageKind) -> u64 {
        self.per_kind_messages[kind.index()]
    }

    /// Merges another statistics block into this one, with the same
    /// checked saturating accumulation as [`TrafficStats::record_batch`];
    /// a latched overflow flag on either side is propagated.
    pub fn merge(&mut self, other: &TrafficStats) {
        self.overflowed |= other.overflowed;
        self.byte_links = self.add_checked(self.byte_links, other.byte_links);
        for i in 0..self.per_kind_byte_links.len() {
            self.per_kind_byte_links[i] =
                self.add_checked(self.per_kind_byte_links[i], other.per_kind_byte_links[i]);
            self.per_kind_messages[i] =
                self.add_checked(self.per_kind_messages[i], other.per_kind_messages[i]);
        }
    }

    /// Fractional reduction of this traffic relative to `baseline`
    /// (`1 - self/baseline`), or 0 when the baseline is empty.
    pub fn reduction_vs(&self, baseline: &TrafficStats) -> f64 {
        if baseline.byte_links == 0 {
            0.0
        } else {
            1.0 - self.byte_links as f64 / baseline.byte_links as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_kind_accounting() {
        let mut t = TrafficStats::default();
        t.record(MessageKind::Request, 2);
        t.record(MessageKind::Request, 4);
        t.record(MessageKind::Data, 1);
        assert_eq!(t.byte_links_of(MessageKind::Request), 8 * 6);
        assert_eq!(t.byte_links_of(MessageKind::Data), 72);
        assert_eq!(t.messages_of(MessageKind::Request), 2);
        assert_eq!(t.messages(), 3);
        assert_eq!(t.byte_links(), 48 + 72);
    }

    #[test]
    fn zero_hop_message_counted_but_free() {
        let mut t = TrafficStats::default();
        t.record(MessageKind::Data, 0);
        assert_eq!(t.byte_links(), 0);
        assert_eq!(t.messages(), 1);
    }

    #[test]
    fn batch_equals_per_unicast_sum() {
        // Deterministic counterpart of the `proptest`-gated property:
        // batching a destination set is invisible to every counter.
        let hop_sets: [&[u32]; 4] = [&[], &[0], &[3, 1, 4, 1, 5], &[9, 2, 6, 5, 3, 5, 8, 9, 7]];
        for kind in MessageKind::ALL {
            for hops in hop_sets {
                let mut naive = TrafficStats::default();
                for &h in hops {
                    naive.record(kind, h);
                }
                let mut batched = TrafficStats::default();
                batched.record_batch(
                    kind,
                    hops.iter().map(|&h| u64::from(h)).sum(),
                    hops.len() as u64,
                );
                assert_eq!(batched, naive, "{kind:?} {hops:?}");
            }
        }
    }

    #[test]
    fn absurd_hop_total_saturates_and_flags() {
        // The multiply alone overflows: previously this path panicked via
        // `expect`; now it saturates and latches the flag.
        let mut t = TrafficStats::default();
        t.record_batch(MessageKind::Data, u64::MAX / 2, 1);
        assert!(t.overflowed());
        assert_eq!(t.byte_links(), u64::MAX);
        assert_eq!(t.messages(), 1, "message count still accumulates");
    }

    #[test]
    fn accumulated_overflow_saturates_in_all_builds() {
        // Contributions that each fit in u64 but whose sum does not:
        // previously this wrapped silently in release builds.
        let mut t = TrafficStats::default();
        let third = u64::MAX / u64::from(MessageKind::Data.bytes()) / 2;
        t.record_batch(MessageKind::Data, third, 1);
        t.record_batch(MessageKind::Data, third, 1);
        assert!(!t.overflowed());
        let before = t.byte_links();
        t.record_batch(MessageKind::Data, third, 1);
        assert!(t.overflowed());
        assert_eq!(t.byte_links(), u64::MAX, "saturates, never wraps");
        assert!(t.byte_links() >= before);
    }

    #[test]
    fn record_and_record_batch_share_the_checked_path() {
        // `record` is defined as a 1-message batch, so a saturated state
        // reached through either entry point looks identical.
        let mut a = TrafficStats {
            byte_links: u64::MAX - 1,
            ..Default::default()
        };
        let mut b = a;
        a.record(MessageKind::Request, 1);
        b.record_batch(MessageKind::Request, 1, 1);
        assert_eq!(a, b);
        assert!(a.overflowed() && b.overflowed());
    }

    #[test]
    fn merge_propagates_overflow_flag() {
        let mut sat = TrafficStats::default();
        sat.record_batch(MessageKind::Data, u64::MAX / 2, 1);
        let mut clean = TrafficStats::default();
        clean.record(MessageKind::Request, 1);
        clean.merge(&sat);
        assert!(clean.overflowed());
        assert_eq!(clean.byte_links(), u64::MAX);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = TrafficStats::default();
        a.record(MessageKind::Request, 1);
        let mut b = TrafficStats::default();
        b.record(MessageKind::Writeback, 2);
        b.record(MessageKind::Request, 3);
        a.merge(&b);
        assert_eq!(a.messages(), 3);
        assert_eq!(a.byte_links(), 8 + 144 + 24);
    }

    #[test]
    fn reduction_vs_baseline() {
        let mut base = TrafficStats::default();
        base.record(MessageKind::Data, 10); // 720
        let mut filt = TrafficStats::default();
        filt.record(MessageKind::Data, 5); // 360
        assert!((filt.reduction_vs(&base) - 0.5).abs() < 1e-12);
        // Empty baseline yields 0, not a division by zero.
        assert_eq!(filt.reduction_vs(&TrafficStats::default()), 0.0);
    }
}

//! A Zipf-distributed index sampler.
//!
//! Memory page popularity in real applications is heavily skewed; a Zipf
//! distribution over the working set is the standard synthetic stand-in.
//! The sampler precomputes the cumulative distribution once and answers
//! samples with a binary search, so per-access cost is `O(log n)`.

use rand::Rng;

/// Samples indices `0..n` with probability proportional to
/// `1 / (i + 1)^s`.
///
/// `s = 0` degenerates to the uniform distribution; larger `s` concentrates
/// probability on low indices ("hot" pages).
///
/// # Examples
///
/// ```
/// use workloads::ZipfSampler;
/// use rand::{SeedableRng, rngs::SmallRng};
///
/// let z = ZipfSampler::new(100, 1.0);
/// let mut rng = SmallRng::seed_from_u64(1);
/// let x = z.sample(&mut rng);
/// assert!(x < 100);
/// ```
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` indices with skew `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is negative or not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "need at least one index");
        assert!(
            s >= 0.0 && s.is_finite(),
            "skew must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point droop at the tail.
        *cdf.last_mut().expect("n > 0") = 1.0;
        ZipfSampler { cdf }
    }

    /// Number of indices.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if the sampler has no indices (never: `new` requires
    /// at least one).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_s_zero() {
        let z = ZipfSampler::new(4, 0.0);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!(
                (9_000..11_000).contains(&c),
                "uniform counts skewed: {counts:?}"
            );
        }
    }

    #[test]
    fn skew_concentrates_on_head() {
        let z = ZipfSampler::new(1000, 1.2);
        let mut rng = SmallRng::seed_from_u64(7);
        let head = (0..20_000).filter(|_| z.sample(&mut rng) < 10).count();
        assert!(
            head > 10_000,
            "with s=1.2 the top 10 of 1000 indices should absorb most draws, got {head}/20000"
        );
    }

    #[test]
    fn samples_in_range() {
        let z = ZipfSampler::new(3, 2.5);
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 3);
        }
        assert_eq!(z.len(), 3);
        assert!(!z.is_empty());
    }

    #[test]
    fn single_index_always_zero() {
        let z = ZipfSampler::new(1, 1.0);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_indices_rejected() {
        let _ = ZipfSampler::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_skew_rejected() {
        let _ = ZipfSampler::new(10, -1.0);
    }
}

//! System-level robustness properties: migration storms and fault
//! injection must never break the coherence invariants, and the
//! observability machinery (checker, fault-free plans) must never perturb
//! the simulated results.
//!
//! The deterministic tests below always run; the randomized
//! property-based versions live in the [`randomized`] module, gated
//! behind `cargo test --features proptest`.

use virtual_snooping::prelude::*;
use virtual_snooping::sim_mem::BlockAddr;
use virtual_snooping::vsnoop::CheckerConfig as Ckr;

fn storm_workload(cfg: &SystemConfig, seed: u64) -> Workload {
    Workload::homogeneous(
        workloads::profile("ocean").unwrap(),
        cfg.n_vms,
        WorkloadConfig {
            vcpus_per_vm: cfg.vcpus_per_vm,
            seed,
            ..Default::default()
        },
    )
}

/// Deterministic cross-VM shuffle for `run_with_migration`.
fn picker(cfg: SystemConfig) -> impl FnMut(u64) -> (VcpuId, VcpuId) {
    move |i| {
        let va = (i % cfg.n_vms as u64) as u16;
        let vb = ((i + 1) % cfg.n_vms as u64) as u16;
        let ia = ((i / 2) % cfg.vcpus_per_vm as u64) as u16;
        let ib = ((i / 3) % cfg.vcpus_per_vm as u64) as u16;
        (
            VcpuId::new(VmId::new(va), ia),
            VcpuId::new(VmId::new(vb), ib),
        )
    }
}

/// An aggressive plan: every fault class at rates that fire hundreds of
/// times within a short test run.
fn storm_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        drop_p: 0.05,
        delay_p: 0.10,
        max_delay_cycles: 20,
        corrupt_map_p: 0.02,
        map_sync_delay_cycles: 200,
        spurious_bounce_p: 0.01,
        audit_period_cycles: 2_000,
    }
}

fn assert_clean(sim: &Simulator, what: &str) {
    let ch = sim.checker().expect("checker enabled");
    assert_eq!(
        ch.total_violations(),
        0,
        "{what}: invariant violations: {:#?}",
        ch.violations()
    );
    assert!(ch.block_checks() > 0, "{what}: checker never ran");
    let s = sim.stats();
    assert_eq!(s.l1_hits + s.l2_hits + s.l2_misses, s.accesses, "{what}");
}

/// A migration storm with *every* fault class enabled stays invariant-
/// clean, while each injection class demonstrably fires.
#[test]
fn migration_storm_under_all_faults_is_invariant_clean() {
    let cfg = SystemConfig::small_test();
    let mut sim = Simulator::new(cfg, FilterPolicy::Counter, ContentPolicy::Broadcast);
    sim.set_fault_plan(storm_plan(7));
    sim.enable_checker(Ckr {
        sweep_every: 1_000,
        ..Default::default()
    });
    let mut wl = storm_workload(&cfg, 0xDECAF);
    let period = cfg.cycles_per_access * 25;
    sim.run_with_migration(&mut wl, 8_000, period, picker(cfg));
    sim.run_checker_sweep();

    assert_clean(&sim, "all-faults storm");
    let inj = sim.fault_injections().unwrap();
    assert!(inj.maps_corrupted() > 0, "no map corruption fired: {inj:?}");
    assert!(inj.spurious_bounces > 0, "no token bounce fired: {inj:?}");
    let lf = sim.link_faults().unwrap();
    assert!(lf.drops() > 0, "no snoop drops fired");
    assert!(lf.delays() > 0, "no delays fired");
    // The protocol responded: escalation and degraded fallbacks happened,
    // and the audit repaired corrupted registers.
    let s = sim.stats();
    assert!(
        s.degraded_broadcasts > 0,
        "corruption never degraded a filter"
    );
    assert!(s.map_repairs > 0, "audit never repaired a register");
    for block in 0..(wl.allocated_pages() * 64) {
        assert!(sim.check_invariant(BlockAddr::new(block)));
    }
}

/// Each fault class *alone* stays invariant-clean (isolating recovery
/// paths: drop retries, delay absorption, degraded broadcast, late map
/// sync, bounce re-fetch).
#[test]
fn each_fault_class_alone_is_invariant_clean() {
    let base = FaultPlan::none(11);
    let plans = [
        (
            "drops",
            FaultPlan {
                drop_p: 0.10,
                ..base
            },
        ),
        (
            "delays",
            FaultPlan {
                delay_p: 0.20,
                max_delay_cycles: 30,
                ..base
            },
        ),
        (
            "map corruption",
            FaultPlan {
                corrupt_map_p: 0.05,
                audit_period_cycles: 1_000,
                ..base
            },
        ),
        (
            "late map sync",
            FaultPlan {
                map_sync_delay_cycles: 300,
                ..base
            },
        ),
        (
            "token bounces",
            FaultPlan {
                spurious_bounce_p: 0.02,
                ..base
            },
        ),
    ];
    let cfg = SystemConfig::small_test();
    for (what, plan) in plans {
        let mut sim = Simulator::new(cfg, FilterPolicy::VsnoopBase, ContentPolicy::Broadcast);
        sim.set_fault_plan(plan);
        sim.enable_checker(Ckr {
            sweep_every: 1_000,
            ..Default::default()
        });
        let mut wl = storm_workload(&cfg, 0xBEEF);
        sim.run_with_migration(&mut wl, 4_000, cfg.cycles_per_access * 25, picker(cfg));
        sim.run_checker_sweep();
        assert_clean(&sim, what);
    }
}

/// Corrupted vCPU-map registers must trip the requester-side validation
/// and degrade to full broadcast (correct results, counted), and the
/// periodic hypervisor audit must repair them.
#[test]
fn corrupted_maps_degrade_to_broadcast_and_get_repaired() {
    let cfg = SystemConfig::small_test();
    let mut sim = Simulator::new(cfg, FilterPolicy::VsnoopBase, ContentPolicy::Broadcast);
    sim.set_fault_plan(FaultPlan {
        corrupt_map_p: 0.05,
        audit_period_cycles: 1_000,
        ..FaultPlan::none(23)
    });
    sim.enable_checker(Ckr {
        sweep_every: 1_000,
        ..Default::default()
    });
    let mut wl = storm_workload(&cfg, 0xFEED);
    sim.run(&mut wl, 6_000);
    sim.run_checker_sweep();

    assert_clean(&sim, "map corruption");
    let s = sim.stats();
    assert!(
        s.degraded_broadcasts > 0,
        "corruption must trigger degraded broadcasts"
    );
    assert!(s.map_repairs > 0, "audit must repair corrupted registers");
    assert!(sim.fault_injections().unwrap().maps_corrupted() > 0);
}

/// Under a near-total snoop-drop rate the whole transient ladder can
/// fail; the protocol must escalate to persistent requests (reliable
/// channel) instead of panicking, and still stay invariant-clean.
#[test]
fn heavy_drops_escalate_to_persistent_requests() {
    let cfg = SystemConfig::small_test();
    let mut sim = Simulator::new(cfg, FilterPolicy::VsnoopBase, ContentPolicy::Broadcast);
    sim.set_fault_plan(FaultPlan {
        drop_p: 0.9,
        ..FaultPlan::none(31)
    });
    sim.enable_checker(Ckr {
        sweep_every: 1_000,
        ..Default::default()
    });
    let mut wl = storm_workload(&cfg, 0xD0D0);
    sim.run(&mut wl, 3_000);
    sim.run_checker_sweep();

    assert_clean(&sim, "heavy drops");
    let s = sim.stats();
    assert!(
        s.persistent_requests > 0,
        "a 90% drop rate must exhaust the transient ladder sometimes"
    );
    assert!(s.retries > 0);
}

/// The observability layer must be a pure observer: enabling the checker,
/// or installing a fault plan that injects nothing, leaves every result
/// counter bit-identical to a plain run.
#[test]
fn checker_and_empty_plan_do_not_perturb_results() {
    let cfg = SystemConfig::small_test();
    let run = |checker: bool, empty_plan: bool| {
        let mut sim = Simulator::new(cfg, FilterPolicy::Counter, ContentPolicy::Broadcast);
        if checker {
            sim.enable_checker(Ckr::default());
        }
        if empty_plan {
            sim.set_fault_plan(FaultPlan::none(99));
        }
        let mut wl = storm_workload(&cfg, 0xABCD);
        sim.run_with_migration(&mut wl, 3_000, cfg.cycles_per_access * 50, picker(cfg));
        let s = sim.stats().clone();
        (
            s.accesses,
            s.snoops,
            s.l2_misses,
            s.retries,
            s.writebacks,
            s.degraded_broadcasts,
        )
    };
    let plain = run(false, false);
    assert_eq!(run(true, false), plain, "checker perturbed the simulation");
    assert_eq!(
        run(false, true),
        plain,
        "empty fault plan perturbed the simulation"
    );
    assert_eq!(plain.5, 0, "no faults, no degraded broadcasts");
}

/// Randomized property-based variants (vendored generation-only proptest
/// shim; no shrinking).
#[cfg(feature = "proptest")]
mod randomized {
    use super::*;
    use proptest::prelude::*;

    fn policy_strategy() -> impl Strategy<Value = FilterPolicy> {
        prop_oneof![
            Just(FilterPolicy::TokenBroadcast),
            Just(FilterPolicy::VsnoopBase),
            Just(FilterPolicy::Counter),
            (1u64..32).prop_map(|threshold| FilterPolicy::CounterThreshold { threshold }),
        ]
    }

    fn content_strategy() -> impl Strategy<Value = ContentPolicy> {
        prop_oneof![
            Just(ContentPolicy::Broadcast),
            Just(ContentPolicy::MemoryDirect),
            Just(ContentPolicy::IntraVm),
            Just(ContentPolicy::FriendVm),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn random_policy_runs_preserve_invariants(
            policy in policy_strategy(),
            content in content_strategy(),
            app_idx in 0usize..10,
            seed in 0u64..1000,
            swaps in prop::collection::vec((0u16..4, 0u16..4, 0u16..4, 0u16..4), 0..4),
        ) {
            let cfg = SystemConfig::small_test();
            let mut sim = Simulator::new(cfg, policy, content);
            sim.enable_checker(Ckr { sweep_every: 500, ..Default::default() });
            let app = workloads::simulation_apps()[app_idx];
            let mut wl = Workload::homogeneous(
                app,
                cfg.n_vms,
                WorkloadConfig {
                    vcpus_per_vm: cfg.vcpus_per_vm,
                    seed,
                    content_sharing: content != ContentPolicy::Broadcast,
                    ..Default::default()
                },
            );
            sim.run(&mut wl, 300);
            for (va, ia, vb, ib) in swaps {
                let a = VcpuId::new(VmId::new(va % cfg.n_vms as u16), ia % cfg.vcpus_per_vm);
                let b = VcpuId::new(VmId::new(vb % cfg.n_vms as u16), ib % cfg.vcpus_per_vm);
                if a.vm() != b.vm() {
                    sim.swap_vcpus(a, b).unwrap();
                }
                sim.run(&mut wl, 300);
            }
            sim.run_checker_sweep();
            prop_assert_eq!(
                sim.checker().unwrap().total_violations(),
                0,
                "checker violations under {:?}/{:?}: {:#?}",
                policy, content, sim.checker().unwrap().violations()
            );

            // Token conservation everywhere the workload can have touched.
            for block in 0..(wl.allocated_pages() * 64) {
                prop_assert!(
                    sim.check_invariant(BlockAddr::new(block)),
                    "token invariant broken at block {block} under {policy}/{content}"
                );
            }
            // Every access was either a hit or a miss; counters are consistent.
            let s = sim.stats();
            prop_assert_eq!(s.l1_hits + s.l2_hits + s.l2_misses, s.accesses);
            prop_assert_eq!(s.misses_guest + s.misses_dom0 + s.misses_hyp, s.l2_misses);
            prop_assert_eq!(
                s.misses_private + s.misses_rw_shared + s.misses_ro_shared,
                s.l2_misses
            );
            // vCPU maps always cover the cores the VMs currently run on.
            for vm in 0..cfg.n_vms {
                let id = VmId::new(vm as u16);
                let running = sim.hypervisor().cores_of_vm(id);
                prop_assert_eq!(
                    sim.vcpu_map(id).mask() & running,
                    running,
                    "map must contain all cores the VM runs on"
                );
            }
        }

        #[test]
        fn filtered_snoops_never_exceed_broadcast(
            app_idx in 0usize..10,
            seed in 0u64..100,
        ) {
            let cfg = SystemConfig::small_test();
            let app = workloads::simulation_apps()[app_idx];
            let mk = |policy| {
                let mut sim = Simulator::new(cfg, policy, ContentPolicy::Broadcast);
                let mut wl = Workload::homogeneous(
                    app,
                    cfg.n_vms,
                    WorkloadConfig {
                        vcpus_per_vm: cfg.vcpus_per_vm,
                        seed,
                        ..Default::default()
                    },
                );
                sim.run(&mut wl, 1_500);
                (sim.stats().snoops, sim.stats().l2_misses)
            };
            let (sb, mb) = mk(FilterPolicy::TokenBroadcast);
            let (sv, mv) = mk(FilterPolicy::VsnoopBase);
            prop_assert_eq!(mb, mv, "identical traces must miss identically");
            prop_assert!(sv <= sb, "filtering must never increase snoops");
        }

        /// Random fault plans never produce invariant violations, and a
        /// garbage-corrupting plan always keeps results well-formed.
        #[test]
        fn random_fault_plans_preserve_invariants(
            seed in 0u64..500,
            drop_p in 0.0f64..0.15,
            delay_p in 0.0f64..0.2,
            corrupt_p in 0.0f64..0.05,
            bounce_p in 0.0f64..0.03,
            sync_delay in 0u64..400,
        ) {
            let cfg = SystemConfig::small_test();
            let mut sim = Simulator::new(cfg, FilterPolicy::Counter, ContentPolicy::Broadcast);
            sim.set_fault_plan(FaultPlan {
                seed,
                drop_p,
                delay_p,
                max_delay_cycles: 25,
                corrupt_map_p: corrupt_p,
                map_sync_delay_cycles: sync_delay,
                spurious_bounce_p: bounce_p,
                audit_period_cycles: 1_500,
            });
            sim.enable_checker(Ckr { sweep_every: 1_000, ..Default::default() });
            let mut wl = super::storm_workload(&cfg, seed);
            sim.run_with_migration(&mut wl, 2_500, cfg.cycles_per_access * 25, super::picker(cfg));
            sim.run_checker_sweep();
            let ch = sim.checker().unwrap();
            prop_assert_eq!(ch.total_violations(), 0, "violations: {:#?}", ch.violations());
            let s = sim.stats();
            prop_assert_eq!(s.l1_hits + s.l2_hits + s.l2_misses, s.accesses);
        }
    }
}

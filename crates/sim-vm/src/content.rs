//! Content-based page sharing (Section VI).
//!
//! The hypervisor hashes page contents, periodically scans for identical
//! pages across VMs, and maps them to a single read-only host page. Any
//! write triggers an exception and a copy-on-write: a fresh private page is
//! allocated for the writer. The paper evaluates an *ideal* detector
//! ("sharing detection in the experiment is more aggressive than what
//! commercial hypervisors can do"), which is what [`ContentSharer::scan`]
//! implements: every group of same-content pages is merged on each scan.

use std::collections::HashMap;

use crate::ids::VmId;
use crate::memory::MemoryMap;
use crate::page_table::{SharingDirectory, SharingType};

/// Opaque content fingerprint of a page.
///
/// Real hypervisors hash the 4 KB of page data; synthetic workloads simply
/// assign equal fingerprints to pages meant to be identical (e.g. the same
/// guest-kernel text page in every VM).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ContentHash(pub u64);

/// Result of one dedup scan.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ScanStats {
    /// Number of content groups that are shared after the scan.
    pub shared_groups: usize,
    /// Pages now redirected to a canonical copy (excluding canonicals).
    pub pages_deduplicated: usize,
}

/// The hypervisor's content-based page sharing machinery.
///
/// # Examples
///
/// ```
/// use sim_vm::{ContentSharer, ContentHash, SharingDirectory, SharingType, MemoryMap, VmId};
///
/// let mut mem = MemoryMap::new();
/// let a = mem.alloc_page();
/// let b = mem.alloc_page();
/// let mut dir = SharingDirectory::new();
/// dir.register(a, SharingType::VmPrivate, Some(VmId::new(0)));
/// dir.register(b, SharingType::VmPrivate, Some(VmId::new(1)));
///
/// let mut cs = ContentSharer::new();
/// cs.set_content(a, VmId::new(0), ContentHash(42));
/// cs.set_content(b, VmId::new(1), ContentHash(42));
/// let stats = cs.scan(&mut dir);
/// assert_eq!(stats.shared_groups, 1);
/// // Both guest pages now resolve to the same read-only host page.
/// assert_eq!(cs.resolve(a), cs.resolve(b));
/// assert_eq!(dir.sharing(cs.resolve(a)), SharingType::RoShared);
/// ```
#[derive(Clone, Debug, Default)]
pub struct ContentSharer {
    /// Registered content fingerprints: page -> (owner VM, hash).
    content: HashMap<u64, (VmId, ContentHash)>,
    /// Post-dedup redirection: original page -> canonical page.
    remap: HashMap<u64, u64>,
    /// Canonical page of each currently shared content group, with the
    /// pages folded into it.
    groups: HashMap<ContentHash, Group>,
    /// Copy-on-write events performed so far.
    cow_events: u64,
}

#[derive(Clone, Debug)]
struct Group {
    canonical: u64,
    members: Vec<(u64, VmId)>,
}

impl ContentSharer {
    /// Creates an empty sharer.
    pub fn new() -> Self {
        ContentSharer::default()
    }

    /// Records the content fingerprint of `page`, owned by `vm`.
    ///
    /// Pages with equal fingerprints registered by *different* VMs become
    /// candidates for sharing at the next [`scan`](Self::scan).
    pub fn set_content(&mut self, page: u64, vm: VmId, hash: ContentHash) {
        self.content.insert(page, (vm, hash));
    }

    /// Performs an ideal dedup scan: every set of same-content pages spanning
    /// at least two VMs is merged onto one canonical host page, which is
    /// marked [`SharingType::RoShared`] in the directory.
    pub fn scan(&mut self, dir: &mut SharingDirectory) -> ScanStats {
        let mut by_hash: HashMap<ContentHash, Vec<(u64, VmId)>> = HashMap::new();
        for (&page, &(vm, hash)) in &self.content {
            // Pages already folded into a group stay folded.
            if self.remap.contains_key(&page) {
                continue;
            }
            by_hash.entry(hash).or_default().push((page, vm));
        }
        for (hash, mut pages) in by_hash {
            pages.sort_unstable();
            let distinct_vms = {
                let mut vms: Vec<VmId> = pages.iter().map(|&(_, vm)| vm).collect();
                vms.sort_unstable();
                vms.dedup();
                vms.len()
            };
            if distinct_vms < 2 && !self.groups.contains_key(&hash) {
                continue;
            }
            let group = self.groups.entry(hash).or_insert_with(|| Group {
                canonical: pages[0].0,
                members: Vec::new(),
            });
            for (page, vm) in pages {
                if page == group.canonical {
                    if !group.members.iter().any(|&(p, _)| p == page) {
                        group.members.push((page, vm));
                    }
                    continue;
                }
                self.remap.insert(page, group.canonical);
                if !group.members.iter().any(|&(p, _)| p == page) {
                    group.members.push((page, vm));
                }
            }
            dir.register(group.canonical, SharingType::RoShared, None);
        }
        ScanStats {
            shared_groups: self.groups.len(),
            pages_deduplicated: self.remap.len(),
        }
    }

    /// Resolves a guest-visible page to the host page actually backing it
    /// (the canonical copy if the page was deduplicated).
    pub fn resolve(&self, page: u64) -> u64 {
        self.remap.get(&page).copied().unwrap_or(page)
    }

    /// Returns `true` if `page` currently resolves to a shared canonical
    /// copy (including being the canonical itself while shared).
    pub fn is_shared(&self, page: u64) -> bool {
        let target = self.resolve(page);
        self.groups
            .values()
            .any(|g| g.canonical == target && g.members.len() > 1)
    }

    /// Handles a write by `vm` to (guest-visible) `page`.
    ///
    /// If the page resolves to a shared canonical copy, performs
    /// copy-on-write: allocates a fresh private host page for the writer,
    /// detaches the writer from the group, and returns `Some(new_page)`.
    /// When the group shrinks to a single member, the canonical page
    /// reverts to VM-private. Returns `None` if the page was not shared.
    pub fn copy_on_write(
        &mut self,
        page: u64,
        vm: VmId,
        mem: &mut MemoryMap,
        dir: &mut SharingDirectory,
    ) -> Option<u64> {
        let canonical = self.resolve(page);
        let hash = self
            .groups
            .iter()
            .find(|(_, g)| g.canonical == canonical)
            .map(|(&h, _)| h)?;
        let group = self.groups.get_mut(&hash)?;
        if group.members.len() < 2 {
            return None;
        }
        let new_page = mem.alloc_page();
        dir.register(new_page, SharingType::VmPrivate, Some(vm));
        group.members.retain(|&(p, _)| p != page);
        self.remap.remove(&page);
        self.remap.insert(page, new_page);
        self.cow_events += 1;
        if group.members.len() == 1 {
            let (last_page, last_vm) = group.members[0];
            let canonical = group.canonical;
            dir.register(canonical, SharingType::VmPrivate, Some(last_vm));
            self.groups.remove(&hash);
            debug_assert_eq!(self.resolve(last_page), canonical);
        }
        Some(new_page)
    }

    /// Returns the number of copy-on-write events so far.
    pub fn cow_events(&self) -> u64 {
        self.cow_events
    }

    /// Returns, for each VM pair `(a, b)` with `a < b`, the number of
    /// canonical pages currently shared between them. The friend-VM
    /// optimization (Section VI-B) picks, for each VM, the VM it shares the
    /// most content pages with.
    pub fn shared_page_counts(&self) -> HashMap<(VmId, VmId), usize> {
        let mut counts: HashMap<(VmId, VmId), usize> = HashMap::new();
        for group in self.groups.values() {
            if group.members.len() < 2 {
                continue;
            }
            let mut vms: Vec<VmId> = group.members.iter().map(|&(_, vm)| vm).collect();
            vms.sort_unstable();
            vms.dedup();
            for i in 0..vms.len() {
                for j in i + 1..vms.len() {
                    *counts.entry((vms[i], vms[j])).or_insert(0) += 1;
                }
            }
        }
        counts
    }

    /// For `vm`, returns the VM sharing the most content pages with it, if
    /// any sharing exists.
    pub fn friend_of(&self, vm: VmId) -> Option<VmId> {
        let counts = self.shared_page_counts();
        counts
            .iter()
            .filter_map(|(&(a, b), &n)| {
                if a == vm {
                    Some((b, n))
                } else if b == vm {
                    Some((a, n))
                } else {
                    None
                }
            })
            .max_by_key(|&(other, n)| (n, std::cmp::Reverse(other.index())))
            .map(|(other, _)| other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(
        n_vms: u16,
        pages_per_vm: u64,
    ) -> (MemoryMap, SharingDirectory, ContentSharer, Vec<Vec<u64>>) {
        let mut mem = MemoryMap::new();
        let mut dir = SharingDirectory::new();
        let cs = ContentSharer::new();
        let mut vm_pages = Vec::new();
        for vm in 0..n_vms {
            let r = mem.alloc_region(pages_per_vm);
            for p in r.iter() {
                dir.register(p, SharingType::VmPrivate, Some(VmId::new(vm)));
            }
            vm_pages.push(r.iter().collect());
        }
        (mem, dir, cs, vm_pages)
    }

    #[test]
    fn scan_merges_cross_vm_identical_pages() {
        let (_mem, mut dir, mut cs, pages) = setup(4, 4);
        // Page 0 of every VM has the same content (e.g. kernel text).
        for (vm, ps) in pages.iter().enumerate() {
            cs.set_content(ps[0], VmId::new(vm as u16), ContentHash(7));
        }
        let stats = cs.scan(&mut dir);
        assert_eq!(stats.shared_groups, 1);
        assert_eq!(stats.pages_deduplicated, 3);
        let canon = cs.resolve(pages[0][0]);
        for ps in &pages {
            assert_eq!(cs.resolve(ps[0]), canon);
        }
        assert_eq!(dir.sharing(canon), SharingType::RoShared);
        assert!(cs.is_shared(pages[3][0]));
    }

    #[test]
    fn same_vm_duplicates_alone_do_not_share() {
        let (_mem, mut dir, mut cs, pages) = setup(2, 4);
        cs.set_content(pages[0][0], VmId::new(0), ContentHash(9));
        cs.set_content(pages[0][1], VmId::new(0), ContentHash(9));
        let stats = cs.scan(&mut dir);
        assert_eq!(stats.shared_groups, 0);
        assert!(!cs.is_shared(pages[0][0]));
    }

    #[test]
    fn copy_on_write_detaches_writer() {
        let (mut mem, mut dir, mut cs, pages) = setup(3, 2);
        for (vm, ps) in pages.iter().enumerate() {
            cs.set_content(ps[0], VmId::new(vm as u16), ContentHash(1));
        }
        cs.scan(&mut dir);
        let canon = cs.resolve(pages[1][0]);
        let new_page = cs
            .copy_on_write(pages[1][0], VmId::new(1), &mut mem, &mut dir)
            .expect("page was shared");
        assert_ne!(new_page, canon);
        assert_eq!(cs.resolve(pages[1][0]), new_page);
        assert_eq!(dir.sharing(new_page), SharingType::VmPrivate);
        assert_eq!(dir.owner(new_page), Some(VmId::new(1)));
        // The other two VMs still share.
        assert!(cs.is_shared(pages[0][0]));
        assert_eq!(cs.cow_events(), 1);
    }

    #[test]
    fn cow_last_pair_reverts_canonical_to_private() {
        let (mut mem, mut dir, mut cs, pages) = setup(2, 1);
        cs.set_content(pages[0][0], VmId::new(0), ContentHash(5));
        cs.set_content(pages[1][0], VmId::new(1), ContentHash(5));
        cs.scan(&mut dir);
        let canon = cs.resolve(pages[0][0]);
        cs.copy_on_write(pages[1][0], VmId::new(1), &mut mem, &mut dir)
            .expect("shared");
        // Only VM0 remains: the canonical page is private again.
        assert_eq!(dir.sharing(canon), SharingType::VmPrivate);
        assert_eq!(dir.owner(canon), Some(VmId::new(0)));
        assert!(!cs.is_shared(pages[0][0]));
        // A second write on the now-private page is not a CoW.
        assert_eq!(
            cs.copy_on_write(pages[0][0], VmId::new(0), &mut mem, &mut dir),
            None
        );
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // `i` indexes two page lists at once
    fn friend_vm_is_the_biggest_sharer() {
        let (_mem, mut dir, mut cs, pages) = setup(3, 8);
        // VM0 and VM1 share 3 pages; VM0 and VM2 share 1 page.
        for i in 0..3 {
            cs.set_content(pages[0][i], VmId::new(0), ContentHash(100 + i as u64));
            cs.set_content(pages[1][i], VmId::new(1), ContentHash(100 + i as u64));
        }
        cs.set_content(pages[0][5], VmId::new(0), ContentHash(999));
        cs.set_content(pages[2][5], VmId::new(2), ContentHash(999));
        cs.scan(&mut dir);
        assert_eq!(cs.friend_of(VmId::new(0)), Some(VmId::new(1)));
        assert_eq!(cs.friend_of(VmId::new(1)), Some(VmId::new(0)));
        assert_eq!(cs.friend_of(VmId::new(2)), Some(VmId::new(0)));
        let counts = cs.shared_page_counts();
        assert_eq!(counts[&(VmId::new(0), VmId::new(1))], 3);
        assert_eq!(counts[&(VmId::new(0), VmId::new(2))], 1);
    }

    #[test]
    fn rescan_after_cow_does_not_refold_rewritten_page() {
        // After CoW the writer's page has *new* content; a rescan must not
        // merge it back unless contents match again.
        let (mut mem, mut dir, mut cs, pages) = setup(2, 1);
        cs.set_content(pages[0][0], VmId::new(0), ContentHash(5));
        cs.set_content(pages[1][0], VmId::new(1), ContentHash(5));
        cs.scan(&mut dir);
        let fresh = cs
            .copy_on_write(pages[1][0], VmId::new(1), &mut mem, &mut dir)
            .unwrap();
        // Writer's new content differs now.
        cs.set_content(fresh, VmId::new(1), ContentHash(6));
        let stats = cs.scan(&mut dir);
        assert_eq!(stats.shared_groups, 0);
        assert_eq!(cs.resolve(pages[1][0]), fresh);
    }
}

//! The crash-safe write-ahead submission log.
//!
//! The durability contract (`SERVICE.md` "Durability & recovery"):
//! **no accepted job is ever lost, and no job's side effects are ever
//! duplicated**, even across `kill -9`. The mechanism is a JSONL
//! append-only log next to the journal:
//!
//! - an [`accepted`](WalRecord::Accepted) record — enough of the
//!   original submit to rebuild the job (tenant, job name, params,
//!   deadline, idempotency key, accounted bytes) — is appended and
//!   **fsynced before** the `accepted` response line is written to the
//!   client. A client that has seen `accepted` can therefore rely on
//!   the job surviving any crash;
//! - a [`done`](WalRecord::Done) record is appended and fsynced before
//!   the `done` response, so a client that has seen a terminal outcome
//!   can rely on the job *not* re-running after a restart (re-running
//!   a completed job is the "duplicated side effects" failure mode);
//! - a [`recovered`](WalRecord::Recovered) marker is appended for each
//!   job a restart re-enqueued, so the log itself narrates the crash.
//!
//! [`Wal::replay`] folds a log into a [`WalState`]: the non-terminal
//! jobs to re-enqueue (in original admission order), the
//! idempotency-key map for dedup of client resubmissions, and the
//! highest job id ever issued. [`Wal::compact`] rewrites the log at
//! startup down to that state (pending jobs plus a bounded tail of
//! keyed completions), via write-temp + fsync + rename, so the log
//! does not grow without bound across restarts.
//!
//! Writes use **group commit**: concurrent appenders each append their
//! line under the lock, then one of them issues the `fdatasync` that
//! covers everyone appended so far while the rest wait on a condvar.
//! Under load the fsync cost is amortized over every in-flight
//! request, which is what keeps the `service` perf bin inside its
//! `BENCH_throughput.json` gate with the WAL on.
//!
//! Like every JSONL artifact in the repo, a torn trailing line (the
//! process died mid-append) is repaired on reopen and skipped on load.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Condvar, Mutex};

use crate::runner::json::Value;
use crate::runner::JobError;

/// One write-ahead log record.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// A submit passed admission. Written (and fsynced) before the
    /// client sees `accepted`; carries everything needed to rebuild
    /// and re-enqueue the job after a crash.
    Accepted {
        /// Server-assigned job id (also the journal index).
        job_id: u64,
        /// Tenant the job is accounted to.
        tenant: String,
        /// Registry name of the job.
        job: String,
        /// Submit params, verbatim (the factory rebuilds from these).
        params: Value,
        /// Requested deadline, if the submit carried one.
        deadline_ms: Option<u64>,
        /// Client idempotency key, if the submit carried one.
        idem_key: Option<String>,
        /// Request-payload bytes accounted against the tenant quota.
        bytes: u64,
    },
    /// A job reached a terminal outcome. Written (and fsynced) before
    /// the client sees `done`.
    Done {
        /// The job id of the matching `Accepted` record.
        job_id: u64,
        /// The terminal outcome, in journal-entry encoding.
        outcome: Result<String, JobError>,
    },
    /// A restart re-enqueued this non-terminal job.
    Recovered {
        /// The job id of the matching `Accepted` record.
        job_id: u64,
    },
}

impl WalRecord {
    /// Serializes to one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        match self {
            WalRecord::Accepted {
                job_id,
                tenant,
                job,
                params,
                deadline_ms,
                idem_key,
                bytes,
            } => {
                let mut pairs = vec![
                    ("rec", Value::Str("accepted".into())),
                    ("job_id", Value::UInt(*job_id)),
                    ("tenant", Value::Str(tenant.clone())),
                    ("job", Value::Str(job.clone())),
                    ("params", params.clone()),
                ];
                if let Some(ms) = deadline_ms {
                    pairs.push(("deadline_ms", Value::UInt(*ms)));
                }
                if let Some(k) = idem_key {
                    pairs.push(("idem_key", Value::Str(k.clone())));
                }
                pairs.push(("bytes", Value::UInt(*bytes)));
                Value::obj(pairs).to_json()
            }
            WalRecord::Done { job_id, outcome } => {
                let mut pairs = vec![
                    ("rec", Value::Str("done".into())),
                    ("job_id", Value::UInt(*job_id)),
                ];
                match outcome {
                    Ok(output) => {
                        pairs.push(("status", Value::Str("ok".into())));
                        pairs.push(("output", Value::Str(output.clone())));
                    }
                    Err(e) => {
                        pairs.push(("status", Value::Str("failed".into())));
                        pairs.push(("error_kind", Value::Str(e.kind().into())));
                        pairs.push(("error", Value::Str(e.to_string())));
                        if let JobError::TimedOut { limit_ms } = e {
                            pairs.push(("limit_ms", Value::UInt(*limit_ms)));
                        }
                    }
                }
                Value::obj(pairs).to_json()
            }
            WalRecord::Recovered { job_id } => Value::obj(vec![
                ("rec", Value::Str("recovered".into())),
                ("job_id", Value::UInt(*job_id)),
            ])
            .to_json(),
        }
    }

    /// Parses one log line; `None` for torn or foreign lines (the
    /// loader skips them, exactly like the journal loader).
    pub fn from_json_line(line: &str) -> Option<WalRecord> {
        let v = Value::parse(line).ok()?;
        match v.get("rec")?.as_str()? {
            "accepted" => Some(WalRecord::Accepted {
                job_id: v.get("job_id")?.as_u64()?,
                tenant: v.get("tenant")?.as_str()?.to_string(),
                job: v.get("job")?.as_str()?.to_string(),
                params: v.get("params").cloned().unwrap_or(Value::Null),
                deadline_ms: v.get("deadline_ms").and_then(Value::as_u64),
                idem_key: v
                    .get("idem_key")
                    .and_then(Value::as_str)
                    .map(str::to_string),
                bytes: v.get("bytes").and_then(Value::as_u64).unwrap_or(0),
            }),
            "done" => {
                let outcome = match v.get("status")?.as_str()? {
                    "ok" => Ok(v.get("output")?.as_str()?.to_string()),
                    "failed" => {
                        let message = v.get("error")?.as_str()?.to_string();
                        Err(match v.get("error_kind")?.as_str()? {
                            "timeout" => JobError::TimedOut {
                                limit_ms: v.get("limit_ms")?.as_u64()?,
                            },
                            "panic" => JobError::Panicked {
                                message: message
                                    .strip_prefix("panicked: ")
                                    .unwrap_or(&message)
                                    .to_string(),
                            },
                            "cancelled" => JobError::Cancelled {
                                reason: message
                                    .strip_prefix("cancelled: ")
                                    .unwrap_or(&message)
                                    .to_string(),
                            },
                            _ => JobError::Failed {
                                message: message
                                    .strip_prefix("failed: ")
                                    .unwrap_or(&message)
                                    .to_string(),
                            },
                        })
                    }
                    _ => return None,
                };
                Some(WalRecord::Done {
                    job_id: v.get("job_id")?.as_u64()?,
                    outcome,
                })
            }
            "recovered" => Some(WalRecord::Recovered {
                job_id: v.get("job_id")?.as_u64()?,
            }),
            _ => None,
        }
    }
}

/// One job the replay found accepted but not terminal: what a restart
/// must re-enqueue.
#[derive(Clone, Debug, PartialEq)]
pub struct PendingRecovery {
    /// The original server-assigned job id (reused after recovery so
    /// WAL, journal and client-side idempotency all keep lining up).
    pub job_id: u64,
    /// Original tenant (quota accounting is restored under it).
    pub tenant: String,
    /// Registry name of the job.
    pub job: String,
    /// Original submit params.
    pub params: Value,
    /// Original requested deadline.
    pub deadline_ms: Option<u64>,
    /// Original idempotency key.
    pub idem_key: Option<String>,
    /// Original accounted byte size.
    pub bytes: u64,
}

/// One completed job retained for idempotency dedup: a resubmission
/// with the same key is answered from this instead of re-running.
#[derive(Clone, Debug, PartialEq)]
pub struct CompletedRecord {
    /// The original job id (echoed in the replayed `accepted`/`done`).
    pub job_id: u64,
    /// Registry name of the job (echoed in the replayed `done`).
    pub job: String,
    /// The original terminal outcome, returned verbatim.
    pub outcome: Result<String, JobError>,
}

/// What a log folds down to: the recovery work-list plus the dedup map.
#[derive(Clone, Debug, Default)]
pub struct WalState {
    /// Accepted-but-not-terminal jobs, in original admission order.
    pub pending: Vec<PendingRecovery>,
    /// Keyed completions, in completion order (oldest first).
    pub completed: Vec<(String, CompletedRecord)>,
    /// Highest job id seen; the server resumes numbering above it.
    pub max_job_id: u64,
}

/// The open write-ahead log: a shared appender with group-commit
/// fsync. Cloning is not supported; the server holds it in an `Arc`.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    inner: Mutex<WalInner>,
    synced: Condvar,
    /// Whether appends fsync at all (`false` turns the WAL into a
    /// flush-only log for benchmarking the fsync cost itself).
    sync: bool,
}

#[derive(Debug)]
struct WalInner {
    file: File,
    /// Logical sequence number of the last line written to the file.
    written: u64,
    /// Highest LSN known to be on stable storage.
    synced: u64,
    /// Whether some thread is currently inside `fdatasync`.
    syncing: bool,
}

impl Wal {
    /// Opens (or creates) the log for appending, repairing a torn
    /// trailing line first. `sync` enables the fsync-per-append
    /// durability contract (the default everywhere but benchmarks).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn open(path: &Path, sync: bool) -> std::io::Result<Wal> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        repair_tail(path)?;
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Wal {
            path: path.to_path_buf(),
            inner: Mutex::new(WalInner {
                file,
                written: 0,
                synced: 0,
                syncing: false,
            }),
            synced: Condvar::new(),
            sync,
        })
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and returns once it is durable (group-commit
    /// fsync). Concurrent callers share one `fdatasync`: each writes
    /// its line under the lock, then either becomes the syncer for
    /// every line written so far or waits for a syncer that covers it.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (from the write, or from the sync
    /// that covered this record).
    pub fn append(&self, record: &WalRecord) -> std::io::Result<()> {
        let mut line = record.to_json_line();
        line.push('\n');
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.file.write_all(line.as_bytes())?;
        inner.written += 1;
        let my_lsn = inner.written;
        if !self.sync {
            return Ok(());
        }
        loop {
            if inner.synced >= my_lsn {
                return Ok(());
            }
            if inner.syncing {
                inner = self.synced.wait(inner).unwrap_or_else(|e| e.into_inner());
                continue;
            }
            // Become the syncer for everything written so far.
            inner.syncing = true;
            let cover = inner.written;
            let file = inner.file.try_clone();
            drop(inner);
            let result = file.and_then(|f| f.sync_data());
            inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.syncing = false;
            if result.is_ok() && inner.synced < cover {
                inner.synced = cover;
            }
            self.synced.notify_all();
            result?;
        }
    }

    /// Loads every parseable record. Torn or foreign lines are
    /// skipped; a missing file is an empty log.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than `NotFound`.
    pub fn load(path: &Path) -> std::io::Result<Vec<WalRecord>> {
        let mut bytes = Vec::new();
        match File::open(path) {
            Ok(mut f) => f.read_to_end(&mut bytes)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut records = Vec::new();
        for raw in bytes.split(|&b| b == b'\n') {
            let line = String::from_utf8_lossy(raw);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(r) = WalRecord::from_json_line(line) {
                records.push(r);
            }
        }
        Ok(records)
    }

    /// Folds a log into its [`WalState`]: pending jobs (accepted, no
    /// terminal record) in admission order, keyed completions in
    /// completion order, and the job-id high-water mark.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than `NotFound`.
    pub fn replay(path: &Path) -> std::io::Result<WalState> {
        let records = Self::load(path)?;
        let mut accepted: Vec<PendingRecovery> = Vec::new();
        let mut by_id: HashMap<u64, usize> = HashMap::new();
        let mut done: HashMap<u64, Result<String, JobError>> = HashMap::new();
        let mut done_order: Vec<u64> = Vec::new();
        let mut max_job_id = 0;
        for record in records {
            match record {
                WalRecord::Accepted {
                    job_id,
                    tenant,
                    job,
                    params,
                    deadline_ms,
                    idem_key,
                    bytes,
                } => {
                    max_job_id = max_job_id.max(job_id);
                    by_id.insert(job_id, accepted.len());
                    accepted.push(PendingRecovery {
                        job_id,
                        tenant,
                        job,
                        params,
                        deadline_ms,
                        idem_key,
                        bytes,
                    });
                }
                WalRecord::Done { job_id, outcome } => {
                    max_job_id = max_job_id.max(job_id);
                    if done.insert(job_id, outcome).is_none() {
                        done_order.push(job_id);
                    }
                }
                WalRecord::Recovered { job_id } => {
                    max_job_id = max_job_id.max(job_id);
                }
            }
        }
        let completed = done_order
            .iter()
            .filter_map(|job_id| {
                let idx = by_id.get(job_id)?;
                let rec = &accepted[*idx];
                let key = rec.idem_key.clone()?;
                Some((
                    key,
                    CompletedRecord {
                        job_id: *job_id,
                        job: rec.job.clone(),
                        outcome: done.get(job_id).cloned()?,
                    },
                ))
            })
            .collect();
        let pending = accepted
            .into_iter()
            .filter(|r| !done.contains_key(&r.job_id))
            .collect();
        Ok(WalState {
            pending,
            completed,
            max_job_id,
        })
    }

    /// Rewrites the log down to `state`, keeping the pending jobs plus
    /// at most `keep_completed` of the most recent keyed completions
    /// (older dedup entries age out — the client retry window is
    /// minutes, not restarts-ago). Atomic: write temp, fsync, rename
    /// over, fsync the directory.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn compact(path: &Path, state: &WalState, keep_completed: usize) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut out = String::new();
        let skip = state.completed.len().saturating_sub(keep_completed);
        for (key, rec) in state.completed.iter().skip(skip) {
            out.push_str(
                &WalRecord::Accepted {
                    job_id: rec.job_id,
                    tenant: String::new(),
                    job: rec.job.clone(),
                    params: Value::Null,
                    deadline_ms: None,
                    idem_key: Some(key.clone()),
                    bytes: 0,
                }
                .to_json_line(),
            );
            out.push('\n');
            out.push_str(
                &WalRecord::Done {
                    job_id: rec.job_id,
                    outcome: rec.outcome.clone(),
                }
                .to_json_line(),
            );
            out.push('\n');
        }
        for p in &state.pending {
            out.push_str(
                &WalRecord::Accepted {
                    job_id: p.job_id,
                    tenant: p.tenant.clone(),
                    job: p.job.clone(),
                    params: p.params.clone(),
                    deadline_ms: p.deadline_ms,
                    idem_key: p.idem_key.clone(),
                    bytes: p.bytes,
                }
                .to_json_line(),
            );
            out.push('\n');
        }
        let tmp = path.with_extension("jsonl.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(out.as_bytes())?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, path)?;
        if let Some(parent) = path.parent() {
            // Make the rename itself durable. Directory fsync can be
            // refused on some filesystems; the rename is still atomic,
            // so a failure here only narrows (never breaks) the
            // durability window.
            if let Ok(dir) = File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    }
}

/// Truncates a torn trailing line so the next append starts clean
/// (identical contract to the journal's repair-on-reopen).
fn repair_tail(path: &Path) -> std::io::Result<()> {
    let mut f = match OpenOptions::new().read(true).write(true).open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    let mut bytes = Vec::new();
    f.read_to_end(&mut bytes)?;
    if bytes.last().is_some_and(|&b| b != b'\n') {
        let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
        f.set_len(keep as u64)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn scratch(test: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vsnoop-wal-{}-{test}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    fn accepted(job_id: u64, idem: Option<&str>) -> WalRecord {
        WalRecord::Accepted {
            job_id,
            tenant: "acme".into(),
            job: "fig2".into(),
            params: Value::obj([("warmup", Value::UInt(5))]),
            deadline_ms: Some(1000),
            idem_key: idem.map(str::to_string),
            bytes: 120,
        }
    }

    #[test]
    fn records_round_trip() {
        for r in [
            accepted(1, Some("k1")),
            accepted(2, None),
            WalRecord::Done {
                job_id: 1,
                outcome: Ok("output\n".into()),
            },
            WalRecord::Done {
                job_id: 2,
                outcome: Err(JobError::TimedOut { limit_ms: 500 }),
            },
            WalRecord::Done {
                job_id: 3,
                outcome: Err(JobError::Cancelled {
                    reason: "drain".into(),
                }),
            },
            WalRecord::Recovered { job_id: 7 },
        ] {
            let line = r.to_json_line();
            assert!(!line.contains('\n'), "one line per record: {line}");
            assert_eq!(WalRecord::from_json_line(&line).expect("parses"), r);
        }
    }

    #[test]
    fn replay_splits_pending_from_completed_and_tracks_ids() {
        let dir = scratch("replay");
        let path = dir.join("wal.jsonl");
        let wal = Wal::open(&path, true).unwrap();
        wal.append(&accepted(1, Some("k1"))).unwrap();
        wal.append(&accepted(2, None)).unwrap();
        wal.append(&accepted(3, Some("k3"))).unwrap();
        wal.append(&WalRecord::Done {
            job_id: 1,
            outcome: Ok("one\n".into()),
        })
        .unwrap();
        drop(wal);

        let state = Wal::replay(&path).unwrap();
        assert_eq!(state.max_job_id, 3);
        let pending: Vec<u64> = state.pending.iter().map(|p| p.job_id).collect();
        assert_eq!(pending, [2, 3], "admission order, terminals dropped");
        assert_eq!(state.pending[1].idem_key.as_deref(), Some("k3"));
        assert_eq!(state.completed.len(), 1, "only keyed completions kept");
        assert_eq!(state.completed[0].0, "k1");
        assert_eq!(state.completed[0].1.outcome.as_deref(), Ok("one\n"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_repaired_and_skipped() {
        let dir = scratch("torn");
        let path = dir.join("wal.jsonl");
        {
            let wal = Wal::open(&path, true).unwrap();
            wal.append(&accepted(1, None)).unwrap();
        }
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"rec\":\"accepted\",\"job_id\":2,\"ten")
                .unwrap();
        }
        // Load skips the torn line outright.
        assert_eq!(Wal::load(&path).unwrap().len(), 1);
        // Reopen repairs it so the next append is not glued to it.
        {
            let wal = Wal::open(&path, true).unwrap();
            wal.append(&accepted(3, None)).unwrap();
        }
        let state = Wal::replay(&path).unwrap();
        let ids: Vec<u64> = state.pending.iter().map(|p| p.job_id).collect();
        assert_eq!(ids, [1, 3], "torn record 2 is gone, 3 is intact");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_keeps_pending_and_bounded_completions() {
        let dir = scratch("compact");
        let path = dir.join("wal.jsonl");
        let wal = Wal::open(&path, true).unwrap();
        for i in 1..=4u64 {
            wal.append(&accepted(i, Some(&format!("k{i}")))).unwrap();
            wal.append(&WalRecord::Done {
                job_id: i,
                outcome: Ok(format!("out{i}\n")),
            })
            .unwrap();
        }
        wal.append(&accepted(5, None)).unwrap();
        drop(wal);

        let state = Wal::replay(&path).unwrap();
        Wal::compact(&path, &state, 2).unwrap();
        let state2 = Wal::replay(&path).unwrap();
        assert_eq!(state2.pending.len(), 1);
        assert_eq!(state2.pending[0].job_id, 5);
        let keys: Vec<&str> = state2.completed.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["k3", "k4"], "only the most recent completions");
        assert_eq!(state2.max_job_id, 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_appends_from_many_threads_all_land() {
        let dir = scratch("group");
        let path = dir.join("wal.jsonl");
        let wal = Arc::new(Wal::open(&path, true).unwrap());
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let wal = Arc::clone(&wal);
                s.spawn(move || {
                    for i in 0..16u64 {
                        wal.append(&accepted(t * 100 + i, None)).unwrap();
                    }
                });
            }
        });
        let records = Wal::load(&path).unwrap();
        assert_eq!(records.len(), 128, "every concurrent append landed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_records_are_skipped_not_fatal() {
        let dir = scratch("foreign");
        let path = dir.join("wal.jsonl");
        std::fs::write(
            &path,
            "{\"rec\":\"future_thing\",\"x\":1}\n{\"rec\":\"accepted\",\"job_id\":9,\"tenant\":\"t\",\"job\":\"spin\",\"params\":null,\"bytes\":3}\nnot json\n",
        )
        .unwrap();
        let state = Wal::replay(&path).unwrap();
        assert_eq!(state.pending.len(), 1);
        assert_eq!(state.pending[0].job_id, 9);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

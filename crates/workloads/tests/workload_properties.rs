//! Gated behind the `proptest` feature: run with `cargo test --features proptest`.
#![cfg(feature = "proptest")]

//! Property-based tests of the workload generators.

use proptest::prelude::*;
use sim_vm::{Agent, VcpuId, VmId};
use workloads::{AccessStream, Workload, WorkloadConfig, ZipfSampler, PROFILES};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn zipf_is_monotonically_biased_to_low_indices(
        n in 2usize..500,
        s in 0.3f64..1.5,
        seed in 0u64..100,
    ) {
        use rand::{rngs::SmallRng, SeedableRng};
        let z = ZipfSampler::new(n, s);
        let mut rng = SmallRng::seed_from_u64(seed);
        let draws = 4_000;
        let mut lo = 0u32;
        for _ in 0..draws {
            let x = z.sample(&mut rng);
            prop_assert!(x < n);
            if x < n / 2 {
                lo += 1;
            }
        }
        // With positive skew, the lower indices receive more than their
        // uniform share (with a little slack for sampling noise).
        let uniform_share = (n / 2) as f64 / n as f64;
        prop_assert!(
            lo as f64 / draws as f64 > uniform_share + 0.01,
            "lo={lo}, uniform share {uniform_share:.3}"
        );
    }

    #[test]
    fn any_profile_generates_valid_streams(
        app_idx in 0usize..PROFILES.len(),
        n_vms in 1usize..5,
        seed in 0u64..50,
        host in any::<bool>(),
        sharing in any::<bool>(),
    ) {
        let app = &PROFILES[app_idx];
        let mut wl = Workload::homogeneous(
            app,
            n_vms,
            WorkloadConfig {
                vcpus_per_vm: 4,
                seed,
                host_activity: host,
                content_sharing: sharing,
            },
        );
        let page_cap = wl.allocated_pages();
        for i in 0..2_000u32 {
            let vcpu = VcpuId::new(VmId::new((i as usize % n_vms) as u16), (i % 4) as u16);
            let a = wl.next_access(vcpu);
            prop_assert_eq!(a.addr % 64, 0, "block aligned");
            prop_assert!(a.addr / 4096 < page_cap, "address inside allocated memory");
            match a.agent {
                Agent::Guest(v) => prop_assert_eq!(v, vcpu, "guest access attributed to requester"),
                _ => prop_assert!(host, "host agents only appear when enabled"),
            }
        }
    }

    #[test]
    fn streams_with_same_seed_are_identical_across_instances(
        app_idx in 0usize..PROFILES.len(),
        seed in 0u64..50,
    ) {
        let app = &PROFILES[app_idx];
        let mk = || {
            let mut wl = Workload::homogeneous(app, 2, WorkloadConfig { seed, ..Default::default() });
            (0..500u16)
                .map(|i| {
                    let v = VcpuId::new(VmId::new(i % 2), i % 4);
                    let a = wl.next_access(v);
                    (a.addr, a.write)
                })
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(mk(), mk());
    }
}

//! Scenario tests of the simulator: configurations and policy corners the
//! experiment drivers don't exercise directly.

use sim_mem::BlockAddr;
use sim_vm::{VcpuId, VmId};
use vsnoop::{ContentPolicy, FilterPolicy, Simulator, SystemConfig};
use workloads::{profile, Workload, WorkloadConfig};

fn workload(app: &str, cfg: &SystemConfig, sharing: bool) -> Workload {
    Workload::homogeneous(
        profile(app).expect("registered"),
        cfg.n_vms,
        WorkloadConfig {
            vcpus_per_vm: cfg.vcpus_per_vm,
            content_sharing: sharing,
            ..Default::default()
        },
    )
}

#[test]
fn zero_mesh_config_is_a_typed_error_not_an_abort() {
    let cfg = SystemConfig {
        mesh_width: 0,
        mesh_height: 0,
        ..SystemConfig::small_test()
    };
    match Simulator::try_new(cfg, FilterPolicy::TokenBroadcast, ContentPolicy::Broadcast) {
        Err(vsnoop::SimError::InvalidConfig(e)) => {
            let msg = e.to_string();
            assert!(msg.contains("0x0"), "error must name the dimensions: {msg}");
        }
        other => panic!("expected InvalidConfig, got {other:?}"),
    }
}

#[test]
fn undercommitted_machine_leaves_cores_idle() {
    // 2 VMs x 4 vCPUs on 16 cores: half the machine is idle.
    let cfg = SystemConfig {
        n_vms: 2,
        ..SystemConfig::paper_default()
    };
    let mut sim = Simulator::new(cfg, FilterPolicy::VsnoopBase, ContentPolicy::Broadcast);
    let mut wl = workload("lu", &cfg, false);
    sim.run(&mut wl, 2_000);
    let s = sim.stats();
    // Only 8 of 16 core slots issue accesses per round.
    assert_eq!(s.accesses, s.rounds * 8);
    // Snoop domains are still 4 cores out of 16.
    assert_eq!(s.snoops, s.l2_misses * 4);
    assert!((0..16).all(|b| sim.check_invariant(BlockAddr::new(b))));
}

#[test]
fn sixteen_vms_of_one_vcpu_filter_maximally() {
    // The scaling limit the conclusion argues for: tiny VMs, huge savings.
    let cfg = SystemConfig {
        n_vms: 16,
        vcpus_per_vm: 1,
        ..SystemConfig::paper_default()
    };
    let mut sim = Simulator::new(cfg, FilterPolicy::VsnoopBase, ContentPolicy::Broadcast);
    let mut wl = workload("cholesky", &cfg, false);
    sim.run(&mut wl, 2_000);
    let s = sim.stats();
    // Single-core domains: the only lookup is the requester's own.
    assert_eq!(s.snoops, s.l2_misses);
    assert_eq!(s.retries, 0);
}

#[test]
fn memory_direct_routes_content_misses_to_memory() {
    let cfg = SystemConfig::paper_default();
    let mut sim = Simulator::new(cfg, FilterPolicy::VsnoopBase, ContentPolicy::MemoryDirect);
    let mut wl = workload("canneal", &cfg, true);
    sim.run(&mut wl, 8_000);
    let s = sim.stats();
    assert!(s.misses_ro_shared > 0, "content misses expected");
    // Content misses snoop zero caches, so total snoops fall below the
    // all-private count of 4 per transaction.
    assert!(s.snoops < s.l2_misses * 4);
    // Memory supplies a large share of the data.
    assert!(s.data_memory > 0);
}

#[test]
fn friend_vm_extends_the_domain_for_content_pages_only() {
    let cfg = SystemConfig::paper_default();
    let mut intra = Simulator::new(cfg, FilterPolicy::VsnoopBase, ContentPolicy::IntraVm);
    let mut wl_a = workload("blackscholes", &cfg, true);
    intra.run(&mut wl_a, 8_000);
    let mut friend = Simulator::new(cfg, FilterPolicy::VsnoopBase, ContentPolicy::FriendVm);
    let mut wl_b = workload("blackscholes", &cfg, true);
    friend.run(&mut wl_b, 8_000);
    // Friend-VM snoops strictly more than intra-VM (8-core unions vs 4)...
    assert!(friend.stats().snoops > intra.stats().snoops);
    // ...but still less than broadcasting content misses.
    let mut bc = Simulator::new(cfg, FilterPolicy::VsnoopBase, ContentPolicy::Broadcast);
    let mut wl_c = workload("blackscholes", &cfg, true);
    bc.run(&mut wl_c, 8_000);
    assert!(friend.stats().snoops < bc.stats().snoops);
}

#[test]
fn map_sync_messages_are_charged_for_relocations() {
    let cfg = SystemConfig::paper_default();
    let mut sim = Simulator::new(cfg, FilterPolicy::Counter, ContentPolicy::Broadcast);
    let mut wl = workload("ocean", &cfg, false);
    sim.run(&mut wl, 2_000);
    let before = sim.traffic().messages_of(sim_net::MessageKind::MapUpdate);
    sim.swap_vcpus(VcpuId::new(VmId::new(0), 1), VcpuId::new(VmId::new(2), 3))
        .unwrap();
    let after = sim.traffic().messages_of(sim_net::MessageKind::MapUpdate);
    assert!(
        after > before,
        "vCPU-map synchronization must put update messages on the network"
    );
    assert_eq!(sim.stats().map_adds, 2);
}

#[test]
fn counter_threshold_retries_recover_from_premature_removal() {
    // An absurdly aggressive threshold removes cores that still hold
    // tokens; correctness must be preserved via retries/broadcasts.
    let cfg = SystemConfig::paper_default();
    let mut sim = Simulator::new(
        cfg,
        FilterPolicy::CounterThreshold { threshold: 100_000 },
        ContentPolicy::Broadcast,
    );
    let mut wl = workload("radix", &cfg, false);
    sim.run(&mut wl, 1_000);
    // Shuffle a few vCPUs around; with the huge threshold every departure
    // instantly removes the old core even though its lines remain.
    for i in 0..4u16 {
        sim.swap_vcpus(
            VcpuId::new(VmId::new(0), i % 4),
            VcpuId::new(VmId::new(1 + i % 3), i % 4),
        )
        .unwrap();
        sim.run(&mut wl, 2_000);
    }
    let s = sim.stats();
    assert!(s.map_removes > 0, "aggressive threshold must remove cores");
    assert!(
        s.retries > 0 || s.broadcast_fallbacks > 0,
        "premature removals must surface as retries"
    );
    // Despite the chaos, every access completed and tokens are conserved.
    assert_eq!(s.l1_hits + s.l2_hits + s.l2_misses, s.accesses);
    for b in 0..20_000u64 {
        assert!(sim.check_invariant(BlockAddr::new(b)), "block {b}");
    }
}

#[test]
fn larger_meshes_validate_and_filter_proportionally() {
    // An 8x4 machine with 8 VMs: domains are 1/8 of the machine.
    let cfg = SystemConfig {
        mesh_width: 8,
        mesh_height: 4,
        n_vms: 8,
        ..SystemConfig::paper_default()
    };
    cfg.validate().expect("valid 32-core configuration");
    let mut sim = Simulator::new(cfg, FilterPolicy::VsnoopBase, ContentPolicy::Broadcast);
    let mut wl = workload("ferret", &cfg, false);
    sim.run(&mut wl, 1_500);
    let s = sim.stats();
    assert_eq!(s.snoops, s.l2_misses * 4, "4-core domains on 32 cores");
    // 4/32 = 12.5% of the baseline's 32 lookups.
    let norm = s.snoops as f64 / (s.l2_misses * 32) as f64;
    assert!((norm - 0.125).abs() < 1e-9);
}

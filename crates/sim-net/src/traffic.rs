//! Network traffic accounting.
//!
//! The paper's Table IV metric is the total amount of data moved through
//! the network: every message contributes `bytes x links-traversed`
//! ("byte-links"). Multicasts are modelled as one unicast per destination,
//! matching the repeated-unicast snooping of the TokenB baseline.

use crate::message::MessageKind;

/// Accumulated traffic statistics.
///
/// # Examples
///
/// ```
/// use sim_net::{TrafficStats, MessageKind};
///
/// let mut t = TrafficStats::default();
/// t.record(MessageKind::Request, 3);
/// t.record(MessageKind::Data, 2);
/// assert_eq!(t.byte_links(), 8 * 3 + 72 * 2);
/// assert_eq!(t.messages(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TrafficStats {
    byte_links: u64,
    per_kind_byte_links: [u64; MessageKind::ALL.len()],
    per_kind_messages: [u64; MessageKind::ALL.len()],
}

impl TrafficStats {
    /// Records one message of `kind` crossing `hops` links.
    ///
    /// Zero-hop (local) deliveries consume no link bandwidth and add no
    /// traffic, but are still counted as messages.
    pub fn record(&mut self, kind: MessageKind, hops: u32) {
        let contribution = u64::from(kind.bytes()) * u64::from(hops);
        self.byte_links += contribution;
        self.per_kind_byte_links[kind.index()] += contribution;
        self.per_kind_messages[kind.index()] += 1;
    }

    /// Total byte-links accumulated.
    pub fn byte_links(&self) -> u64 {
        self.byte_links
    }

    /// Total messages recorded.
    pub fn messages(&self) -> u64 {
        self.per_kind_messages.iter().sum()
    }

    /// Byte-links attributable to `kind`.
    pub fn byte_links_of(&self, kind: MessageKind) -> u64 {
        self.per_kind_byte_links[kind.index()]
    }

    /// Messages of `kind` recorded.
    pub fn messages_of(&self, kind: MessageKind) -> u64 {
        self.per_kind_messages[kind.index()]
    }

    /// Merges another statistics block into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        self.byte_links += other.byte_links;
        for i in 0..self.per_kind_byte_links.len() {
            self.per_kind_byte_links[i] += other.per_kind_byte_links[i];
            self.per_kind_messages[i] += other.per_kind_messages[i];
        }
    }

    /// Fractional reduction of this traffic relative to `baseline`
    /// (`1 - self/baseline`), or 0 when the baseline is empty.
    pub fn reduction_vs(&self, baseline: &TrafficStats) -> f64 {
        if baseline.byte_links == 0 {
            0.0
        } else {
            1.0 - self.byte_links as f64 / baseline.byte_links as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_kind_accounting() {
        let mut t = TrafficStats::default();
        t.record(MessageKind::Request, 2);
        t.record(MessageKind::Request, 4);
        t.record(MessageKind::Data, 1);
        assert_eq!(t.byte_links_of(MessageKind::Request), 8 * 6);
        assert_eq!(t.byte_links_of(MessageKind::Data), 72);
        assert_eq!(t.messages_of(MessageKind::Request), 2);
        assert_eq!(t.messages(), 3);
        assert_eq!(t.byte_links(), 48 + 72);
    }

    #[test]
    fn zero_hop_message_counted_but_free() {
        let mut t = TrafficStats::default();
        t.record(MessageKind::Data, 0);
        assert_eq!(t.byte_links(), 0);
        assert_eq!(t.messages(), 1);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = TrafficStats::default();
        a.record(MessageKind::Request, 1);
        let mut b = TrafficStats::default();
        b.record(MessageKind::Writeback, 2);
        b.record(MessageKind::Request, 3);
        a.merge(&b);
        assert_eq!(a.messages(), 3);
        assert_eq!(a.byte_links(), 8 + 144 + 24);
    }

    #[test]
    fn reduction_vs_baseline() {
        let mut base = TrafficStats::default();
        base.record(MessageKind::Data, 10); // 720
        let mut filt = TrafficStats::default();
        filt.record(MessageKind::Data, 5); // 360
        assert!((filt.reduction_vs(&base) - 0.5).abs() < 1e-12);
        // Empty baseline yields 0, not a division by zero.
        assert_eq!(filt.reduction_vs(&TrafficStats::default()), 0.0);
    }
}

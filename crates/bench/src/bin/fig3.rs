//! Fig. 3 — the effect of pinning VMs: undercommitted vs. overcommitted.

use vsnoop::experiments::fig3_table1;
use vsnoop_bench::{f1, heading, TextTable};

fn main() {
    heading(
        "Figure 3: normalized execution time, no-migration vs full-migration",
        "8 cores; (a) undercommitted: 2 VMs x 4 vCPUs; (b) overcommitted:\n\
         4 VMs x 4 vCPUs. 100% = the slower policy. Paper: pinning wins\n\
         undercommitted, full migration wins overcommitted.",
    );
    let rows = fig3_table1(7);
    let mut t = TextTable::new([
        "workload",
        "under no-mig %",
        "under full %",
        "over no-mig %",
        "over full %",
    ]);
    for r in &rows {
        let (up, uf) = r.under_normalized();
        let (op, of) = r.over_normalized();
        t.row([r.name.to_string(), f1(up), f1(uf), f1(op), f1(of)]);
    }
    t.maybe_dump_csv("fig3").expect("csv dump");
    println!("{t}");
}

//! Virtualization substrate for the *virtual snooping* reproduction.
//!
//! This crate models the parts of a virtualized system the paper's
//! mechanism depends on, entirely in simulation:
//!
//! * [`CoreId`] / [`VmId`] / [`VcpuId`] / [`Agent`] — the identifier
//!   vocabulary shared by every layer (caches tag lines with VM ids, the
//!   hypervisor schedules vCPUs onto cores).
//! * [`Hypervisor`] — the dynamic vCPU-to-core assignment and relocation
//!   log.
//! * [`MemoryMap`] / [`PageRange`] — host-physical page allocation, the
//!   basis of inter-VM memory isolation.
//! * [`SharingDirectory`] / [`SharingType`] / [`TypeTlb`] — the two
//!   sharing-type bits virtual snooping stores in page tables and TLBs.
//! * [`ContentSharer`] — VMware-ESX-style content-based page sharing with
//!   copy-on-write (Section VI of the paper).
//! * [`run_scheduler`] — a Xen-credit-scheduler model producing the
//!   pinning-vs-migration behaviours of Fig. 3 and Table I.
//!
//! # Examples
//!
//! ```
//! use sim_vm::{homogeneous_vms, Hypervisor, VmId};
//!
//! let vms = homogeneous_vms(4, 4, 1024);
//! let mut hv = Hypervisor::new(16, &vms);
//! hv.place_round_robin();
//! assert_eq!(hv.cores_of_vm(VmId::new(2)).count_ones(), 4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod content;
mod hypervisor;
mod ids;
mod memory;
mod page_table;
mod scheduler;
mod vm;

pub use content::{ContentHash, ContentSharer, ScanStats};
pub use hypervisor::{Hypervisor, RelocationEvent, UnplacedVcpu};
pub use ids::{Agent, CoreId, VcpuId, VmId};
pub use memory::{MemoryMap, PageRange};
pub use page_table::{SharingDirectory, SharingType, TlbStats, TypeTlb};
pub use scheduler::{
    run_scheduler, SchedOutcome, SchedPolicy, SchedulerConfig, VmWorkload, WorkloadBehavior,
};
pub use vm::{homogeneous_vms, VmSpec};

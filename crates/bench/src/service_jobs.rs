//! The service's job registry: maps `submit` requests onto the same
//! campaign jobs the `all` binary runs.
//!
//! Byte-identity contract: an artifact job served over the wire is
//! built by the exact same [`campaign_jobs`] call the offline campaign
//! uses, so its output text is byte-identical to the offline run at
//! the same scale — the verify smoke `cmp`s the two.
//!
//! Besides the fifteen paper artifacts, the registry accepts the
//! synthetic `spin` job (a short cancellable busy-wait) so load tests
//! can drive realistic request volumes without hours of simulation.

use std::sync::Arc;
use std::time::{Duration, Instant};

use vsnoop::experiments::RunScale;
use vsnoop::runner::json::Value;
use vsnoop::runner::Job;
use vsnoop::service::{JobFactory, Submit};

use crate::campaign::{campaign_jobs, CampaignOptions};
use crate::scale_from_env;

/// Builds the run scale for a submit: the environment's scale
/// (`VSNOOP_SCALE`) with any of `warmup`/`measure`/`scale_seed`
/// overridden by the request's params — the same three keys campaign
/// journals and crash reproducers record.
fn scale_from_submit(params: &Value) -> RunScale {
    let base = scale_from_env();
    RunScale {
        warmup_rounds: params
            .get("warmup")
            .and_then(Value::as_u64)
            .unwrap_or(base.warmup_rounds),
        measure_rounds: params
            .get("measure")
            .and_then(Value::as_u64)
            .unwrap_or(base.measure_rounds),
        seed: params
            .get("scale_seed")
            .and_then(Value::as_u64)
            .unwrap_or(base.seed),
    }
}

/// The synthetic load-test job: busy-waits `ms` milliseconds (param
/// `"ms"`, default 2) in cancellable slices, then returns a
/// deterministic one-line output.
fn spin_job(params: &Value) -> Job {
    let ms = params.get("ms").and_then(Value::as_u64).unwrap_or(2);
    Job::new(
        "spin",
        ms,
        Value::obj([("ms", Value::UInt(ms))]),
        move |ctx| {
            let t0 = Instant::now();
            while t0.elapsed() < Duration::from_millis(ms) {
                ctx.checkpoint();
                std::thread::sleep(Duration::from_micros(200));
            }
            Ok(format!("spin:{ms}\n"))
        },
    )
}

/// The synthetic misbehaving job: polls its token forever. Load tests
/// and smoke scripts use it to exercise deadlines and drain
/// cancellation on demand.
fn hang_job() -> Job {
    Job::new("hang", 0, Value::obj([]), move |ctx| loop {
        ctx.checkpoint();
        std::thread::sleep(Duration::from_millis(1));
    })
}

/// The service job factory over the campaign registry (plus the
/// synthetic `spin` and `hang` jobs). Unknown names produce the same
/// "unknown artifact" error message `all --only` prints.
pub fn registry_factory() -> JobFactory {
    Arc::new(|submit: &Submit| {
        match submit.job.as_str() {
            "spin" => return Ok(spin_job(&submit.params)),
            "hang" => return Ok(hang_job()),
            _ => {}
        }
        let scale = scale_from_submit(&submit.params);
        let opts = CampaignOptions {
            only: vec![submit.job.clone()],
            ..Default::default()
        };
        let jobs = campaign_jobs(scale, &opts)?;
        jobs.into_iter()
            .next()
            .ok_or_else(|| format!("artifact {} produced no job", submit.job))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn submit(job: &str, params: Value) -> Submit {
        Submit {
            tenant: "t".into(),
            job: job.into(),
            params,
            deadline_ms: None,
            tag: None,
            idem_key: None,
        }
    }

    #[test]
    fn artifacts_resolve_and_unknown_names_error() {
        let factory = registry_factory();
        let job = factory(&submit("fig2", Value::Null)).expect("fig2 is registered");
        assert_eq!(job.spec.name, "fig2");
        let err = factory(&submit("nope", Value::Null)).unwrap_err();
        assert!(err.contains("unknown artifact"), "{err}");
    }

    #[test]
    fn scale_overrides_apply() {
        let params = Value::obj([
            ("warmup", Value::UInt(7)),
            ("measure", Value::UInt(9)),
            ("scale_seed", Value::UInt(11)),
        ]);
        let scale = scale_from_submit(&params);
        assert_eq!(
            (scale.warmup_rounds, scale.measure_rounds, scale.seed),
            (7, 9, 11)
        );
    }

    #[test]
    fn spin_job_completes_quickly() {
        let factory = registry_factory();
        let job = factory(&submit("spin", Value::obj([("ms", Value::UInt(1))]))).unwrap();
        let ctx = vsnoop::runner::JobCtx {
            token: vsnoop::runner::CancelToken::new(),
            attempt: 1,
        };
        assert_eq!((job.run)(&ctx).unwrap(), "spin:1\n");
    }
}

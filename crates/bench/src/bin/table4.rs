//! Table IV — network traffic reduction with ideally pinned VMs.

use vsnoop_bench::{reports, scale_from_env};

fn main() {
    vsnoop_bench::init_obs();
    match reports::table4(scale_from_env()) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("table4: {e}");
            std::process::exit(1);
        }
    }
}

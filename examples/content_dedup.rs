//! Content-based page sharing and the Section VI routing optimizations.
//!
//! Four VMs run `blackscholes`, whose inputs are identical across
//! instances: an ideal dedup scan folds nearly half of all accesses onto
//! read-only shared pages. The example compares the four content-page
//! routing policies and shows the copy-on-write machinery breaking
//! sharing when a VM writes.
//!
//! ```text
//! cargo run --release --example content_dedup
//! ```

use virtual_snooping::prelude::*;
use virtual_snooping::sim_vm::{
    ContentHash, ContentSharer, MemoryMap, SharingDirectory, SharingType,
};

fn measure(policy: ContentPolicy) -> (f64, f64) {
    let cfg = SystemConfig::paper_default();
    let mut sim = Simulator::new(cfg, FilterPolicy::VsnoopBase, policy);
    let mut wl = Workload::homogeneous(
        profile("blackscholes").expect("registered workload"),
        cfg.n_vms,
        WorkloadConfig {
            vcpus_per_vm: cfg.vcpus_per_vm,
            content_sharing: true,
            ..Default::default()
        },
    );
    sim.run(&mut wl, 30_000);
    sim.reset_measurement();
    sim.run(&mut wl, 40_000);
    let s = sim.stats();
    let norm = 100.0 * s.snoops as f64 / (s.l2_misses.max(1) * 16) as f64;
    let mem_share = 100.0 * s.data_memory as f64
        / (s.data_memory + s.data_intra_vm + s.data_other_vm).max(1) as f64;
    (norm, mem_share)
}

fn main() {
    println!("Content-based sharing on blackscholes (46% of accesses are dedup'd)\n");
    println!("policy            snoops vs tokenB   data from memory");
    for policy in ContentPolicy::ALL {
        let (norm, mem) = measure(policy);
        println!("{policy:<18} {norm:>10.1}%       {mem:>10.1}%");
    }
    println!(
        "\nmemory-direct snoops least but forgoes cache-to-cache transfers;\n\
         friend-VM recovers most of them at a small snoop cost (Fig. 10 /\n\
         Table VI trade-off).\n"
    );

    // --- Copy-on-write in isolation ---------------------------------------
    println!("Copy-on-write demonstration:");
    let mut mem = MemoryMap::new();
    let mut dir = SharingDirectory::new();
    let mut cs = ContentSharer::new();
    let (a, b) = (mem.alloc_page(), mem.alloc_page());
    dir.register(a, SharingType::VmPrivate, Some(VmId::new(0)));
    dir.register(b, SharingType::VmPrivate, Some(VmId::new(1)));
    cs.set_content(a, VmId::new(0), ContentHash(0xFEED));
    cs.set_content(b, VmId::new(1), ContentHash(0xFEED));
    cs.scan(&mut dir);
    println!(
        "  after scan: page {a} and page {b} -> canonical {} ({:?})",
        cs.resolve(b),
        dir.sharing(cs.resolve(b)),
    );
    let fresh = cs
        .copy_on_write(b, VmId::new(1), &mut mem, &mut dir)
        .expect("page was shared");
    println!(
        "  VM1 writes: gets fresh private page {fresh} ({:?}); page {a} is {:?} again",
        dir.sharing(fresh),
        dir.sharing(a),
    );
}

//! Fig. 7 — total snoops under VM relocation every 5 / 2.5 (scaled) ms.

use vsnoop_bench::{reports, scale_from_env};

fn main() {
    vsnoop_bench::init_obs();
    match reports::fig7(scale_from_env()) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("fig7: {e}");
            std::process::exit(1);
        }
    }
}

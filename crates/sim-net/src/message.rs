//! Coherence message taxonomy and sizing.
//!
//! The network traffic the paper reports (Table IV) is "the total amount of
//! data transferred through the network, including both data and coherence
//! messages". We size messages the way GEMS does: control messages are
//! 8 bytes, data messages carry a 64-byte cache block plus an 8-byte
//! header.

/// The kinds of messages a token-coherence transaction puts on the network.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum MessageKind {
    /// A transient snoop request (GETS/GETX), 8-byte control message.
    Request,
    /// A token-carrying response without data (e.g. tokens surrendered on a
    /// GETX by a cache holding no valid data is still modelled as a token
    /// reply), 8-byte control message.
    TokenReply,
    /// A data response: 64-byte block + 8-byte header.
    Data,
    /// A write-back of a dirty block to memory: 64 + 8 bytes.
    Writeback,
    /// A persistent (starvation-avoidance) request, 8 bytes.
    Persistent,
    /// A vCPU-map update message from the hypervisor (Section IV-B),
    /// 8 bytes.
    MapUpdate,
}

impl MessageKind {
    /// All message kinds, for iteration in statistics.
    pub const ALL: [MessageKind; 6] = [
        MessageKind::Request,
        MessageKind::TokenReply,
        MessageKind::Data,
        MessageKind::Writeback,
        MessageKind::Persistent,
        MessageKind::MapUpdate,
    ];

    /// Payload size in bytes.
    pub const fn bytes(self) -> u32 {
        match self {
            MessageKind::Request
            | MessageKind::TokenReply
            | MessageKind::Persistent
            | MessageKind::MapUpdate => 8,
            MessageKind::Data | MessageKind::Writeback => 72,
        }
    }

    /// Number of flits on a link carrying `link_bytes` per flit.
    ///
    /// # Panics
    ///
    /// Panics if `link_bytes` is zero.
    pub fn flits(self, link_bytes: u32) -> u32 {
        assert!(link_bytes > 0, "link width must be positive");
        self.bytes().div_ceil(link_bytes)
    }

    /// Returns `true` for the kinds that carry a full cache block.
    pub const fn carries_data(self) -> bool {
        matches!(self, MessageKind::Data | MessageKind::Writeback)
    }

    /// Dense index for per-kind statistics arrays.
    pub const fn index(self) -> usize {
        match self {
            MessageKind::Request => 0,
            MessageKind::TokenReply => 1,
            MessageKind::Data => 2,
            MessageKind::Writeback => 3,
            MessageKind::Persistent => 4,
            MessageKind::MapUpdate => 5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_gems_convention() {
        assert_eq!(MessageKind::Request.bytes(), 8);
        assert_eq!(MessageKind::Data.bytes(), 72);
        assert_eq!(MessageKind::Writeback.bytes(), 72);
    }

    #[test]
    fn flit_counts_on_16_byte_links() {
        assert_eq!(MessageKind::Request.flits(16), 1);
        assert_eq!(MessageKind::Data.flits(16), 5); // ceil(72/16)
        assert_eq!(MessageKind::TokenReply.flits(16), 1);
    }

    #[test]
    fn data_classification() {
        assert!(MessageKind::Data.carries_data());
        assert!(MessageKind::Writeback.carries_data());
        assert!(!MessageKind::Request.carries_data());
        assert!(!MessageKind::MapUpdate.carries_data());
    }

    #[test]
    fn indices_are_dense_and_unique() {
        let mut seen = [false; MessageKind::ALL.len()];
        for k in MessageKind::ALL {
            assert!(!seen[k.index()], "duplicate index");
            seen[k.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_link_width_rejected() {
        let _ = MessageKind::Request.flits(0);
    }
}

//! Robustness soak: a migration storm with *every* fault class enabled,
//! driven for millions of access steps with the runtime invariant checker
//! on, followed by fault-free shape checks against the paper's headline
//! numbers. Both phases run as supervised campaign jobs — a panic or hang
//! in one phase is isolated, journaled, and leaves a crash reproducer
//! under `target/campaign/soak/` instead of taking down the soak.
//!
//! The run fails (non-zero exit) if
//!
//! * the checker records *any* invariant violation (token conservation,
//!   owner uniqueness, dirty-without-owner, tokenless lines, L1
//!   inclusion, residence counters, post-audit map validity/coverage),
//! * corrupted vCPU-map registers never tripped the degraded-broadcast
//!   fallback (the injection would not have been exercised), or
//! * the fault-free snoop-reduction shapes drift from the paper: pinned
//!   vsnoop-base ~25% of baseline snoops (Table IV's ~75% filtering) and
//!   the counter scheme ~45% under 0.1 ms migrations (Fig. 8).
//!
//! Environment knobs: `SOAK_ROUNDS` (storm rounds, default 80 000 — one
//! round is 16 access steps on the paper machine), `SOAK_SEED`,
//! `SOAK_PERIOD_MS` (migration period in scaled ms x100, i.e. `10` =
//! 0.1 ms), `SOAK_SHAPE_ROUNDS` (fault-free measurement rounds).
//!
//! With tracing on (`--trace-dir DIR` or `VSNOOP_TRACE=DIR`, see
//! OBSERVABILITY.md) the storm phase also exports per-epoch time-series
//! files, and `SOAK_FORCE_VIOLATION=1` switches to a short
//! self-test that deliberately corrupts one cache line, lets the
//! checker catch it, and exits non-zero — leaving a flight-recorder
//! dump under the trace directory for the verify script to assert on.

use std::process::ExitCode;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sim_vm::{VcpuId, VmId};
use vsnoop::runner::{json::Value, run_campaign, Job, Journal, RunnerConfig};
use vsnoop::{CheckerConfig, ContentPolicy, FaultPlan, FilterPolicy, Simulator, SystemConfig};
use vsnoop_bench::{f1, heading_string};
use workloads::{try_profile, Workload, WorkloadConfig};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn storm_workload(cfg: &SystemConfig, seed: u64) -> Result<Workload, String> {
    Ok(Workload::homogeneous(
        try_profile("ocean").map_err(|e| e.to_string())?,
        cfg.n_vms,
        WorkloadConfig {
            vcpus_per_vm: cfg.vcpus_per_vm,
            seed,
            ..Default::default()
        },
    ))
}

fn picker(cfg: SystemConfig, seed: u64) -> impl FnMut(u64) -> (VcpuId, VcpuId) {
    let mut rng = SmallRng::seed_from_u64(seed);
    move |_| {
        let a = rng.gen_range(0..cfg.n_vms) as u16;
        let mut b = rng.gen_range(0..cfg.n_vms - 1) as u16;
        if b >= a {
            b += 1;
        }
        (
            VcpuId::new(VmId::new(a), rng.gen_range(0..cfg.vcpus_per_vm)),
            VcpuId::new(VmId::new(b), rng.gen_range(0..cfg.vcpus_per_vm)),
        )
    }
}

fn norm_snoops(sim: &Simulator, cfg: &SystemConfig) -> f64 {
    let s = sim.stats();
    s.snoops as f64 / (s.l2_misses.max(1) * cfg.n_cores() as u64) as f64
}

/// Phase 1: the all-faults migration storm. Returns the phase report, or
/// the joined list of invariant/coverage failures.
fn storm(rounds: u64, seed: u64, period_cycles: u64) -> Result<String, String> {
    let cfg = SystemConfig::paper_default();
    let mut sim = Simulator::try_new(cfg, FilterPolicy::Counter, ContentPolicy::Broadcast)
        .map_err(|e| e.to_string())?;
    sim.set_fault_plan(FaultPlan::all(seed));
    sim.enable_checker(CheckerConfig::default());
    if vsnoop::obs::enabled() {
        sim.enable_epochs(env_u64("VSNOOP_EPOCH_EVERY", 64));
    }
    let mut wl = storm_workload(&cfg, seed ^ 0xD15EA5E)?;
    sim.run_with_migration(&mut wl, rounds, period_cycles, picker(cfg, seed ^ 0x51A9));
    sim.run_checker_sweep();
    if let Some(dir) = vsnoop::obs::trace_dir() {
        sim.flush_epochs();
        if let Some(ep) = sim.epochs() {
            match ep.write_files(&dir, "soak-storm") {
                Ok((jsonl, _trace)) => eprintln!(
                    "[soak] epoch export: {} epochs -> {}",
                    ep.epochs().len(),
                    jsonl.display()
                ),
                Err(e) => eprintln!("[soak] epoch export failed: {e}"),
            }
        }
    }

    let s = sim.stats().clone();
    let ch = sim.checker().ok_or("checker enabled")?;
    let inj = *sim.fault_injections().ok_or("plan installed")?;
    let (drops, delays) = sim
        .link_faults()
        .map(|lf| (lf.drops(), lf.delays()))
        .unwrap_or((0, 0));

    let mut out = heading_string(
        "Soak 1/2: migration storm, every fault class enabled",
        "FaultPlan::all — snoop drops, bounded delays, vCPU-map corruption\n\
         (bit off / bit on / garbage), delayed post-migration map sync,\n\
         spurious token bounces; invariant checker on throughout.",
    );
    let lines: Vec<(&str, String)> = vec![
        ("access steps           ", format!("{:>12}", s.accesses)),
        ("coherence transactions ", format!("{:>12}", s.l2_misses)),
        (
            "snoops (norm. to bcast)",
            format!("{:>11.1}%", 100.0 * norm_snoops(&sim, &cfg)),
        ),
        ("retries                ", format!("{:>12}", s.retries)),
        (
            "broadcast fallbacks    ",
            format!("{:>12}", s.broadcast_fallbacks),
        ),
        (
            "persistent requests    ",
            format!("{:>12}", s.persistent_requests),
        ),
        (
            "degraded broadcasts    ",
            format!("{:>12}", s.degraded_broadcasts),
        ),
        ("map repairs (audit)    ", format!("{:>12}", s.map_repairs)),
        ("injected: snoop drops  ", format!("{:>12}", drops)),
        ("injected: delays       ", format!("{:>12}", delays)),
        (
            "injected: map bits off ",
            format!("{:>12}", inj.maps_bit_cleared),
        ),
        (
            "injected: map bits on  ",
            format!("{:>12}", inj.maps_bit_set),
        ),
        (
            "injected: map garbage  ",
            format!("{:>12}", inj.maps_garbaged),
        ),
        (
            "injected: late syncs   ",
            format!("{:>12}", inj.delayed_syncs),
        ),
        (
            "injected: token bounces",
            format!("{:>12}", inj.spurious_bounces),
        ),
        (
            "checker: block checks  ",
            format!("{:>12}", ch.block_checks()),
        ),
        ("checker: full sweeps   ", format!("{:>12}", ch.sweeps())),
        (
            "checker: map checks    ",
            format!("{:>12}", ch.map_checks()),
        ),
        (
            "checker: VIOLATIONS    ",
            format!("{:>12}", ch.total_violations()),
        ),
        (
            "diagnostics            ",
            format!("{:>12}", sim.diagnostics_total()),
        ),
    ];
    for (label, value) in lines {
        out.push_str(&format!("  {label} {value}\n"));
    }

    let mut failures = Vec::new();
    if ch.total_violations() != 0 {
        failures.push(format!(
            "{} invariant violations; first recorded: {:#?}",
            ch.total_violations(),
            ch.violations().first()
        ));
    }
    if s.accesses < 1_000_000 {
        failures.push(format!(
            "storm too short: {} access steps < 1M (raise SOAK_ROUNDS)",
            s.accesses
        ));
    }
    if inj.maps_corrupted() == 0 {
        failures.push("map corruption never fired".into());
    }
    if s.degraded_broadcasts == 0 {
        failures.push("corrupted maps never degraded a filter to broadcast".into());
    }
    if s.map_repairs == 0 {
        failures.push("the hypervisor audit never repaired a register".into());
    }
    if drops == 0 || delays == 0 {
        failures.push("link faults never fired".into());
    }
    if failures.is_empty() {
        Ok(out)
    } else {
        Err(failures.join("; "))
    }
}

/// Phase 2: fault-free shape checks (Table IV / Fig. 8 headline numbers).
fn shapes(rounds: u64, seed: u64) -> Result<String, String> {
    let cfg = SystemConfig::paper_default();
    let warmup = (rounds / 16).max(1_000);
    let mut out = heading_string(
        "Soak 2/2: fault-free snoop-reduction shapes",
        "With faults disabled the headline reductions must match the paper:\n\
         ~75% of snoops filtered for pinned VMs (Table IV), ~45% of baseline\n\
         under 0.1 ms migration storms with the counter scheme (Fig. 8).",
    );
    let mut failures = Vec::new();

    // Pinned vCPUs, vsnoop-base: ~75% of snoops filtered (Table IV).
    let pinned = {
        let mut sim = Simulator::try_new(cfg, FilterPolicy::VsnoopBase, ContentPolicy::Broadcast)
            .map_err(|e| e.to_string())?;
        let mut wl = storm_workload(&cfg, seed)?;
        sim.run(&mut wl, warmup);
        sim.reset_measurement();
        sim.run(&mut wl, rounds);
        norm_snoops(&sim, &cfg)
    };
    out.push_str(&format!(
        "  pinned vsnoop-base      {:>11}% of baseline snoops (paper: ~25%)\n",
        f1(100.0 * pinned)
    ));
    if !(0.20..=0.32).contains(&pinned) {
        failures.push(format!(
            "pinned vsnoop-base snoop shape off: {:.1}% (expected ~25%)",
            100.0 * pinned
        ));
    }

    // Counter scheme under 0.1 ms migrations: ~45% (Fig. 8).
    let migr = {
        let mut sim = Simulator::try_new(cfg, FilterPolicy::Counter, ContentPolicy::Broadcast)
            .map_err(|e| e.to_string())?;
        let mut wl = storm_workload(&cfg, seed)?;
        sim.run(&mut wl, warmup);
        sim.reset_measurement();
        let period = cfg.cycles_per_ms / 10; // 0.1 scaled ms
        sim.run_with_migration(&mut wl, rounds, period, picker(cfg, seed ^ 0x51A9));
        norm_snoops(&sim, &cfg)
    };
    out.push_str(&format!(
        "  counter @ 0.1ms storms  {:>11}% of baseline snoops (paper: ~45%)\n",
        f1(100.0 * migr)
    ));
    if !(0.30..=0.60).contains(&migr) {
        failures.push(format!(
            "counter@0.1ms snoop shape off: {:.1}% (expected ~45%)",
            100.0 * migr
        ));
    }
    if failures.is_empty() {
        Ok(out)
    } else {
        Err(failures.join("; "))
    }
}

/// `SOAK_FORCE_VIOLATION=1` self-test: run briefly, corrupt one cached
/// line, sweep — the checker's `DirtyWithoutOwner` finding triggers the
/// observability layer's violation dump. Always exits non-zero so CI
/// failure paths (artifact upload, verify.sh smoke) can be rehearsed
/// deterministically.
fn forced_violation() -> ExitCode {
    vsnoop::obs::with_scope("forced", || {
        let cfg = SystemConfig::paper_default();
        let mut sim = match Simulator::try_new(cfg, FilterPolicy::Counter, ContentPolicy::Broadcast)
        {
            Ok(s) => s,
            Err(e) => {
                eprintln!("soak: {e}");
                return ExitCode::from(2);
            }
        };
        sim.enable_checker(CheckerConfig::default());
        let mut wl = match storm_workload(&cfg, env_u64("SOAK_SEED", 0x50AC)) {
            Ok(w) => w,
            Err(e) => {
                eprintln!("soak: {e}");
                return ExitCode::from(2);
            }
        };
        sim.run(&mut wl, 200);
        let Some(block) = sim.debug_corrupt_token_state() else {
            eprintln!("soak: forced violation found no cached line to corrupt");
            return ExitCode::from(2);
        };
        sim.run_checker_sweep();
        let violations = sim.checker().map_or(0, |c| c.total_violations());
        eprintln!(
            "soak: forced violation self-test: corrupted block {block}, \
             checker recorded {violations} violation(s)"
        );
        if violations == 0 {
            eprintln!("soak: forced violation did not trip the checker");
            return ExitCode::from(2);
        }
        if !vsnoop::obs::enabled() {
            eprintln!("soak: tracing is off — no flight dump was written (set VSNOOP_TRACE)");
        }
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    vsnoop_bench::init_obs();
    if std::env::var("SOAK_FORCE_VIOLATION").as_deref() == Ok("1") {
        return forced_violation();
    }
    let rounds = env_u64("SOAK_ROUNDS", 80_000);
    let seed = env_u64("SOAK_SEED", 0x50AC);
    let period_ms_x100 = env_u64("SOAK_PERIOD_MS", 10); // 10 = 0.1 ms
    let shape_rounds = env_u64("SOAK_SHAPE_ROUNDS", 350_000);
    let cfg = SystemConfig::paper_default();
    let period_cycles = (cfg.cycles_per_ms * period_ms_x100 / 100).max(1);

    let params = Value::obj([
        ("rounds", Value::UInt(rounds)),
        ("shape_rounds", Value::UInt(shape_rounds)),
        ("period_cycles", Value::UInt(period_cycles)),
    ]);
    let jobs = vec![
        Job::new("storm", seed, params.clone(), move |_ctx| {
            storm(rounds, seed, period_cycles)
        })
        .with_step_window(0, rounds),
        Job::new("shapes", seed, params, move |_ctx| {
            shapes(shape_rounds, seed)
        })
        .with_step_window(0, shape_rounds),
    ];
    let dir = std::path::PathBuf::from("target/campaign/soak");
    let runner_cfg = RunnerConfig {
        workers: 2,
        journal_path: Some(dir.join("journal.jsonl")),
        repro_dir: Some(dir.clone()),
        ..RunnerConfig::default()
    };
    let report = match run_campaign(&jobs, &runner_cfg, &mut |msg| eprintln!("[soak] {msg}")) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("soak aborted: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", report.merged_output());
    if let Err(e) = Journal::write_merged(&dir.join("merged.jsonl"), &report.entries()) {
        eprintln!("soak: writing merged.jsonl: {e}");
    }

    println!();
    if report.all_ok() {
        println!("SOAK PASS: zero invariant violations, all fault classes exercised.");
        ExitCode::SUCCESS
    } else {
        for r in &report.records {
            if let Err(e) = &r.outcome {
                println!("SOAK FAIL [{}]: {e}", r.spec.name);
            }
        }
        ExitCode::FAILURE
    }
}

//! Supervised, checkpointed experiment-campaign runner.
//!
//! Turns every figure/table experiment into a named, seeded [`Job`]
//! executed under supervision:
//!
//! - a bounded worker pool isolates each attempt on its own thread and
//!   converts panics into typed [`JobError`]s via `catch_unwind`, so one
//!   bad experiment cannot take down a multi-hour campaign;
//! - a watchdog enforces per-job deadlines through cooperative
//!   [`CancelToken`]s that the simulator's round loops poll
//!   ([`poll_current`]); stragglers are cancelled, retried with
//!   exponential backoff under a bounded budget, and — if they never
//!   poll — abandoned so the campaign keeps moving;
//! - every terminal result is appended to a JSON-lines checkpoint
//!   [`Journal`] and flushed, so a killed campaign resumes with
//!   `--resume`, re-running only unfinished jobs and producing a merged
//!   journal byte-identical to an uninterrupted run;
//! - terminal failures emit self-contained [`CrashReproducer`] files
//!   (name, seed, parameters, step window) replayable in isolation with
//!   `--repro <file>`;
//! - inside one job, [`scatter`] fans independent cells (e.g. one per
//!   application in a sweep) over a bounded shard pool, preserving item
//!   order, the caller's cancellation token, and serial-order panic
//!   propagation — so a sharded report stays byte-identical to, and
//!   exactly as supervisable as, its serial form.
//!
//! The runner lives in the core crate so both the bench binaries and
//! tests can drive it; it has no dependencies beyond `std` (the journal
//! and reproducers use the small hand-rolled [`json`] codec).

mod cancel;
mod job;
mod journal;
pub mod json;
mod repro;
mod scatter;
mod supervisor;

pub(crate) use cancel::with_current;
pub use cancel::{poll_current, CancelToken, Cancelled};
pub use job::{Job, JobCtx, JobError, JobFn, JobRecord, JobSpec};
pub use journal::{Journal, JournalEntry};
pub use repro::CrashReproducer;
pub use scatter::{scatter, set_shard_workers, shard_workers};
pub(crate) use supervisor::panic_message;
pub use supervisor::{run_campaign, CampaignReport, RunnerConfig};

//! Ablation: counter-threshold sensitivity (the paper's future work on
//! "more speculative schemes which rely on the availability of safe retry").
//!
//! Sweeps the residence-counter removal threshold at a 0.5 ms migration
//! period and reports the trade-off the paper anticipates: aggressive
//! thresholds remove cores earlier (fewer snoops) but under-filter, so
//! transient requests start failing and falling back to broadcasts.

use vsnoop::experiments::RunScale;
use vsnoop::{ContentPolicy, FilterPolicy, Simulator, SystemConfig};
use vsnoop_bench::{f1, heading, scale_from_env, TextTable};
use workloads::{try_profile, Workload, WorkloadConfig};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sim_vm::{VcpuId, VmId};

fn run(policy: FilterPolicy, scale: RunScale) -> (f64, u64, u64) {
    let cfg = SystemConfig::paper_default();
    let mut sim = Simulator::new(cfg, policy, ContentPolicy::Broadcast);
    let mut wl = Workload::homogeneous(
        try_profile("ocean").unwrap_or_else(|e| panic!("{e}")),
        cfg.n_vms,
        WorkloadConfig {
            vcpus_per_vm: cfg.vcpus_per_vm,
            seed: scale.seed,
            ..Default::default()
        },
    );
    sim.run(&mut wl, scale.warmup_rounds);
    sim.reset_measurement();
    let period = cfg.cycles_per_ms / 2; // 0.5 scaled ms
    let mut rng = SmallRng::seed_from_u64(11);
    let n_vms = cfg.n_vms;
    let vcpus = cfg.vcpus_per_vm;
    sim.run_with_migration(&mut wl, scale.measure_rounds, period, move |_| {
        let a = rng.gen_range(0..n_vms) as u16;
        let mut b = rng.gen_range(0..n_vms - 1) as u16;
        if b >= a {
            b += 1;
        }
        (
            VcpuId::new(VmId::new(a), rng.gen_range(0..vcpus)),
            VcpuId::new(VmId::new(b), rng.gen_range(0..vcpus)),
        )
    });
    let s = sim.stats();
    (
        100.0 * s.snoops as f64 / (s.l2_misses.max(1) * 16) as f64,
        s.retries,
        s.broadcast_fallbacks,
    )
}

fn main() {
    vsnoop_bench::init_obs();
    heading(
        "Ablation: counter-threshold sensitivity (ocean, 0.5 ms migrations)",
        "Larger thresholds remove cores more aggressively: snoops drop, but\n\
         filtered attempts start missing tokens, forcing safe retries and\n\
         broadcast fallbacks — the complexity the paper weighs against the\n\
         'too small to justify' gain of its threshold-10 variant.",
    );
    let scale = scale_from_env().for_migration();
    let mut t = TextTable::new([
        "policy",
        "snoops vs tokenB %",
        "retries",
        "broadcast fallbacks",
    ]);
    let (n, r, f) = run(FilterPolicy::Counter, scale);
    t.row([
        "counter (exact zero)".to_string(),
        f1(n),
        r.to_string(),
        f.to_string(),
    ]);
    for threshold in [2u64, 10, 50, 200, 1000] {
        let (n, r, f) = run(FilterPolicy::CounterThreshold { threshold }, scale);
        t.row([
            format!("counter-threshold({threshold})"),
            f1(n),
            r.to_string(),
            f.to_string(),
        ]);
    }
    t.maybe_dump_csv("ablation_threshold").expect("csv dump");
    println!("{t}");
}

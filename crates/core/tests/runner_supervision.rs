//! Integration tests for the campaign supervisor: panic isolation,
//! retry/backoff, watchdog deadlines (both the cooperative and the
//! abandonment path), and checkpoint/resume determinism.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use vsnoop::runner::{
    json::Value, run_campaign, CrashReproducer, Job, JobError, Journal, RunnerConfig,
};

/// A scratch directory unique to one test, cleaned before use.
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vsnoop-runner-{}-{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A job that always succeeds with a deterministic output, counting its
/// executions.
fn ok_job(name: &str, runs: &Arc<AtomicU32>) -> Job {
    let runs = Arc::clone(runs);
    let output = format!("output of {name}\n");
    Job::new(name, 7, Value::obj(vec![]), move |_ctx| {
        runs.fetch_add(1, Ordering::SeqCst);
        Ok(output.clone())
    })
}

fn quiet() -> impl FnMut(&str) {
    |_line: &str| {}
}

#[test]
fn flaky_job_succeeds_after_retries() {
    let runs = Arc::new(AtomicU32::new(0));
    let counter = Arc::clone(&runs);
    let job = Job::new("flaky", 7, Value::obj(vec![]), move |ctx| {
        counter.fetch_add(1, Ordering::SeqCst);
        if ctx.attempt < 3 {
            Err(format!("transient fault on attempt {}", ctx.attempt))
        } else {
            Ok("flaky output\n".into())
        }
    });
    let cfg = RunnerConfig {
        retries: 2,
        backoff_base: Duration::from_millis(1),
        ..Default::default()
    };
    let report = run_campaign(&[job], &cfg, &mut quiet()).unwrap();
    assert!(report.all_ok());
    assert_eq!(report.records[0].attempts, 3);
    assert_eq!(runs.load(Ordering::SeqCst), 3);
    assert!(
        report.summary().contains("(1 after retries)"),
        "{}",
        report.summary()
    );
}

#[test]
fn retry_budget_is_bounded() {
    let runs = Arc::new(AtomicU32::new(0));
    let counter = Arc::clone(&runs);
    let job = Job::new("hopeless", 7, Value::obj(vec![]), move |_ctx| {
        counter.fetch_add(1, Ordering::SeqCst);
        Err("always broken".into())
    });
    let cfg = RunnerConfig {
        retries: 2,
        backoff_base: Duration::from_millis(1),
        ..Default::default()
    };
    let report = run_campaign(&[job], &cfg, &mut quiet()).unwrap();
    assert_eq!(report.failed(), 1);
    assert_eq!(runs.load(Ordering::SeqCst), 3, "1 try + 2 retries, no more");
    assert_eq!(
        report.records[0].outcome,
        Err(JobError::Failed {
            message: "always broken".into()
        })
    );
}

#[test]
fn panic_is_isolated_and_reproducer_written() {
    let dir = scratch("panic");
    let runs = Arc::new(AtomicU32::new(0));
    let jobs = vec![
        ok_job("before", &runs),
        Job::new("boom", 7, Value::obj(vec![]), |_ctx| {
            panic!("deliberate test panic");
        }),
        ok_job("after", &runs),
    ];
    let cfg = RunnerConfig {
        repro_dir: Some(dir.clone()),
        ..Default::default()
    };
    let report = run_campaign(&jobs, &cfg, &mut quiet()).unwrap();

    // The panic neither tore down the campaign nor poisoned neighbours.
    assert_eq!(report.succeeded(), 2);
    assert_eq!(report.failed(), 1);
    assert_eq!(runs.load(Ordering::SeqCst), 2);
    assert_eq!(
        report.records[1].outcome,
        Err(JobError::Panicked {
            message: "deliberate test panic".into()
        })
    );

    // A self-contained reproducer identifies the failing job.
    assert_eq!(report.repro_paths.len(), 1);
    let repro = CrashReproducer::load(&report.repro_paths[0]).unwrap();
    assert_eq!(repro.spec.name, "boom");
    assert_eq!(repro.error_kind, "panic");

    // Degraded mode: the merged output flags the hole instead of
    // silently omitting it.
    let merged = report.merged_output();
    assert!(merged.contains("output of before\n"));
    assert!(merged.contains("=== boom — FAILED ==="));
    assert!(merged.contains("output of after\n"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn polling_hang_is_cancelled_retried_and_failed() {
    let runs = Arc::new(AtomicU32::new(0));
    let counter = Arc::clone(&runs);
    let job = Job::new("spinner", 7, Value::obj(vec![]), move |ctx| {
        counter.fetch_add(1, Ordering::SeqCst);
        loop {
            // Cooperative: polls its token like the simulator's round
            // loop does, so the watchdog's cancel unwinds it promptly.
            ctx.checkpoint();
            std::thread::sleep(Duration::from_millis(1));
        }
    });
    let cfg = RunnerConfig {
        timeout: Some(Duration::from_millis(60)),
        retries: 1,
        backoff_base: Duration::from_millis(1),
        ..Default::default()
    };
    let report = run_campaign(&[job], &cfg, &mut quiet()).unwrap();
    assert_eq!(report.failed(), 1);
    assert_eq!(
        report.records[0].attempts, 2,
        "timed-out attempt was retried"
    );
    assert_eq!(runs.load(Ordering::SeqCst), 2);
    // The journaled limit is the *configured* deadline, not wall time,
    // keeping resume output deterministic.
    assert_eq!(
        report.records[0].outcome,
        Err(JobError::TimedOut { limit_ms: 60 })
    );
}

#[test]
fn unresponsive_hang_is_abandoned_without_stalling_the_campaign() {
    let runs = Arc::new(AtomicU32::new(0));
    let jobs = vec![
        Job::new("stuck", 7, Value::obj(vec![]), |_ctx| {
            // Never polls its token: simulates a job wedged somewhere the
            // cancellation checkpoint cannot reach.
            std::thread::sleep(Duration::from_secs(600));
            Ok("unreachable".into())
        }),
        ok_job("next", &runs),
    ];
    let cfg = RunnerConfig {
        workers: 1,
        timeout: Some(Duration::from_millis(50)),
        grace: Duration::from_millis(100),
        ..Default::default()
    };
    let started = Instant::now();
    let report = run_campaign(&jobs, &cfg, &mut quiet()).unwrap();
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "abandonment must reclaim the only worker slot promptly"
    );
    assert_eq!(
        report.records[0].outcome,
        Err(JobError::TimedOut { limit_ms: 50 })
    );
    assert!(
        report.records[1].succeeded(),
        "slot was reclaimed for the next job"
    );
    assert_eq!(runs.load(Ordering::SeqCst), 1);
}

#[test]
fn resume_reruns_only_unfinished_jobs_with_byte_identical_merged_journal() {
    let dir = scratch("resume");
    let journal = dir.join("journal.jsonl");
    let names = ["fig_a", "fig_b", "fig_c", "fig_d"];
    let counters: Vec<Arc<AtomicU32>> = names.iter().map(|_| Arc::new(AtomicU32::new(0))).collect();
    let jobs: Vec<Job> = names
        .iter()
        .zip(&counters)
        .map(|(n, c)| ok_job(n, c))
        .collect();

    // "Killed" campaign: only the first two jobs reached the journal
    // before the simulated SIGKILL.
    let first = RunnerConfig {
        journal_path: Some(journal.clone()),
        ..Default::default()
    };
    run_campaign(&jobs[..2], &first, &mut quiet()).unwrap();
    assert!(counters[..2].iter().all(|c| c.load(Ordering::SeqCst) == 1));

    // Resume with the full job list: only the unfinished half runs.
    let second = RunnerConfig {
        journal_path: Some(journal.clone()),
        resume: true,
        ..Default::default()
    };
    let resumed = run_campaign(&jobs, &second, &mut quiet()).unwrap();
    assert!(resumed.all_ok());
    assert!(resumed.records[0].resumed && resumed.records[1].resumed);
    assert!(!resumed.records[2].resumed && !resumed.records[3].resumed);
    for c in &counters {
        assert_eq!(
            c.load(Ordering::SeqCst),
            1,
            "every job ran exactly once overall"
        );
    }

    // The merged journal of killed+resumed equals an uninterrupted run's.
    let merged_resumed = dir.join("merged-resumed.jsonl");
    Journal::write_merged(&merged_resumed, &resumed.entries()).unwrap();

    let clean_dir = scratch("resume-clean");
    let clean_cfg = RunnerConfig {
        journal_path: Some(clean_dir.join("journal.jsonl")),
        ..Default::default()
    };
    let clean = run_campaign(&jobs, &clean_cfg, &mut quiet()).unwrap();
    let merged_clean = clean_dir.join("merged.jsonl");
    Journal::write_merged(&merged_clean, &clean.entries()).unwrap();

    let a = std::fs::read(&merged_resumed).unwrap();
    let b = std::fs::read(&merged_clean).unwrap();
    assert!(!a.is_empty());
    assert_eq!(a, b, "merged journals must be byte-identical");

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&clean_dir);
}

#[test]
fn resume_treats_journaled_failures_as_terminal() {
    let dir = scratch("resume-fail");
    let journal = dir.join("journal.jsonl");
    let runs = Arc::new(AtomicU32::new(0));
    let counter = Arc::clone(&runs);
    let jobs = vec![Job::new("broken", 7, Value::obj(vec![]), move |_ctx| {
        counter.fetch_add(1, Ordering::SeqCst);
        Err("still broken".into())
    })];

    let cfg = RunnerConfig {
        journal_path: Some(journal.clone()),
        ..Default::default()
    };
    run_campaign(&jobs, &cfg, &mut quiet()).unwrap();
    assert_eq!(runs.load(Ordering::SeqCst), 1);

    let resume = RunnerConfig {
        journal_path: Some(journal),
        resume: true,
        ..Default::default()
    };
    let report = run_campaign(&jobs, &resume, &mut quiet()).unwrap();
    assert_eq!(
        runs.load(Ordering::SeqCst),
        1,
        "failure is terminal; not re-run"
    );
    assert!(report.records[0].resumed);
    assert_eq!(report.failed(), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn duplicate_job_names_are_rejected() {
    let runs = Arc::new(AtomicU32::new(0));
    let jobs = vec![ok_job("twin", &runs), ok_job("twin", &runs)];
    let err = run_campaign(&jobs, &RunnerConfig::default(), &mut quiet()).unwrap_err();
    assert!(err.to_string().contains("twin"));
    assert_eq!(runs.load(Ordering::SeqCst), 0);
}

#[test]
fn resume_skips_truncated_trailing_journal_line_and_reruns_that_job() {
    let dir = scratch("resume-truncated");
    let journal = dir.join("journal.jsonl");
    let names = ["fig_a", "fig_b"];
    let counters: Vec<Arc<AtomicU32>> = names.iter().map(|_| Arc::new(AtomicU32::new(0))).collect();
    let jobs: Vec<Job> = names
        .iter()
        .zip(&counters)
        .map(|(n, c)| ok_job(n, c))
        .collect();

    // Run the full campaign once so the journal holds two complete
    // entries, then simulate a crash mid-write of the second: truncate
    // the file part-way through the last line, cutting a multi-byte
    // UTF-8 sequence in half for good measure.
    let first = RunnerConfig {
        journal_path: Some(journal.clone()),
        ..Default::default()
    };
    run_campaign(&jobs, &first, &mut quiet()).unwrap();
    let bytes = std::fs::read(&journal).unwrap();
    let first_line_end = bytes.iter().position(|&b| b == b'\n').unwrap();
    let mut truncated = bytes[..first_line_end + 1].to_vec();
    truncated.extend_from_slice(b"{\"index\":1,\"job\":\"caf\xc3");
    std::fs::write(&journal, &truncated).unwrap();

    // Resume: the complete entry is restored, the torn one is skipped
    // with a warning and its job re-runs.
    let second = RunnerConfig {
        journal_path: Some(journal.clone()),
        resume: true,
        ..Default::default()
    };
    let mut progress_lines = Vec::new();
    let report = run_campaign(&jobs, &second, &mut |line: &str| {
        progress_lines.push(line.to_string());
    })
    .unwrap();
    assert!(report.all_ok());
    assert!(report.records[0].resumed, "intact entry restored");
    assert!(!report.records[1].resumed, "torn entry re-ran");
    assert_eq!(counters[0].load(Ordering::SeqCst), 1);
    assert_eq!(counters[1].load(Ordering::SeqCst), 2, "ran again on resume");
    assert!(
        progress_lines
            .iter()
            .any(|l| l.contains("resume:") && l.contains("crash mid-write")),
        "warning surfaced via progress: {progress_lines:?}"
    );

    // The repaired journal now holds all entries; a further resume is a
    // no-op and parses cleanly end to end.
    let (entries, warnings) = Journal::load_with_warnings(&journal).unwrap();
    assert_eq!(entries.len(), 2);
    assert!(warnings.is_empty(), "rewritten journal is clean");
    let _ = std::fs::remove_dir_all(&dir);
}

//! Statistics collected by the full-system simulator.
//!
//! Every metric a paper table or figure needs is a counter here: snoop tag
//! lookups (Figs. 7-8), per-agent and per-sharing-type miss decompositions
//! (Fig. 1, Table V), data-holder classification (Table VI), actual data
//! sources, stall cycles for the runtime estimate (Fig. 6), and vCPU-map
//! maintenance events.

use sim_vm::{Agent, SharingType};

/// Aggregate counters of one simulation run.
///
/// Every field is an exact integer counter, so two runs can be compared
/// for *bit-identical* behaviour with `==` — the differential oracle and
/// the optimized-vs-reference engine guard rely on this.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SimStats {
    /// Rounds executed (one access slot per core per round).
    pub rounds: u64,
    /// Total accesses issued.
    pub accesses: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L2 hits (including silent upgrades of E lines).
    pub l2_hits: u64,
    /// Coherence transactions (L2 misses and token-upgrade requests).
    pub l2_misses: u64,
    /// Cache tag lookups caused by snooping, *including* the requester's
    /// own lookup (so a 16-core broadcast counts 16, matching the paper's
    /// "total snoops occurring in all the cores" and its ideal 25% line).
    pub snoops: u64,
    /// Failed transient attempts that were retried.
    pub retries: u64,
    /// Transactions that fell back to a broadcast attempt.
    pub broadcast_fallbacks: u64,
    /// Transactions that exhausted the transient retry ladder (possible
    /// only under fault injection) and escalated to a persistent request.
    pub persistent_requests: u64,
    /// Transactions broadcast because the requester's vCPU-map register
    /// failed validation (invalid bits, or missing the requester's own
    /// core) — the degraded-mode fallback.
    pub degraded_broadcasts: u64,
    /// vCPU-map registers repaired by the hypervisor's periodic audit.
    pub map_repairs: u64,
    /// Misses by guest VMs.
    pub misses_guest: u64,
    /// Misses by dom0.
    pub misses_dom0: u64,
    /// Misses by the hypervisor.
    pub misses_hyp: u64,
    /// Misses to VM-private pages.
    pub misses_private: u64,
    /// Misses to RW-shared pages.
    pub misses_rw_shared: u64,
    /// Misses to content-shared (RO) pages.
    pub misses_ro_shared: u64,
    /// Accesses (L1-level) to content-shared pages.
    pub content_accesses: u64,
    /// Content-shared read misses for which at least one cache anywhere
    /// held a valid copy (Table VI "Cache: all").
    pub holders_any_cache: u64,
    /// ... of which a cache of the requesting VM held a copy
    /// (Table VI "Cache: intra-VM").
    pub holders_intra_vm: u64,
    /// ... or, failing intra-VM, a cache of the friend VM held one
    /// (Table VI "Cache: friend-VM", incremental over intra-VM).
    pub holders_friend_vm: u64,
    /// Content-shared read misses that only memory could serve.
    pub holders_memory: u64,
    /// Transactions whose data came from a cache of the requesting VM.
    pub data_intra_vm: u64,
    /// ... from a cache of another VM.
    pub data_other_vm: u64,
    /// ... from memory.
    pub data_memory: u64,
    /// Dirty write-backs.
    pub writebacks: u64,
    /// Cores added to vCPU maps (relocations).
    pub map_adds: u64,
    /// Cores removed from vCPU maps (counter mechanism).
    pub map_removes: u64,
    /// Per-core stall cycles from miss latencies.
    pub stall_cycles: Vec<u64>,
}

impl SimStats {
    /// Creates zeroed statistics for `n_cores`.
    pub fn new(n_cores: usize) -> Self {
        SimStats {
            stall_cycles: vec![0; n_cores],
            ..Default::default()
        }
    }

    /// L2 miss ratio over all accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.l2_misses as f64 / self.accesses as f64
        }
    }

    /// Share of L2 misses issued by the hypervisor + dom0 (Fig. 1's
    /// broadcast-required fraction), in `[0, 1]`.
    pub fn host_miss_fraction(&self) -> f64 {
        if self.l2_misses == 0 {
            0.0
        } else {
            (self.misses_dom0 + self.misses_hyp) as f64 / self.l2_misses as f64
        }
    }

    /// Share of L2 misses to content-shared pages (Table V right column).
    pub fn content_miss_fraction(&self) -> f64 {
        if self.l2_misses == 0 {
            0.0
        } else {
            self.misses_ro_shared as f64 / self.l2_misses as f64
        }
    }

    /// Share of accesses to content-shared pages (Table V left column).
    pub fn content_access_fraction(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.content_accesses as f64 / self.accesses as f64
        }
    }

    /// Estimated runtime in cycles: issue time plus the worst core's
    /// accumulated miss stalls (the critical path).
    pub fn runtime_cycles(&self, cycles_per_access: u64) -> u64 {
        self.rounds * cycles_per_access + self.stall_cycles.iter().copied().max().unwrap_or(0)
    }

    /// Records a miss by `agent` to a page of `sharing` type.
    pub fn count_miss(&mut self, agent: Agent, sharing: SharingType) {
        self.l2_misses += 1;
        match agent {
            Agent::Guest(_) => self.misses_guest += 1,
            Agent::Dom0 => self.misses_dom0 += 1,
            Agent::Hypervisor => self.misses_hyp += 1,
        }
        match sharing {
            SharingType::VmPrivate => self.misses_private += 1,
            SharingType::RwShared => self.misses_rw_shared += 1,
            SharingType::RoShared => self.misses_ro_shared += 1,
        }
    }
}

/// One core-removal event under the counter mechanism (Fig. 9's metric).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RemovalEvent {
    /// Cycle at which the core was removed from the VM's map.
    pub cycle: u64,
    /// The removed core's index.
    pub core: usize,
    /// The VM whose map shrank.
    pub vm: usize,
    /// Cycles between the vCPU's departure from the core and the removal
    /// (`None` when the core was removed without a pending relocation,
    /// e.g. it never hosted the VM's data again after a previous removal).
    pub period: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_vm::{VcpuId, VmId};

    #[test]
    fn fractions_guard_division_by_zero() {
        let s = SimStats::new(4);
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.host_miss_fraction(), 0.0);
        assert_eq!(s.content_miss_fraction(), 0.0);
        assert_eq!(s.content_access_fraction(), 0.0);
    }

    #[test]
    fn count_miss_decomposes() {
        let mut s = SimStats::new(2);
        s.count_miss(
            Agent::Guest(VcpuId::new(VmId::new(0), 0)),
            SharingType::VmPrivate,
        );
        s.count_miss(Agent::Dom0, SharingType::RwShared);
        s.count_miss(Agent::Hypervisor, SharingType::RwShared);
        s.count_miss(
            Agent::Guest(VcpuId::new(VmId::new(1), 0)),
            SharingType::RoShared,
        );
        assert_eq!(s.l2_misses, 4);
        assert_eq!(s.misses_guest, 2);
        assert_eq!(s.misses_dom0, 1);
        assert_eq!(s.misses_hyp, 1);
        assert_eq!(s.misses_private, 1);
        assert_eq!(s.misses_rw_shared, 2);
        assert_eq!(s.misses_ro_shared, 1);
        assert!((s.host_miss_fraction() - 0.5).abs() < 1e-12);
        assert!((s.content_miss_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn runtime_uses_worst_core() {
        let mut s = SimStats::new(3);
        s.rounds = 100;
        s.stall_cycles = vec![5, 50, 20];
        assert_eq!(s.runtime_cycles(2), 250);
    }
}

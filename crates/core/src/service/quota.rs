//! Admission control: bounded queueing, per-tenant quotas, and fair
//! round-robin dispatch.
//!
//! [`Admission`] is deliberately free of any networking or threading —
//! it is a plain data structure the server's scheduler drives under
//! one lock, which makes the robustness headline properties (typed
//! load-shedding, fairness, quota isolation) unit-testable without a
//! socket in sight.
//!
//! The shape mirrors the paper's theme at the resource-management
//! level: just as virtual snooping partitions coherence traffic by VM
//! so one guest's misses don't storm every core, admission partitions
//! the job queue by tenant so one greedy client can neither starve the
//! others (round-robin dispatch across tenants) nor exhaust shared
//! memory (per-tenant queue-depth and queued-bytes caps inside a
//! global cap).

use std::collections::BTreeMap;

use super::protocol::ShedReason;

/// Per-tenant admission limits.
#[derive(Clone, Copy, Debug)]
pub struct TenantQuota {
    /// Max jobs a tenant may have dispatched-but-unfinished.
    pub max_inflight: usize,
    /// Max jobs a tenant may have waiting in the queue.
    pub max_queued: usize,
    /// Max total request-payload bytes a tenant may have queued.
    pub max_queued_bytes: usize,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota {
            max_inflight: 4,
            max_queued: 64,
            max_queued_bytes: 1 << 20,
        }
    }
}

/// One queued unit of work. `T` is the server's job payload; the
/// admission logic only needs its accounted byte size.
#[derive(Debug)]
struct Queued<T> {
    job: T,
    bytes: usize,
}

/// Per-tenant bookkeeping.
#[derive(Debug)]
struct TenantState<T> {
    queue: Vec<Queued<T>>,
    queued_bytes: usize,
    inflight: usize,
    done: u64,
    shed: u64,
}

// Manual impl: `derive(Default)` would wrongly require `T: Default`.
impl<T> Default for TenantState<T> {
    fn default() -> Self {
        TenantState {
            queue: Vec::new(),
            queued_bytes: 0,
            inflight: 0,
            done: 0,
            shed: 0,
        }
    }
}

/// The admission controller: a global bounded queue partitioned per
/// tenant, with round-robin dispatch across tenants.
///
/// Not thread-safe by itself — the server wraps it in a `Mutex`.
#[derive(Debug)]
pub struct Admission<T> {
    quota: TenantQuota,
    /// Global cap on total queued jobs across all tenants.
    queue_cap: usize,
    tenants: BTreeMap<String, TenantState<T>>,
    /// Round-robin cursor: the tenant *after* this name gets the next
    /// dispatch. `None` restarts from the first tenant.
    cursor: Option<String>,
    queued_total: usize,
    draining: bool,
}

impl<T> Admission<T> {
    /// Creates an admission controller with a global queue cap and a
    /// per-tenant quota applied uniformly.
    pub fn new(queue_cap: usize, quota: TenantQuota) -> Self {
        Admission {
            quota,
            queue_cap,
            tenants: BTreeMap::new(),
            cursor: None,
            queued_total: 0,
            draining: false,
        }
    }

    /// Switches to draining: every future [`offer`](Self::offer) sheds
    /// with [`ShedReason::Draining`].
    pub fn set_draining(&mut self) {
        self.draining = true;
    }

    /// Whether the controller is draining.
    pub fn draining(&self) -> bool {
        self.draining
    }

    /// Total queued jobs across all tenants.
    pub fn queued_total(&self) -> usize {
        self.queued_total
    }

    /// Total in-flight (dispatched, unfinished) jobs across tenants.
    pub fn inflight_total(&self) -> usize {
        self.tenants.values().map(|t| t.inflight).sum()
    }

    /// Offers a job for `tenant`, accounting `bytes` of request
    /// payload against the tenant's byte quota. Rejections are typed
    /// and cheap; acceptance enqueues at the tenant's tail.
    pub fn offer(&mut self, tenant: &str, job: T, bytes: usize) -> Result<(), ShedReason> {
        // Every shed path creates the tenant entry: a tenant that only
        // ever gets shed still shows up (with its shed count) in
        // status output.
        let state = self.tenants.entry(tenant.to_string()).or_default();
        if self.draining {
            state.shed += 1;
            return Err(ShedReason::Draining);
        }
        if self.queued_total >= self.queue_cap {
            state.shed += 1;
            return Err(ShedReason::QueueFull);
        }
        if state.queue.len() >= self.quota.max_queued {
            state.shed += 1;
            return Err(ShedReason::TenantQueueFull);
        }
        if state.queued_bytes + bytes > self.quota.max_queued_bytes {
            state.shed += 1;
            return Err(ShedReason::TenantBytes);
        }
        state.queue.push(Queued { job, bytes });
        state.queued_bytes += bytes;
        self.queued_total += 1;
        Ok(())
    }

    /// Re-enqueues a job recovered from the write-ahead log under its
    /// original tenant accounting, **bypassing the shed checks**: the
    /// job was already admitted (and its acceptance acknowledged to
    /// the client) before the crash, so refusing it now would break
    /// the no-loss contract. Quota caps still bind for *new* work; the
    /// restored backlog simply counts against them.
    pub fn restore(&mut self, tenant: &str, job: T, bytes: usize) {
        let state = self.tenants.entry(tenant.to_string()).or_default();
        state.queue.push(Queued { job, bytes });
        state.queued_bytes += bytes;
        self.queued_total += 1;
    }

    /// Picks the next job to dispatch, or `None` if every tenant with
    /// queued work is at its in-flight quota (or nothing is queued).
    ///
    /// Fairness: tenants are visited round-robin in name order,
    /// resuming after the tenant that got the previous dispatch, so a
    /// tenant that queues 100 jobs cannot starve one that queues 2.
    pub fn next_dispatch(&mut self) -> Option<(String, T)> {
        if self.tenants.is_empty() {
            return None;
        }
        // Candidate order: names after the cursor, then wrap to the
        // start. BTreeMap iteration is sorted, so this is a stable
        // rotation regardless of insertion order.
        let names: Vec<String> = {
            let after: Vec<&String> = match &self.cursor {
                Some(c) => self
                    .tenants
                    .range::<String, _>((
                        std::ops::Bound::Excluded(c.clone()),
                        std::ops::Bound::Unbounded,
                    ))
                    .map(|(k, _)| k)
                    .collect(),
                None => self.tenants.keys().collect(),
            };
            let wrapped: Vec<&String> = match &self.cursor {
                Some(c) => self
                    .tenants
                    .range::<String, _>((
                        std::ops::Bound::Unbounded,
                        std::ops::Bound::Included(c.clone()),
                    ))
                    .map(|(k, _)| k)
                    .collect(),
                None => Vec::new(),
            };
            after.into_iter().chain(wrapped).cloned().collect()
        };
        for name in names {
            let state = self.tenants.get_mut(&name).expect("tenant vanished");
            if state.queue.is_empty() || state.inflight >= self.quota.max_inflight {
                continue;
            }
            let queued = state.queue.remove(0);
            state.queued_bytes -= queued.bytes;
            state.inflight += 1;
            self.queued_total -= 1;
            self.cursor = Some(name.clone());
            return Some((name, queued.job));
        }
        None
    }

    /// Records a dispatched job finishing (any outcome), releasing the
    /// tenant's in-flight slot.
    pub fn finish(&mut self, tenant: &str) {
        if let Some(state) = self.tenants.get_mut(tenant) {
            state.inflight = state.inflight.saturating_sub(1);
            state.done += 1;
        }
    }

    /// Records a terminal outcome for a job that was still *queued*
    /// (a drain eviction): bumps the tenant's done count without
    /// touching its in-flight slot accounting.
    pub fn finish_queued(&mut self, tenant: &str) {
        if let Some(state) = self.tenants.get_mut(tenant) {
            state.done += 1;
        }
    }

    /// Empties every tenant's queue, returning the evicted jobs in
    /// (tenant-name, job) pairs. Used at drain start: queued work is
    /// journaled as cancelled rather than silently dropped.
    pub fn evict_queued(&mut self) -> Vec<(String, T)> {
        let mut out = Vec::new();
        for (name, state) in &mut self.tenants {
            for queued in state.queue.drain(..) {
                out.push((name.clone(), queued.job));
            }
            state.queued_bytes = 0;
        }
        self.queued_total = 0;
        out
    }

    /// Per-tenant counters for status responses, in name order:
    /// `(tenant, queued, running, done, shed)`.
    pub fn tenant_counters(&self) -> Vec<(String, u64, u64, u64, u64)> {
        self.tenants
            .iter()
            .map(|(name, s)| {
                (
                    name.clone(),
                    s.queue.len() as u64,
                    s.inflight as u64,
                    s.done,
                    s.shed,
                )
            })
            .collect()
    }

    /// Total sheds across all tenants.
    pub fn shed_total(&self) -> u64 {
        self.tenants.values().map(|t| t.shed).sum()
    }

    /// Total terminal jobs across all tenants.
    pub fn done_total(&self) -> u64 {
        self.tenants.values().map(|t| t.done).sum()
    }
}

/// Per-connection pipelining cap: how many submits one socket may have
/// in flight (accepted, not yet answered with their terminal `done`).
///
/// This is the connection-level sibling of the per-tenant quotas above:
/// quotas stop one *tenant* from monopolizing the queue, the gate stops
/// one *socket* from turning unbounded pipelining into unbounded
/// server-side reply buffering. Excess submits shed with the retryable
/// [`ShedReason::PipelineFull`].
///
/// Thread model: `try_acquire` is only called from the reactor thread
/// (requests on one connection are processed in order), while `release`
/// races in from the scheduler as jobs finish — so a relaxed
/// check-then-increment cannot overshoot the limit. [`acquire`]
/// (unconditional) exists for idempotent-duplicate waiters: answering
/// an already-made promise must never shed.
///
/// [`acquire`]: PipelineGate::acquire
#[derive(Debug)]
pub struct PipelineGate {
    limit: usize,
    inflight: std::sync::atomic::AtomicUsize,
}

impl PipelineGate {
    /// Creates a gate admitting at most `limit` in-flight submits
    /// (clamped to at least 1 — a gate that sheds everything would
    /// make the connection useless).
    pub fn new(limit: usize) -> Self {
        PipelineGate {
            limit: limit.max(1),
            inflight: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Takes a slot if one is free. Only the connection's owning
    /// (reactor) thread may call this.
    pub fn try_acquire(&self) -> bool {
        use std::sync::atomic::Ordering;
        if self.inflight.load(Ordering::Relaxed) >= self.limit {
            return false;
        }
        self.inflight.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Takes a slot unconditionally (may exceed the limit): used when
    /// the reply is already owed, e.g. a duplicate submit attaching to
    /// an in-flight idempotency key.
    pub fn acquire(&self) {
        self.inflight
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Returns a slot (saturating; called once per terminal reply).
    pub fn release(&self) {
        use std::sync::atomic::Ordering;
        let _ = self
            .inflight
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1));
    }

    /// Current in-flight submits on this connection.
    pub fn inflight(&self) -> usize {
        self.inflight.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quota(max_inflight: usize, max_queued: usize, max_queued_bytes: usize) -> TenantQuota {
        TenantQuota {
            max_inflight,
            max_queued,
            max_queued_bytes,
        }
    }

    #[test]
    fn global_queue_cap_sheds_typed() {
        let mut a = Admission::new(2, quota(8, 8, 1 << 20));
        assert!(a.offer("t1", 1, 10).is_ok());
        assert!(a.offer("t2", 2, 10).is_ok());
        assert_eq!(a.offer("t3", 3, 10), Err(ShedReason::QueueFull));
        assert_eq!(a.queued_total(), 2);
    }

    #[test]
    fn tenant_queue_and_byte_quotas_shed_typed() {
        let mut a = Admission::new(100, quota(8, 2, 25));
        assert!(a.offer("t", 1, 10).is_ok());
        assert!(a.offer("t", 2, 10).is_ok());
        assert_eq!(a.offer("t", 3, 1), Err(ShedReason::TenantQueueFull));
        // A different tenant is unaffected by t's full queue.
        assert!(a.offer("u", 4, 10).is_ok());
        // Byte quota binds before queue depth when payloads are fat.
        assert_eq!(a.offer("u", 5, 20), Err(ShedReason::TenantBytes));
        assert_eq!(a.shed_total(), 2);
    }

    #[test]
    fn dispatch_is_round_robin_across_tenants() {
        let mut a = Admission::new(100, quota(8, 8, 1 << 20));
        // "a" floods the queue before "b" submits two jobs.
        for i in 0..4 {
            a.offer("a", ("a", i), 1).unwrap();
        }
        a.offer("b", ("b", 0), 1).unwrap();
        a.offer("b", ("b", 1), 1).unwrap();
        let order: Vec<(&str, i32)> = std::iter::from_fn(|| a.next_dispatch())
            .map(|(_, job)| job)
            .collect();
        assert_eq!(
            order,
            vec![("a", 0), ("b", 0), ("a", 1), ("b", 1), ("a", 2), ("a", 3)],
            "tenants alternate; within a tenant, FIFO"
        );
    }

    #[test]
    fn inflight_quota_holds_back_a_tenant_without_blocking_others() {
        let mut a = Admission::new(100, quota(1, 8, 1 << 20));
        a.offer("a", "a1", 1).unwrap();
        a.offer("a", "a2", 1).unwrap();
        a.offer("b", "b1", 1).unwrap();
        assert_eq!(a.next_dispatch(), Some(("a".into(), "a1")));
        // "a" is at max_inflight=1, so "a2" must wait; "b" proceeds.
        assert_eq!(a.next_dispatch(), Some(("b".into(), "b1")));
        assert_eq!(a.next_dispatch(), None, "everyone at quota");
        a.finish("a");
        assert_eq!(a.next_dispatch(), Some(("a".into(), "a2")));
    }

    #[test]
    fn draining_sheds_everything_and_evicts_queued() {
        let mut a = Admission::new(100, quota(8, 8, 1 << 20));
        a.offer("a", 1, 1).unwrap();
        a.offer("b", 2, 1).unwrap();
        a.set_draining();
        assert_eq!(a.offer("a", 3, 1), Err(ShedReason::Draining));
        let evicted = a.evict_queued();
        assert_eq!(evicted, vec![("a".into(), 1), ("b".into(), 2)]);
        assert_eq!(a.queued_total(), 0);
        assert_eq!(a.next_dispatch(), None);
    }

    #[test]
    fn restore_bypasses_caps_but_counts_against_them() {
        let mut a = Admission::new(1, quota(8, 1, 5));
        a.offer("t", 1, 5).unwrap();
        // Recovery ignores the global cap, the tenant depth cap and
        // the byte cap — this work was admitted before the crash.
        a.restore("t", 2, 10);
        a.restore("u", 3, 1);
        assert_eq!(a.queued_total(), 3);
        // New offers now see the restored backlog in every counter.
        assert_eq!(a.offer("t", 4, 1), Err(ShedReason::QueueFull));
        let order: Vec<i32> = std::iter::from_fn(|| a.next_dispatch())
            .map(|(_, job)| job)
            .collect();
        assert_eq!(order, vec![1, 3, 2], "restored jobs dispatch normally");
    }

    #[test]
    fn byte_accounting_releases_on_dispatch() {
        let mut a = Admission::new(100, quota(8, 8, 10));
        a.offer("t", 1, 10).unwrap();
        assert_eq!(a.offer("t", 2, 1), Err(ShedReason::TenantBytes));
        let _ = a.next_dispatch().unwrap();
        // Dispatch freed the queued bytes; new work fits again.
        assert!(a.offer("t", 3, 10).is_ok());
    }

    #[test]
    fn counters_track_lifecycle() {
        let mut a = Admission::new(2, quota(8, 8, 1 << 20));
        a.offer("t", 1, 1).unwrap();
        a.offer("t", 2, 1).unwrap();
        let _ = a.offer("t", 3, 1); // global cap shed
        let (tenant, _) = a.next_dispatch().unwrap();
        a.finish(&tenant);
        let counters = a.tenant_counters();
        assert_eq!(counters.len(), 1);
        let (name, queued, running, done, shed) = counters[0].clone();
        assert_eq!(name, "t");
        assert_eq!((queued, running, done, shed), (1, 0, 1, 1));
        assert_eq!(a.done_total(), 1);
        assert_eq!(a.shed_total(), 1);
    }

    #[test]
    fn pipeline_gate_bounds_inflight_and_releases() {
        let g = PipelineGate::new(2);
        assert!(g.try_acquire());
        assert!(g.try_acquire());
        assert!(!g.try_acquire(), "limit reached");
        assert_eq!(g.inflight(), 2);
        g.release();
        assert!(g.try_acquire(), "slot freed by a terminal reply");
        assert!(!g.try_acquire());
    }

    #[test]
    fn pipeline_gate_unconditional_acquire_overshoots_for_owed_replies() {
        let g = PipelineGate::new(1);
        assert!(g.try_acquire());
        g.acquire(); // idempotent duplicate: the reply is already owed
        assert_eq!(g.inflight(), 2);
        assert!(!g.try_acquire());
        g.release();
        g.release();
        assert_eq!(g.inflight(), 0);
    }

    #[test]
    fn pipeline_gate_release_saturates_and_limit_clamps() {
        let g = PipelineGate::new(0); // clamped to 1
        g.release(); // stray release must not underflow
        assert_eq!(g.inflight(), 0);
        assert!(g.try_acquire());
        assert!(!g.try_acquire(), "clamped limit is 1, not 0");
    }
}

//! Always-on multi-tenant simulation service.
//!
//! Turns the batch campaign runner into a long-lived server: many
//! clients submit experiment jobs over a plain TCP + JSONL protocol
//! multiplexed on one event-driven reactor thread, an admission
//! controller applies per-tenant quotas and bounded queueing with
//! typed load-shedding (plus a per-connection pipelining cap), a fair
//! scheduler dispatches over worker threads (each job fully
//! supervised — deadline watchdog, panic isolation, cancellation via
//! the same [`CancelToken`] machinery the campaign runner uses) and
//! streams `progress` frames back to submitters, and SIGTERM/ctrl-c
//! trigger a graceful bounded-time drain that journals every
//! unfinished job.
//!
//! The module splits into:
//!
//! - [`protocol`] — the wire format: request/response types and their
//!   JSONL codec (no networking);
//! - [`quota`] — admission control: [`TenantQuota`], the bounded
//!   per-tenant queues, round-robin fairness, the per-connection
//!   [`quota::PipelineGate`] (no networking, no threads — fully
//!   unit-tested in isolation);
//! - [`reactor`] — the readiness layer: raw `poll(2)`/`epoll(7)` FFI
//!   behind [`reactor::Poller`], plus the cross-thread
//!   [`reactor::Waker`];
//! - [`server`] — the TCP server: the reactor loop driving nonblocking
//!   connection I/O, the admission thread, scheduler/watchdog/drain
//!   ([`serve`], [`Server`], [`ServiceConfig`]);
//! - [`signal`] — the SIGTERM/SIGINT → drain flag bridge (and reactor
//!   wake-fd poke);
//! - [`wal`] — the crash-safe write-ahead submission log behind the
//!   no-loss/no-duplication durability contract ([`Wal`],
//!   [`WalRecord`], replay + startup compaction);
//! - [`chaos`] — a fault-injecting TCP proxy (torn frames, stalls,
//!   resets, drops; seeded) for soaking the durability contract.
//!
//! `SERVICE.md` at the repository root is the operator-facing spec:
//! the full protocol grammar, the quota and backpressure semantics,
//! and the shutdown contract. The `serve`, `client` and `loadtest`
//! binaries in `crates/bench` are thin wrappers over this module.
//!
//! [`CancelToken`]: crate::runner::CancelToken

pub mod chaos;
pub mod protocol;
pub mod quota;
pub mod reactor;
pub mod server;
pub mod signal;
pub mod wal;

pub use chaos::{ChaosConfig, ChaosProxy, ChaosReport};
pub use protocol::{Request, Response, ShedReason, Submit, TenantStatus};
pub use quota::{Admission, PipelineGate, TenantQuota};
pub use server::{serve, JobFactory, Server, ServiceConfig, ServiceReport};
pub use wal::{PendingRecovery, Wal, WalRecord, WalState};

//! Cache lines under Token Coherence, with VM tags.
//!
//! Token Coherence (Martin et al., ISCA 2003) associates a fixed number of
//! *tokens* with every memory block: holding at least one token permits
//! reading, holding all tokens permits writing, and exactly one token is
//! the *owner* token, whose holder is responsible for supplying data and
//! eventually writing a dirty block back. The classic MOESI states fall out
//! of the token counts, which is how this reproduction reports protocol
//! state.
//!
//! Virtual snooping additionally extends each cache tag with a VM
//! identifier (Section IV-B) so per-VM residence counters can be
//! maintained; [`LineTag`] is that extension.

use sim_vm::{Agent, VmId};

use crate::addr::BlockAddr;

/// Token holdings of one cache line.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TokenState {
    /// Number of tokens held (including the owner token if `owner`).
    pub tokens: u32,
    /// Whether this line holds the owner token.
    pub owner: bool,
    /// Whether the data differs from memory (meaningful only with `owner`).
    pub dirty: bool,
}

impl TokenState {
    /// A single non-owner token: a shared reader.
    pub const fn shared_one() -> Self {
        TokenState {
            tokens: 1,
            owner: false,
            dirty: false,
        }
    }

    /// All tokens plus ownership, dirty: the state after a write.
    pub const fn modified(total: u32) -> Self {
        TokenState {
            tokens: total,
            owner: true,
            dirty: true,
        }
    }

    /// Derives the MOESI state this token holding corresponds to.
    pub fn moesi(self, total_tokens: u32) -> Moesi {
        if self.tokens == 0 {
            Moesi::I
        } else if self.owner && self.dirty {
            if self.tokens == total_tokens {
                Moesi::M
            } else {
                Moesi::O
            }
        } else if self.owner {
            if self.tokens == total_tokens {
                Moesi::E
            } else {
                // Clean owner sharing with others: report S (data matches
                // memory, others may read it).
                Moesi::S
            }
        } else {
            Moesi::S
        }
    }

    /// Returns `true` if the holding permits reads (any token).
    pub const fn can_read(self) -> bool {
        self.tokens > 0
    }

    /// Returns `true` if the holding permits writes (all tokens).
    pub const fn can_write(self, total_tokens: u32) -> bool {
        self.tokens == total_tokens
    }
}

/// The classic MOESI protocol states.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Moesi {
    /// Modified: sole dirty copy.
    M,
    /// Owned: dirty copy shared with readers.
    O,
    /// Exclusive: sole clean copy.
    E,
    /// Shared: clean read-only copy.
    S,
    /// Invalid.
    I,
}

/// The agent domain a cache line belongs to, stored in the extended tag.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LineTag {
    /// Brought in by a guest VM: counted in that VM's residence counter.
    Vm(VmId),
    /// Brought in by the hypervisor or dom0: not tracked per VM.
    Host,
}

impl From<Agent> for LineTag {
    fn from(agent: Agent) -> Self {
        match agent.guest_vm() {
            Some(vm) => LineTag::Vm(vm),
            None => LineTag::Host,
        }
    }
}

/// One cache line: block identity, token holdings, VM tag, LRU timestamp.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheLine {
    /// The cached block.
    pub block: BlockAddr,
    /// Token holdings.
    pub state: TokenState,
    /// VM / host tag for residence accounting.
    pub tag: LineTag,
    /// Last-use timestamp maintained by the cache for LRU replacement.
    pub last_use: u64,
}

impl CacheLine {
    /// Creates a line; the cache sets `last_use` on insertion.
    pub fn new(block: BlockAddr, state: TokenState, tag: LineTag) -> Self {
        CacheLine {
            block,
            state,
            tag,
            last_use: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_vm::VcpuId;

    const TOTAL: u32 = 16;

    #[test]
    fn moesi_derivation() {
        assert_eq!(
            TokenState {
                tokens: 0,
                owner: false,
                dirty: false
            }
            .moesi(TOTAL),
            Moesi::I
        );
        assert_eq!(TokenState::modified(TOTAL).moesi(TOTAL), Moesi::M);
        assert_eq!(
            TokenState {
                tokens: 5,
                owner: true,
                dirty: true
            }
            .moesi(TOTAL),
            Moesi::O
        );
        assert_eq!(
            TokenState {
                tokens: TOTAL,
                owner: true,
                dirty: false
            }
            .moesi(TOTAL),
            Moesi::E
        );
        assert_eq!(TokenState::shared_one().moesi(TOTAL), Moesi::S);
        assert_eq!(
            TokenState {
                tokens: 3,
                owner: true,
                dirty: false
            }
            .moesi(TOTAL),
            Moesi::S
        );
    }

    #[test]
    fn permissions() {
        assert!(TokenState::shared_one().can_read());
        assert!(!TokenState::shared_one().can_write(TOTAL));
        assert!(TokenState::modified(TOTAL).can_write(TOTAL));
        assert!(!TokenState {
            tokens: 0,
            owner: false,
            dirty: false
        }
        .can_read());
    }

    #[test]
    fn tag_from_agent() {
        let guest = Agent::Guest(VcpuId::new(VmId::new(2), 0));
        assert_eq!(LineTag::from(guest), LineTag::Vm(VmId::new(2)));
        assert_eq!(LineTag::from(Agent::Dom0), LineTag::Host);
        assert_eq!(LineTag::from(Agent::Hypervisor), LineTag::Host);
    }
}

//! Live-tails a campaign's telemetry stream.
//!
//! Every supervised run with tracing on (`--trace-dir DIR` on the
//! campaign binaries, or `VSNOOP_TRACE=DIR`) appends heartbeat and
//! job-lifecycle records to `<dir>/telemetry.jsonl`. This binary
//! follows that file like `tail -f`, so a long soak or campaign can be
//! watched from a second terminal without touching its stdout:
//!
//! ```text
//! obs_tail [--trace-dir DIR] [--once] [--interval-ms N]
//! ```
//!
//! The trace directory comes from `--trace-dir`, else `VSNOOP_TRACE`.
//! Lines are passed through verbatim (they are already one JSON object
//! per line — see OBSERVABILITY.md for the schema), so the output
//! composes with `jq`-style filters. `--once` prints whatever the file
//! holds right now and exits — the mode the verify script and CI use.
//! A shrinking file (a fresh run reusing the directory) resets the
//! tail to the new beginning.

use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

struct Cli {
    dir: Option<PathBuf>,
    once: bool,
    interval: Duration,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        dir: None,
        once: false,
        interval: Duration::from_millis(500),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--trace-dir" => cli.dir = Some(PathBuf::from(value("--trace-dir")?)),
            "--once" => cli.once = true,
            "--interval-ms" => {
                let ms: u64 = value("--interval-ms")?
                    .parse()
                    .map_err(|e| format!("--interval-ms: {e}"))?;
                cli.interval = Duration::from_millis(ms.max(1));
            }
            "--help" | "-h" => {
                return Err(
                    "usage: obs_tail [--trace-dir DIR] [--once] [--interval-ms N]\n\
                     follows <dir>/telemetry.jsonl (dir from --trace-dir or VSNOOP_TRACE)"
                        .into(),
                );
            }
            other => return Err(format!("unknown argument: {other} (try --help)")),
        }
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let dir = cli
        .dir
        .or_else(|| std::env::var("VSNOOP_TRACE").ok().map(PathBuf::from));
    let Some(dir) = dir else {
        eprintln!("obs_tail: no trace directory (pass --trace-dir or set VSNOOP_TRACE)");
        return ExitCode::from(2);
    };
    let path = dir.join("telemetry.jsonl");

    let stdout = std::io::stdout();
    let mut offset: u64 = 0;
    let mut warned = false;
    loop {
        match std::fs::File::open(&path) {
            Ok(mut file) => {
                let len = file.metadata().map(|m| m.len()).unwrap_or(0);
                if len < offset {
                    // Truncated by a fresh run: start over.
                    offset = 0;
                }
                if len > offset && file.seek(SeekFrom::Start(offset)).is_ok() {
                    let mut chunk = String::new();
                    if file.read_to_string(&mut chunk).is_ok() {
                        // Hold partial trailing lines back until the
                        // writer finishes them.
                        let complete = chunk.rfind('\n').map_or(0, |i| i + 1);
                        let mut out = stdout.lock();
                        if out.write_all(&chunk.as_bytes()[..complete]).is_err()
                            || out.flush().is_err()
                        {
                            return ExitCode::SUCCESS; // downstream pipe closed
                        }
                        offset += complete as u64;
                    }
                }
            }
            Err(e) => {
                if cli.once {
                    eprintln!("obs_tail: {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                if !warned {
                    eprintln!("obs_tail: waiting for {}", path.display());
                    warned = true;
                }
            }
        }
        if cli.once {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(cli.interval);
    }
}

//! Quickstart: build the paper's 16-core machine, run one workload under
//! TokenB and under virtual snooping, and compare snoops and traffic.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use virtual_snooping::prelude::*;

fn run(policy: FilterPolicy) -> (u64, u64, u64) {
    let cfg = SystemConfig::paper_default();
    let mut sim = Simulator::new(cfg, policy, ContentPolicy::Broadcast);
    let mut wl = Workload::homogeneous(
        profile("ferret").expect("registered workload"),
        cfg.n_vms,
        WorkloadConfig {
            vcpus_per_vm: cfg.vcpus_per_vm,
            ..Default::default()
        },
    );
    // Warm the caches, then measure.
    sim.run(&mut wl, 20_000);
    sim.reset_measurement();
    sim.run(&mut wl, 40_000);
    (
        sim.stats().l2_misses,
        sim.stats().snoops,
        sim.traffic().byte_links(),
    )
}

fn main() {
    println!("Virtual snooping quickstart: 4 VMs x 4 vCPUs of `ferret` on 16 cores\n");

    let (misses_b, snoops_b, traffic_b) = run(FilterPolicy::TokenBroadcast);
    let (misses_v, snoops_v, traffic_v) = run(FilterPolicy::VsnoopBase);

    assert_eq!(misses_b, misses_v, "same trace, same misses");
    println!("L2 misses (coherence transactions): {misses_b}");
    println!();
    println!("                         tokenB       vsnoop");
    println!("snoop tag lookups   {snoops_b:>12} {snoops_v:>12}");
    println!("traffic (byte-links){traffic_b:>12} {traffic_v:>12}");
    println!();
    println!(
        "snoops filtered:   {:.1}% (ideal for 4-core domains on 16 cores: 75%)",
        100.0 * (1.0 - snoops_v as f64 / snoops_b as f64)
    );
    println!(
        "traffic reduction: {:.1}% (paper Table IV: 62-64%)",
        100.0 * (1.0 - traffic_v as f64 / traffic_b as f64)
    );
}

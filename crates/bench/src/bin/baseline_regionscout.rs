//! Baseline comparison: virtual snooping vs. a RegionScout-style
//! coarse-grain region filter vs. broadcast, on snoops, traffic, and
//! energy.
//!
//! The paper's related-work argument, quantified: region-granularity
//! filters need per-core tables whose reach bounds their coverage, and
//! they cannot multicast — they either skip snooping entirely (verified
//! private regions) or broadcast. Virtual snooping reaches the same
//! decision from two page-table bits and an n-bit register, and filters
//! *every* VM-private miss.

use vsnoop::experiments::run_pinned;
use vsnoop::{ContentPolicy, EnergyModel, FilterPolicy, SystemConfig};
use vsnoop_bench::{f1, heading, scale_from_env, TextTable};
use workloads::simulation_apps;

fn main() {
    vsnoop_bench::init_obs();
    heading(
        "Baseline: RegionScout-style region filter vs virtual snooping",
        "All values relative to the TokenB broadcast baseline (100%).\n\
         RegionScout: 4 KB regions, 64-entry not-shared-region tables.",
    );
    let cfg = SystemConfig::paper_default();
    let scale = scale_from_env();
    let energy = EnergyModel::default();
    let mut t = TextTable::new([
        "workload",
        "snoops rs %",
        "snoops vsnoop %",
        "traffic rs %",
        "traffic vsnoop %",
        "snoop energy rs %",
        "snoop energy vsnoop %",
    ]);
    for app in simulation_apps() {
        let base = run_pinned(
            app,
            FilterPolicy::TokenBroadcast,
            ContentPolicy::Broadcast,
            false,
            false,
            cfg,
            scale,
        );
        let rs = run_pinned(
            app,
            FilterPolicy::REGION_SCOUT_4K,
            ContentPolicy::Broadcast,
            false,
            false,
            cfg,
            scale,
        );
        let vs = run_pinned(
            app,
            FilterPolicy::VsnoopBase,
            ContentPolicy::Broadcast,
            false,
            false,
            cfg,
            scale,
        );
        let eb = energy.breakdown(base.stats(), base.traffic());
        let ers = energy.breakdown(rs.stats(), rs.traffic());
        let evs = energy.breakdown(vs.stats(), vs.traffic());
        t.row([
            app.name.to_string(),
            f1(100.0 * rs.stats().snoops as f64 / base.stats().snoops.max(1) as f64),
            f1(100.0 * vs.stats().snoops as f64 / base.stats().snoops.max(1) as f64),
            f1(100.0 * rs.traffic().byte_links() as f64
                / base.traffic().byte_links().max(1) as f64),
            f1(100.0 * vs.traffic().byte_links() as f64
                / base.traffic().byte_links().max(1) as f64),
            f1(100.0 * ers.snoop_pj() / eb.snoop_pj().max(1e-9)),
            f1(100.0 * evs.snoop_pj() / eb.snoop_pj().max(1e-9)),
        ]);
    }
    t.maybe_dump_csv("baseline_regionscout").expect("csv dump");
    println!("{t}");
}

//! Canonical report text for every paper artifact.
//!
//! Each function renders one figure/table of the paper to a `String`
//! that is byte-for-byte what the corresponding standalone binary prints
//! to stdout. The binaries are thin wrappers over these functions, and
//! the campaign runner journals the same strings — which is what makes a
//! resumed campaign's merged output bit-identical to an uninterrupted
//! run.
//!
//! Errors are reported as `Err(String)` (missing sweep points, CSV dump
//! failures, unknown profiles) so the supervisor can journal them as
//! typed job failures instead of unwinding.

use vsnoop::experiments::fig10 as fig10_rows;
use vsnoop::experiments::{
    cdf, fig1 as fig1_rows, fig2_validation as fig2_validation_rows, fig3_table1,
    migration_policies, migration_sweep, removal_periods, table4_fig6, table5 as table5_rows,
    table6 as table6_rows, RunScale,
};
use vsnoop::{fig2_sweep, ContentPolicy, SystemConfig};
use workloads::{content_apps, simulation_apps};

use crate::{f1, f2, heading_string, opt, TextTable};

fn csv(t: &TextTable, name: &str) -> Result<(), String> {
    t.maybe_dump_csv(name).map_err(|e| format!("csv dump: {e}"))
}

/// Fig. 1 — L2 miss decomposition: Xen / dom0 / guest VMs.
///
/// # Errors
///
/// Returns a message on CSV-dump failure.
pub fn fig1(scale: RunScale) -> Result<String, String> {
    let mut out = heading_string(
        "Figure 1: L2 miss decomposition (hypervisor / dom0 / guest)",
        "Two VMs (4 vCPUs each) per application, host activity enabled.\n\
         Paper: <5% host share for most PARSEC apps (dedup 11%, freqmine 8%,\n\
         raytrace 7%), OLTP 15%, SPECweb 19%.",
    );
    let mut t = TextTable::new([
        "workload",
        "guest %",
        "dom0 %",
        "xen %",
        "host total %",
        "paper host %",
    ]);
    for r in fig1_rows(scale) {
        t.row([
            r.name.to_string(),
            f1(r.guest_pct),
            f1(r.dom0_pct),
            f1(r.hyp_pct),
            f1(r.host_pct()),
            opt(r.paper_host_pct),
        ]);
    }
    csv(&t, "fig1")?;
    out.push_str(&format!("{t}\n"));
    Ok(out)
}

/// Fig. 2 — potential snoop reductions (analytic model).
///
/// # Errors
///
/// Returns a message on CSV-dump failure.
pub fn fig2(_scale: RunScale) -> Result<String, String> {
    let mut out = heading_string(
        "Figure 2: potential snoop reduction (analytic model)",
        "VMs of 4 vCPUs on 4*V cores; curves are hypervisor transaction\n\
         ratios. Paper: >93% ideal at 16 VMs; 84-89% at 5-10%.",
    );
    let pts = fig2_sweep();
    let mut t = TextTable::new(["VMs", "cores", "ideal", "5%", "10%", "20%", "30%", "40%"]);
    for &n_vms in &[2usize, 4, 8, 16] {
        let row_pts: Vec<_> = pts.iter().filter(|p| p.n_vms == n_vms).collect();
        let mut cells = vec![n_vms.to_string(), (4 * n_vms).to_string()];
        for p in row_pts {
            cells.push(f1(p.reduction_pct));
        }
        t.row(cells);
    }
    csv(&t, "fig2")?;
    out.push_str(&format!("{t}\n"));
    Ok(out)
}

/// Fig. 2 cross-validation: closed form vs. measured simulation.
///
/// # Errors
///
/// Returns a message on sweep or CSV-dump failure.
pub fn fig2_validation(scale: RunScale) -> Result<String, String> {
    let mut out = heading_string(
        "Figure 2 validation: analytic model vs measured simulation",
        "Pinned VMs of 4 vCPUs on 8..64 cores (ferret), with and without\n\
         hypervisor activity. The closed form the paper plots should match\n\
         what the simulator actually measures.",
    );
    let mut t = TextTable::new([
        "VMs",
        "cores",
        "host miss %",
        "measured reduction %",
        "analytic %",
        "gap pp",
    ]);
    for r in fig2_validation_rows(scale).map_err(|e| e.to_string())? {
        t.row([
            r.n_vms.to_string(),
            r.cores.to_string(),
            f1(r.host_miss_pct),
            f1(r.measured_pct),
            f1(r.analytic_pct),
            f1(r.gap_pp()),
        ]);
    }
    csv(&t, "fig2_validation")?;
    out.push_str(&format!("{t}\n"));
    Ok(out)
}

/// Fig. 3 — pinning vs full migration, under- and overcommitted.
///
/// # Errors
///
/// Returns a message on CSV-dump failure.
pub fn fig3(_scale: RunScale) -> Result<String, String> {
    let mut out = heading_string(
        "Figure 3: normalized execution time, no-migration vs full-migration",
        "8 cores; (a) undercommitted: 2 VMs x 4 vCPUs; (b) overcommitted:\n\
         4 VMs x 4 vCPUs. 100% = the slower policy. Paper: pinning wins\n\
         undercommitted, full migration wins overcommitted.",
    );
    let rows = fig3_table1(7);
    let mut t = TextTable::new([
        "workload",
        "under no-mig %",
        "under full %",
        "over no-mig %",
        "over full %",
    ]);
    for r in &rows {
        let (up, uf) = r.under_normalized();
        let (op, of) = r.over_normalized();
        t.row([r.name.to_string(), f1(up), f1(uf), f1(op), f1(of)]);
    }
    csv(&t, "fig3")?;
    out.push_str(&format!("{t}\n"));
    Ok(out)
}

/// Table I — average VM relocation periods.
///
/// # Errors
///
/// Returns a message on CSV-dump failure.
pub fn table1(_scale: RunScale) -> Result<String, String> {
    let mut out = heading_string(
        "Table I: average vCPU relocation periods (ms), full migration",
        "Measured under the credit-scheduler model; paper values from the\n\
         real Xen 4.0 testbed. Shape to preserve: overcommitted periods are\n\
         much shorter; CPU-bound apps (blackscholes, swaptions, freqmine)\n\
         migrate rarely; I/O-heavy apps (dedup, vips) migrate constantly.",
    );
    let rows = fig3_table1(7);
    let mut t = TextTable::new([
        "workload",
        "undercommit ms",
        "paper",
        "overcommit ms",
        "paper",
    ]);
    for r in &rows {
        t.row([
            r.name.to_string(),
            opt(r.reloc_under_ms),
            opt(r.paper_under_ms),
            opt(r.reloc_over_ms),
            opt(r.paper_over_ms),
        ]);
    }
    csv(&t, "table1")?;
    out.push_str(&format!("{t}\n"));
    Ok(out)
}

/// Table II — simulated system configuration.
///
/// # Errors
///
/// Returns a message on CSV-dump failure.
pub fn table2(_scale: RunScale) -> Result<String, String> {
    let mut out = heading_string(
        "Table II: simulated system configuration",
        "The machine every simulation experiment runs on.",
    );
    let c = SystemConfig::paper_default();
    let mut t = TextTable::new(["parameter", "value"]);
    t.row(["Processors", &format!("{} in-order cores", c.n_cores())]);
    t.row([
        "L1 I/D cache",
        &format!(
            "{}KB, {}-way, 64B block, {} cycle latency",
            c.l1_bytes / 1024,
            c.l1_ways,
            c.l1_latency
        ),
    ]);
    t.row([
        "L2 cache",
        &format!(
            "{}KB, {}-way, 64B block, {} cycle latency",
            c.l2_bytes / 1024,
            c.l2_ways,
            c.l2_latency
        ),
    ]);
    t.row(["Coherence", "Token Coherence (TokenB), MOESI"]);
    t.row([
        "On-chip network",
        &format!(
            "{}x{} 2D mesh, {}B links, {}-cycle routers",
            c.mesh_width, c.mesh_height, c.network.link_bytes, c.network.router_cycles
        ),
    ]);
    t.row(["Memory latency", &format!("{} cycles", c.memory_latency)]);
    t.row([
        "VMs",
        &format!("{} VMs x {} vCPUs", c.n_vms, c.vcpus_per_vm),
    ]);
    t.row([
        "Clock scaling",
        &format!("{} cycles per scaled ms", c.cycles_per_ms),
    ]);
    csv(&t, "table2")?;
    out.push_str(&format!("{t}\n"));
    Ok(out)
}

/// Table III — application profiles.
///
/// # Errors
///
/// Returns a message on CSV-dump failure.
pub fn table3(_scale: RunScale) -> Result<String, String> {
    let mut out = heading_string(
        "Table III: simulated applications and their synthetic parameters",
        "The paper lists the real input sets (e.g. fft: 4M points); this\n\
         reproduction lists the calibrated trace-generator parameters that\n\
         stand in for them (per VM).",
    );
    let mut t = TextTable::new([
        "application",
        "suite",
        "private pages",
        "zipf",
        "write frac",
        "content frac",
        "content pages",
    ]);
    for app in simulation_apps() {
        let p = app.trace;
        t.row([
            app.name.to_string(),
            format!("{:?}", app.suite),
            p.private_pages.to_string(),
            f2(p.zipf_s),
            f2(p.write_frac),
            f2(p.content_frac),
            p.content_pages.to_string(),
        ]);
    }
    csv(&t, "table3")?;
    out.push_str(&format!("{t}\n"));
    Ok(out)
}

/// Table IV — network traffic reduction with pinned VMs.
///
/// # Errors
///
/// Returns a message on CSV-dump failure.
pub fn table4(scale: RunScale) -> Result<String, String> {
    let mut out = heading_string(
        "Table IV: network traffic reduction of virtual snooping (pinned VMs)",
        "4 VMs x 4 vCPUs pinned on 16 cores, no host activity (as in\n\
         Virtual-GEMS). Paper: 62-64% across all applications; snoop\n\
         reduction is exactly 75%.",
    );
    let rows = table4_fig6(scale);
    let mut t = TextTable::new([
        "workload",
        "traffic reduction %",
        "paper %",
        "snoops vs tokenB %",
    ]);
    let mut sum = 0.0;
    for r in &rows {
        sum += r.traffic_reduction_pct;
        t.row([
            r.name.to_string(),
            f1(r.traffic_reduction_pct),
            opt(r.paper_traffic_reduction_pct),
            f1(r.norm_snoops_pct),
        ]);
    }
    t.row([
        "Average".to_string(),
        f1(sum / rows.len() as f64),
        "63.7".to_string(),
        String::new(),
    ]);
    csv(&t, "table4")?;
    out.push_str(&format!("{t}\n"));
    Ok(out)
}

/// Fig. 6 — execution times with pinned VMs.
///
/// # Errors
///
/// Returns a message on CSV-dump failure.
pub fn fig6(scale: RunScale) -> Result<String, String> {
    let mut out = heading_string(
        "Figure 6: execution time normalized to TokenB (pinned VMs)",
        "Paper: virtual snooping improves runtime by 0.2-9.1% (avg 3.8%) —\n\
         modest, because network bandwidth is not saturated; the main win\n\
         is snoop power/bandwidth.",
    );
    let rows = table4_fig6(scale);
    let mut t = TextTable::new(["workload", "vsnoop runtime %", "improvement %"]);
    let mut sum = 0.0;
    for r in &rows {
        sum += 100.0 - r.norm_runtime_pct;
        t.row([
            r.name.to_string(),
            f1(r.norm_runtime_pct),
            f1(100.0 - r.norm_runtime_pct),
        ]);
    }
    t.row([
        "Average".to_string(),
        String::new(),
        f1(sum / rows.len() as f64),
    ]);
    csv(&t, "fig6")?;
    out.push_str(&format!("{t}\n"));
    Ok(out)
}

fn migration_figure(
    title: &str,
    context: &str,
    periods: [f64; 2],
    csv_name: &str,
    scale: RunScale,
) -> Result<String, String> {
    let mut out = heading_string(title, context);
    let points = migration_sweep(&periods, scale.for_migration());
    let mut t = TextTable::new([
        "workload",
        "period ms",
        "vsnoop-base %",
        "counter %",
        "counter-thr %",
    ]);
    for app in simulation_apps() {
        for period in periods {
            let mut cells = vec![app.name.to_string(), format!("{period}")];
            for policy in migration_policies() {
                let p = points
                    .iter()
                    .find(|p| {
                        p.name == app.name
                            && (p.period_ms - period).abs() < 1e-9
                            && p.policy == policy
                    })
                    .ok_or_else(|| {
                        format!("sweep point missing: {} @ {period} ms {policy:?}", app.name)
                    })?;
                cells.push(f1(p.norm_snoops_pct));
            }
            t.row(cells);
        }
    }
    csv(&t, csv_name)?;
    out.push_str(&format!("{t}\n"));
    Ok(out)
}

/// Fig. 7 — total snoops, relocation every 5 / 2.5 scaled ms.
///
/// # Errors
///
/// Returns a message on missing sweep points or CSV-dump failure.
pub fn fig7(scale: RunScale) -> Result<String, String> {
    migration_figure(
        "Figure 7: normalized total snoops, vCPU relocated every 5 / 2.5 ms",
        "Percent of the TokenB baseline (ideal = 25%). Paper: the counter\n\
         mechanism stays close to ideal at these periods; vsnoop-base\n\
         degrades as maps only grow.",
        [5.0, 2.5],
        "fig7",
        scale,
    )
}

/// Fig. 8 — total snoops, relocation every 0.5 / 0.1 scaled ms.
///
/// # Errors
///
/// Returns a message on missing sweep points or CSV-dump failure.
pub fn fig8(scale: RunScale) -> Result<String, String> {
    migration_figure(
        "Figure 8: normalized total snoops, vCPU relocated every 0.5 / 0.1 ms",
        "Percent of the TokenB baseline (ideal = 25%). Paper: at 0.1 ms\n\
         vsnoop-base only reduces ~4% of snoops; the counter mechanism\n\
         still reduces ~45%; counter-threshold adds a small increment.",
        [0.5, 0.1],
        "fig8",
        scale,
    )
}

/// Fig. 9 — CDF of core-removal periods.
///
/// # Errors
///
/// Returns a message on CSV-dump failure.
pub fn fig9(scale: RunScale) -> Result<String, String> {
    let mut out = heading_string(
        "Figure 9: CDF of core-removal periods (counter, 5 ms migrations)",
        "Time from a vCPU's departure until its old core is removed from\n\
         the VM's map. Paper: most removals complete within ~10 ms;\n\
         blackscholes' counters never reach zero (small L2 working set).",
    );
    let cfg = SystemConfig::paper_default();
    let samples = removal_periods(scale.for_migration());
    out.push_str(&format!("{} removal events collected\n\n", samples.len()));

    // Aggregate CDF over all applications, reported at decile points.
    let mut all: Vec<u64> = samples.iter().map(|s| s.period_cycles).collect();
    if all.is_empty() {
        out.push_str("no removal events (run with a larger scale)\n");
        return Ok(out);
    }
    let curve = cdf(&mut all);
    let mut t = TextTable::new(["fraction of removals", "within (scaled ms)"]);
    for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 1.0] {
        let idx = ((curve.len() as f64 * q).ceil() as usize).clamp(1, curve.len()) - 1;
        let ms = curve[idx].0 as f64 / cfg.cycles_per_ms as f64;
        t.row([format!("{:.0}%", q * 100.0), f1(ms)]);
    }
    csv(&t, "fig9")?;
    out.push_str(&format!("{t}\n"));

    // Per-application medians, to expose the slow outliers the paper
    // highlights (radix, ferret) and blackscholes' absence.
    let mut t2 = TextTable::new(["workload", "removals", "median ms", "p90 ms"]);
    for app in simulation_apps() {
        let mut xs: Vec<u64> = samples
            .iter()
            .filter(|s| s.name == app.name)
            .map(|s| s.period_cycles)
            .collect();
        if xs.is_empty() {
            t2.row([app.name.to_string(), "0".into(), "-".into(), "-".into()]);
            continue;
        }
        xs.sort_unstable();
        let med = xs[xs.len() / 2] as f64 / cfg.cycles_per_ms as f64;
        let p90 = xs[(xs.len() * 9 / 10).min(xs.len() - 1)] as f64 / cfg.cycles_per_ms as f64;
        t2.row([app.name.to_string(), xs.len().to_string(), f1(med), f1(p90)]);
    }
    csv(&t2, "fig9_t2")?;
    out.push_str(&format!("{t2}\n"));
    Ok(out)
}

/// Table V — content-shared accesses and misses.
///
/// # Errors
///
/// Returns a message on CSV-dump failure.
pub fn table5(scale: RunScale) -> Result<String, String> {
    let mut out = heading_string(
        "Table V: L1 accesses and L2 misses to content-shared pages",
        "4 VMs of the same application, ideal dedup scan. Paper: only\n\
         fft / blackscholes / canneal / specjbb exceed 30% of L2 misses;\n\
         radix accesses content heavily but almost never misses on it.",
    );
    let rows = table5_rows(scale);
    let mut t = TextTable::new(["workload", "access %", "paper", "L2 miss %", "paper"]);
    let (mut sa, mut sm) = (0.0, 0.0);
    for r in &rows {
        sa += r.access_pct;
        sm += r.miss_pct;
        t.row([
            r.name.to_string(),
            f1(r.access_pct),
            opt(r.paper_access_pct),
            f1(r.miss_pct),
            opt(r.paper_miss_pct),
        ]);
    }
    let n = rows.len() as f64;
    t.row([
        "Average".to_string(),
        f1(sa / n),
        "12.5".to_string(),
        f1(sm / n),
        "19.9".to_string(),
    ]);
    csv(&t, "table5")?;
    out.push_str(&format!("{t}\n"));
    Ok(out)
}

/// Fig. 10 — snoops under the content-sharing optimizations.
///
/// # Errors
///
/// Returns a message on missing rows or CSV-dump failure.
pub fn fig10(scale: RunScale) -> Result<String, String> {
    let mut out = heading_string(
        "Figure 10: snoops by content-page routing, normalized to TokenB",
        "Measured (the paper estimates these). Paper shape: memory-direct\n\
         has the fewest snoops (often below the 25% ideal), then intra-VM,\n\
         then friend-VM; all beat vsnoop-broadcast on the four apps with\n\
         heavy content sharing (fft, blackscholes, canneal, specjbb).",
    );
    let rows = fig10_rows(scale);
    let mut t = TextTable::new([
        "workload",
        "vsnoop-broadcast %",
        "memory-direct %",
        "intra-VM %",
        "friend-VM %",
    ]);
    for app in content_apps() {
        let get = |p: ContentPolicy| {
            rows.iter()
                .find(|r| r.name == app.name && r.policy == p)
                .map(|r| r.norm_snoops_pct)
                .ok_or_else(|| format!("row missing: {} under {p:?}", app.name))
        };
        t.row([
            app.name.to_string(),
            f1(get(ContentPolicy::Broadcast)?),
            f1(get(ContentPolicy::MemoryDirect)?),
            f1(get(ContentPolicy::IntraVm)?),
            f1(get(ContentPolicy::FriendVm)?),
        ]);
    }
    csv(&t, "fig10")?;
    out.push_str(&format!("{t}\n"));
    Ok(out)
}

/// Table VI — potential data holders for content-shared misses.
///
/// # Errors
///
/// Returns a message on CSV-dump failure.
pub fn table6(scale: RunScale) -> Result<String, String> {
    let mut out = heading_string(
        "Table VI: potential data holders for content-shared L2 misses",
        "Who could supply each content-shared read miss. Paper (fft /\n\
         blacksch. / canneal / specjbb): some cache 47-64%, intra-VM\n\
         0.1-27%, friend-VM +21-28%, memory-only 37-53%.",
    );
    let rows = table6_rows(scale);
    let mut t = TextTable::new([
        "workload",
        "cache: all %",
        "cache: intra-VM %",
        "cache: friend-VM %",
        "memory %",
    ]);
    for r in &rows {
        t.row([
            r.name.to_string(),
            f1(r.cache_all_pct),
            f1(r.cache_intra_pct),
            f1(r.cache_friend_pct),
            f1(r.memory_pct),
        ]);
    }
    csv(&t, "table6")?;
    out.push_str(&format!("{t}\n"));
    Ok(out)
}

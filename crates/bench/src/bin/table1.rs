//! Table I — average VM relocation periods (milliseconds).

use vsnoop::experiments::fig3_table1;
use vsnoop_bench::{heading, opt, TextTable};

fn main() {
    heading(
        "Table I: average vCPU relocation periods (ms), full migration",
        "Measured under the credit-scheduler model; paper values from the\n\
         real Xen 4.0 testbed. Shape to preserve: overcommitted periods are\n\
         much shorter; CPU-bound apps (blackscholes, swaptions, freqmine)\n\
         migrate rarely; I/O-heavy apps (dedup, vips) migrate constantly.",
    );
    let rows = fig3_table1(7);
    let mut t = TextTable::new([
        "workload",
        "undercommit ms",
        "paper",
        "overcommit ms",
        "paper",
    ]);
    for r in &rows {
        t.row([
            r.name.to_string(),
            opt(r.reloc_under_ms),
            opt(r.paper_under_ms),
            opt(r.reloc_over_ms),
            opt(r.paper_over_ms),
        ]);
    }
    t.maybe_dump_csv("table1").expect("csv dump");
    println!("{t}");
}

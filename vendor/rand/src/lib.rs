//! Vendored, dependency-free stand-in for the subset of `rand` 0.8 this
//! workspace uses, so the whole tree builds and tests with **no network or
//! registry access**.
//!
//! The workspace maps the `rand` dependency name onto this package
//! (`rand = { path = "vendor/rand", package = "vsnoop-rand" }`), so every
//! existing `use rand::...` call site compiles unchanged.
//!
//! Provided surface:
//!
//! * [`rngs::SmallRng`] — xoshiro256\*\* (Blackman/Vigna), seeded via
//!   SplitMix64 exactly as the reference implementation recommends.
//! * [`SeedableRng::seed_from_u64`] — deterministic seeding.
//! * [`Rng::gen`] for `f64` (uniform in `[0, 1)`), `bool`, and the unsigned
//!   integer types.
//! * [`Rng::gen_range`] over half-open `Range` bounds for the integer types.
//!
//! Streams are deterministic and reproducible for a given seed, which is all
//! the simulator needs; they intentionally do *not* match the byte streams
//! of upstream `rand` (upstream never guaranteed cross-version stability
//! either, so no experiment in this repo may depend on exact draws).

#![warn(missing_docs)]

use core::ops::Range;

/// SplitMix64 step: the canonical seed-expansion generator.
///
/// Used to derive the xoshiro256** state from a single `u64` seed; also a
/// fine tiny generator on its own (the checker uses it for probe patterns).
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be sampled uniformly from a generator's raw output.
///
/// Mirrors the role of `rand::distributions::Standard` without the
/// distribution plumbing: `rng.gen::<T>()` works for every `T: Sample`.
pub trait Sample: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for f64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_sample_uint {
    ($($t:ty),*) => {$(
        impl Sample for $t {
            #[inline]
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_sample_uint!(u8, u16, u32, u64, usize);

/// Half-open ranges a generator can sample from, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Debiased multiply-shift (Lemire): uniform over [0, span).
                let mut x = rng.next_u64();
                let mut m = (x as u128).wrapping_mul(span as u128);
                let mut lo = m as u64;
                if lo < span {
                    let t = span.wrapping_neg() % span;
                    while lo < t {
                        x = rng.next_u64();
                        m = (x as u128).wrapping_mul(span as u128);
                        lo = m as u64;
                    }
                }
                self.start + (m >> 64) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The generator trait: the subset of `rand::Rng` the workspace calls.
pub trait Rng {
    /// Returns the next 64 raw bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniformly distributed value of type `T`.
    #[inline]
    fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range` (half-open).
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator implementations (mirrors `rand::rngs`).
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// xoshiro256\*\* — a small, fast, high-quality generator; the offline
    /// replacement for `rand::rngs::SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        /// Builds a generator from full 256-bit state.
        ///
        /// At least one word must be non-zero; `seed_from_u64` guarantees
        /// that by construction.
        pub fn from_state(s: [u64; 4]) -> SmallRng {
            assert!(s.iter().any(|&w| w != 0), "xoshiro state must be non-zero");
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // SplitMix64 expansion, per the xoshiro reference code.
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl<R: Rng + ?Sized> Rng for &mut R {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            (**self).next_u64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all bucket values should appear");
        for _ in 0..1000 {
            let v = rng.gen_range(0u16..4);
            assert!(v < 4);
        }
    }

    #[test]
    fn works_through_unsized_bound() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = SmallRng::seed_from_u64(3);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut rng = SmallRng::seed_from_u64(1234);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }
}

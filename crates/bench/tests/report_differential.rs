//! Differential guard over the paper artifacts: every one of the 15
//! figure/table reports must be byte-identical whether the simulators
//! inside it run on the optimized engine or on the frozen pre-optimization
//! reference engine.
//!
//! One `#[test]` on purpose: the engine toggle is process-global, so the
//! two passes of each artifact must not interleave with other tests
//! building simulators.

use vsnoop::experiments::RunScale;
use vsnoop_bench::campaign::artifact_names;
use vsnoop_bench::reports;

type ReportFn = fn(RunScale) -> Result<String, String>;

/// Campaign order (checked against `artifact_names` below).
const BINS: &[(&str, ReportFn)] = &[
    ("fig1", reports::fig1),
    ("fig2", reports::fig2),
    ("fig2_validation", reports::fig2_validation),
    ("fig3", reports::fig3),
    ("table1", reports::table1),
    ("table2", reports::table2),
    ("table3", reports::table3),
    ("table4", reports::table4),
    ("fig6", reports::fig6),
    ("fig7", reports::fig7),
    ("fig8", reports::fig8),
    ("fig9", reports::fig9),
    ("table5", reports::table5),
    ("fig10", reports::fig10),
    ("table6", reports::table6),
];

#[test]
fn all_reports_identical_under_both_engines() {
    let names: Vec<&str> = BINS.iter().map(|b| b.0).collect();
    assert_eq!(
        names,
        artifact_names(),
        "guard must cover exactly the campaign artifacts"
    );

    let scale = RunScale {
        warmup_rounds: 20,
        measure_rounds: 30,
        seed: 7,
    };
    for (name, run) in BINS {
        vsnoop::testing::set_reference_engine(false);
        let fast = run(scale);
        vsnoop::testing::set_reference_engine(true);
        let reference = run(scale);
        vsnoop::testing::set_reference_engine(false);
        match (fast, reference) {
            (Ok(f), Ok(r)) => {
                assert!(
                    f == r,
                    "report {name} diverged between engines:\n--- fast ---\n{f}\n--- reference ---\n{r}"
                );
                assert!(!f.is_empty(), "report {name} must produce output");
            }
            (f, r) => panic!("report {name} failed: fast={f:?} reference={r:?}"),
        }
    }
}

//! Table V — percentages of L1 accesses and L2 misses on content-shared
//! pages.

use vsnoop::experiments::table5;
use vsnoop_bench::{f1, heading, opt, scale_from_env, TextTable};

fn main() {
    heading(
        "Table V: L1 accesses and L2 misses to content-shared pages",
        "4 VMs of the same application, ideal dedup scan. Paper: only\n\
         fft / blackscholes / canneal / specjbb exceed 30% of L2 misses;\n\
         radix accesses content heavily but almost never misses on it.",
    );
    let rows = table5(scale_from_env());
    let mut t = TextTable::new(["workload", "access %", "paper", "L2 miss %", "paper"]);
    let (mut sa, mut sm) = (0.0, 0.0);
    for r in &rows {
        sa += r.access_pct;
        sm += r.miss_pct;
        t.row([
            r.name.to_string(),
            f1(r.access_pct),
            opt(r.paper_access_pct),
            f1(r.miss_pct),
            opt(r.paper_miss_pct),
        ]);
    }
    let n = rows.len() as f64;
    t.row([
        "Average".to_string(),
        f1(sa / n),
        "12.5".to_string(),
        f1(sm / n),
        "19.9".to_string(),
    ]);
    t.maybe_dump_csv("table5").expect("csv dump");
    println!("{t}");
}

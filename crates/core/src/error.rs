//! Typed simulator diagnostics.
//!
//! The hot simulation paths used to abort via `expect` when internal
//! bookkeeping disagreed (an unplaced vCPU picked for migration, an L2
//! probe missing a line the L1 directory said was present). Under fault
//! injection those disagreements become *reachable*, so they are now
//! surfaced as [`SimError`] values: the simulator records them in a
//! bounded diagnostic log (see `Simulator::diagnostics`) and degrades
//! gracefully instead of panicking.

use sim_mem::BlockAddr;
use sim_vm::VcpuId;

use crate::config::ConfigError;

/// A recoverable internal inconsistency observed by the simulator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The system configuration failed validation; construction was
    /// refused (see [`crate::Simulator::try_new`]).
    InvalidConfig(
        /// The violated constraint.
        ConfigError,
    ),
    /// A workload profile name is not in the registry; carries every
    /// registered name so the message says what would have worked.
    UnknownProfile {
        /// The name that was requested.
        requested: String,
        /// Every registered profile name, in registry order.
        available: Vec<&'static str>,
    },
    /// A vCPU named in a migration request is not placed on any core; the
    /// relocation was skipped.
    VcpuNotPlaced {
        /// The unplaced vCPU.
        vcpu: VcpuId,
        /// The operation that needed it (static description).
        context: &'static str,
    },
    /// A closed-form analytic query (the Fig. 2 model) was asked about a
    /// machine outside the model's domain; carries the offending
    /// argument so sweep drivers can report which point was rejected.
    AnalyticOutOfRange {
        /// The violated constraint, with the offending values.
        detail: String,
    },
    /// An L1 hit pointed at a block the core's L2 no longer holds
    /// (inclusion violated); the access was treated as a miss.
    CacheDesync {
        /// The core whose cache hierarchy disagreed with itself.
        core: usize,
        /// The block in question.
        block: BlockAddr,
    },
    /// A statistics counter saturated instead of wrapping; every metric
    /// derived from it is a lower bound from this point on. Recorded
    /// once per counter in the diagnostics log (and, when the invariant
    /// checker is enabled, as a `CounterSaturated` violation).
    CounterSaturated {
        /// Which counter saturated (e.g. `"network traffic byte-links"`).
        counter: &'static str,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::InvalidConfig(e) => write!(f, "{e}"),
            SimError::UnknownProfile {
                requested,
                available,
            } => {
                write!(
                    f,
                    "unknown workload profile \"{requested}\" (available: {})",
                    available.join(", ")
                )
            }
            SimError::VcpuNotPlaced { vcpu, context } => {
                write!(f, "vCPU {vcpu} not placed during {context}; skipped")
            }
            SimError::AnalyticOutOfRange { detail } => {
                write!(f, "analytic model out of range: {detail}")
            }
            SimError::CacheDesync { core, block } => {
                write!(
                    f,
                    "core {core}: L1 hit on {block:?} absent from L2; treated as miss"
                )
            }
            SimError::CounterSaturated { counter } => {
                write!(
                    f,
                    "{counter} counter saturated at u64::MAX; derived metrics are lower bounds"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::InvalidConfig(e)
    }
}

impl From<sim_net::NetConfigError> for SimError {
    fn from(e: sim_net::NetConfigError) -> Self {
        SimError::InvalidConfig(ConfigError::new(e.to_string()))
    }
}

impl From<workloads::ProfileError> for SimError {
    fn from(e: workloads::ProfileError) -> Self {
        SimError::UnknownProfile {
            requested: e.requested,
            available: e.available,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_vm::VmId;

    #[test]
    fn errors_format_usefully() {
        let e = SimError::VcpuNotPlaced {
            vcpu: VcpuId::new(VmId::new(1), 2),
            context: "swap_vcpus",
        };
        let s = e.to_string();
        assert!(s.contains("not placed"), "{s}");
        let e = SimError::CacheDesync {
            core: 3,
            block: BlockAddr::new(7),
        };
        assert!(e.to_string().contains("core 3"));
    }
}

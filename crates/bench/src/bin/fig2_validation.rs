//! Fig. 2 cross-validation: the closed-form projection vs. the simulator,
//! at 8 / 16 / 32 / 64 cores.

use vsnoop_bench::{reports, scale_from_env};

fn main() {
    vsnoop_bench::init_obs();
    match reports::fig2_validation(scale_from_env()) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("fig2_validation: {e}");
            std::process::exit(1);
        }
    }
}

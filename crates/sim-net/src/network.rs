//! The assembled on-chip network: topology + latency + traffic accounting.
//!
//! [`Network`] is the single object the coherence simulator talks to. Every
//! `send`/`multicast` both *accounts* the traffic (byte-links, Table IV's
//! metric) and *returns* the base latency of the transfer so the timing
//! model can accumulate transaction latencies.

use crate::fault::{Delivery, LinkFaults};
use crate::latency::LatencyModel;
use crate::message::MessageKind;
use crate::topology::{Mesh, NetConfigError, NodeId};
use crate::traffic::TrafficStats;

/// Outcome of a fault-aware [`Network::send`].
///
/// Traffic is accounted whether or not the message arrives (it was put on
/// the wire); `delivered` tells the caller whether the destination ever
/// sees it, and `latency` includes any injected delay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SendOutcome {
    /// Whether the destination receives the message.
    pub delivered: bool,
    /// Latency in cycles, including injected delay.
    pub latency: u64,
}

/// An on-chip mesh network with memory-controller ports.
///
/// # Examples
///
/// ```
/// use sim_net::{Network, Mesh, MessageKind, NodeId};
///
/// let mut net = Network::new(Mesh::new(4, 4));
/// let lat = net.unicast(NodeId::new(0), NodeId::new(3), MessageKind::Request);
/// assert_eq!(lat, 15); // 3 hops x 5 cycles
/// assert_eq!(net.traffic().byte_links(), 24); // 8 bytes x 3 links
/// ```
#[derive(Clone, Debug)]
pub struct Network {
    mesh: Mesh,
    latency: LatencyModel,
    ports: Vec<NodeId>,
    traffic: TrafficStats,
    faults: Option<LinkFaults>,
    /// Optional per-node byte attribution (source + destination each
    /// charged the message size) — the observability layer's traffic
    /// heatmap. `None` (the default) keeps accounting on the two
    /// aggregate counters only, at the cost of one branch per message.
    node_tally: Option<Box<[u64]>>,
}

impl Network {
    /// Creates a network over `mesh` with the default latency model and
    /// memory ports at the mesh corners.
    pub fn new(mesh: Mesh) -> Self {
        Network {
            mesh,
            latency: LatencyModel::default(),
            ports: mesh.corner_ports(),
            traffic: TrafficStats::default(),
            faults: None,
            node_tally: None,
        }
    }

    /// Creates a network with an explicit latency model and memory ports.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is empty or contains a node outside the mesh;
    /// use [`Network::try_with_config`] to get a typed error instead.
    pub fn with_config(mesh: Mesh, latency: LatencyModel, ports: Vec<NodeId>) -> Self {
        match Self::try_with_config(mesh, latency, ports) {
            Ok(net) => net,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates a network with an explicit latency model and memory ports,
    /// rejecting port lists that would strand memory traffic.
    ///
    /// # Errors
    ///
    /// Returns [`NetConfigError::NoMemoryPorts`] for an empty port list
    /// and [`NetConfigError::PortOutsideMesh`] for a port the mesh does
    /// not contain.
    pub fn try_with_config(
        mesh: Mesh,
        latency: LatencyModel,
        ports: Vec<NodeId>,
    ) -> Result<Self, NetConfigError> {
        if ports.is_empty() {
            return Err(NetConfigError::NoMemoryPorts {
                width: mesh.width(),
                height: mesh.height(),
            });
        }
        if let Some(&bad) = ports.iter().find(|p| p.index() >= mesh.len()) {
            return Err(NetConfigError::PortOutsideMesh {
                port: bad,
                width: mesh.width(),
                height: mesh.height(),
            });
        }
        Ok(Network {
            mesh,
            latency,
            ports,
            traffic: TrafficStats::default(),
            faults: None,
            node_tally: None,
        })
    }

    /// Enables the per-node byte tally (idempotent). Every subsequent
    /// message charges its size to both endpoint nodes, giving the
    /// traffic heatmap [`Network::node_bytes`] reports.
    pub fn enable_node_tally(&mut self) {
        if self.node_tally.is_none() {
            self.node_tally = Some(vec![0u64; self.mesh.len()].into_boxed_slice());
        }
    }

    /// Bytes attributed to each mesh node (source + destination), or an
    /// empty slice when the tally is disabled.
    pub fn node_bytes(&self) -> &[u64] {
        self.node_tally.as_deref().unwrap_or(&[])
    }

    /// Installs (or, with `None`, clears) link-fault injection state.
    ///
    /// With no faults installed, [`Network::send`] behaves exactly like
    /// [`Network::unicast`] with guaranteed delivery.
    pub fn install_faults(&mut self, faults: Option<LinkFaults>) {
        self.faults = faults;
    }

    /// Returns the installed link-fault state, if any.
    pub fn link_faults(&self) -> Option<&LinkFaults> {
        self.faults.as_ref()
    }

    /// Returns the topology.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// Returns the latency model.
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// Returns the memory-controller ports.
    pub fn memory_ports(&self) -> &[NodeId] {
        &self.ports
    }

    /// Returns accumulated traffic statistics.
    pub fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }

    /// Folds another network's accumulated traffic into this one's
    /// counters (saturation flags propagate). The parallel engine merges
    /// its per-shard traffic lenses back through this, in fixed shard
    /// order.
    pub fn merge_traffic(&mut self, other: &TrafficStats) {
        self.traffic.merge(other);
    }

    /// Resets traffic statistics (e.g. after warm-up). The per-node
    /// tally, if enabled, is zeroed but stays enabled.
    pub fn reset_traffic(&mut self) {
        self.traffic = TrafficStats::default();
        if let Some(t) = &mut self.node_tally {
            t.fill(0);
        }
    }

    /// Sends one message; returns its base latency in cycles.
    pub fn unicast(&mut self, src: NodeId, dst: NodeId, kind: MessageKind) -> u64 {
        let hops = self.mesh.hops(src, dst);
        self.traffic.record(kind, hops);
        if let Some(t) = &mut self.node_tally {
            let bytes = u64::from(kind.bytes());
            t[src.index()] += bytes;
            t[dst.index()] += bytes;
        }
        self.latency.base_latency(hops, kind.bytes())
    }

    /// Sends the same message to every destination (modelled as repeated
    /// unicasts); returns the *maximum* base latency over the
    /// destinations, or 0 for an empty destination set.
    ///
    /// Traffic is accounted once for the whole destination set via
    /// [`TrafficStats::record_batch`]; because every per-destination
    /// message has the same size, the batched total is exactly the sum
    /// the per-unicast loop would have produced.
    pub fn multicast(
        &mut self,
        src: NodeId,
        dests: impl IntoIterator<Item = NodeId>,
        kind: MessageKind,
    ) -> u64 {
        let mut worst = 0;
        let mut total_hops = 0u64;
        let mut messages = 0u64;
        let mut worst_hops = 0u32;
        for d in dests {
            let hops = self.mesh.hops(src, d);
            total_hops += u64::from(hops);
            messages += 1;
            worst_hops = worst_hops.max(hops);
            if let Some(t) = &mut self.node_tally {
                t[d.index()] += u64::from(kind.bytes());
            }
        }
        if messages > 0 {
            self.traffic.record_batch(kind, total_hops, messages);
            if let Some(t) = &mut self.node_tally {
                t[src.index()] += u64::from(kind.bytes()) * messages;
            }
            worst = self.latency.base_latency(worst_hops, kind.bytes());
        }
        worst
    }

    /// Sends one message subject to installed link faults.
    ///
    /// Traffic and base latency are accounted exactly as for
    /// [`Network::unicast`]; on top of that the installed [`LinkFaults`]
    /// (if any) may drop the message (`delivered == false`) or delay it
    /// (extra cycles added to `latency`).
    pub fn send(&mut self, src: NodeId, dst: NodeId, kind: MessageKind) -> SendOutcome {
        let base = self.unicast(src, dst, kind);
        match self.faults.as_mut().map(|f| f.judge(kind)) {
            None | Some(Delivery::Deliver) => SendOutcome {
                delivered: true,
                latency: base,
            },
            Some(Delivery::Delayed(extra)) => SendOutcome {
                delivered: true,
                latency: base + extra,
            },
            Some(Delivery::Dropped) => SendOutcome {
                delivered: false,
                latency: base,
            },
        }
    }

    /// Fault-aware variant of [`Network::to_memory`]: sends toward the
    /// nearest memory controller, subject to installed link faults.
    pub fn send_to_memory(&mut self, src: NodeId, kind: MessageKind) -> SendOutcome {
        let port = self.mesh.nearest_port(src, &self.ports);
        self.send(src, port, kind)
    }

    /// Sends a message from `src` to the nearest memory controller;
    /// returns the base latency (network part only; the caller adds DRAM
    /// access time).
    pub fn to_memory(&mut self, src: NodeId, kind: MessageKind) -> u64 {
        let port = self.mesh.nearest_port(src, &self.ports);
        self.unicast(src, port, kind)
    }

    /// Sends a message from the memory controller nearest `dst` to `dst`.
    pub fn from_memory(&mut self, dst: NodeId, kind: MessageKind) -> u64 {
        let port = self.mesh.nearest_port(dst, &self.ports);
        self.unicast(port, dst, kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portless_network_is_refused_with_dimensions() {
        let mesh = Mesh::new(3, 2);
        match Network::try_with_config(mesh, LatencyModel::default(), vec![]) {
            Err(NetConfigError::NoMemoryPorts {
                width: 3,
                height: 2,
            }) => {}
            other => panic!("expected NoMemoryPorts, got {other:?}"),
        }
        match Network::try_with_config(mesh, LatencyModel::default(), vec![NodeId::new(6)]) {
            Err(NetConfigError::PortOutsideMesh {
                port,
                width: 3,
                height: 2,
            }) => {
                assert_eq!(port, NodeId::new(6));
            }
            other => panic!("expected PortOutsideMesh, got {other:?}"),
        }
        assert!(
            Network::try_with_config(mesh, LatencyModel::default(), vec![NodeId::new(5)]).is_ok()
        );
    }

    #[test]
    #[should_panic(expected = "no memory ports")]
    fn portless_panicking_constructor_names_the_problem() {
        let _ = Network::with_config(Mesh::new(2, 2), LatencyModel::default(), vec![]);
    }

    #[test]
    fn multicast_accounts_every_destination() {
        let mut net = Network::new(Mesh::new(4, 4));
        let src = NodeId::new(0);
        let dests: Vec<NodeId> = (1..16).map(NodeId::new).collect();
        let lat = net.multicast(src, dests.clone(), MessageKind::Request);
        // Farthest destination is 6 hops -> 30 cycles.
        assert_eq!(lat, 30);
        // 48 total hops from the corner (see topology tests) x 8 bytes.
        assert_eq!(net.traffic().byte_links(), 48 * 8);
        assert_eq!(net.traffic().messages(), 15);
    }

    #[test]
    fn empty_multicast_is_free() {
        let mut net = Network::new(Mesh::new(2, 2));
        let lat = net.multicast(NodeId::new(0), std::iter::empty(), MessageKind::Request);
        assert_eq!(lat, 0);
        assert_eq!(net.traffic().messages(), 0);
    }

    #[test]
    fn memory_roundtrip_uses_nearest_port() {
        let mut net = Network::new(Mesh::new(4, 4));
        // Node 5 = (1,1); nearest corner is (0,0), 2 hops away.
        let req = net.to_memory(NodeId::new(5), MessageKind::Request);
        assert_eq!(req, 10);
        let resp = net.from_memory(NodeId::new(5), MessageKind::Data);
        assert_eq!(resp, 2 * 5 + 4);
        assert_eq!(net.traffic().byte_links(), 8 * 2 + 72 * 2);
    }

    #[test]
    fn reset_traffic_clears_counters() {
        let mut net = Network::new(Mesh::new(2, 2));
        net.unicast(NodeId::new(0), NodeId::new(3), MessageKind::Data);
        assert!(net.traffic().byte_links() > 0);
        net.reset_traffic();
        assert_eq!(net.traffic().byte_links(), 0);
    }

    #[test]
    fn send_without_faults_matches_unicast() {
        let mut a = Network::new(Mesh::new(4, 4));
        let mut b = Network::new(Mesh::new(4, 4));
        let lat = a.unicast(NodeId::new(0), NodeId::new(3), MessageKind::Request);
        let out = b.send(NodeId::new(0), NodeId::new(3), MessageKind::Request);
        assert!(out.delivered);
        assert_eq!(out.latency, lat);
        assert_eq!(a.traffic().byte_links(), b.traffic().byte_links());
    }

    #[test]
    fn dropped_send_still_accounts_traffic() {
        use crate::fault::{LinkFaultConfig, LinkFaults};
        let mut net = Network::new(Mesh::new(4, 4));
        net.install_faults(Some(LinkFaults::new(
            LinkFaultConfig {
                drop_p: 1.0,
                delay_p: 0.0,
                max_delay_cycles: 0,
            },
            42,
        )));
        let out = net.send(NodeId::new(0), NodeId::new(3), MessageKind::Request);
        assert!(!out.delivered);
        assert_eq!(net.traffic().messages(), 1);
        assert_eq!(net.link_faults().unwrap().drops(), 1);
        // Reliable kinds are immune even at drop_p = 1.
        let out = net.send(NodeId::new(0), NodeId::new(3), MessageKind::Persistent);
        assert!(out.delivered);
    }

    #[test]
    fn delayed_send_adds_latency() {
        use crate::fault::{LinkFaultConfig, LinkFaults};
        let mut net = Network::new(Mesh::new(4, 4));
        let base = net.unicast(NodeId::new(0), NodeId::new(3), MessageKind::Data);
        net.install_faults(Some(LinkFaults::new(
            LinkFaultConfig {
                drop_p: 0.0,
                delay_p: 1.0,
                max_delay_cycles: 4,
            },
            42,
        )));
        let out = net.send(NodeId::new(0), NodeId::new(3), MessageKind::Data);
        assert!(out.delivered);
        assert!(out.latency > base && out.latency <= base + 4);
    }

    #[test]
    #[should_panic(expected = "memory port")]
    fn bad_port_rejected() {
        let _ = Network::with_config(
            Mesh::new(2, 2),
            LatencyModel::default(),
            vec![NodeId::new(9)],
        );
    }
}

//! Umbrella crate for the *Virtual Snooping* reproduction (MICRO 2010).
//!
//! Re-exports the workspace's public API so examples and downstream users
//! can depend on a single crate:
//!
//! * [`vsnoop`] — the virtual-snooping filter, policies, simulator, and
//!   per-figure experiment drivers;
//! * [`sim_mem`] — caches and the TokenB coherence engine;
//! * [`sim_net`] — the 2D-mesh on-chip network;
//! * [`sim_vm`] — hypervisor, page tables, content sharing, scheduler;
//! * [`workloads`] — calibrated synthetic trace generators.
//!
//! # Quickstart
//!
//! ```
//! use virtual_snooping::prelude::*;
//!
//! let cfg = SystemConfig::small_test();
//! let mut sim = Simulator::new(cfg, FilterPolicy::VsnoopBase, ContentPolicy::Broadcast);
//! let mut wl = Workload::homogeneous(
//!     profile("canneal").unwrap(),
//!     cfg.n_vms,
//!     WorkloadConfig { vcpus_per_vm: cfg.vcpus_per_vm, ..Default::default() },
//! );
//! sim.run(&mut wl, 500);
//! let filtered = sim.stats().snoops;
//! assert!(filtered > 0);
//! ```

#![warn(missing_docs)]

pub use sim_mem;
pub use sim_net;
pub use sim_vm;
pub use vsnoop;
pub use workloads;

/// The most common imports, in one place.
pub mod prelude {
    pub use sim_vm::{Agent, CoreId, VcpuId, VmId};
    pub use vsnoop::{
        snoop_reduction, CheckerConfig, ContentPolicy, FaultPlan, FilterPolicy, InvariantChecker,
        Simulator, SystemConfig, VcpuMap,
    };
    pub use workloads::{profile, AccessStream, Workload, WorkloadConfig};
}

//! Table IV — network traffic reduction with ideally pinned VMs.

use vsnoop::experiments::table4_fig6;
use vsnoop_bench::{f1, heading, opt, scale_from_env, TextTable};

fn main() {
    heading(
        "Table IV: network traffic reduction of virtual snooping (pinned VMs)",
        "4 VMs x 4 vCPUs pinned on 16 cores, no host activity (as in\n\
         Virtual-GEMS). Paper: 62-64% across all applications; snoop\n\
         reduction is exactly 75%.",
    );
    let rows = table4_fig6(scale_from_env());
    let mut t = TextTable::new([
        "workload",
        "traffic reduction %",
        "paper %",
        "snoops vs tokenB %",
    ]);
    let mut sum = 0.0;
    for r in &rows {
        sum += r.traffic_reduction_pct;
        t.row([
            r.name.to_string(),
            f1(r.traffic_reduction_pct),
            opt(r.paper_traffic_reduction_pct),
            f1(r.norm_snoops_pct),
        ]);
    }
    t.row([
        "Average".to_string(),
        f1(sum / rows.len() as f64),
        "63.7".to_string(),
        String::new(),
    ]);
    t.maybe_dump_csv("table4").expect("csv dump");
    println!("{t}");
}

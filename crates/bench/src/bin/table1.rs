//! Table I — average VM relocation periods (milliseconds).

use vsnoop_bench::{reports, scale_from_env};

fn main() {
    vsnoop_bench::init_obs();
    match reports::table1(scale_from_env()) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("table1: {e}");
            std::process::exit(1);
        }
    }
}

//! Fig. 10 — snoops under the content-sharing optimizations.

use vsnoop_bench::{reports, scale_from_env};

fn main() {
    vsnoop_bench::init_obs();
    match reports::fig10(scale_from_env()) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("fig10: {e}");
            std::process::exit(1);
        }
    }
}

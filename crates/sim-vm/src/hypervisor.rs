//! The hypervisor's vCPU-to-core mapping and relocation machinery.
//!
//! Virtual snooping requires the hypervisor to know, at every instant, which
//! physical cores each VM's vCPUs occupy (Section IV-A). The [`Hypervisor`]
//! tracks that assignment, performs relocations (vCPU migrations), and logs
//! [`RelocationEvent`]s so experiments can account for vCPU-map
//! synchronization and measure relocation frequency (Table I).

use std::collections::HashMap;

use crate::ids::{CoreId, VcpuId, VmId};
use crate::vm::VmSpec;

/// A single vCPU relocation, as logged by the hypervisor.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RelocationEvent {
    /// Simulation time (in cycles) at which the relocation happened.
    pub cycle: u64,
    /// The relocated vCPU.
    pub vcpu: VcpuId,
    /// Core the vCPU ran on before the relocation, if it was placed.
    pub from: Option<CoreId>,
    /// Core the vCPU runs on after the relocation.
    pub to: CoreId,
}

/// Error from [`Hypervisor::try_swap`]: the named vCPU is not placed on
/// any core, so it cannot take part in a relocation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct UnplacedVcpu(pub VcpuId);

impl std::fmt::Display for UnplacedVcpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vCPU {} is not placed on any core", self.0)
    }
}

impl std::error::Error for UnplacedVcpu {}

/// Hypervisor state: the dynamic assignment of vCPUs to physical cores.
///
/// The mapping is partial in both directions: a core can be idle and a vCPU
/// can be descheduled. Experiments in this reproduction keep every vCPU
/// placed (the paper's simulated configurations have exactly as many vCPUs
/// as cores), but the scheduler substrate uses the partial form.
///
/// # Examples
///
/// ```
/// use sim_vm::{Hypervisor, VmSpec, VmId, CoreId, homogeneous_vms};
///
/// let vms = homogeneous_vms(4, 4, 1024);
/// let mut hv = Hypervisor::new(16, &vms);
/// hv.place_round_robin();
/// // With 16 vCPUs on 16 cores, every core is busy.
/// assert!(CoreId::all(16).all(|c| hv.vcpu_on(c).is_some()));
/// // VM0's four vCPUs sit on cores P0..P3.
/// assert_eq!(hv.cores_of_vm(VmId::new(0)), 0b1111);
/// ```
#[derive(Clone, Debug)]
pub struct Hypervisor {
    n_cores: usize,
    vcpu_on_core: Vec<Option<VcpuId>>,
    core_of_vcpu: HashMap<VcpuId, CoreId>,
    vms: Vec<VmSpec>,
    relocations: Vec<RelocationEvent>,
    swaps: u64,
}

impl Hypervisor {
    /// Creates a hypervisor managing `n_cores` physical cores and the given
    /// VMs. No vCPU is placed initially.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is zero or larger than 64 (vCPU maps are 64-bit
    /// vectors throughout this reproduction, matching the paper's largest
    /// configuration of 64 cores).
    pub fn new(n_cores: usize, vms: &[VmSpec]) -> Self {
        assert!(n_cores > 0 && n_cores <= 64, "core count must be in 1..=64");
        Hypervisor {
            n_cores,
            vcpu_on_core: vec![None; n_cores],
            core_of_vcpu: HashMap::new(),
            vms: vms.to_vec(),
            relocations: Vec::new(),
            swaps: 0,
        }
    }

    /// Number of effective vCPU core exchanges performed by
    /// [`Hypervisor::swap`] / [`Hypervisor::try_swap`] (self-swaps and
    /// failed swaps are not counted). Unlike the relocation log this is
    /// never truncated, so the observability layer uses it for per-epoch
    /// swap rates.
    pub fn swaps(&self) -> u64 {
        self.swaps
    }

    /// Returns the number of physical cores.
    pub fn n_cores(&self) -> usize {
        self.n_cores
    }

    /// Returns the managed VM specifications.
    pub fn vms(&self) -> &[VmSpec] {
        &self.vms
    }

    /// Places all vCPUs on cores in VM order: VM0's vCPUs on the first
    /// cores, then VM1's, and so on. This is the paper's "ideally pinned"
    /// placement (Section V-B), which aligns each VM with a contiguous
    /// quadrant of the mesh.
    ///
    /// # Panics
    ///
    /// Panics if there are more vCPUs than cores.
    pub fn place_round_robin(&mut self) {
        let total: usize = self.vms.iter().map(|v| v.n_vcpus()).sum();
        assert!(
            total <= self.n_cores,
            "cannot place {total} vCPUs on {} cores",
            self.n_cores
        );
        let vms = self.vms.clone();
        let mut next = 0u16;
        for vm in &vms {
            for vcpu in vm.vcpus() {
                self.assign(0, vcpu, CoreId::new(next));
                next += 1;
            }
        }
    }

    /// Assigns `vcpu` to `core` at time `cycle`, displacing nothing.
    ///
    /// Logs a [`RelocationEvent`] if the vCPU moved (its previous core, if
    /// any, becomes idle). If another vCPU currently occupies `core` it is
    /// descheduled (left unplaced); the caller decides where it goes next.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn assign(&mut self, cycle: u64, vcpu: VcpuId, core: CoreId) {
        assert!(core.index() < self.n_cores, "core {core} out of range");
        let from = self.core_of_vcpu.get(&vcpu).copied();
        if from == Some(core) {
            return;
        }
        if let Some(old) = from {
            self.vcpu_on_core[old.index()] = None;
        }
        if let Some(displaced) = self.vcpu_on_core[core.index()] {
            self.core_of_vcpu.remove(&displaced);
        }
        self.vcpu_on_core[core.index()] = Some(vcpu);
        self.core_of_vcpu.insert(vcpu, core);
        self.relocations.push(RelocationEvent {
            cycle,
            vcpu,
            from,
            to: core,
        });
    }

    /// Swaps the cores of two placed vCPUs at time `cycle`.
    ///
    /// This is the relocation primitive used by the migration experiments
    /// (Section V-C): "two vCPUs from different VMs are randomly selected
    /// and their physical cores are exchanged".
    ///
    /// # Panics
    ///
    /// Panics if either vCPU is not currently placed. Callers that cannot
    /// guarantee placement should use [`Hypervisor::try_swap`] instead.
    pub fn swap(&mut self, cycle: u64, a: VcpuId, b: VcpuId) {
        self.try_swap(cycle, a, b)
            .expect("both vCPUs must be placed to swap");
    }

    /// Fallible variant of [`Hypervisor::swap`]: swaps the cores of two
    /// placed vCPUs, or reports which vCPU was unplaced without touching
    /// any state. On success returns the cores the vCPUs ran on *before*
    /// the swap, `(core_of(a), core_of(b))`.
    pub fn try_swap(
        &mut self,
        cycle: u64,
        a: VcpuId,
        b: VcpuId,
    ) -> Result<(CoreId, CoreId), UnplacedVcpu> {
        let ca = self.core_of(a).ok_or(UnplacedVcpu(a))?;
        let cb = self.core_of(b).ok_or(UnplacedVcpu(b))?;
        if ca == cb {
            return Ok((ca, cb));
        }
        self.swaps += 1;
        self.vcpu_on_core[ca.index()] = Some(b);
        self.vcpu_on_core[cb.index()] = Some(a);
        self.core_of_vcpu.insert(a, cb);
        self.core_of_vcpu.insert(b, ca);
        self.relocations.push(RelocationEvent {
            cycle,
            vcpu: a,
            from: Some(ca),
            to: cb,
        });
        self.relocations.push(RelocationEvent {
            cycle,
            vcpu: b,
            from: Some(cb),
            to: ca,
        });
        Ok((ca, cb))
    }

    /// Returns the core `vcpu` currently runs on, if placed.
    pub fn core_of(&self, vcpu: VcpuId) -> Option<CoreId> {
        self.core_of_vcpu.get(&vcpu).copied()
    }

    /// Returns the vCPU currently running on `core`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn vcpu_on(&self, core: CoreId) -> Option<VcpuId> {
        self.vcpu_on_core[core.index()]
    }

    /// Returns the VM whose vCPU currently occupies `core`, if any.
    pub fn vm_on(&self, core: CoreId) -> Option<VmId> {
        self.vcpu_on(core).map(|v| v.vm())
    }

    /// Returns a bit mask (bit *i* = core *i*) of the cores on which `vm`'s
    /// vCPUs are *currently running*.
    ///
    /// Note that a correct vCPU map must additionally include cores that
    /// still hold the VM's cached data after a relocation; maintaining that
    /// superset is the job of the virtual-snooping layer, not the
    /// hypervisor's instantaneous view.
    pub fn cores_of_vm(&self, vm: VmId) -> u64 {
        let mut mask = 0u64;
        for (i, slot) in self.vcpu_on_core.iter().enumerate() {
            if let Some(v) = slot {
                if v.vm() == vm {
                    mask |= 1 << i;
                }
            }
        }
        mask
    }

    /// Returns the relocation log.
    pub fn relocations(&self) -> &[RelocationEvent] {
        &self.relocations
    }

    /// Clears the relocation log (e.g. after a warm-up phase).
    pub fn clear_relocations(&mut self) {
        self.relocations.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::homogeneous_vms;

    fn hv_4x4() -> Hypervisor {
        let vms = homogeneous_vms(4, 4, 256);
        let mut hv = Hypervisor::new(16, &vms);
        hv.place_round_robin();
        hv
    }

    #[test]
    fn round_robin_places_contiguously() {
        let hv = hv_4x4();
        assert_eq!(hv.cores_of_vm(VmId::new(0)), 0x000F);
        assert_eq!(hv.cores_of_vm(VmId::new(1)), 0x00F0);
        assert_eq!(hv.cores_of_vm(VmId::new(2)), 0x0F00);
        assert_eq!(hv.cores_of_vm(VmId::new(3)), 0xF000);
        // 16 placement events were logged.
        assert_eq!(hv.relocations().len(), 16);
    }

    #[test]
    fn swap_exchanges_cores_and_logs_two_events() {
        let mut hv = hv_4x4();
        hv.clear_relocations();
        let a = VcpuId::new(VmId::new(0), 0);
        let b = VcpuId::new(VmId::new(1), 0);
        let ca = hv.core_of(a).unwrap();
        let cb = hv.core_of(b).unwrap();
        hv.swap(42, a, b);
        assert_eq!(hv.core_of(a), Some(cb));
        assert_eq!(hv.core_of(b), Some(ca));
        assert_eq!(hv.vcpu_on(ca), Some(b));
        assert_eq!(hv.vcpu_on(cb), Some(a));
        let ev = hv.relocations();
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].cycle, 42);
        assert_eq!(ev[0].from, Some(ca));
        assert_eq!(ev[0].to, cb);
    }

    #[test]
    fn try_swap_reports_unplaced_vcpu_without_mutation() {
        let vms = homogeneous_vms(4, 4, 256);
        let mut hv = Hypervisor::new(16, &vms);
        // Place only VM0's vCPUs; VM1's stay unplaced.
        for (i, vcpu) in vms[0].vcpus().enumerate() {
            hv.assign(0, vcpu, CoreId::new(i as u16));
        }
        hv.clear_relocations();
        let placed = VcpuId::new(VmId::new(0), 0);
        let unplaced = VcpuId::new(VmId::new(1), 0);
        assert_eq!(
            hv.try_swap(1, placed, unplaced),
            Err(UnplacedVcpu(unplaced))
        );
        assert_eq!(
            hv.try_swap(1, unplaced, placed),
            Err(UnplacedVcpu(unplaced))
        );
        assert_eq!(hv.core_of(placed), Some(CoreId::new(0)));
        assert!(hv.relocations().is_empty());
    }

    #[test]
    fn try_swap_returns_prior_cores() {
        let mut hv = hv_4x4();
        let a = VcpuId::new(VmId::new(0), 0);
        let b = VcpuId::new(VmId::new(1), 0);
        let ca = hv.core_of(a).unwrap();
        let cb = hv.core_of(b).unwrap();
        assert_eq!(hv.try_swap(5, a, b), Ok((ca, cb)));
    }

    #[test]
    fn swap_same_core_is_noop() {
        let mut hv = hv_4x4();
        hv.clear_relocations();
        let a = VcpuId::new(VmId::new(0), 0);
        hv.swap(0, a, a);
        assert!(hv.relocations().is_empty());
    }

    #[test]
    fn assign_displaces_occupant() {
        let mut hv = hv_4x4();
        let a = VcpuId::new(VmId::new(0), 0);
        let victim_core = CoreId::new(5);
        let displaced = hv.vcpu_on(victim_core).unwrap();
        hv.assign(7, a, victim_core);
        assert_eq!(hv.core_of(a), Some(victim_core));
        assert_eq!(hv.core_of(displaced), None);
        // The old core of `a` is now idle.
        assert_eq!(hv.vcpu_on(CoreId::new(0)), None);
    }

    #[test]
    fn assign_same_core_logs_nothing() {
        let mut hv = hv_4x4();
        hv.clear_relocations();
        let a = VcpuId::new(VmId::new(0), 0);
        let core = hv.core_of(a).unwrap();
        hv.assign(0, a, core);
        assert!(hv.relocations().is_empty());
    }

    #[test]
    fn vm_on_reports_running_vm() {
        let hv = hv_4x4();
        assert_eq!(hv.vm_on(CoreId::new(0)), Some(VmId::new(0)));
        assert_eq!(hv.vm_on(CoreId::new(15)), Some(VmId::new(3)));
    }

    #[test]
    #[should_panic(expected = "1..=64")]
    fn too_many_cores_rejected() {
        let _ = Hypervisor::new(65, &[]);
    }
}

//! `vsnoop-sim` — run a custom virtual-snooping simulation from the
//! command line.
//!
//! ```text
//! vsnoop-sim [--app NAME] [--vms N] [--policy P] [--content C]
//!            [--rounds N] [--warmup N] [--migration-ms X] [--seed N]
//!            [--host-activity] [--content-sharing] [--list-apps]
//!
//! policies: tokenb | vsnoop | counter | counter-threshold[:T] | regionscout
//! content:  broadcast | memory-direct | intra-vm | friend-vm
//! ```
//!
//! Example:
//!
//! ```text
//! cargo run --release --bin vsnoop-sim -- \
//!     --app canneal --policy counter --migration-ms 0.5 --rounds 200000
//! ```

use std::process::exit;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use virtual_snooping::prelude::*;
use virtual_snooping::vsnoop::EnergyModel;

struct Options {
    app: String,
    vms: usize,
    policy: FilterPolicy,
    content: ContentPolicy,
    rounds: u64,
    warmup: u64,
    migration_ms: Option<f64>,
    seed: u64,
    host_activity: bool,
    content_sharing: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            app: "ferret".to_string(),
            vms: 4,
            policy: FilterPolicy::VsnoopBase,
            content: ContentPolicy::Broadcast,
            rounds: 60_000,
            warmup: 20_000,
            migration_ms: None,
            seed: 0xC0FFEE,
            host_activity: false,
            content_sharing: false,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: vsnoop-sim [--app NAME] [--vms N] [--policy P] [--content C]\n\
         \u{20}                 [--rounds N] [--warmup N] [--migration-ms X] [--seed N]\n\
         \u{20}                 [--host-activity] [--content-sharing] [--list-apps]\n\
         policies: tokenb | vsnoop | counter | counter-threshold[:T] | regionscout\n\
         content:  broadcast | memory-direct | intra-vm | friend-vm"
    );
    exit(2)
}

fn parse_policy(s: &str) -> Option<FilterPolicy> {
    match s {
        "tokenb" => Some(FilterPolicy::TokenBroadcast),
        "vsnoop" => Some(FilterPolicy::VsnoopBase),
        "counter" => Some(FilterPolicy::Counter),
        "regionscout" => Some(FilterPolicy::REGION_SCOUT_4K),
        _ => {
            if let Some(t) = s.strip_prefix("counter-threshold") {
                let threshold = t.strip_prefix(':').map_or(Some(10), |v| v.parse().ok())?;
                Some(FilterPolicy::CounterThreshold { threshold })
            } else {
                None
            }
        }
    }
}

fn parse_content(s: &str) -> Option<ContentPolicy> {
    match s {
        "broadcast" => Some(ContentPolicy::Broadcast),
        "memory-direct" => Some(ContentPolicy::MemoryDirect),
        "intra-vm" => Some(ContentPolicy::IntraVm),
        "friend-vm" => Some(ContentPolicy::FriendVm),
        _ => None,
    }
}

fn parse_args() -> Options {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} requires a value");
                usage()
            })
        };
        match arg.as_str() {
            "--app" => opts.app = value("--app"),
            "--vms" => opts.vms = value("--vms").parse().unwrap_or_else(|_| usage()),
            "--policy" => opts.policy = parse_policy(&value("--policy")).unwrap_or_else(|| usage()),
            "--content" => {
                opts.content = parse_content(&value("--content")).unwrap_or_else(|| usage())
            }
            "--rounds" => opts.rounds = value("--rounds").parse().unwrap_or_else(|_| usage()),
            "--warmup" => opts.warmup = value("--warmup").parse().unwrap_or_else(|_| usage()),
            "--migration-ms" => {
                opts.migration_ms =
                    Some(value("--migration-ms").parse().unwrap_or_else(|_| usage()))
            }
            "--seed" => opts.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--host-activity" => opts.host_activity = true,
            "--content-sharing" => opts.content_sharing = true,
            "--list-apps" => {
                for p in workloads::PROFILES {
                    println!("{}", p.name);
                }
                exit(0)
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
    }
    opts
}

fn main() {
    let opts = parse_args();
    let Some(app) = profile(&opts.app) else {
        eprintln!("unknown application '{}' (try --list-apps)", opts.app);
        exit(2)
    };
    let cfg = SystemConfig {
        n_vms: opts.vms,
        ..SystemConfig::paper_default()
    };
    if let Err(e) = cfg.validate() {
        eprintln!("{e}");
        exit(2)
    }

    let mut sim = Simulator::new(cfg, opts.policy, opts.content);
    let mut wl = Workload::homogeneous(
        app,
        cfg.n_vms,
        WorkloadConfig {
            vcpus_per_vm: cfg.vcpus_per_vm,
            seed: opts.seed,
            host_activity: opts.host_activity,
            content_sharing: opts.content_sharing,
        },
    );

    sim.run(&mut wl, opts.warmup);
    sim.reset_measurement();
    match opts.migration_ms {
        None => sim.run(&mut wl, opts.rounds),
        Some(ms) => {
            let period = ((ms * cfg.cycles_per_ms as f64) as u64).max(1);
            let mut rng = SmallRng::seed_from_u64(opts.seed ^ 0x5157);
            let n_vms = cfg.n_vms;
            let vcpus = cfg.vcpus_per_vm;
            sim.run_with_migration(&mut wl, opts.rounds, period, move |_| {
                let a = rng.gen_range(0..n_vms) as u16;
                let mut b = rng.gen_range(0..n_vms - 1) as u16;
                if b >= a {
                    b += 1;
                }
                (
                    VcpuId::new(VmId::new(a), rng.gen_range(0..vcpus)),
                    VcpuId::new(VmId::new(b), rng.gen_range(0..vcpus)),
                )
            });
        }
    }

    let s = sim.stats();
    let e = EnergyModel::default().breakdown(s, sim.traffic());
    println!(
        "{} x{} VMs | policy {} | content {} | {} rounds",
        app.name, cfg.n_vms, opts.policy, opts.content, opts.rounds
    );
    println!("accesses            {:>14}", s.accesses);
    println!(
        "L1 / L2 hit rate    {:>13.1}% / {:.1}%",
        100.0 * s.l1_hits as f64 / s.accesses.max(1) as f64,
        100.0 * s.l2_hits as f64 / s.accesses.max(1) as f64,
    );
    println!(
        "L2 misses           {:>14}  ({:.2}% of accesses)",
        s.l2_misses,
        100.0 * s.miss_rate()
    );
    println!(
        "snoop tag lookups   {:>14}  ({:.1}% of a {}-core broadcast)",
        s.snoops,
        100.0 * s.snoops as f64 / (s.l2_misses.max(1) * cfg.n_cores() as u64) as f64,
        cfg.n_cores()
    );
    println!(
        "retries/fallbacks   {:>14}  / {}",
        s.retries, s.broadcast_fallbacks
    );
    println!(
        "traffic             {:>14}  byte-links",
        sim.traffic().byte_links()
    );
    println!(
        "snoop energy        {:>14.1}  uJ (tags {:.1} uJ, network {:.1} uJ)",
        e.snoop_pj() / 1e6,
        e.tag_pj / 1e6,
        e.network_pj / 1e6
    );
    println!(
        "vCPU map changes    {:>14}  adds, {} removals",
        s.map_adds, s.map_removes
    );
    for vm in 0..cfg.n_vms {
        let id = VmId::new(vm as u16);
        println!(
            "  {id} snoop domain: {:?}",
            sim.vcpu_map(id)
                .cores()
                .map(|c| c.index())
                .collect::<Vec<_>>()
        );
    }
}

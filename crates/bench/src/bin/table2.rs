//! Table II — simulated system configuration.

use vsnoop::SystemConfig;
use vsnoop_bench::{heading, TextTable};

fn main() {
    heading(
        "Table II: simulated system configuration",
        "The machine every simulation experiment runs on.",
    );
    let c = SystemConfig::paper_default();
    let mut t = TextTable::new(["parameter", "value"]);
    t.row(["Processors", &format!("{} in-order cores", c.n_cores())]);
    t.row([
        "L1 I/D cache",
        &format!(
            "{}KB, {}-way, 64B block, {} cycle latency",
            c.l1_bytes / 1024,
            c.l1_ways,
            c.l1_latency
        ),
    ]);
    t.row([
        "L2 cache",
        &format!(
            "{}KB, {}-way, 64B block, {} cycle latency",
            c.l2_bytes / 1024,
            c.l2_ways,
            c.l2_latency
        ),
    ]);
    t.row(["Coherence", "Token Coherence (TokenB), MOESI"]);
    t.row([
        "On-chip network",
        &format!(
            "{}x{} 2D mesh, {}B links, {}-cycle routers",
            c.mesh_width, c.mesh_height, c.network.link_bytes, c.network.router_cycles
        ),
    ]);
    t.row(["Memory latency", &format!("{} cycles", c.memory_latency)]);
    t.row([
        "VMs",
        &format!("{} VMs x {} vCPUs", c.n_vms, c.vcpus_per_vm),
    ]);
    t.row([
        "Clock scaling",
        &format!("{} cycles per scaled ms", c.cycles_per_ms),
    ]);
    t.maybe_dump_csv("table2").expect("csv dump");
    println!("{t}");
}

//! Shared plumbing for the experiment drivers.

use workloads::AppProfile;

use crate::config::SystemConfig;
use crate::policy::{ContentPolicy, FilterPolicy};
use crate::simulator::Simulator;

/// How long each experiment runs. All the drivers take a scale so tests
/// can use a fast one while the benchmark binaries use the full one.
#[derive(Clone, Copy, Debug)]
pub struct RunScale {
    /// Rounds executed before measurement starts (cache warm-up).
    pub warmup_rounds: u64,
    /// Rounds measured.
    pub measure_rounds: u64,
    /// Workload RNG seed.
    pub seed: u64,
}

impl RunScale {
    /// The scale the benchmark harness uses (millions of accesses per
    /// run; caches reach steady state well within the warm-up).
    pub fn full() -> Self {
        RunScale {
            warmup_rounds: 60_000,
            measure_rounds: 120_000,
            seed: 0xC0FFEE,
        }
    }

    /// A faster scale for unit/integration tests: still long enough to
    /// warm the L2s (the reuse-burst streams need ~30k rounds for that),
    /// but with a shorter measurement window.
    pub fn quick() -> Self {
        RunScale {
            warmup_rounds: 30_000,
            measure_rounds: 30_000,
            seed: 0xC0FFEE,
        }
    }

    /// Scales the measurement window up for the migration experiments
    /// (Figs. 7-9): those must cover a whole simulated "execution" (~20
    /// scaled ms) so the vCPU maps reach the behaviour the paper reports,
    /// rather than a short steady-state window. Only `measure_rounds`
    /// grows (16x); the warm-up and seed are unchanged, so migration
    /// cells share warm snapshots with the pinned experiments. The same
    /// 16x factor caps the per-period round *floor* applied in
    /// `run_migrating` — see the comment there.
    pub fn for_migration(self) -> RunScale {
        RunScale {
            measure_rounds: self.measure_rounds.saturating_mul(16),
            ..self
        }
    }
}

impl Default for RunScale {
    fn default() -> Self {
        RunScale::full()
    }
}

/// Builds the paper's simulated machine (Table II) running `app` on every
/// VM, executes warm-up plus measurement, and returns the simulator for
/// inspection.
///
/// The warm-up goes through the process-wide warm pool
/// ([`crate::experiments::warm`]): with reuse enabled the warmed state is
/// forked from a cached snapshot instead of re-simulated, with results
/// bit-identical to a cold run (pinned by `tests/fork_identity.rs`).
pub fn run_pinned(
    app: &'static AppProfile,
    policy: FilterPolicy,
    content_policy: ContentPolicy,
    content_sharing: bool,
    host_activity: bool,
    cfg: SystemConfig,
    scale: RunScale,
) -> Simulator {
    let (mut sim, mut wl) = crate::experiments::warm::warmed_pair(
        app,
        policy,
        content_policy,
        content_sharing,
        host_activity,
        cfg,
        scale,
    );
    sim.reset_measurement();
    sim.run(&mut wl, scale.measure_rounds);
    sim
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::profile;

    #[test]
    fn run_pinned_produces_measurements() {
        let sim = run_pinned(
            profile("cholesky").unwrap(),
            FilterPolicy::VsnoopBase,
            ContentPolicy::Broadcast,
            false,
            false,
            SystemConfig::small_test(),
            RunScale::quick(),
        );
        assert!(sim.stats().accesses > 0);
        assert!(sim.stats().l2_misses > 0);
        assert!(sim.traffic().byte_links() > 0);
    }
}

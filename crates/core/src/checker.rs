//! Runtime invariant checking for the coherence engine.
//!
//! The [`InvariantChecker`] is an always-on (when enabled) referee for the
//! token protocol and the virtual-snooping layer above it. After every
//! coherence transaction it verifies the *hard* invariants on the touched
//! block, and every `sweep_every` transactions it sweeps the whole
//! machine: every block ever touched, every residence counter, the L1/L2
//! inclusion property, and — when the vCPU-map registers are trusted —
//! map validity and coverage against the hypervisor's placement.
//!
//! Invariant classes:
//!
//! * **Token conservation** — for each block, tokens held across all L2
//!   caches plus memory's holdings equal the fixed total (bounced tokens
//!   land at memory atomically in this model, so in-flight holdings are
//!   always zero between transactions).
//! * **Owner uniqueness** — exactly one party (one cache or memory) holds
//!   the owner token.
//! * **Dirty implies owner** — no line is dirty without the owner token.
//! * **No tokenless lines** — a valid line holds at least one token.
//! * **L1 inclusion** — every L1 line is backed by an L2 line.
//! * **Residence counters** — each cache's per-VM counters equal an
//!   actual scan of its tags (the counter mechanism's foundation).
//! * **Map validity/coverage** — each VM's map register has no bits
//!   beyond the physical core count and covers every core the VM runs on.
//!   Fault injection *legitimately* breaks this between a corruption and
//!   the next hypervisor audit, so it is checked only when the caller
//!   marks the registers trusted (fault-free runs, or right after an
//!   audit repaired them).

use sim_mem::{BlockAddr, BlockMap, Cache, LineTag, TokenLedger};
use sim_vm::{Hypervisor, VmId};

use crate::vcpu_map::VcpuMapFile;

/// The invariant class a [`Violation`] belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InvariantKind {
    /// Tokens across caches + memory differ from the per-block total.
    TokenConservation,
    /// Zero or multiple owner tokens for a block.
    OwnerUniqueness,
    /// A dirty line without the owner token.
    DirtyWithoutOwner,
    /// A valid line holding zero tokens.
    TokenlessLine,
    /// An L1 line with no backing L2 line.
    L1Inclusion,
    /// A residence counter disagreeing with a scan of the cache's tags.
    ResidenceCounter,
    /// A vCPU-map register with bits beyond the physical core count.
    MapValidity,
    /// A vCPU-map register missing a core its VM currently runs on.
    MapCoverage,
    /// A statistics counter saturated instead of wrapping (e.g. the
    /// network byte-links tally); metrics derived from it are a lower
    /// bound, not an exact value.
    CounterSaturated,
}

/// One detected invariant violation.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Simulation cycle at which the violation was observed.
    pub cycle: u64,
    /// The violated invariant class.
    pub kind: InvariantKind,
    /// Human-readable specifics (block, core, counts).
    pub detail: String,
}

/// Checker configuration.
#[derive(Clone, Copy, Debug)]
pub struct CheckerConfig {
    /// Run a full-machine sweep every this many checked transactions
    /// (0 disables periodic sweeps; per-transaction block checks still
    /// run).
    pub sweep_every: u64,
    /// At most this many violations are recorded verbatim; the total
    /// count keeps incrementing past the cap.
    pub max_recorded: usize,
}

impl Default for CheckerConfig {
    fn default() -> Self {
        CheckerConfig {
            sweep_every: 10_000,
            max_recorded: 32,
        }
    }
}

/// A borrowed view of the machine state the checker inspects. The
/// simulator assembles this from its own fields on each call.
#[derive(Debug)]
pub struct CheckerCtx<'a> {
    /// Per-core L1 caches.
    pub l1: &'a [Cache],
    /// Per-core L2 caches (the token-holding level).
    pub l2: &'a [Cache],
    /// The token ledger (either engine exposes the memory-side holdings
    /// through [`TokenLedger`]).
    pub protocol: &'a dyn TokenLedger,
    /// The vCPU-map register file.
    pub maps: &'a VcpuMapFile,
    /// The hypervisor's placement (ground truth for map coverage).
    pub hv: &'a Hypervisor,
    /// Whether the map registers are currently trustworthy: false while
    /// fault injection may have corrupted them since the last audit.
    pub maps_trusted: bool,
}

/// Per-block accumulator for the sweep's line-major pass: what the caches
/// collectively hold for one block, gathered by visiting every cached
/// line exactly once instead of probing every cache for every block.
#[derive(Clone, Copy, Debug, Default)]
struct SweepAcc {
    /// Tokens held across all L2 caches.
    tokens: u32,
    /// Owner tokens held across all L2 caches.
    owners: u32,
    /// Cores whose L2 holds a valid-but-tokenless line for the block.
    tokenless: u64,
    /// Cores whose L2 holds a dirty line without the owner token.
    dirty_no_owner: u64,
}

/// The runtime invariant checker. See the module docs for the invariant
/// classes.
#[derive(Clone, Debug)]
pub struct InvariantChecker {
    cfg: CheckerConfig,
    /// Membership test for observed blocks; the open-addressed set keeps
    /// the per-transaction insert off the BTree's pointer-chasing path.
    touched: BlockMap<()>,
    /// Insertion-ordered list of observed blocks (sorted incrementally
    /// into `sorted_blocks` when a sweep needs deterministic order).
    touched_list: Vec<BlockAddr>,
    /// Sorted copy of the first `sorted_upto` entries of `touched_list`,
    /// refreshed by merging the unsorted tail at each sweep — cheaper
    /// than re-sorting the whole (append-only) list every time.
    sorted_blocks: Vec<BlockAddr>,
    sorted_upto: usize,
    /// Reusable scratch for the sweep's line-major accumulation pass.
    sweep_acc: BlockMap<SweepAcc>,
    violations: Vec<Violation>,
    total_violations: u64,
    block_checks: u64,
    sweeps: u64,
    map_checks: u64,
    since_sweep: u64,
}

impl InvariantChecker {
    /// Creates a checker with the given configuration.
    pub fn new(cfg: CheckerConfig) -> Self {
        InvariantChecker {
            cfg,
            touched: BlockMap::new(),
            touched_list: Vec::new(),
            sorted_blocks: Vec::new(),
            sorted_upto: 0,
            sweep_acc: BlockMap::new(),
            violations: Vec::new(),
            total_violations: 0,
            block_checks: 0,
            sweeps: 0,
            map_checks: 0,
            since_sweep: 0,
        }
    }

    /// Violations recorded verbatim (capped at `max_recorded`).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Total violations detected, including any past the recording cap.
    pub fn total_violations(&self) -> u64 {
        self.total_violations
    }

    /// Per-block checks performed.
    pub fn block_checks(&self) -> u64 {
        self.block_checks
    }

    /// Full-machine sweeps performed.
    pub fn sweeps(&self) -> u64 {
        self.sweeps
    }

    /// Map-register audits performed.
    pub fn map_checks(&self) -> u64 {
        self.map_checks
    }

    /// Distinct blocks observed so far.
    pub fn touched_blocks(&self) -> usize {
        self.touched_list.len()
    }

    fn record(&mut self, cycle: u64, kind: InvariantKind, detail: String) {
        self.total_violations += 1;
        if self.violations.len() < self.cfg.max_recorded {
            self.violations.push(Violation {
                cycle,
                kind,
                detail,
            });
        }
    }

    /// Records a [`InvariantKind::CounterSaturated`] violation for a
    /// saturated statistics counter. The simulator calls this (latched,
    /// once per counter) when it observes e.g.
    /// `TrafficStats::overflowed`, so saturation shows up in the same
    /// violation stream as coherence breaks instead of only as a silently
    /// clamped metric.
    pub fn note_counter_saturated(&mut self, cycle: u64, counter: &str) {
        self.record(
            cycle,
            InvariantKind::CounterSaturated,
            format!("{counter} saturated at u64::MAX; derived metrics are lower bounds"),
        );
    }

    /// Called after every coherence transaction: checks the hard
    /// invariants on `block` and, when the periodic sweep is due, the
    /// whole machine.
    pub fn on_transaction(&mut self, cycle: u64, block: BlockAddr, ctx: &CheckerCtx<'_>) {
        let before = self.touched.len();
        self.touched.entry_mut(block.index(), ());
        if self.touched.len() > before {
            self.touched_list.push(block);
        }
        self.check_block(cycle, block, ctx);
        self.since_sweep += 1;
        if self.cfg.sweep_every > 0 && self.since_sweep >= self.cfg.sweep_every {
            self.full_sweep(cycle, ctx);
        }
    }

    /// Checks token conservation, owner uniqueness, dirty-implies-owner
    /// and no-tokenless-lines for one block.
    pub fn check_block(&mut self, cycle: u64, block: BlockAddr, ctx: &CheckerCtx<'_>) {
        self.block_checks += 1;
        let total = ctx.protocol.total_tokens();
        let mut tokens = ctx.protocol.memory_tokens(block);
        let mut owners = u32::from(ctx.protocol.memory_has_owner(block));
        for (core, cache) in ctx.l2.iter().enumerate() {
            let Some(line) = cache.probe(block) else {
                continue;
            };
            tokens += line.state.tokens;
            owners += u32::from(line.state.owner);
            if line.state.tokens == 0 {
                self.record(
                    cycle,
                    InvariantKind::TokenlessLine,
                    format!("core {core}: valid line {block:?} holds 0 tokens"),
                );
            }
            if line.state.dirty && !line.state.owner {
                self.record(
                    cycle,
                    InvariantKind::DirtyWithoutOwner,
                    format!("core {core}: dirty line {block:?} without owner token"),
                );
            }
        }
        if tokens != total {
            self.record(
                cycle,
                InvariantKind::TokenConservation,
                format!("block {block:?}: {tokens} tokens in system, expected {total}"),
            );
        }
        if owners != 1 {
            self.record(
                cycle,
                InvariantKind::OwnerUniqueness,
                format!("block {block:?}: {owners} owner tokens, expected exactly 1"),
            );
        }
    }

    /// Merges blocks touched since the last sweep into the persistent
    /// sorted list. `touched_list` is append-only, so only the new tail
    /// needs sorting; the merge is linear in the list length.
    fn refresh_sorted_blocks(&mut self) {
        if self.sorted_upto == self.touched_list.len() {
            return;
        }
        let mut tail: Vec<BlockAddr> = self.touched_list[self.sorted_upto..].to_vec();
        tail.sort_unstable();
        let mut merged = Vec::with_capacity(self.sorted_blocks.len() + tail.len());
        let (mut i, mut j) = (0, 0);
        while i < self.sorted_blocks.len() && j < tail.len() {
            if self.sorted_blocks[i] <= tail[j] {
                merged.push(self.sorted_blocks[i]);
                i += 1;
            } else {
                merged.push(tail[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&self.sorted_blocks[i..]);
        merged.extend_from_slice(&tail[j..]);
        self.sorted_blocks = merged;
        self.sorted_upto = self.touched_list.len();
    }

    /// Sweeps the whole machine: every touched block, residence counters,
    /// L1 inclusion, and (when `ctx.maps_trusted`) the map registers.
    ///
    /// The per-block invariants are checked from a single line-major pass
    /// over the caches: every cached line is visited once and folded into
    /// a per-block accumulator, instead of probing every cache for every
    /// touched block. The violations produced — classes, details, and
    /// order — are identical to calling [`check_block`](Self::check_block)
    /// on each touched block in sorted order, which stays the behavioural
    /// spec (and is pinned by a test).
    pub fn full_sweep(&mut self, cycle: u64, ctx: &CheckerCtx<'_>) {
        self.sweeps += 1;
        self.since_sweep = 0;
        self.refresh_sorted_blocks();
        self.sweep_acc.clear();
        for (core, cache) in ctx.l2.iter().enumerate() {
            debug_assert!(core < 64, "core index exceeds the bitmask width");
            for line in cache.lines() {
                let acc = self
                    .sweep_acc
                    .entry_mut(line.block.index(), SweepAcc::default());
                acc.tokens += line.state.tokens;
                acc.owners += u32::from(line.state.owner);
                if line.state.tokens == 0 {
                    acc.tokenless |= 1 << core;
                }
                if line.state.dirty && !line.state.owner {
                    acc.dirty_no_owner |= 1 << core;
                }
            }
        }
        let total = ctx.protocol.total_tokens();
        for idx in 0..self.sorted_blocks.len() {
            let block = self.sorted_blocks[idx];
            self.block_checks += 1;
            let acc = self
                .sweep_acc
                .get(block.index())
                .copied()
                .unwrap_or_default();
            // Per-core line violations first, in ascending core order with
            // tokenless before dirty-without-owner on the same core —
            // exactly the order `check_block`'s probe loop records them.
            let mut cores = acc.tokenless | acc.dirty_no_owner;
            while cores != 0 {
                let core = cores.trailing_zeros() as u64;
                if acc.tokenless & (1 << core) != 0 {
                    self.record(
                        cycle,
                        InvariantKind::TokenlessLine,
                        format!("core {core}: valid line {block:?} holds 0 tokens"),
                    );
                }
                if acc.dirty_no_owner & (1 << core) != 0 {
                    self.record(
                        cycle,
                        InvariantKind::DirtyWithoutOwner,
                        format!("core {core}: dirty line {block:?} without owner token"),
                    );
                }
                cores &= cores - 1;
            }
            let tokens = acc.tokens + ctx.protocol.memory_tokens(block);
            let owners = acc.owners + u32::from(ctx.protocol.memory_has_owner(block));
            if tokens != total {
                self.record(
                    cycle,
                    InvariantKind::TokenConservation,
                    format!("block {block:?}: {tokens} tokens in system, expected {total}"),
                );
            }
            if owners != 1 {
                self.record(
                    cycle,
                    InvariantKind::OwnerUniqueness,
                    format!("block {block:?}: {owners} owner tokens, expected exactly 1"),
                );
            }
        }
        self.check_residence(cycle, ctx);
        self.check_inclusion(cycle, ctx);
        if ctx.maps_trusted {
            self.check_maps(cycle, ctx);
        }
    }

    /// Verifies every cache's per-VM (and host) residence counters
    /// against an actual scan of its tags.
    pub fn check_residence(&mut self, cycle: u64, ctx: &CheckerCtx<'_>) {
        let n_vms = ctx.maps.len();
        for (core, cache) in ctx.l2.iter().enumerate() {
            let mut counts = vec![0u64; n_vms];
            let mut host = 0u64;
            for line in cache.lines() {
                match line.tag {
                    LineTag::Vm(vm) => {
                        if (vm.index()) < n_vms {
                            counts[vm.index()] += 1;
                        }
                    }
                    LineTag::Host => host += 1,
                }
            }
            for (vm_idx, &expected) in counts.iter().enumerate() {
                let counter = cache.residence(VmId::new(vm_idx as u16));
                if counter != expected {
                    self.record(
                        cycle,
                        InvariantKind::ResidenceCounter,
                        format!(
                            "core {core}: VM{vm_idx} residence counter {counter}, scan says {expected}"
                        ),
                    );
                }
            }
            let host_counter = cache.host_residence();
            if host_counter != host {
                self.record(
                    cycle,
                    InvariantKind::ResidenceCounter,
                    format!("core {core}: host residence counter {host_counter}, scan says {host}"),
                );
            }
        }
    }

    /// Verifies the inclusive hierarchy: every L1 line has an L2 backer.
    pub fn check_inclusion(&mut self, cycle: u64, ctx: &CheckerCtx<'_>) {
        for (core, (l1, l2)) in ctx.l1.iter().zip(ctx.l2.iter()).enumerate() {
            for line in l1.lines() {
                if l2.probe(line.block).is_none() {
                    self.record(
                        cycle,
                        InvariantKind::L1Inclusion,
                        format!("core {core}: L1 line {:?} absent from L2", line.block),
                    );
                }
            }
        }
    }

    /// Verifies the vCPU-map registers against the hypervisor: no bits
    /// beyond the core count, and every running core covered. Only
    /// meaningful when the registers are known-good (fault-free, or just
    /// repaired by the audit) — the caller decides when that holds.
    pub fn check_maps(&mut self, cycle: u64, ctx: &CheckerCtx<'_>) {
        self.map_checks += 1;
        let n_cores = ctx.hv.n_cores();
        let valid = valid_core_mask(n_cores);
        for vm_idx in 0..ctx.maps.len() {
            let mask = ctx.maps.map(vm_idx).mask();
            if mask & !valid != 0 {
                self.record(
                    cycle,
                    InvariantKind::MapValidity,
                    format!(
                        "VM{vm_idx}: map {mask:#x} has bits beyond the {n_cores} physical cores"
                    ),
                );
            }
            let running = ctx.hv.cores_of_vm(VmId::new(vm_idx as u16));
            if running & !mask != 0 {
                self.record(
                    cycle,
                    InvariantKind::MapCoverage,
                    format!(
                        "VM{vm_idx}: map {mask:#x} misses running cores {:#x}",
                        running & !mask
                    ),
                );
            }
        }
    }
}

/// The mask of physically-present core bits for an `n_cores` machine.
pub fn valid_core_mask(n_cores: usize) -> u64 {
    if n_cores >= 64 {
        u64::MAX
    } else {
        (1u64 << n_cores) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::{CacheGeometry, CacheLine, LineTag, ReadMode, TokenProtocol, TokenState};
    use sim_vm::{homogeneous_vms, Hypervisor};

    const N: usize = 4;

    fn machine() -> (
        Vec<Cache>,
        Vec<Cache>,
        TokenProtocol,
        VcpuMapFile,
        Hypervisor,
    ) {
        let l2 = vec![Cache::new(CacheGeometry::new(8 * 1024, 4), 2); N];
        let l1 = vec![Cache::new(CacheGeometry::new(1024, 2), 2); N];
        let protocol = TokenProtocol::new(N as u32);
        let maps = VcpuMapFile::new(2);
        let vms = homogeneous_vms(2, 2, 64);
        let mut hv = Hypervisor::new(N, &vms);
        hv.place_round_robin();
        (l1, l2, protocol, maps, hv)
    }

    fn ctx<'a>(
        l1: &'a [Cache],
        l2: &'a [Cache],
        protocol: &'a TokenProtocol,
        maps: &'a VcpuMapFile,
        hv: &'a Hypervisor,
    ) -> CheckerCtx<'a> {
        CheckerCtx {
            l1,
            l2,
            protocol,
            maps,
            hv,
            maps_trusted: false,
        }
    }

    #[test]
    fn clean_machine_has_no_violations() {
        let (l1, mut l2, mut protocol, maps, hv) = machine();
        let b = BlockAddr::new(9);
        // A legitimate fill via the protocol keeps every invariant.
        let r = protocol.read_miss(
            &mut l2,
            0,
            &[1, 2, 3],
            b,
            true,
            LineTag::Vm(VmId::new(0)),
            ReadMode::Strict,
        );
        assert!(r.success);
        let mut ch = InvariantChecker::new(CheckerConfig::default());
        ch.on_transaction(5, b, &ctx(&l1, &l2, &protocol, &maps, &hv));
        ch.full_sweep(6, &ctx(&l1, &l2, &protocol, &maps, &hv));
        assert_eq!(ch.total_violations(), 0, "{:?}", ch.violations());
        assert!(ch.block_checks() >= 2);
    }

    #[test]
    fn detects_conjured_tokens_and_double_owner() {
        let (l1, mut l2, protocol, maps, hv) = machine();
        let b = BlockAddr::new(3);
        // Conjure a line out of thin air: memory still holds all 4 tokens
        // and the owner, so conservation AND owner-uniqueness both break.
        l2[1].insert(CacheLine::new(
            b,
            TokenState {
                tokens: 2,
                owner: true,
                dirty: false,
            },
            LineTag::Vm(VmId::new(0)),
        ));
        let mut ch = InvariantChecker::new(CheckerConfig::default());
        ch.check_block(1, b, &ctx(&l1, &l2, &protocol, &maps, &hv));
        let kinds: Vec<_> = ch.violations().iter().map(|v| v.kind).collect();
        assert!(
            kinds.contains(&InvariantKind::TokenConservation),
            "{kinds:?}"
        );
        assert!(kinds.contains(&InvariantKind::OwnerUniqueness), "{kinds:?}");
    }

    #[test]
    fn detects_dirty_without_owner_and_tokenless_lines() {
        let (l1, mut l2, mut protocol, maps, hv) = machine();
        let b = BlockAddr::new(4);
        let r = protocol.read_miss(
            &mut l2,
            0,
            &[1, 2, 3],
            b,
            true,
            LineTag::Vm(VmId::new(0)),
            ReadMode::Strict,
        );
        assert!(r.success);
        // Corrupt the (owner-holding) line: strip ownership but mark dirty.
        let line = l2[0].probe_mut(b).unwrap();
        line.state.owner = false;
        line.state.dirty = true;
        let mut ch = InvariantChecker::new(CheckerConfig::default());
        ch.check_block(2, b, &ctx(&l1, &l2, &protocol, &maps, &hv));
        let kinds: Vec<_> = ch.violations().iter().map(|v| v.kind).collect();
        assert!(
            kinds.contains(&InvariantKind::DirtyWithoutOwner),
            "{kinds:?}"
        );

        // Now drain its tokens entirely: a valid-but-tokenless line.
        let line = l2[0].probe_mut(b).unwrap();
        line.state.tokens = 0;
        line.state.dirty = false;
        let mut ch = InvariantChecker::new(CheckerConfig::default());
        ch.check_block(3, b, &ctx(&l1, &l2, &protocol, &maps, &hv));
        let kinds: Vec<_> = ch.violations().iter().map(|v| v.kind).collect();
        assert!(kinds.contains(&InvariantKind::TokenlessLine), "{kinds:?}");
    }

    #[test]
    fn detects_inclusion_and_residence_breaks() {
        let (mut l1, mut l2, _protocol, maps, hv) = machine();
        let protocol = TokenProtocol::new(N as u32);
        let b = BlockAddr::new(11);
        // L1 line with no L2 backer.
        l1[2].insert(CacheLine::new(
            b,
            TokenState::shared_one(),
            LineTag::Vm(VmId::new(1)),
        ));
        let mut ch = InvariantChecker::new(CheckerConfig::default());
        ch.check_inclusion(1, &ctx(&l1, &l2, &protocol, &maps, &hv));
        assert_eq!(ch.violations()[0].kind, InvariantKind::L1Inclusion);

        // Residence counters are maintained by Cache::insert/remove, so a
        // raw tag overwrite desynchronizes counter and scan.
        let l1_clean = vec![Cache::new(CacheGeometry::new(1024, 2), 2); N];
        l2[0].insert(CacheLine::new(
            b,
            TokenState::shared_one(),
            LineTag::Vm(VmId::new(0)),
        ));
        l2[0].probe_mut(b).unwrap().tag = LineTag::Vm(VmId::new(1));
        let mut ch = InvariantChecker::new(CheckerConfig::default());
        ch.check_residence(2, &ctx(&l1_clean, &l2, &protocol, &maps, &hv));
        assert!(ch
            .violations()
            .iter()
            .all(|v| v.kind == InvariantKind::ResidenceCounter));
        assert_eq!(ch.total_violations(), 2, "{:?}", ch.violations());
    }

    #[test]
    fn detects_map_corruption_only_when_trusted() {
        let (l1, l2, protocol, mut maps, hv) = machine();
        // Garbage register: bits beyond 4 cores, and missing VM0's cores.
        maps.corrupt(0, crate::vcpu_map::VcpuMap::from_mask(0xFF00));
        maps.set(
            1,
            crate::vcpu_map::VcpuMap::from_mask(hv.cores_of_vm(VmId::new(1))),
        );
        let mut c = ctx(&l1, &l2, &protocol, &maps, &hv);
        let mut ch = InvariantChecker::new(CheckerConfig::default());
        // Untrusted registers: the sweep skips map checks entirely.
        ch.full_sweep(1, &c);
        assert_eq!(ch.total_violations(), 0);
        // Trusted registers: both validity and coverage fire for VM0.
        c.maps_trusted = true;
        ch.full_sweep(2, &c);
        let kinds: Vec<_> = ch.violations().iter().map(|v| v.kind).collect();
        assert!(kinds.contains(&InvariantKind::MapValidity), "{kinds:?}");
        assert!(kinds.contains(&InvariantKind::MapCoverage), "{kinds:?}");
        assert!(!kinds.contains(&InvariantKind::ResidenceCounter));
    }

    #[test]
    fn sweep_matches_per_block_checks_in_sorted_order() {
        // The line-major sweep must produce exactly the violations that
        // per-block `check_block` calls over the sorted touched set
        // would: same classes, same details, same order. Plant a messy
        // machine to exercise every per-block class on several cores.
        let (mut l1, mut l2, protocol, maps, hv) = machine();
        let dirty_no_owner = TokenState {
            tokens: 1,
            owner: false,
            dirty: true,
        };
        let tokenless = TokenState {
            tokens: 0,
            owner: false,
            dirty: false,
        };
        let double_owner = TokenState {
            tokens: 2,
            owner: true,
            dirty: false,
        };
        // Touched blocks, inserted out of order to exercise the sort.
        l2[3].insert(CacheLine::new(
            BlockAddr::new(9),
            dirty_no_owner,
            LineTag::Host,
        ));
        l2[1].insert(CacheLine::new(BlockAddr::new(9), tokenless, LineTag::Host));
        l2[0].insert(CacheLine::new(
            BlockAddr::new(2),
            double_owner,
            LineTag::Host,
        ));
        l2[2].insert(CacheLine::new(
            BlockAddr::new(2),
            double_owner,
            LineTag::Host,
        ));
        l2[1].insert(CacheLine::new(BlockAddr::new(5), tokenless, LineTag::Host));
        // A cached block the checker never saw: ignored by both forms.
        l2[0].insert(CacheLine::new(
            BlockAddr::new(77),
            double_owner,
            LineTag::Host,
        ));
        // An L1 orphan so the sweep's non-block phases fire too.
        l1[2].insert(CacheLine::new(
            BlockAddr::new(9),
            TokenState::shared_one(),
            LineTag::Host,
        ));

        let cfg = CheckerConfig {
            sweep_every: 0,
            max_recorded: 1000,
        };
        let c = ctx(&l1, &l2, &protocol, &maps, &hv);

        // Register the touched set through the transaction path, then
        // sweep; the sweep's output is everything recorded after that.
        let mut swept = InvariantChecker::new(cfg);
        for b in [9u64, 2, 5] {
            swept.on_transaction(1, BlockAddr::new(b), &c);
        }
        let before = swept.violations().len();
        swept.full_sweep(2, &c);
        let got: Vec<_> = swept.violations()[before..]
            .iter()
            .map(|v| (v.cycle, v.kind, v.detail.clone()))
            .collect();

        // Reference: per-block checks over the sorted touched set, then
        // the same non-block phases.
        let mut reference = InvariantChecker::new(cfg);
        for b in [2u64, 5, 9] {
            reference.check_block(2, BlockAddr::new(b), &c);
        }
        reference.check_residence(2, &c);
        reference.check_inclusion(2, &c);
        let want: Vec<_> = reference
            .violations()
            .iter()
            .map(|v| (v.cycle, v.kind, v.detail.clone()))
            .collect();

        assert!(!want.is_empty(), "the planted state must violate something");
        assert_eq!(got, want);
        assert_eq!(
            swept.total_violations() - before as u64,
            reference.total_violations()
        );
    }

    #[test]
    fn recording_caps_but_counting_does_not() {
        let (l1, mut l2, protocol, maps, hv) = machine();
        for i in 0..10u64 {
            l2[0].insert(CacheLine::new(
                BlockAddr::new(i),
                TokenState {
                    tokens: 1,
                    owner: true,
                    dirty: false,
                },
                LineTag::Host,
            ));
        }
        let mut ch = InvariantChecker::new(CheckerConfig {
            sweep_every: 0,
            max_recorded: 3,
        });
        for i in 0..10u64 {
            ch.check_block(i, BlockAddr::new(i), &ctx(&l1, &l2, &protocol, &maps, &hv));
        }
        assert_eq!(ch.violations().len(), 3);
        // Each conjured line breaks conservation and owner uniqueness.
        assert_eq!(ch.total_violations(), 20);
    }

    #[test]
    fn valid_mask_handles_64_cores() {
        assert_eq!(valid_core_mask(64), u64::MAX);
        assert_eq!(valid_core_mask(16), 0xFFFF);
        assert_eq!(valid_core_mask(4), 0xF);
    }
}

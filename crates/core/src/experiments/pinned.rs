//! Table IV and Fig. 6 — ideally pinned virtual machines.
//!
//! Four VMs of four vCPUs each, pinned to fixed quadrants of the 16-core
//! mesh, no hypervisor activity (matching Virtual-GEMS). Virtual snooping
//! then filters exactly 75% of snoops; the paper reports the resulting
//! network traffic reduction (62-64%, Table IV) and a modest execution
//! time improvement (0.2-9.1%, avg 3.8%, Fig. 6).

use workloads::simulation_apps;

use crate::config::SystemConfig;
use crate::experiments::common::RunScale;
use crate::experiments::warm::{self, CellSpec};
use crate::policy::{ContentPolicy, FilterPolicy};
use crate::runner::scatter;

/// Results for one application.
#[derive(Clone, Debug)]
pub struct PinnedRow {
    /// Application name.
    pub name: &'static str,
    /// Snoop tag lookups, virtual snooping relative to TokenB, percent
    /// (ideal: 25%).
    pub norm_snoops_pct: f64,
    /// Network traffic reduction relative to TokenB, percent (Table IV).
    pub traffic_reduction_pct: f64,
    /// Estimated runtime, virtual snooping relative to TokenB, percent
    /// (Fig. 6).
    pub norm_runtime_pct: f64,
    /// Paper's Table IV traffic reduction.
    pub paper_traffic_reduction_pct: Option<f64>,
}

/// Runs Table IV / Fig. 6: TokenB vs. base virtual snooping, pinned VMs.
///
/// One shard per application (each computes its TokenB baseline and
/// virtual-snooping cell); the per-cell results are memoized, so the
/// Table IV and Fig. 6 reports — which both call this — simulate the
/// twenty cells once.
pub fn table4_fig6(scale: RunScale) -> Vec<PinnedRow> {
    let cfg = SystemConfig::paper_default();
    scatter(simulation_apps(), |app| {
        let cell = |policy| {
            warm::cell(&CellSpec {
                app,
                policy,
                content_policy: ContentPolicy::Broadcast,
                content_sharing: false,
                host_activity: false,
                cfg,
                scale,
                migration_period_ms: None,
            })
        };
        let base = cell(FilterPolicy::TokenBroadcast);
        let vsnoop = cell(FilterPolicy::VsnoopBase);
        let base_runtime = base.stats.runtime_cycles(cfg.cycles_per_access) as f64;
        let vs_runtime = vsnoop.stats.runtime_cycles(cfg.cycles_per_access) as f64;
        PinnedRow {
            name: app.name,
            norm_snoops_pct: 100.0 * vsnoop.stats.snoops as f64 / base.stats.snoops.max(1) as f64,
            traffic_reduction_pct: 100.0 * vsnoop.traffic.reduction_vs(&base.traffic),
            norm_runtime_pct: 100.0 * vs_runtime / base_runtime.max(1.0),
            paper_traffic_reduction_pct: app.targets.table4_reduction_pct,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinned_filtering_hits_the_ideal_quarter() {
        let rows = table4_fig6(RunScale::quick());
        assert_eq!(rows.len(), 10);
        for r in &rows {
            assert!(
                (r.norm_snoops_pct - 25.0).abs() < 1.0,
                "{}: pinned VMs with no host activity must filter to ~25% (got {:.1})",
                r.name,
                r.norm_snoops_pct
            );
        }
    }

    #[test]
    fn traffic_reduction_is_substantial_and_runtime_improves() {
        let rows = table4_fig6(RunScale::quick());
        for r in &rows {
            assert!(
                r.traffic_reduction_pct > 35.0 && r.traffic_reduction_pct < 90.0,
                "{}: implausible traffic reduction {:.1}%",
                r.name,
                r.traffic_reduction_pct
            );
            assert!(
                r.norm_runtime_pct <= 100.5,
                "{}: vsnoop should not slow execution ({:.1}%)",
                r.name,
                r.norm_runtime_pct
            );
        }
    }
}

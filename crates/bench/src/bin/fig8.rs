//! Fig. 8 — total snoops under VM relocation every 0.5 / 0.1 (scaled) ms.

use vsnoop_bench::{reports, scale_from_env};

fn main() {
    vsnoop_bench::init_obs();
    match reports::fig8(scale_from_env()) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("fig8: {e}");
            std::process::exit(1);
        }
    }
}

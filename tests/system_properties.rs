//! Property-based tests over the assembled system: arbitrary short runs
//! with arbitrary policies and migrations preserve the global invariants.

use proptest::prelude::*;
use virtual_snooping::prelude::*;
use virtual_snooping::sim_mem::BlockAddr;

fn policy_strategy() -> impl Strategy<Value = FilterPolicy> {
    prop_oneof![
        Just(FilterPolicy::TokenBroadcast),
        Just(FilterPolicy::VsnoopBase),
        Just(FilterPolicy::Counter),
        (1u64..32).prop_map(|threshold| FilterPolicy::CounterThreshold { threshold }),
    ]
}

fn content_strategy() -> impl Strategy<Value = ContentPolicy> {
    prop_oneof![
        Just(ContentPolicy::Broadcast),
        Just(ContentPolicy::MemoryDirect),
        Just(ContentPolicy::IntraVm),
        Just(ContentPolicy::FriendVm),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_policy_runs_preserve_invariants(
        policy in policy_strategy(),
        content in content_strategy(),
        app_idx in 0usize..10,
        seed in 0u64..1000,
        swaps in prop::collection::vec((0u16..4, 0u16..4, 0u16..4, 0u16..4), 0..4),
    ) {
        let cfg = SystemConfig::small_test();
        let mut sim = Simulator::new(cfg, policy, content);
        let app = workloads::simulation_apps()[app_idx];
        let mut wl = Workload::homogeneous(
            app,
            cfg.n_vms,
            WorkloadConfig {
                vcpus_per_vm: cfg.vcpus_per_vm,
                seed,
                content_sharing: content != ContentPolicy::Broadcast,
                ..Default::default()
            },
        );
        sim.run(&mut wl, 300);
        for (va, ia, vb, ib) in swaps {
            let a = VcpuId::new(VmId::new(va % cfg.n_vms as u16), ia % cfg.vcpus_per_vm);
            let b = VcpuId::new(VmId::new(vb % cfg.n_vms as u16), ib % cfg.vcpus_per_vm);
            if a.vm() != b.vm() {
                sim.swap_vcpus(a, b);
            }
            sim.run(&mut wl, 300);
        }

        // Token conservation everywhere the workload can have touched.
        for block in 0..(wl.allocated_pages() * 64) {
            prop_assert!(
                sim.check_invariant(BlockAddr::new(block)),
                "token invariant broken at block {block} under {policy}/{content}"
            );
        }
        // Every access was either a hit or a miss; counters are consistent.
        let s = sim.stats();
        prop_assert_eq!(s.l1_hits + s.l2_hits + s.l2_misses, s.accesses);
        prop_assert_eq!(s.misses_guest + s.misses_dom0 + s.misses_hyp, s.l2_misses);
        prop_assert_eq!(
            s.misses_private + s.misses_rw_shared + s.misses_ro_shared,
            s.l2_misses
        );
        // vCPU maps always cover the cores the VMs currently run on.
        for vm in 0..cfg.n_vms {
            let id = VmId::new(vm as u16);
            let running = sim.hypervisor().cores_of_vm(id);
            prop_assert_eq!(
                sim.vcpu_map(id).mask() & running,
                running,
                "map must contain all cores the VM runs on"
            );
        }
    }

    #[test]
    fn filtered_snoops_never_exceed_broadcast(
        app_idx in 0usize..10,
        seed in 0u64..100,
    ) {
        let cfg = SystemConfig::small_test();
        let app = workloads::simulation_apps()[app_idx];
        let mk = |policy| {
            let mut sim = Simulator::new(cfg, policy, ContentPolicy::Broadcast);
            let mut wl = Workload::homogeneous(
                app,
                cfg.n_vms,
                WorkloadConfig {
                    vcpus_per_vm: cfg.vcpus_per_vm,
                    seed,
                    ..Default::default()
                },
            );
            sim.run(&mut wl, 1_500);
            (sim.stats().snoops, sim.stats().l2_misses)
        };
        let (sb, mb) = mk(FilterPolicy::TokenBroadcast);
        let (sv, mv) = mk(FilterPolicy::VsnoopBase);
        prop_assert_eq!(mb, mv, "identical traces must miss identically");
        prop_assert!(sv <= sb, "filtering must never increase snoops");
    }
}

//! Table III — application profiles (the synthetic stand-ins for the
//! paper's input sets).

use vsnoop_bench::{f2, heading, TextTable};
use workloads::simulation_apps;

fn main() {
    heading(
        "Table III: simulated applications and their synthetic parameters",
        "The paper lists the real input sets (e.g. fft: 4M points); this\n\
         reproduction lists the calibrated trace-generator parameters that\n\
         stand in for them (per VM).",
    );
    let mut t = TextTable::new([
        "application",
        "suite",
        "private pages",
        "zipf",
        "write frac",
        "content frac",
        "content pages",
    ]);
    for app in simulation_apps() {
        let p = app.trace;
        t.row([
            app.name.to_string(),
            format!("{:?}", app.suite),
            p.private_pages.to_string(),
            f2(p.zipf_s),
            f2(p.write_frac),
            f2(p.content_frac),
            p.content_pages.to_string(),
        ]);
    }
    t.maybe_dump_csv("table3").expect("csv dump");
    println!("{t}");
}

//! Closed-form model of potential snoop reduction (Fig. 2).
//!
//! With `v` VMs of `d` vCPUs each on `n = v * d` cores, pinned perfectly,
//! a fraction `h` of coherence transactions comes from the hypervisor and
//! must be broadcast (`n` tag lookups); the rest are multicast within a
//! snoop domain of `d` cores. The expected snoop reduction relative to
//! always-broadcast is therefore
//!
//! ```text
//! reduction(h, d, n) = 1 - (h * n + (1 - h) * d) / n
//! ```
//!
//! The paper's Fig. 2 sweeps v in {2, 4, 8, 16} and h in
//! {0, 5, 10, 20, 30, 40}%.

use crate::error::SimError;

/// Expected fraction of snoops removed by virtual snooping (ideal pinning).
///
/// `hypervisor_fraction` is the share of coherence transactions issued by
/// the hypervisor (broadcast); `domain_cores` is the per-VM snoop domain
/// size; `total_cores` is the machine size.
///
/// # Panics
///
/// Panics if `hypervisor_fraction` is outside `[0, 1]` (or not finite),
/// if `domain_cores` is zero, or if `domain_cores > total_cores`. Code
/// whose arguments come from measurements or user configuration rather
/// than literals should use [`try_snoop_reduction`] and handle the error.
///
/// # Examples
///
/// ```
/// use vsnoop::snoop_reduction;
///
/// // 16 VMs x 4 vCPUs on 64 cores, no hypervisor activity:
/// let r = snoop_reduction(0.0, 4, 64);
/// assert!((r - 0.9375).abs() < 1e-12); // "more than 93%"
/// ```
pub fn snoop_reduction(hypervisor_fraction: f64, domain_cores: usize, total_cores: usize) -> f64 {
    match try_snoop_reduction(hypervisor_fraction, domain_cores, total_cores) {
        Ok(r) => r,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible form of [`snoop_reduction`] for arguments that originate in
/// measurements or configuration instead of literals.
///
/// # Errors
///
/// Returns [`SimError::AnalyticOutOfRange`] naming the offending
/// argument when `hypervisor_fraction` is outside `[0, 1]` (including
/// NaN), `domain_cores` is zero, or the domain exceeds the machine.
///
/// # Examples
///
/// ```
/// use vsnoop::try_snoop_reduction;
///
/// assert!(try_snoop_reduction(0.1, 4, 64).is_ok());
/// assert!(try_snoop_reduction(1.5, 4, 64).is_err()); // bad fraction
/// assert!(try_snoop_reduction(0.0, 8, 4).is_err()); // domain > machine
/// ```
pub fn try_snoop_reduction(
    hypervisor_fraction: f64,
    domain_cores: usize,
    total_cores: usize,
) -> Result<f64, SimError> {
    if !(0.0..=1.0).contains(&hypervisor_fraction) {
        return Err(SimError::AnalyticOutOfRange {
            detail: format!("hypervisor fraction must be in [0, 1] (got {hypervisor_fraction})"),
        });
    }
    if domain_cores == 0 {
        return Err(SimError::AnalyticOutOfRange {
            detail: format!("domain must contain at least one core (machine has {total_cores})"),
        });
    }
    if domain_cores > total_cores {
        return Err(SimError::AnalyticOutOfRange {
            detail: format!(
                "domain cannot exceed the machine ({domain_cores} domain cores > {total_cores} total)"
            ),
        });
    }
    let n = total_cores as f64;
    let d = domain_cores as f64;
    let h = hypervisor_fraction;
    Ok(1.0 - (h * n + (1.0 - h) * d) / n)
}

/// One row of the Fig. 2 sweep.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Fig2Point {
    /// Number of VMs (4 vCPUs each).
    pub n_vms: usize,
    /// Total cores (`4 * n_vms`).
    pub total_cores: usize,
    /// Hypervisor transaction fraction.
    pub hypervisor_fraction: f64,
    /// Expected snoop reduction, in percent.
    pub reduction_pct: f64,
}

/// Generates the full Fig. 2 sweep: 2/4/8/16 VMs x hypervisor ratios
/// ideal(0)/5/10/20/30/40 %.
pub fn fig2_sweep() -> Vec<Fig2Point> {
    let mut out = Vec::new();
    for &n_vms in &[2usize, 4, 8, 16] {
        for &h in &[0.0, 0.05, 0.10, 0.20, 0.30, 0.40] {
            let total = 4 * n_vms;
            out.push(Fig2Point {
                n_vms,
                total_cores: total,
                hypervisor_fraction: h,
                reduction_pct: 100.0 * snoop_reduction(h, 4, total),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_headline_numbers() {
        // "An ideal configuration with no hypervisor misses reduces more
        // than 93% of snoops with 16 VMs running on 64 cores."
        assert!(snoop_reduction(0.0, 4, 64) > 0.93);
        // "with 5-10% hypervisor misses, the potential reductions are
        // still 84-89% with 16 VMs."
        let r10 = snoop_reduction(0.10, 4, 64);
        let r5 = snoop_reduction(0.05, 4, 64);
        assert!(r10 > 0.84 && r10 < r5 && r5 < 0.90, "r5={r5} r10={r10}");
    }

    #[test]
    fn single_vm_cannot_reduce() {
        assert_eq!(snoop_reduction(0.0, 4, 4), 0.0);
    }

    #[test]
    fn monotonic_in_hypervisor_fraction() {
        let mut prev = f64::INFINITY;
        for h in [0.0, 0.1, 0.2, 0.5, 1.0] {
            let r = snoop_reduction(h, 4, 16);
            assert!(r < prev || h == 0.0);
            prev = r;
        }
        assert_eq!(snoop_reduction(1.0, 4, 16), 0.0);
    }

    #[test]
    fn sweep_shape() {
        let pts = fig2_sweep();
        assert_eq!(pts.len(), 24);
        // More VMs at the same ratio -> more reduction.
        let at = |vms: usize, h: f64| {
            pts.iter()
                .find(|p| p.n_vms == vms && (p.hypervisor_fraction - h).abs() < 1e-9)
                .unwrap()
                .reduction_pct
        };
        assert!(at(16, 0.05) > at(8, 0.05));
        assert!(at(8, 0.05) > at(4, 0.05));
        assert!((at(4, 0.0) - 75.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "domain cannot exceed")]
    fn oversized_domain_rejected() {
        let _ = snoop_reduction(0.0, 8, 4);
    }

    #[test]
    fn try_variant_returns_typed_errors() {
        for (h, d, n) in [
            (-0.1, 4, 16),
            (1.5, 4, 16),
            (f64::NAN, 4, 16),
            (0.0, 0, 16),
            (0.0, 8, 4),
        ] {
            match try_snoop_reduction(h, d, n) {
                Err(SimError::AnalyticOutOfRange { detail }) => {
                    assert!(!detail.is_empty(), "detail must name the violation")
                }
                other => panic!("expected AnalyticOutOfRange for ({h}, {d}, {n}), got {other:?}"),
            }
        }
    }

    #[test]
    fn try_variant_matches_panicking_form_in_domain() {
        for (h, d, n) in [(0.0, 4, 64), (0.05, 4, 64), (1.0, 4, 16), (0.3, 4, 8)] {
            assert_eq!(
                try_snoop_reduction(h, d, n).unwrap(),
                snoop_reduction(h, d, n)
            );
        }
    }
}

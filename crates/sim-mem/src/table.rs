//! A deterministic open-addressed hash table keyed by raw block index.
//!
//! The memory-side token ledger is the hottest lookup in the simulator:
//! every write miss (and every failed attempt's bounce) touches it, and
//! `std`'s `HashMap` pays SipHash plus a double lookup (`get` then
//! `insert`) per operation. [`BlockMap`] replaces it with a linear-probing
//! table using a Fibonacci multiplicative hash — a single multiply — and
//! an `entry_mut` API that resolves the slot exactly once per operation.
//!
//! The table is *insert-only* (the ledger never deletes entries; blocks
//! whose tokens all return home simply sit in the reset state), which
//! keeps probing trivially correct: no tombstones, no backward shifts.
//! Everything about it is deterministic — identical insert sequences
//! produce identical slot layouts — though iteration order remains an
//! implementation detail; sort before comparing, as with any map.

/// Sentinel for an empty slot. Block indices are byte addresses divided
/// by 64, so `u64::MAX` can never be a real key.
const EMPTY: u64 = u64::MAX;

/// Fibonacci hashing constant (2^64 / φ).
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// A deterministic, insert-only, open-addressed map from raw `u64` block
/// indices to small copyable values.
///
/// # Examples
///
/// ```
/// use sim_mem::BlockMap;
///
/// let mut m: BlockMap<u32> = BlockMap::new();
/// *m.entry_mut(7, 0) += 3;
/// assert_eq!(m.get(7), Some(&3));
/// assert_eq!(m.get(8), None);
/// assert_eq!(m.len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct BlockMap<V> {
    keys: Vec<u64>,
    vals: Vec<V>,
    len: usize,
    /// `capacity - 1`; capacity is always a power of two.
    mask: usize,
    /// `64 - log2(capacity)`: maps the hash's high bits to a slot.
    shift: u32,
}

impl<V: Copy + Default> Default for BlockMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Copy + Default> BlockMap<V> {
    /// Creates an empty map with a small pre-sized backing store.
    pub fn new() -> Self {
        Self::with_pow2_capacity(1 << 10)
    }

    fn with_pow2_capacity(cap: usize) -> Self {
        debug_assert!(cap.is_power_of_two());
        BlockMap {
            keys: vec![EMPTY; cap],
            vals: vec![V::default(); cap],
            len: 0,
            mask: cap - 1,
            shift: 64 - cap.trailing_zeros(),
        }
    }

    /// Number of keys inserted.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn slot_of(&self, key: u64) -> usize {
        let mut i = (key.wrapping_mul(FIB) >> self.shift) as usize;
        loop {
            let k = self.keys[i];
            if k == key || k == EMPTY {
                return i;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Looks up `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        let i = self.slot_of(key);
        if self.keys[i] == key {
            Some(&self.vals[i])
        } else {
            None
        }
    }

    /// Returns a mutable reference to the value for `key`, inserting
    /// `default` first if the key is absent. This is the single-probe
    /// read-modify-write primitive the token ledger is built on.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `key` is `u64::MAX`, which is reserved
    /// as the empty-slot sentinel.
    #[inline]
    pub fn entry_mut(&mut self, key: u64, default: V) -> &mut V {
        debug_assert_ne!(key, EMPTY, "u64::MAX is reserved as the empty sentinel");
        // Grow at 7/8 load so linear probe chains stay short.
        if (self.len + 1) * 8 > self.keys.len() * 7 {
            self.grow();
        }
        let i = self.slot_of(key);
        if self.keys[i] == EMPTY {
            self.keys[i] = key;
            self.vals[i] = default;
            self.len += 1;
        }
        &mut self.vals[i]
    }

    /// Empties the map while keeping its backing allocation, so a scratch
    /// table can be reused across passes without reallocating.
    pub fn clear(&mut self) {
        self.keys.fill(EMPTY);
        self.len = 0;
    }

    /// Iterates over `(key, &value)` pairs in slot order. Slot order is
    /// an implementation detail; sort before comparing across maps.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> + '_ {
        self.keys
            .iter()
            .zip(self.vals.iter())
            .filter(|(&k, _)| k != EMPTY)
            .map(|(&k, v)| (k, v))
    }

    fn grow(&mut self) {
        let next = Self::with_pow2_capacity((self.mask + 1) * 2);
        let old_keys = std::mem::replace(&mut self.keys, next.keys);
        let old_vals = std::mem::replace(&mut self.vals, next.vals);
        self.mask = next.mask;
        self.shift = next.shift;
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != EMPTY {
                *self.entry_mut(k, v) = v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_lookup_roundtrip() {
        let mut m: BlockMap<u64> = BlockMap::new();
        for k in 0..5000u64 {
            *m.entry_mut(k, 0) = k * 3;
        }
        assert_eq!(m.len(), 5000);
        for k in 0..5000u64 {
            assert_eq!(m.get(k), Some(&(k * 3)), "key {k}");
        }
        assert_eq!(m.get(5000), None);
    }

    #[test]
    fn entry_mut_inserts_default_once() {
        let mut m: BlockMap<u32> = BlockMap::new();
        assert_eq!(*m.entry_mut(9, 42), 42);
        *m.entry_mut(9, 0) += 1;
        assert_eq!(m.get(9), Some(&43));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn growth_preserves_entries() {
        // Force several rehashes from the smallest capacity path.
        let mut m: BlockMap<u64> = BlockMap::with_pow2_capacity(2);
        for k in 0..300u64 {
            *m.entry_mut(k * 64, 0) = k;
        }
        for k in 0..300u64 {
            assert_eq!(m.get(k * 64), Some(&k));
        }
        assert_eq!(m.len(), 300);
    }

    #[test]
    fn iter_yields_every_entry() {
        let mut m: BlockMap<u8> = BlockMap::new();
        for k in [3u64, 77, 1024, 9999] {
            *m.entry_mut(k, 0) = (k % 250) as u8;
        }
        let mut got: Vec<(u64, u8)> = m.iter().map(|(k, &v)| (k, v)).collect();
        got.sort_unstable();
        assert_eq!(got, vec![(3, 3), (77, 77), (1024, 24), (9999, 249)]);
    }

    #[test]
    fn clear_keeps_capacity_and_forgets_keys() {
        let mut m: BlockMap<u32> = BlockMap::new();
        for k in 0..100u64 {
            *m.entry_mut(k, 0) = k as u32;
        }
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(5), None);
        // Reinsertion after clear starts from the default again.
        assert_eq!(*m.entry_mut(5, 7), 7);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn clustered_keys_stay_distinct() {
        // Sequential block indices (the common case) must not collide into
        // loss; adjacent keys probe into adjacent slots at worst.
        let mut m: BlockMap<u64> = BlockMap::new();
        for k in 1_000_000..1_002_048u64 {
            *m.entry_mut(k, 0) = !k;
        }
        for k in 1_000_000..1_002_048u64 {
            assert_eq!(m.get(k), Some(&!k));
        }
    }
}

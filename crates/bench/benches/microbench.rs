//! Criterion microbenchmarks of the hot paths: cache access, token
//! protocol transactions, Zipf sampling, TLB lookup, and snoop-destination
//! computation.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sim_mem::{
    BlockAddr, Cache, CacheGeometry, CacheLine, LineTag, ReadMode, TokenProtocol, TokenState,
};
use sim_net::{Mesh, MessageKind, Network, NodeId};
use sim_vm::{SharingDirectory, SharingType, TypeTlb, VmId};
use workloads::ZipfSampler;

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(1));

    let geometry = CacheGeometry::new(256 * 1024, 8);
    let mut cache = Cache::new(geometry, 4);
    for b in 0..4096u64 {
        cache.insert(CacheLine::new(
            BlockAddr::new(b),
            TokenState::shared_one(),
            LineTag::Vm(VmId::new((b % 4) as u16)),
        ));
    }
    let mut i = 0u64;
    group.bench_function("access_hit", |bench| {
        bench.iter(|| {
            i = (i + 1) % 4096;
            black_box(cache.access(BlockAddr::new(i)))
        })
    });
    group.bench_function("access_miss", |bench| {
        bench.iter(|| {
            i += 1;
            black_box(cache.access(BlockAddr::new(100_000 + i)))
        })
    });
    group.finish();
}

fn bench_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("token_protocol");
    group.throughput(Throughput::Elements(1));

    let dests: Vec<usize> = (1..16).collect();
    let mut b = 0u64;
    group.bench_function("read_write_roundtrip_broadcast", |bench| {
        let mut caches = vec![Cache::new(CacheGeometry::new(64 * 1024, 8), 4); 16];
        let mut tp = TokenProtocol::new(16);
        bench.iter(|| {
            b += 1;
            let block = BlockAddr::new(b % 512);
            if caches[0].probe(block).is_none() {
                let _ = tp.read_miss(
                    &mut caches,
                    0,
                    &dests,
                    block,
                    true,
                    LineTag::Vm(VmId::new(0)),
                    ReadMode::Strict,
                );
            }
            let w = tp.write_miss(&mut caches, 1, &[0], block, true, LineTag::Vm(VmId::new(0)));
            black_box(w.success)
        })
    });
    group.finish();
}

fn bench_network(c: &mut Criterion) {
    let mut group = c.benchmark_group("network");
    group.throughput(Throughput::Elements(1));
    let mut net = Network::new(Mesh::new(4, 4));
    let dests: Vec<NodeId> = (1..16u16).map(NodeId::new).collect();
    group.bench_function("broadcast_request", |bench| {
        bench.iter(|| {
            black_box(net.multicast(NodeId::new(0), dests.iter().copied(), MessageKind::Request))
        })
    });
    group.bench_function("quadrant_multicast", |bench| {
        let quad: Vec<NodeId> = [1u16, 4, 5].iter().map(|&i| NodeId::new(i)).collect();
        bench.iter(|| {
            black_box(net.multicast(NodeId::new(0), quad.iter().copied(), MessageKind::Request))
        })
    });
    group.finish();
}

fn bench_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload");
    group.throughput(Throughput::Elements(1));

    let zipf = ZipfSampler::new(4096, 0.7);
    let mut rng = SmallRng::seed_from_u64(1);
    group.bench_function("zipf_sample", |bench| {
        bench.iter(|| black_box(zipf.sample(&mut rng)))
    });

    let mut dir = SharingDirectory::new();
    for p in 0..10_000u64 {
        dir.register(p, SharingType::VmPrivate, Some(VmId::new((p % 4) as u16)));
    }
    let mut tlb = TypeTlb::new(64);
    let mut p = 0u64;
    group.bench_function("tlb_lookup", |bench| {
        bench.iter(|| {
            p = (p + 1) % 128; // mostly hits in a 64-entry TLB
            black_box(tlb.lookup(p, &dir))
        })
    });

    let mut wl = workloads::Workload::homogeneous(
        workloads::profile("canneal").unwrap(),
        4,
        workloads::WorkloadConfig::default(),
    );
    let mut i = 0u16;
    group.bench_function("trace_generation", |bench| {
        use workloads::AccessStream;
        bench.iter(|| {
            i = (i + 1) % 16;
            let vcpu = sim_vm::VcpuId::new(VmId::new(i / 4), i % 4);
            black_box(wl.next_access(vcpu))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cache,
    bench_protocol,
    bench_network,
    bench_workload
);
criterion_main!(benches);

//! Server-side metrics: sharded lock-free counters/gauges and
//! fixed-footprint log2-bucket latency histograms.
//!
//! Every stage of the serving stack records into process-global statics
//! defined here — the service request lifecycle (admission wait, WAL
//! group-commit fsync, per-tenant queue wait, job run time, end-to-end
//! request latency), the reactor loop (poll/epoll wait, events per
//! wake, dispatch and outbox-flush time, connection gauge), and the
//! batched parallel engine's three phases. The record path never
//! allocates and never locks: a [`Counter`] or [`Histogram`] is a fixed
//! array of cache-line-padded atomics striped by thread, so concurrent
//! recorders land on different lines and a snapshot is just a relaxed
//! sum over the stripes.
//!
//! Latencies are recorded in **microseconds** into 65 log2 buckets:
//! bucket 0 holds the value 0 and bucket `i` holds `[2^(i-1), 2^i - 1]`,
//! so a bucket-edge quantile brackets the exact nearest-rank value
//! within one power of two (the recorded maximum is tracked exactly and
//! caps the top). That fixed footprint is what makes snapshots
//! mergeable and the record path branch-free.
//!
//! Three exposition surfaces, all fed from the same statics:
//!
//! * the `metrics` wire op ([`snapshot_value`] → one JSON object with
//!   p50/p90/p99/max per histogram, global and per tenant);
//! * a Prometheus text dump ([`prometheus`], rewritten to
//!   `<trace>/metrics.prom` by [`write_prom`] on each heartbeat);
//! * periodic `service_metrics` records in `telemetry.jsonl`.
//!
//! Service- and reactor-stage recording is **always on**: each record
//! costs a thread-local read plus a few uncontended relaxed atomic
//! adds, noise against the millisecond-scale operations it measures
//! (the `service`/`service_conns` perf bins gate that claim). The
//! engine-phase histograms alone are gated on [`enabled`] —
//! `VSNOOP_METRICS=1`, [`set_enabled`], or an active trace directory —
//! because the batched simulation loop is the workspace's zero-cost
//! hot path (the `storm_metrics` perf bin watches the enabled cost).

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::runner::json::Value;

/// Number of log2 buckets: bucket 0 for the value 0, buckets 1..=64
/// for `[2^(i-1), 2^i - 1]` — every `u64` has exactly one bucket.
pub const BUCKETS: usize = 65;

/// Stripe count for counters and histograms. Eight matches the engine
/// shard count and the service worker scale; stripes are picked by a
/// per-thread round-robin token so steady-state recorders never share
/// a cache line.
const STRIPES: usize = 8;

/// The log2 bucket index of `v`: 0 for 0, else `64 - leading_zeros`.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// The inclusive upper edge of bucket `i` (`0` for bucket 0,
/// `u64::MAX` for bucket 64).
#[inline]
fn bucket_edge(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// This thread's stripe index, assigned round-robin on first use.
#[inline]
fn stripe() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: usize = NEXT.fetch_add(1, Ordering::Relaxed) % STRIPES;
    }
    STRIPE.with(|s| *s)
}

/// One cache line worth of atomic counter, so adjacent stripes never
/// false-share.
#[repr(align(64))]
struct PaddedU64(AtomicU64);

impl PaddedU64 {
    const fn new() -> Self {
        PaddedU64(AtomicU64::new(0))
    }
}

/// A monotonically increasing event count, striped by thread.
pub struct Counter {
    stripes: [PaddedU64; STRIPES],
}

impl Counter {
    /// A zeroed counter, usable in a `static`.
    #[allow(clippy::new_without_default)]
    pub const fn new() -> Counter {
        // Array-repeat initializer; each stripe is an independent copy.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: PaddedU64 = PaddedU64::new();
        Counter {
            stripes: [ZERO; STRIPES],
        }
    }

    /// Adds `n` on this thread's stripe. No allocation, no locks.
    #[inline]
    pub fn add(&self, n: u64) {
        self.stripes[stripe()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// [`Counter::add`]`(1)`.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The total across stripes.
    pub fn get(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// A last-write-wins instantaneous value (one atomic; gauges are
/// written from a single owner thread, so striping buys nothing).
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge, usable in a `static`.
    #[allow(clippy::new_without_default)]
    pub const fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the current value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// One stripe of a histogram: its own bucket array, sum, and max.
struct HistStripe {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistStripe {
    const fn new() -> HistStripe {
        // The const is an array-repeat initializer, not a shared value:
        // every use site copies a fresh zeroed atomic.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        HistStripe {
            buckets: [ZERO; BUCKETS],
            sum: ZERO,
            max: ZERO,
        }
    }
}

/// A fixed-footprint log2-bucket latency histogram, striped by thread.
///
/// [`Histogram::record`] is the hot path: one thread-local read, three
/// relaxed atomic ops on this thread's stripe, zero allocation. Values
/// are conventionally **microseconds** (the `_US` statics below), but
/// the histogram itself is unit-agnostic — `REACTOR_EVENTS_PER_WAKE`
/// records plain counts.
pub struct Histogram {
    stripes: [HistStripe; STRIPES],
}

impl Histogram {
    /// A zeroed histogram, usable in a `static`.
    #[allow(clippy::new_without_default)]
    pub const fn new() -> Histogram {
        // Array-repeat initializer; each stripe is an independent copy.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: HistStripe = HistStripe::new();
        Histogram {
            stripes: [ZERO; STRIPES],
        }
    }

    /// Records one observation. Allocation-free and lock-free.
    #[inline]
    pub fn record(&self, v: u64) {
        let s = &self.stripes[stripe()];
        s.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        s.sum.fetch_add(v, Ordering::Relaxed);
        s.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Merges the stripes into one consistent-enough snapshot (each
    /// stripe is read with relaxed loads; totals race with concurrent
    /// recorders by at most the in-flight records, like any live
    /// metrics scrape).
    pub fn snapshot(&self) -> HistSnapshot {
        let mut out = HistSnapshot::default();
        for s in &self.stripes {
            for (i, b) in s.buckets.iter().enumerate() {
                out.buckets[i] += b.load(Ordering::Relaxed);
            }
            out.sum += s.sum.load(Ordering::Relaxed);
            out.max = out.max.max(s.max.load(Ordering::Relaxed));
        }
        out.count = out.buckets.iter().sum();
        out
    }
}

/// A merged, immutable view of a [`Histogram`] — what snapshots,
/// quantile queries, and the exposition formats operate on.
#[derive(Clone)]
pub struct HistSnapshot {
    /// Per-bucket counts (see [`bucket_of`]).
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Exact maximum recorded value.
    pub max: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistSnapshot {
    /// Folds `other` into `self` (histograms over the same bucket
    /// scheme merge by plain addition; `max` by max).
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The nearest-rank `p`-th percentile (`0 < p <= 100`), resolved to
    /// the upper edge of the bucket holding that rank and capped at the
    /// exact recorded maximum. For any recorded value `v > 0` the
    /// result brackets the exact nearest-rank answer within one bucket:
    /// `exact <= quantile(p) < 2 * exact`. Returns 0 when empty.
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_edge(i).min(self.max);
            }
        }
        self.max
    }

    /// Mean of the recorded values (exact: `sum / count`), 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Exact nearest-rank percentile on an already-sorted slice — the one
/// shared implementation (the loadtest's client-side percentiles and
/// the histogram-bracketing property test both use it). `p` is in
/// percent; returns 0.0 for an empty slice.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

// ---------------------------------------------------------------------
// The metric registry: every stage's statics, by layer.
// ---------------------------------------------------------------------

/// Admission wait: request parsed on the reactor → admission thread
/// picks it up (µs).
pub static SERVICE_ADMISSION_WAIT_US: Histogram = Histogram::new();
/// WAL group-commit append+fsync latency per accepted submit (µs).
pub static SERVICE_WAL_FSYNC_US: Histogram = Histogram::new();
/// Queue wait: admission accepted → scheduler dispatched (µs).
pub static SERVICE_QUEUE_WAIT_US: Histogram = Histogram::new();
/// Job run time: dispatch → terminal outcome (µs).
pub static SERVICE_RUN_US: Histogram = Histogram::new();
/// End-to-end server-side request latency: request parsed → terminal
/// outcome queued for the client (µs).
pub static SERVICE_REQUEST_US: Histogram = Histogram::new();
/// Submit requests received on the reactor (before dedup/admission).
pub static SERVICE_REQUESTS: Counter = Counter::new();
/// Typed sheds (any reason, including `pipeline_full`).
pub static SERVICE_SHED: Counter = Counter::new();
/// Terminal `done` outcomes.
pub static SERVICE_DONE: Counter = Counter::new();

/// Reactor poll/epoll wait per wake (µs).
pub static REACTOR_POLL_WAIT_US: Histogram = Histogram::new();
/// Readiness events delivered per wake (a count, not µs).
pub static REACTOR_EVENTS_PER_WAKE: Histogram = Histogram::new();
/// Readiness-event handling time per wake: accepts, reads, request
/// dispatch, and the flushes they trigger (µs).
pub static REACTOR_DISPATCH_US: Histogram = Histogram::new();
/// Cross-thread reply flush time per wake: draining the dirty set
/// other threads' outbox appends marked (µs).
pub static REACTOR_FLUSH_US: Histogram = Histogram::new();
/// Open connections (gauge, reactor-owned).
pub static REACTOR_CONNECTIONS: Gauge = Gauge::new();

/// Batched engine update-procs phase per batch (µs; gated on
/// [`enabled`]).
pub static ENGINE_UPDATE_PROCS_US: Histogram = Histogram::new();
/// Batched engine update-caches phase per batch (µs; gated).
pub static ENGINE_UPDATE_CACHES_US: Histogram = Histogram::new();
/// Batched engine update-net replay per batch (µs; gated).
pub static ENGINE_UPDATE_NET_US: Histogram = Histogram::new();
/// Worker completion spread per batch — last worker's reply minus
/// first worker's reply, the measured shard imbalance (µs; gated).
pub static ENGINE_SHARD_IMBALANCE_US: Histogram = Histogram::new();

/// The per-tenant histogram families (request latency and queue wait).
/// First use of a tenant name allocates its slot once under the lock;
/// the recording itself stays on the lock-free histogram. The vec is
/// small (tenants, not requests), so lookup is a linear scan.
struct Family {
    slots: Mutex<Vec<(String, &'static Histogram)>>,
}

impl Family {
    const fn new() -> Family {
        Family {
            slots: Mutex::new(Vec::new()),
        }
    }

    fn get(&self, tenant: &str) -> &'static Histogram {
        let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((_, h)) = slots.iter().find(|(t, _)| t == tenant) {
            return h;
        }
        let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
        slots.push((tenant.to_string(), h));
        h
    }

    fn snapshot(&self) -> Vec<(String, HistSnapshot)> {
        let slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
        slots
            .iter()
            .map(|(t, h)| (t.clone(), h.snapshot()))
            .collect()
    }
}

static TENANT_REQUEST_US: Family = Family::new();
static TENANT_QUEUE_WAIT_US: Family = Family::new();

/// Records one end-to-end request latency for `tenant` (µs) — global
/// histogram plus the tenant's family slot.
pub fn record_request(tenant: &str, us: u64) {
    SERVICE_REQUEST_US.record(us);
    TENANT_REQUEST_US.get(tenant).record(us);
}

/// Records one queue wait for `tenant` (µs) — global plus family.
pub fn record_queue_wait(tenant: &str, us: u64) {
    SERVICE_QUEUE_WAIT_US.record(us);
    TENANT_QUEUE_WAIT_US.get(tenant).record(us);
}

// ---------------------------------------------------------------------
// The engine-phase gate.
// ---------------------------------------------------------------------

static METRICS_ON: AtomicBool = AtomicBool::new(false);

/// Whether engine-phase metrics record. True when explicitly enabled
/// ([`set_enabled`] / `VSNOOP_METRICS=1`) **or** the observability
/// layer is on. Note the engine itself refuses the batched path while
/// tracing is on, so explicit enablement is how the batched phases are
/// actually observed (the `storm_metrics` perf bin). Service and
/// reactor recording ignores this gate entirely.
#[inline]
pub fn enabled() -> bool {
    METRICS_ON.load(Ordering::Relaxed) || super::enabled()
}

/// Turns the engine-phase gate on or off (does not touch the trace
/// directory and never affects engine eligibility).
pub fn set_enabled(on: bool) {
    METRICS_ON.store(on, Ordering::SeqCst);
}

/// Reads `VSNOOP_METRICS` (`1`/`true` enables the engine-phase gate).
/// Called from [`crate::obs::init_from_env`].
pub fn init_from_env() {
    if let Ok(v) = std::env::var("VSNOOP_METRICS") {
        let v = v.trim();
        if v == "1" || v.eq_ignore_ascii_case("true") {
            set_enabled(true);
        }
    }
}

// ---------------------------------------------------------------------
// Exposition: JSON snapshot, Prometheus text, heartbeat record fields.
// ---------------------------------------------------------------------

/// One histogram rendered for the wire: count plus p50/p90/p99/max in
/// milliseconds (µs values scaled; `REACTOR_EVENTS_PER_WAKE` is the
/// only count-valued histogram and is rendered raw).
fn hist_value_ms(s: &HistSnapshot) -> Value {
    Value::obj(vec![
        ("count", Value::UInt(s.count)),
        ("p50_ms", Value::Float(s.quantile(50.0) as f64 / 1000.0)),
        ("p90_ms", Value::Float(s.quantile(90.0) as f64 / 1000.0)),
        ("p99_ms", Value::Float(s.quantile(99.0) as f64 / 1000.0)),
        ("max_ms", Value::Float(s.max as f64 / 1000.0)),
        ("mean_ms", Value::Float(s.mean() / 1000.0)),
    ])
}

fn hist_value_raw(s: &HistSnapshot) -> Value {
    Value::obj(vec![
        ("count", Value::UInt(s.count)),
        ("p50", Value::UInt(s.quantile(50.0))),
        ("p90", Value::UInt(s.quantile(90.0))),
        ("p99", Value::UInt(s.quantile(99.0))),
        ("max", Value::UInt(s.max)),
    ])
}

/// Every named µs-histogram in the registry, for the exposition
/// formats (engine histograms included — empty unless gated on).
fn us_histograms() -> [(&'static str, &'static Histogram); 11] {
    [
        ("service_request_us", &SERVICE_REQUEST_US),
        ("service_admission_wait_us", &SERVICE_ADMISSION_WAIT_US),
        ("service_wal_fsync_us", &SERVICE_WAL_FSYNC_US),
        ("service_queue_wait_us", &SERVICE_QUEUE_WAIT_US),
        ("service_run_us", &SERVICE_RUN_US),
        ("reactor_poll_wait_us", &REACTOR_POLL_WAIT_US),
        ("reactor_dispatch_us", &REACTOR_DISPATCH_US),
        ("reactor_flush_us", &REACTOR_FLUSH_US),
        ("engine_update_procs_us", &ENGINE_UPDATE_PROCS_US),
        ("engine_update_caches_us", &ENGINE_UPDATE_CACHES_US),
        ("engine_update_net_us", &ENGINE_UPDATE_NET_US),
    ]
}

/// The full JSON metrics snapshot: what the `metrics` wire op embeds.
/// Global counters/gauges, every stage histogram (p50/p90/p99/max in
/// ms), per-tenant request-latency and queue-wait families, the warm
/// pool, and the process uptime ([`super::mono_ms`]).
pub fn snapshot_value() -> Value {
    let (warm_hits, warm_misses, warm_evictions) = crate::experiments::warm_counters();
    let counters = Value::obj(vec![
        ("requests", Value::UInt(SERVICE_REQUESTS.get())),
        ("shed", Value::UInt(SERVICE_SHED.get())),
        ("done", Value::UInt(SERVICE_DONE.get())),
        ("warm_hits", Value::UInt(warm_hits)),
        ("warm_misses", Value::UInt(warm_misses)),
        ("warm_evictions", Value::UInt(warm_evictions)),
    ]);
    let gauges = Value::obj(vec![(
        "connections",
        Value::UInt(REACTOR_CONNECTIONS.get()),
    )]);
    let mut hists: Vec<(String, Value)> = us_histograms()
        .iter()
        .map(|(name, h)| (name.to_string(), hist_value_ms(&h.snapshot())))
        .collect();
    hists.push((
        "engine_shard_imbalance_us".to_string(),
        hist_value_ms(&ENGINE_SHARD_IMBALANCE_US.snapshot()),
    ));
    hists.push((
        "reactor_events_per_wake".to_string(),
        hist_value_raw(&REACTOR_EVENTS_PER_WAKE.snapshot()),
    ));
    let tenants: Vec<(String, Value)> = {
        let reqs = TENANT_REQUEST_US.snapshot();
        let waits = TENANT_QUEUE_WAIT_US.snapshot();
        reqs.iter()
            .map(|(t, s)| {
                let mut fields = vec![("request".to_string(), hist_value_ms(s))];
                if let Some((_, w)) = waits.iter().find(|(wt, _)| wt == t) {
                    fields.push(("queue_wait".to_string(), hist_value_ms(w)));
                }
                (t.clone(), Value::Obj(fields))
            })
            .collect()
    };
    Value::obj(vec![
        ("uptime_ms", Value::UInt(super::mono_ms())),
        ("counters", counters),
        ("gauges", gauges),
        ("histograms", Value::Obj(hists)),
        ("tenants", Value::Obj(tenants)),
    ])
}

/// Renders the registry in the Prometheus text exposition format:
/// each histogram as cumulative `_bucket{le=...}` series plus `_sum`
/// and `_count`, counters as `_total`, the connection gauge plain.
/// Tenant families ride on a `tenant` label.
pub fn prometheus() -> String {
    use std::fmt::Write;
    // `label` is either empty or a full `name="value"` pair; bucket
    // lines splice it after the `le` label, `_sum`/`_count` wrap it in
    // braces on their own.
    fn hist(out: &mut String, name: &str, label: &str, s: &HistSnapshot) {
        let _ = writeln!(out, "# TYPE vsnoop_{name} histogram");
        let sep = if label.is_empty() {
            String::new()
        } else {
            format!(",{label}")
        };
        let braced = if label.is_empty() {
            String::new()
        } else {
            format!("{{{label}}}")
        };
        let mut cum = 0u64;
        for (i, &b) in s.buckets.iter().enumerate() {
            if b == 0 {
                continue;
            }
            cum += b;
            let _ = writeln!(
                out,
                "vsnoop_{name}_bucket{{le=\"{}\"{sep}}} {cum}",
                bucket_edge(i)
            );
        }
        let _ = writeln!(out, "vsnoop_{name}_bucket{{le=\"+Inf\"{sep}}} {}", s.count);
        let _ = writeln!(out, "vsnoop_{name}_sum{braced} {}", s.sum);
        let _ = writeln!(out, "vsnoop_{name}_count{braced} {}", s.count);
    }
    let mut out = String::with_capacity(8192);
    for (name, h) in us_histograms() {
        hist(&mut out, name, "", &h.snapshot());
    }
    hist(
        &mut out,
        "engine_shard_imbalance_us",
        "",
        &ENGINE_SHARD_IMBALANCE_US.snapshot(),
    );
    hist(
        &mut out,
        "reactor_events_per_wake",
        "",
        &REACTOR_EVENTS_PER_WAKE.snapshot(),
    );
    for (t, s) in TENANT_REQUEST_US.snapshot() {
        hist(
            &mut out,
            "tenant_request_us",
            &format!("tenant=\"{}\"", sanitize_label(&t)),
            &s,
        );
    }
    for (t, s) in TENANT_QUEUE_WAIT_US.snapshot() {
        hist(
            &mut out,
            "tenant_queue_wait_us",
            &format!("tenant=\"{}\"", sanitize_label(&t)),
            &s,
        );
    }
    let _ = writeln!(out, "# TYPE vsnoop_service_requests_total counter");
    let _ = writeln!(
        out,
        "vsnoop_service_requests_total {}",
        SERVICE_REQUESTS.get()
    );
    let _ = writeln!(out, "# TYPE vsnoop_service_shed_total counter");
    let _ = writeln!(out, "vsnoop_service_shed_total {}", SERVICE_SHED.get());
    let _ = writeln!(out, "# TYPE vsnoop_service_done_total counter");
    let _ = writeln!(out, "vsnoop_service_done_total {}", SERVICE_DONE.get());
    let _ = writeln!(out, "# TYPE vsnoop_reactor_connections gauge");
    let _ = writeln!(
        out,
        "vsnoop_reactor_connections {}",
        REACTOR_CONNECTIONS.get()
    );
    out
}

/// Escapes a tenant name for use inside a Prometheus label value.
fn sanitize_label(t: &str) -> String {
    t.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Rewrites `<dir>/metrics.prom` atomically (write temp, rename) —
/// the heartbeat calls this with the active trace directory.
pub fn write_prom(dir: &Path) {
    let tmp = dir.join("metrics.prom.tmp");
    let dst = dir.join("metrics.prom");
    if std::fs::write(&tmp, prometheus()).is_ok() {
        let _ = std::fs::rename(&tmp, &dst);
    }
}

/// Rewrites `metrics.prom` under the current trace directory, if any.
/// A no-op when tracing is off, so heartbeats stay side-effect-free
/// without a trace dir.
pub fn write_prom_if_traced() {
    if let Some(dir) = super::trace_dir() {
        write_prom(&dir);
    }
}

/// The compact field set the heartbeat's `service_metrics` telemetry
/// record carries: the three lifecycle counters plus the end-to-end
/// latency summary (ms).
pub fn heartbeat_fields() -> Vec<(&'static str, Value)> {
    let s = SERVICE_REQUEST_US.snapshot();
    vec![
        ("requests", Value::UInt(SERVICE_REQUESTS.get())),
        ("shed", Value::UInt(SERVICE_SHED.get())),
        ("done", Value::UInt(SERVICE_DONE.get())),
        ("connections", Value::UInt(REACTOR_CONNECTIONS.get())),
        ("latency_count", Value::UInt(s.count)),
        (
            "latency_p50_ms",
            Value::Float(s.quantile(50.0) as f64 / 1000.0),
        ),
        (
            "latency_p99_ms",
            Value::Float(s.quantile(99.0) as f64 / 1000.0),
        ),
        ("latency_max_ms", Value::Float(s.max as f64 / 1000.0)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scheme_covers_every_u64() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        // Every bucket's edge lands back in that bucket.
        for i in 1..BUCKETS {
            assert_eq!(bucket_of(bucket_edge(i)), i, "edge of bucket {i}");
            assert_eq!(bucket_of(bucket_edge(i - 1) + 1), i.max(1));
        }
    }

    #[test]
    fn histogram_quantiles_bracket_and_max_is_exact() {
        let h = Histogram::new();
        for v in [0u64, 1, 5, 5, 9, 100, 1000, 1000, 4096, 70_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        assert_eq!(s.max, 70_000);
        assert_eq!(s.sum, 76_216);
        // p100 is the exact max; every quantile brackets the exact
        // nearest-rank answer within one power of two.
        assert_eq!(s.quantile(100.0), 70_000);
        let mut sorted = [0u64, 1, 5, 5, 9, 100, 1000, 1000, 4096, 70_000];
        sorted.sort_unstable();
        for p in [10.0, 50.0, 90.0, 99.0] {
            let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
            let exact = sorted[rank.clamp(1, sorted.len()) - 1];
            let q = s.quantile(p);
            assert!(q >= exact, "p{p}: {q} < exact {exact}");
            assert!(
                exact == 0 || q < 2 * exact.max(1),
                "p{p}: {q} >= 2x exact {exact}"
            );
        }
    }

    #[test]
    fn snapshots_merge_by_addition() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [1u64, 2, 3] {
            a.record(v);
        }
        for v in [100u64, 200] {
            b.record(v);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 5);
        assert_eq!(m.sum, 306);
        assert_eq!(m.max, 200);
        assert_eq!(m.quantile(100.0), 200);
    }

    #[test]
    fn counter_sums_across_stripes() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 50.0), 2.0);
        assert_eq!(percentile(&xs, 75.0), 3.0);
        assert_eq!(percentile(&xs, 99.0), 4.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.5], 1.0), 7.5);
    }

    #[test]
    fn snapshot_value_and_prometheus_render() {
        record_request("metrics-unit-test-tenant", 1234);
        let v = snapshot_value();
        assert!(v.get("counters").is_some());
        assert!(v.get("histograms").is_some());
        let text = prometheus();
        assert!(text.contains("# TYPE vsnoop_service_request_us histogram"));
        assert!(text.contains("vsnoop_service_requests_total"));
        assert!(text.contains("tenant=\"metrics-unit-test-tenant\""));
        // The rendered JSON round-trips through the strict parser.
        let parsed = Value::parse(&v.to_json()).expect("snapshot JSON parses");
        assert!(parsed.get("uptime_ms").is_some());
    }
}

#[cfg(all(test, feature = "proptest"))]
mod prop {
    use super::*;
    use proptest::prelude::*;

    /// Records `values` split across `threads` concurrent recorders and
    /// asserts the merged snapshot equals the serial ground truth.
    fn assert_concurrent_equals_serial(values: Vec<u64>, threads: usize) {
        let h = Histogram::new();
        let c = Counter::new();
        let chunk = values.len().div_ceil(threads).max(1);
        std::thread::scope(|s| {
            for part in values.chunks(chunk) {
                let (h, c) = (&h, &c);
                s.spawn(move || {
                    for &v in part {
                        h.record(v);
                        c.add(v);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, values.len() as u64);
        assert_eq!(snap.sum, values.iter().sum::<u64>());
        assert_eq!(snap.max, values.iter().copied().max().unwrap_or(0));
        assert_eq!(c.get(), values.iter().sum::<u64>());
        let mut serial = [0u64; BUCKETS];
        for &v in &values {
            serial[bucket_of(v)] += 1;
        }
        assert_eq!(snap.buckets, serial);
    }

    /// The satellite-3 bracket property: the histogram quantile is
    /// never below the exact nearest-rank value and never a full
    /// bucket (2x) above it.
    fn assert_quantile_brackets(values: &[u64], p: f64) {
        let h = Histogram::new();
        for &v in values {
            h.record(v);
        }
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        let sorted_f: Vec<f64> = sorted.iter().map(|&v| v as f64).collect();
        let exact = percentile(&sorted_f, p) as u64;
        let q = h.snapshot().quantile(p);
        assert!(q >= exact, "p{p}: histogram {q} < exact {exact}");
        assert!(
            q <= 2 * exact.max(1),
            "p{p}: histogram {q} > 2x exact {exact}"
        );
    }

    proptest! {
        #[test]
        fn concurrent_recording_matches_serial_totals(
            values in proptest::collection::vec(0u64..1_000_000, 1..400),
            threads in 1usize..8,
        ) {
            assert_concurrent_equals_serial(values, threads);
        }

        #[test]
        fn histogram_quantile_brackets_nearest_rank(
            values in proptest::collection::vec(0u64..10_000_000, 1..300),
            p in 1.0f64..100.0,
        ) {
            assert_quantile_brackets(&values, p);
        }
    }
}

//! End-to-end integration tests: full-system runs spanning every crate.

use virtual_snooping::prelude::*;
use virtual_snooping::sim_mem::BlockAddr;

fn run_policy(policy: FilterPolicy, app: &str, rounds: u64) -> Simulator {
    let cfg = SystemConfig::paper_default();
    let mut sim = Simulator::new(cfg, policy, ContentPolicy::Broadcast);
    let mut wl = Workload::homogeneous(
        profile(app).expect("registered"),
        cfg.n_vms,
        WorkloadConfig {
            vcpus_per_vm: cfg.vcpus_per_vm,
            ..Default::default()
        },
    );
    sim.run(&mut wl, rounds);
    sim
}

#[test]
fn policies_order_snoops_correctly() {
    let base = run_policy(FilterPolicy::TokenBroadcast, "radix", 8_000);
    let vsnoop = run_policy(FilterPolicy::VsnoopBase, "radix", 8_000);
    // Same deterministic trace: identical coherence transactions.
    assert_eq!(base.stats().l2_misses, vsnoop.stats().l2_misses);
    // Pinned VMs, no host: filtering achieves exactly the 25% ideal.
    assert_eq!(base.stats().snoops, base.stats().l2_misses * 16);
    assert_eq!(vsnoop.stats().snoops, vsnoop.stats().l2_misses * 4);
    // And correspondingly less traffic.
    assert!(vsnoop.traffic().byte_links() < base.traffic().byte_links() / 2);
}

#[test]
fn filtering_never_needs_retries_when_pinned() {
    for app in ["cholesky", "ocean", "specjbb"] {
        let sim = run_policy(FilterPolicy::VsnoopBase, app, 5_000);
        assert_eq!(
            sim.stats().retries,
            0,
            "{app}: pinned private pages never fail"
        );
        assert_eq!(sim.stats().broadcast_fallbacks, 0, "{app}");
    }
}

#[test]
fn token_invariants_hold_across_the_machine_after_long_runs() {
    let sim = run_policy(FilterPolicy::Counter, "ferret", 20_000);
    for block in 0..40_000u64 {
        assert!(
            sim.check_invariant(BlockAddr::new(block)),
            "token conservation broken at block {block}"
        );
    }
}

#[test]
fn runs_are_deterministic() {
    let a = run_policy(FilterPolicy::VsnoopBase, "fft", 4_000);
    let b = run_policy(FilterPolicy::VsnoopBase, "fft", 4_000);
    assert_eq!(a.stats().l2_misses, b.stats().l2_misses);
    assert_eq!(a.stats().snoops, b.stats().snoops);
    assert_eq!(a.traffic().byte_links(), b.traffic().byte_links());
}

#[test]
fn counter_policy_shrinks_maps_after_migrations() {
    let cfg = SystemConfig::paper_default();
    let mut sim = Simulator::new(cfg, FilterPolicy::Counter, ContentPolicy::Broadcast);
    let mut wl = Workload::homogeneous(
        profile("ocean").unwrap(),
        cfg.n_vms,
        WorkloadConfig {
            vcpus_per_vm: cfg.vcpus_per_vm,
            ..Default::default()
        },
    );
    sim.run(&mut wl, 10_000);
    let a = VcpuId::new(VmId::new(0), 0);
    let b = VcpuId::new(VmId::new(1), 0);
    sim.swap_vcpus(a, b).unwrap();
    assert_eq!(sim.vcpu_map(VmId::new(0)).len(), 5);
    assert_eq!(sim.vcpu_map(VmId::new(1)).len(), 5);
    // Ocean's streaming heap churns the caches; both old cores drain.
    sim.run(&mut wl, 250_000);
    assert_eq!(
        sim.vcpu_map(VmId::new(0)).len(),
        4,
        "VM0 map must shrink back"
    );
    assert_eq!(
        sim.vcpu_map(VmId::new(1)).len(),
        4,
        "VM1 map must shrink back"
    );
    assert!(sim.stats().map_removes >= 2);
    assert!(sim
        .removal_log()
        .iter()
        .all(|e| e.period.is_none() || e.period.unwrap() > 0));
}

#[test]
fn host_activity_forces_broadcasts_under_filtering() {
    let cfg = SystemConfig::paper_default();
    let mut sim = Simulator::new(cfg, FilterPolicy::VsnoopBase, ContentPolicy::Broadcast);
    let mut wl = Workload::homogeneous(
        profile("OLTP").unwrap(),
        cfg.n_vms,
        WorkloadConfig {
            vcpus_per_vm: cfg.vcpus_per_vm,
            host_activity: true,
            ..Default::default()
        },
    );
    sim.run(&mut wl, 15_000);
    let s = sim.stats();
    let host_misses = s.misses_dom0 + s.misses_hyp;
    assert!(host_misses > 0);
    // Host misses snoop all 16; guest misses snoop 4. Check the exact
    // arithmetic (retries are zero here).
    assert_eq!(s.retries, 0);
    assert_eq!(
        s.snoops,
        host_misses * 16 + s.misses_guest * 4,
        "snoop count must decompose exactly into host broadcasts and guest multicasts"
    );
}

#[test]
fn heterogeneous_vms_keep_their_own_domains() {
    let cfg = SystemConfig::paper_default();
    let mut sim = Simulator::new(cfg, FilterPolicy::VsnoopBase, ContentPolicy::Broadcast);
    let profiles: Vec<_> = ["specjbb", "OLTP", "swaptions", "canneal"]
        .iter()
        .map(|n| profile(n).unwrap())
        .collect();
    let mut wl = workloads::Workload::new(
        profiles,
        WorkloadConfig {
            vcpus_per_vm: cfg.vcpus_per_vm,
            ..Default::default()
        },
    );
    sim.run(&mut wl, 10_000);
    for vm in 0..4u16 {
        let map = sim.vcpu_map(VmId::new(vm));
        assert_eq!(map.len(), 4, "VM{vm} domain stays at its 4 pinned cores");
    }
    assert_eq!(sim.stats().snoops, sim.stats().l2_misses * 4);
}

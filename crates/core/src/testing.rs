//! Test-only process-wide toggles.
//!
//! The differential guard needs to build two simulators that differ in
//! *nothing* but the protocol engine. Threading an engine choice through
//! every constructor signature would force the choice on every caller, so
//! the guard flips a process-wide flag instead; [`Simulator::try_new`]
//! reads it once at construction time.
//!
//! [`Simulator::try_new`]: crate::Simulator::try_new

use std::sync::atomic::{AtomicBool, Ordering};

static REFERENCE_ENGINE: AtomicBool = AtomicBool::new(false);

/// Makes subsequently constructed [`Simulator`](crate::Simulator)s run on
/// the frozen pre-optimization reference engine instead of the optimized
/// one. Affects construction only; existing simulators keep their engine.
///
/// Tests that flip this must either run in a single `#[test]` or restore
/// the flag before other tests construct simulators — the flag is
/// process-wide.
#[doc(hidden)]
pub fn set_reference_engine(on: bool) {
    REFERENCE_ENGINE.store(on, Ordering::SeqCst);
}

pub(crate) fn reference_engine() -> bool {
    REFERENCE_ENGINE.load(Ordering::SeqCst)
}

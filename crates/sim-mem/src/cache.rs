//! Set-associative caches with LRU replacement and per-VM residence
//! counters.
//!
//! The residence counters are the paper's key hardware addition for
//! supporting VM relocation (Section IV-B): "Each per-VM counter records
//! the number of VM-private blocks in the cache for a VM. Whenever a block
//! is added to a cache, the corresponding counter for the current VM is
//! increased. [...] When a cacheline is evicted by replacement or
//! invalidated by snoops, the counter of the corresponding VM is
//! decreased. When the counter becomes zero, it is certain that the
//! private data of the VM do not exist in the cache," at which point the
//! core can safely leave the VM's snoop domain.

use sim_vm::VmId;

use crate::addr::{BlockAddr, BLOCK_BYTES};
use crate::line::{CacheLine, LineTag};

/// Geometry of a cache: capacity, associativity, block size.
///
/// # Examples
///
/// ```
/// use sim_mem::CacheGeometry;
///
/// // The paper's 256 KB 8-way L2 with 64-byte blocks:
/// let g = CacheGeometry::new(256 * 1024, 8);
/// assert_eq!(g.sets(), 512);
/// assert_eq!(g.lines(), 4096);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheGeometry {
    bytes: u64,
    ways: usize,
    /// `sets() - 1`, precomputed: set selection is on the hot path of
    /// every probe, and the set count is only known at runtime, so the
    /// modulo would otherwise compile to a hardware divide.
    set_mask: u64,
}

impl CacheGeometry {
    /// Creates a geometry for a cache of `bytes` capacity and `ways`
    /// associativity, with [`BLOCK_BYTES`]-byte blocks.
    ///
    /// # Panics
    ///
    /// Panics unless `bytes` is a positive multiple of
    /// `ways * BLOCK_BYTES` and the resulting set count is a power of two.
    pub fn new(bytes: u64, ways: usize) -> Self {
        assert!(ways > 0, "associativity must be positive");
        let line_bytes = ways as u64 * BLOCK_BYTES;
        assert!(
            bytes > 0 && bytes.is_multiple_of(line_bytes),
            "capacity must be a positive multiple of ways * block size"
        );
        let sets = bytes / line_bytes;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        CacheGeometry {
            bytes,
            ways,
            set_mask: sets - 1,
        }
    }

    /// Total capacity in bytes.
    pub const fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Associativity.
    pub const fn ways(&self) -> usize {
        self.ways
    }

    /// Number of sets.
    pub const fn sets(&self) -> u64 {
        self.bytes / (self.ways as u64 * BLOCK_BYTES)
    }

    /// Total number of lines.
    pub const fn lines(&self) -> u64 {
        self.bytes / BLOCK_BYTES
    }

    /// The set index of `block`.
    pub const fn set_of(&self, block: BlockAddr) -> usize {
        (block.index() & self.set_mask) as usize
    }
}

/// Basic hit/miss statistics of one cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Lookups performed via [`Cache::access`].
    pub accesses: u64,
    /// Lookups that found a valid line.
    pub hits: u64,
    /// Lines displaced by insertion.
    pub evictions: u64,
}

impl CacheStats {
    /// Misses (accesses that did not hit).
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }
}

/// One cache set in the data-oriented layout: its resident lines plus a
/// **per-set** LRU clock.
///
/// The clock used to be cache-global; moving it into the set is what lets
/// the parallel engine hand disjoint groups of sets to different worker
/// shards with no shared mutable state. Replacement is unchanged bit for
/// bit: the LRU victim is the minimum `last_use` *within one set*, and a
/// per-set clock stamps the set's touches with strictly increasing values
/// in exactly the order the global clock did.
#[derive(Clone, Debug, Default)]
pub struct CacheSet {
    lines: Vec<CacheLine>,
    clock: u64,
}

/// What [`CacheSet::insert_line`] did, so the caller (full cache or
/// shard view) can adjust its own residence counters and statistics.
pub(crate) enum InsertOutcome {
    /// The block was already present; its state/tag were replaced in
    /// place (carries the replaced line's old tag).
    Replaced(LineTag),
    /// The line was appended to a non-full set.
    Pushed,
    /// The set was full; the LRU victim was displaced.
    Evicted(CacheLine),
}

impl CacheSet {
    /// The set's resident lines (checker/test visibility).
    pub fn lines(&self) -> &[CacheLine] {
        &self.lines
    }

    /// Stats-free lookup.
    fn find(&self, block: BlockAddr) -> Option<&CacheLine> {
        self.lines.iter().find(|l| l.block == block)
    }

    /// Stats-free mutable lookup.
    fn find_mut(&mut self, block: BlockAddr) -> Option<&mut CacheLine> {
        self.lines.iter_mut().find(|l| l.block == block)
    }

    /// The LRU-touching half of an `access`: bumps the set clock and
    /// re-stamps the line on a hit. Returns whether the block was found.
    fn touch(&mut self, block: BlockAddr) -> bool {
        self.clock += 1;
        let clock = self.clock;
        if let Some(line) = self.lines.iter_mut().find(|l| l.block == block) {
            line.last_use = clock;
            true
        } else {
            false
        }
    }

    /// Inserts `line` stamped with the set's next clock tick, applying
    /// the in-place-replace / append / LRU-evict policy. Residence and
    /// statistics accounting is the caller's job (see [`InsertOutcome`]).
    pub(crate) fn insert_line(&mut self, mut line: CacheLine, ways: usize) -> InsertOutcome {
        self.clock += 1;
        line.last_use = self.clock;
        if let Some(existing) = self.lines.iter_mut().find(|l| l.block == line.block) {
            let old_tag = existing.tag;
            *existing = line;
            return InsertOutcome::Replaced(old_tag);
        }
        if self.lines.len() < ways {
            self.lines.push(line);
            return InsertOutcome::Pushed;
        }
        // Evict the least recently used line.
        let victim_idx = self
            .lines
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| l.last_use)
            .map(|(i, _)| i)
            .expect("full set is non-empty");
        InsertOutcome::Evicted(std::mem::replace(&mut self.lines[victim_idx], line))
    }

    /// Removes and returns the line caching `block`, if present.
    pub(crate) fn remove_line(&mut self, block: BlockAddr) -> Option<CacheLine> {
        let pos = self.lines.iter().position(|l| l.block == block)?;
        Some(self.lines.swap_remove(pos))
    }
}

/// A set-associative, LRU-replaced cache with VM-tagged lines.
///
/// The cache tracks, for every VM, how many valid lines tagged with that VM
/// it currently holds (the paper's per-VM cache residence counters).
///
/// Storage is a struct-of-arrays over [`CacheSet`]s; disjoint groups of
/// sets can be handed to engine worker shards via [`Cache::shards`].
///
/// # Examples
///
/// ```
/// use sim_mem::{Cache, CacheGeometry, CacheLine, TokenState, LineTag, BlockAddr};
/// use sim_vm::VmId;
///
/// let mut c = Cache::new(CacheGeometry::new(4096, 2), 4);
/// let vm = VmId::new(1);
/// c.insert(CacheLine::new(BlockAddr::new(7), TokenState::shared_one(), LineTag::Vm(vm)));
/// assert_eq!(c.residence(vm), 1);
/// assert!(c.access(BlockAddr::new(7)));
/// c.remove(BlockAddr::new(7));
/// assert_eq!(c.residence(vm), 0);
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    geometry: CacheGeometry,
    sets: Vec<CacheSet>,
    residence: Vec<u64>,
    host_residence: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache able to track residence for `n_vms` VMs.
    pub fn new(geometry: CacheGeometry, n_vms: usize) -> Self {
        Cache {
            geometry,
            sets: vec![
                CacheSet {
                    lines: Vec::with_capacity(geometry.ways()),
                    clock: 0,
                };
                geometry.sets() as usize
            ],
            residence: vec![0; n_vms],
            host_residence: 0,
            stats: CacheStats::default(),
        }
    }

    /// Returns the cache geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Returns hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Performs a stats-counting lookup, touching LRU state on a hit.
    /// Returns `true` on hit.
    pub fn access(&mut self, block: BlockAddr) -> bool {
        self.stats.accesses += 1;
        let set = self.geometry.set_of(block);
        if self.sets[set].touch(block) {
            self.stats.hits += 1;
            true
        } else {
            false
        }
    }

    /// Returns the line caching `block`, if present, without touching LRU
    /// or statistics.
    pub fn probe(&self, block: BlockAddr) -> Option<&CacheLine> {
        self.sets[self.geometry.set_of(block)].find(block)
    }

    /// Returns a mutable reference to the line caching `block` for in-place
    /// token updates, without touching LRU or statistics.
    ///
    /// Callers must not set `state.tokens` to zero through this reference;
    /// use [`remove`](Self::remove) to drop a line so residence counters
    /// stay consistent.
    pub fn probe_mut(&mut self, block: BlockAddr) -> Option<&mut CacheLine> {
        self.sets[self.geometry.set_of(block)].find_mut(block)
    }

    /// Inserts `line`, returning the evicted victim if the set was full.
    ///
    /// If the block is already present its state and tag are replaced
    /// (residence counters adjusted accordingly) and nothing is evicted.
    pub fn insert(&mut self, line: CacheLine) -> Option<CacheLine> {
        let set_idx = self.geometry.set_of(line.block);
        let tag = line.tag;
        let ways = self.geometry.ways();
        match self.sets[set_idx].insert_line(line, ways) {
            InsertOutcome::Replaced(old_tag) => {
                self.dec_residence(old_tag);
                self.inc_residence(tag);
                None
            }
            InsertOutcome::Pushed => {
                self.inc_residence(tag);
                None
            }
            InsertOutcome::Evicted(victim) => {
                self.inc_residence(tag);
                self.dec_residence(victim.tag);
                self.stats.evictions += 1;
                Some(victim)
            }
        }
    }

    /// Removes and returns the line caching `block` (snoop invalidation or
    /// full token surrender).
    pub fn remove(&mut self, block: BlockAddr) -> Option<CacheLine> {
        let set = self.geometry.set_of(block);
        let line = self.sets[set].remove_line(block)?;
        self.dec_residence(line.tag);
        Some(line)
    }

    /// Returns the residence counter of `vm`: the number of valid lines
    /// tagged with that VM.
    ///
    /// # Panics
    ///
    /// Panics if `vm` is outside the range configured at construction.
    pub fn residence(&self, vm: VmId) -> u64 {
        self.residence[vm.index()]
    }

    /// Returns the number of valid lines tagged as host (hypervisor/dom0).
    pub fn host_residence(&self) -> u64 {
        self.host_residence
    }

    /// Returns the number of valid lines.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(|s| s.lines.len()).sum()
    }

    /// Iterates over all valid lines (for invariant checks and tests).
    pub fn lines(&self) -> impl Iterator<Item = &CacheLine> {
        self.sets.iter().flat_map(|s| s.lines.iter())
    }

    /// Partitions the cache into `n_shards` disjoint mutable views, where
    /// shard `k` owns every set with `set_index % n_shards == k` (blocks
    /// select sets by their low bits, so a block's shard is
    /// `block % n_shards` in **every** cache of the machine — the
    /// property the parallel engine's block-sharding relies on).
    ///
    /// Residence and hit/miss accounting inside a shard accumulates into
    /// shard-local deltas; fold them back with [`Cache::apply_delta`]
    /// (in fixed shard order) once the borrows end.
    ///
    /// # Panics
    ///
    /// Panics unless `n_shards` is a power of two no larger than the set
    /// count.
    pub fn shards(&mut self, n_shards: usize) -> Vec<CacheShard<'_>> {
        assert!(
            n_shards.is_power_of_two() && n_shards as u64 <= self.geometry.sets(),
            "shard count must be a power of two <= set count"
        );
        let geometry = self.geometry;
        let n_vms = self.residence.len();
        let mut shards: Vec<CacheShard<'_>> = (0..n_shards)
            .map(|_| CacheShard {
                geometry,
                n_shards,
                sets: Vec::with_capacity(geometry.sets() as usize / n_shards),
                delta: CacheDelta {
                    residence: vec![0; n_vms],
                    host_residence: 0,
                    stats: CacheStats::default(),
                },
            })
            .collect();
        for (idx, set) in self.sets.iter_mut().enumerate() {
            shards[idx & (n_shards - 1)].sets.push(set);
        }
        shards
    }

    /// Folds a shard's accumulated residence/statistics delta back into
    /// the cache (the set contents were mutated in place through the
    /// shard's borrows).
    pub fn apply_delta(&mut self, delta: &CacheDelta) {
        for (r, d) in self.residence.iter_mut().zip(&delta.residence) {
            *r = r
                .checked_add_signed(*d)
                .expect("residence counter underflow/overflow in shard merge");
        }
        self.host_residence = self
            .host_residence
            .checked_add_signed(delta.host_residence)
            .expect("host residence underflow/overflow in shard merge");
        self.stats.accesses += delta.stats.accesses;
        self.stats.hits += delta.stats.hits;
        self.stats.evictions += delta.stats.evictions;
    }

    fn inc_residence(&mut self, tag: LineTag) {
        match tag {
            LineTag::Vm(vm) => self.residence[vm.index()] += 1,
            LineTag::Host => self.host_residence += 1,
        }
    }

    fn dec_residence(&mut self, tag: LineTag) {
        match tag {
            LineTag::Vm(vm) => {
                debug_assert!(self.residence[vm.index()] > 0, "residence underflow");
                self.residence[vm.index()] -= 1;
            }
            LineTag::Host => {
                debug_assert!(self.host_residence > 0, "host residence underflow");
                self.host_residence -= 1;
            }
        }
    }
}

/// A shard's signed residence/statistics delta, produced by
/// [`CacheShard::into_delta`] and folded back with [`Cache::apply_delta`].
#[derive(Clone, Debug)]
pub struct CacheDelta {
    residence: Vec<i64>,
    host_residence: i64,
    stats: CacheStats,
}

/// One engine shard's mutable view of a [`Cache`]: the sets it owns
/// (interleaved by low set-index bits) plus shard-local accounting.
///
/// The view exposes the same `access`/`probe`/`probe_mut`/`insert`/
/// `remove` operations as [`Cache`], routed through the **same**
/// [`CacheSet`] primitives, so a transaction executed against a shard
/// mutates the set contents bit-identically to the serial path; only the
/// residence/hit/eviction counters are deferred to the merge.
#[derive(Debug)]
pub struct CacheShard<'a> {
    geometry: CacheGeometry,
    n_shards: usize,
    /// The owned sets, in increasing global set index; the local index of
    /// global set `s` is `s / n_shards`.
    sets: Vec<&'a mut CacheSet>,
    delta: CacheDelta,
}

impl CacheShard<'_> {
    /// Local index of the set holding `block`: the owned sets are in
    /// increasing global index `k, k + n, k + 2n, ...`, so global set `s`
    /// lives at local position `s / n_shards`. (A block outside this
    /// shard would alias another set's slot — the engine routes by
    /// `block % n_shards`, which equals `set % n_shards`, to prevent
    /// that by construction.)
    fn set_of(&self, block: BlockAddr) -> usize {
        let global = self.geometry.set_of(block);
        global / self.n_shards
    }

    /// Shard-local [`Cache::access`].
    pub fn access(&mut self, block: BlockAddr) -> bool {
        self.delta.stats.accesses += 1;
        let set = self.set_of(block);
        if self.sets[set].touch(block) {
            self.delta.stats.hits += 1;
            true
        } else {
            false
        }
    }

    /// Shard-local [`Cache::probe`].
    pub fn probe(&self, block: BlockAddr) -> Option<&CacheLine> {
        self.sets[self.set_of(block)].find(block)
    }

    /// Shard-local [`Cache::probe_mut`].
    pub fn probe_mut(&mut self, block: BlockAddr) -> Option<&mut CacheLine> {
        let set = self.set_of(block);
        self.sets[set].find_mut(block)
    }

    /// Shard-local [`Cache::insert`].
    pub fn insert(&mut self, line: CacheLine) -> Option<CacheLine> {
        let set_idx = self.set_of(line.block);
        let tag = line.tag;
        let ways = self.geometry.ways();
        match self.sets[set_idx].insert_line(line, ways) {
            InsertOutcome::Replaced(old_tag) => {
                self.dec_residence(old_tag);
                self.inc_residence(tag);
                None
            }
            InsertOutcome::Pushed => {
                self.inc_residence(tag);
                None
            }
            InsertOutcome::Evicted(victim) => {
                self.inc_residence(tag);
                self.dec_residence(victim.tag);
                self.delta.stats.evictions += 1;
                Some(victim)
            }
        }
    }

    /// Shard-local [`Cache::remove`].
    pub fn remove(&mut self, block: BlockAddr) -> Option<CacheLine> {
        let set = self.set_of(block);
        let line = self.sets[set].remove_line(block)?;
        self.dec_residence(line.tag);
        Some(line)
    }

    /// Consumes the shard, releasing its set borrows and returning the
    /// accumulated counter delta for [`Cache::apply_delta`].
    pub fn into_delta(self) -> CacheDelta {
        self.delta
    }

    fn inc_residence(&mut self, tag: LineTag) {
        match tag {
            LineTag::Vm(vm) => self.delta.residence[vm.index()] += 1,
            LineTag::Host => self.delta.host_residence += 1,
        }
    }

    fn dec_residence(&mut self, tag: LineTag) {
        match tag {
            LineTag::Vm(vm) => self.delta.residence[vm.index()] -= 1,
            LineTag::Host => self.delta.host_residence -= 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::line::TokenState;

    fn line(block: u64, vm: u16) -> CacheLine {
        CacheLine::new(
            BlockAddr::new(block),
            TokenState::shared_one(),
            LineTag::Vm(VmId::new(vm)),
        )
    }

    fn small_cache() -> Cache {
        // 2 sets x 2 ways.
        Cache::new(CacheGeometry::new(2 * 2 * 64, 2), 4)
    }

    #[test]
    fn geometry_paper_l2() {
        let g = CacheGeometry::new(256 * 1024, 8);
        assert_eq!(g.sets(), 512);
        assert_eq!(g.lines(), 4096);
        assert_eq!(g.ways(), 8);
        // Blocks that differ by the set count map to the same set.
        assert_eq!(
            g.set_of(BlockAddr::new(3)),
            g.set_of(BlockAddr::new(3 + 512))
        );
    }

    #[test]
    fn hit_after_insert_miss_after_remove() {
        let mut c = small_cache();
        assert!(!c.access(BlockAddr::new(0)));
        c.insert(line(0, 0));
        assert!(c.access(BlockAddr::new(0)));
        c.remove(BlockAddr::new(0));
        assert!(!c.access(BlockAddr::new(0)));
        assert_eq!(c.stats().accesses, 3);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses(), 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small_cache();
        // Blocks 0, 2, 4 all map to set 0 (2 sets).
        c.insert(line(0, 0));
        c.insert(line(2, 0));
        // Touch block 0 so block 2 is LRU.
        assert!(c.access(BlockAddr::new(0)));
        let victim = c.insert(line(4, 0)).expect("set was full");
        assert_eq!(victim.block, BlockAddr::new(2));
        assert!(c.probe(BlockAddr::new(0)).is_some());
        assert!(c.probe(BlockAddr::new(4)).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn residence_counters_track_inserts_evictions_removals() {
        let mut c = small_cache();
        let vm0 = VmId::new(0);
        let vm1 = VmId::new(1);
        c.insert(line(0, 0));
        c.insert(line(2, 1));
        assert_eq!(c.residence(vm0), 1);
        assert_eq!(c.residence(vm1), 1);
        // Evicts LRU (block 0, vm0).
        let victim = c.insert(line(4, 1)).unwrap();
        assert_eq!(victim.block, BlockAddr::new(0));
        assert_eq!(c.residence(vm0), 0);
        assert_eq!(c.residence(vm1), 2);
        c.remove(BlockAddr::new(2));
        assert_eq!(c.residence(vm1), 1);
    }

    #[test]
    fn host_lines_counted_separately() {
        let mut c = small_cache();
        c.insert(CacheLine::new(
            BlockAddr::new(1),
            TokenState::shared_one(),
            LineTag::Host,
        ));
        assert_eq!(c.host_residence(), 1);
        assert_eq!(c.residence(VmId::new(0)), 0);
        c.remove(BlockAddr::new(1));
        assert_eq!(c.host_residence(), 0);
    }

    #[test]
    fn reinsert_same_block_replaces_in_place() {
        let mut c = small_cache();
        c.insert(line(0, 0));
        // Re-insert with a different tag: counters move, no eviction.
        let evicted = c.insert(line(0, 1));
        assert!(evicted.is_none());
        assert_eq!(c.occupancy(), 1);
        assert_eq!(c.residence(VmId::new(0)), 0);
        assert_eq!(c.residence(VmId::new(1)), 1);
    }

    #[test]
    fn residence_matches_line_scan() {
        let mut c = Cache::new(CacheGeometry::new(16 * 4 * 64, 4), 3);
        for i in 0..100u64 {
            c.insert(line(i * 3, (i % 3) as u16));
        }
        for vm in 0..3u16 {
            let counted = c
                .lines()
                .filter(|l| l.tag == LineTag::Vm(VmId::new(vm)))
                .count() as u64;
            assert_eq!(c.residence(VmId::new(vm)), counted);
        }
        assert!(c.occupancy() <= 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        let _ = CacheGeometry::new(3 * 64, 1);
    }

    /// The shard view must be operation-for-operation identical to the
    /// full-cache API: same hits, same victims, same final contents and
    /// (after the delta merge) same counters.
    #[test]
    fn shard_view_matches_serial_cache() {
        let geometry = CacheGeometry::new(16 * 2 * 64, 2); // 16 sets, 2 ways
        let mut serial = Cache::new(geometry, 3);
        let mut sharded = Cache::new(geometry, 3);
        let n_shards = 4;

        // A deterministic op mix covering insert/access/remove with
        // collisions (same set, different blocks) and tag replacement.
        let blocks: Vec<u64> = (0..200).map(|i| (i * 7 + i / 3) % 64).collect();

        let mut deltas = Vec::new();
        {
            let mut shards = sharded.shards(n_shards);
            for (i, &b) in blocks.iter().enumerate() {
                let block = BlockAddr::new(b);
                let shard = (b as usize) & (n_shards - 1);
                match i % 4 {
                    0 | 1 => {
                        let v_serial = serial.insert(line(b, (i % 3) as u16));
                        let v_shard = shards[shard].insert(line(b, (i % 3) as u16));
                        assert_eq!(
                            v_serial.as_ref().map(|l| l.block),
                            v_shard.as_ref().map(|l| l.block),
                            "victim divergence at op {i}"
                        );
                    }
                    2 => {
                        assert_eq!(
                            serial.access(block),
                            shards[shard].access(block),
                            "hit divergence at op {i}"
                        );
                    }
                    _ => {
                        assert_eq!(
                            serial.remove(block).map(|l| l.block),
                            shards[shard].remove(block).map(|l| l.block),
                            "remove divergence at op {i}"
                        );
                    }
                }
            }
            for shard in shards {
                deltas.push(shard.into_delta());
            }
        }
        for d in &deltas {
            sharded.apply_delta(d);
        }

        assert_eq!(serial.stats(), sharded.stats());
        assert_eq!(serial.occupancy(), sharded.occupancy());
        for vm in 0..3u16 {
            assert_eq!(
                serial.residence(VmId::new(vm)),
                sharded.residence(VmId::new(vm))
            );
        }
        let mut a: Vec<_> = serial
            .lines()
            .map(|l| (l.block, l.tag, l.last_use))
            .collect();
        let mut b: Vec<_> = sharded
            .lines()
            .map(|l| (l.block, l.tag, l.last_use))
            .collect();
        a.sort_unstable_by_key(|&(bl, ..)| bl);
        b.sort_unstable_by_key(|&(bl, ..)| bl);
        assert_eq!(a, b, "cache contents (including LRU stamps) must match");
    }
}

//! Identifier newtypes for physical cores, virtual machines, and virtual
//! CPUs.
//!
//! These are shared by every layer of the simulator: the cache substrate tags
//! cache lines with a [`VmId`] (the paper extends cache tags with a VM
//! identifier, Section IV-B), the interconnect maps a [`CoreId`] onto a mesh
//! node, and the hypervisor schedules [`VcpuId`]s onto cores.

use std::fmt;

/// Identifier of a physical core.
///
/// A core owns a private L1/L2 cache pair and one node of the on-chip
/// network. Cores are numbered densely from zero, in row-major mesh order.
///
/// # Examples
///
/// ```
/// use sim_vm::CoreId;
///
/// let p3 = CoreId::new(3);
/// assert_eq!(p3.index(), 3);
/// assert_eq!(p3.to_string(), "P3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct CoreId(u16);

impl CoreId {
    /// Creates a core identifier from a dense index.
    pub const fn new(index: u16) -> Self {
        CoreId(index)
    }

    /// Returns the dense index of this core.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterates over the first `n` core identifiers, `P0 .. P(n-1)`.
    ///
    /// ```
    /// use sim_vm::CoreId;
    /// let cores: Vec<_> = CoreId::all(4).collect();
    /// assert_eq!(cores.len(), 4);
    /// assert_eq!(cores[3], CoreId::new(3));
    /// ```
    pub fn all(n: usize) -> impl Iterator<Item = CoreId> {
        (0..n as u16).map(CoreId)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<u16> for CoreId {
    fn from(index: u16) -> Self {
        CoreId(index)
    }
}

/// Identifier of a virtual machine.
///
/// In the paper each VM forms a *virtual snoop domain*: snoop requests for
/// its private pages are only delivered to the cores in its vCPU map.
///
/// # Examples
///
/// ```
/// use sim_vm::VmId;
///
/// let vm = VmId::new(1);
/// assert_eq!(vm.to_string(), "VM1");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct VmId(u16);

impl VmId {
    /// Creates a VM identifier from a dense index.
    pub const fn new(index: u16) -> Self {
        VmId(index)
    }

    /// Returns the dense index of this VM.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterates over the first `n` VM identifiers.
    pub fn all(n: usize) -> impl Iterator<Item = VmId> {
        (0..n as u16).map(VmId)
    }
}

impl fmt::Display for VmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VM{}", self.0)
    }
}

impl From<u16> for VmId {
    fn from(index: u16) -> Self {
        VmId(index)
    }
}

/// Identifier of a virtual CPU: the pair of its VM and its index within the
/// VM.
///
/// # Examples
///
/// ```
/// use sim_vm::{VcpuId, VmId};
///
/// let v = VcpuId::new(VmId::new(2), 1);
/// assert_eq!(v.vm(), VmId::new(2));
/// assert_eq!(v.to_string(), "VM2.v1");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VcpuId {
    vm: VmId,
    index: u16,
}

impl VcpuId {
    /// Creates a vCPU identifier.
    pub const fn new(vm: VmId, index: u16) -> Self {
        VcpuId { vm, index }
    }

    /// Returns the VM this vCPU belongs to.
    pub const fn vm(self) -> VmId {
        self.vm
    }

    /// Returns the index of this vCPU within its VM.
    pub const fn index(self) -> usize {
        self.index as usize
    }
}

impl fmt::Display for VcpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.v{}", self.vm, self.index)
    }
}

/// The software agent performing a memory access.
///
/// Section III of the paper decomposes L2 misses into misses by guest VMs,
/// by the privileged I/O domain (`domain0` in Xen), and by the hypervisor
/// itself. Dom0 and hypervisor accesses can occur on *any* core and must
/// always be broadcast under virtual snooping.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Agent {
    /// A guest VM accessing memory through one of its vCPUs.
    Guest(VcpuId),
    /// The privileged I/O domain (Xen's domain0), which serves I/O for all
    /// guests and migrates freely between cores.
    Dom0,
    /// The hypervisor itself (scheduling, page-table maintenance, ...).
    Hypervisor,
}

impl Agent {
    /// Returns the VM identifier if this agent is a guest vCPU.
    pub fn guest_vm(self) -> Option<VmId> {
        match self {
            Agent::Guest(v) => Some(v.vm()),
            _ => None,
        }
    }

    /// Returns `true` for Dom0 and hypervisor agents, whose requests can
    /// never be filtered by virtual snooping.
    pub fn is_host(self) -> bool {
        matches!(self, Agent::Dom0 | Agent::Hypervisor)
    }
}

impl fmt::Display for Agent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Agent::Guest(v) => write!(f, "{v}"),
            Agent::Dom0 => f.write_str("dom0"),
            Agent::Hypervisor => f.write_str("xen"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_id_roundtrip() {
        let c = CoreId::new(7);
        assert_eq!(c.index(), 7);
        assert_eq!(CoreId::from(7u16), c);
        assert_eq!(c.to_string(), "P7");
    }

    #[test]
    fn core_id_all_is_dense() {
        let v: Vec<_> = CoreId::all(16).collect();
        assert_eq!(v.len(), 16);
        for (i, c) in v.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn vm_id_display_and_order() {
        assert!(VmId::new(0) < VmId::new(1));
        assert_eq!(VmId::new(3).to_string(), "VM3");
        assert_eq!(VmId::from(3u16).index(), 3);
    }

    #[test]
    fn vcpu_id_components() {
        let v = VcpuId::new(VmId::new(1), 2);
        assert_eq!(v.vm(), VmId::new(1));
        assert_eq!(v.index(), 2);
        assert_eq!(v.to_string(), "VM1.v2");
    }

    #[test]
    fn agent_classification() {
        let g = Agent::Guest(VcpuId::new(VmId::new(0), 0));
        assert_eq!(g.guest_vm(), Some(VmId::new(0)));
        assert!(!g.is_host());
        assert!(Agent::Dom0.is_host());
        assert!(Agent::Hypervisor.is_host());
        assert_eq!(Agent::Dom0.guest_vm(), None);
        assert_eq!(Agent::Hypervisor.to_string(), "xen");
        assert_eq!(Agent::Dom0.to_string(), "dom0");
    }

    #[test]
    fn ids_are_hashable_and_default() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(CoreId::default());
        s.insert(CoreId::new(0));
        assert_eq!(s.len(), 1);
        assert_eq!(VmId::default(), VmId::new(0));
    }
}

//! Fig. 1 — L2 miss decomposition: Xen / dom0 / guest VMs.

use vsnoop_bench::{reports, scale_from_env};

fn main() {
    vsnoop_bench::init_obs();
    match reports::fig1(scale_from_env()) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("fig1: {e}");
            std::process::exit(1);
        }
    }
}

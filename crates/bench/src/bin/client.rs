//! Command-line client for the simulation service.
//!
//! Submits jobs for one tenant, waits for every terminal answer, and
//! optionally saves each successful job's output text — the bytes are
//! identical to the offline campaign's output for the same jobs at the
//! same scale, which the verify smoke checks with `cmp`.
//!
//! ```text
//! client --addr HOST:PORT --tenant NAME [--submit JOB]...
//!        [--warmup N] [--measure N] [--seed N] [--spin-ms N]
//!        [--deadline-ms N] [--out DIR] [--strict]
//! client --addr HOST:PORT (--ping | --status | --shutdown | --subscribe N)
//! ```
//!
//! Submission mode prints one line per job (`fig2: ok (1234 bytes)`,
//! `table2: shed tenant_queue_full`, ...) in submit order, plus a
//! summary. Exit 0 when every submit got a terminal answer (even a
//! shed or a cancellation — those are the protocol working as
//! designed); `--strict` demands every job end `ok`.
//!
//! Every submit carries an idempotency key derived from a
//! per-invocation nonce and the submit index. When the connection is
//! cut mid-flight the client reconnects with exponential backoff and
//! resends only the unsettled submits under the same keys; the server
//! dedups against its write-ahead log, so retries never duplicate
//! work and the saved outputs stay byte-identical to an uninterrupted
//! run. Transport failures only exit 1 after the retry budget is
//! exhausted.
//!
//! `--subscribe N` prints N live telemetry records and exits.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use vsnoop::runner::json::Value;
use vsnoop::service::Response;

enum Mode {
    Submit,
    Ping,
    Status,
    Shutdown,
    Subscribe(u64),
}

struct Cli {
    addr: String,
    tenant: String,
    jobs: Vec<String>,
    warmup: Option<u64>,
    measure: Option<u64>,
    seed: Option<u64>,
    spin_ms: Option<u64>,
    deadline_ms: Option<u64>,
    out: Option<PathBuf>,
    strict: bool,
    mode: Mode,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        addr: "127.0.0.1:7878".to_string(),
        tenant: String::new(),
        jobs: Vec::new(),
        warmup: None,
        measure: None,
        seed: None,
        spin_ms: None,
        deadline_ms: None,
        out: None,
        strict: false,
        mode: Mode::Submit,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        let parse_u64 = |flag: &str, v: String| -> Result<u64, String> {
            v.parse().map_err(|e| format!("{flag}: {e}"))
        };
        match arg.as_str() {
            "--addr" => cli.addr = value("--addr")?,
            "--tenant" => cli.tenant = value("--tenant")?,
            "--submit" => cli.jobs.push(value("--submit")?),
            "--warmup" => cli.warmup = Some(parse_u64("--warmup", value("--warmup")?)?),
            "--measure" => cli.measure = Some(parse_u64("--measure", value("--measure")?)?),
            "--seed" => cli.seed = Some(parse_u64("--seed", value("--seed")?)?),
            "--spin-ms" => cli.spin_ms = Some(parse_u64("--spin-ms", value("--spin-ms")?)?),
            "--deadline-ms" => {
                cli.deadline_ms = Some(parse_u64("--deadline-ms", value("--deadline-ms")?)?);
            }
            "--out" => cli.out = Some(PathBuf::from(value("--out")?)),
            "--strict" => cli.strict = true,
            "--ping" => cli.mode = Mode::Ping,
            "--status" => cli.mode = Mode::Status,
            "--shutdown" => cli.mode = Mode::Shutdown,
            "--subscribe" => {
                cli.mode = Mode::Subscribe(parse_u64("--subscribe", value("--subscribe")?)?);
            }
            "--help" | "-h" => {
                return Err(
                    "usage: client --addr HOST:PORT --tenant NAME [--submit JOB]...\n\
                     \u{20}             [--warmup N] [--measure N] [--seed N] [--spin-ms N]\n\
                     \u{20}             [--deadline-ms N] [--out DIR] [--strict]\n\
                     \u{20}      client --addr HOST:PORT (--ping | --status | --shutdown | \
                     --subscribe N)"
                        .into(),
                );
            }
            other => return Err(format!("unknown argument: {other} (try --help)")),
        }
    }
    if matches!(cli.mode, Mode::Submit) {
        if cli.jobs.is_empty() {
            return Err("nothing to do: pass --submit JOB (or --ping/--status/...)".into());
        }
        if cli.tenant.is_empty() {
            return Err("--submit requires --tenant".into());
        }
    }
    Ok(cli)
}

/// Sends one op line and prints the first response line verbatim.
fn one_shot(addr: &str, op: &str) -> Result<(), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    writeln!(writer, "{{\"op\":\"{op}\"}}").map_err(|e| e.to_string())?;
    let mut line = String::new();
    BufReader::new(stream)
        .read_line(&mut line)
        .map_err(|e| e.to_string())?;
    print!("{line}");
    Ok(())
}

/// Streams `n` telemetry records to stdout.
fn subscribe(addr: &str, n: u64) -> Result<(), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    writeln!(writer, "{{\"op\":\"subscribe\"}}").map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    // First line is the ack.
    reader.read_line(&mut line).map_err(|e| e.to_string())?;
    match Response::parse(line.trim()) {
        Ok(Response::Subscribed) => {}
        other => return Err(format!("expected subscribed ack, got {other:?}")),
    }
    let mut seen = 0;
    while seen < n {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                print!("{line}");
                seen += 1;
            }
            Err(e) => return Err(e.to_string()),
        }
    }
    Ok(())
}

/// Retry budget for the submission loop. Sixty attempts at the
/// capped backoff is ~30 s of reconnecting — enough to ride out a
/// server restart, small enough that a dead server fails the run.
const MAX_ATTEMPTS: u32 = 60;
const BACKOFF_START_MS: u64 = 25;
const BACKOFF_CAP_MS: u64 = 500;
/// A read that stalls this long is treated as a lost connection.
/// Resubmission is safe under the idempotency keys, so a false
/// positive only costs a reconnect.
const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// Per-invocation nonce for idempotency keys. Two concurrent clients
/// must not collide; a re-executed client *should* get fresh keys
/// (it is a new request, not a retry of the old one).
fn invocation_nonce() -> u64 {
    let pid = u64::from(std::process::id());
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    pid.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ nanos
}

fn submit_line(cli: &Cli, index: usize, job: &str, nonce: u64) -> String {
    let mut params: Vec<(&'static str, Value)> = Vec::new();
    if let Some(w) = cli.warmup {
        params.push(("warmup", Value::UInt(w)));
    }
    if let Some(m) = cli.measure {
        params.push(("measure", Value::UInt(m)));
    }
    if let Some(s) = cli.seed {
        params.push(("scale_seed", Value::UInt(s)));
    }
    if let Some(ms) = cli.spin_ms {
        params.push(("ms", Value::UInt(ms)));
    }
    // Tags are the submit *index*: two submits of the same job name
    // must stay distinguishable.
    let mut pairs = vec![
        ("op", Value::Str("submit".into())),
        ("tenant", Value::Str(cli.tenant.clone())),
        ("job", Value::Str(job.to_string())),
        ("params", Value::obj(params)),
        ("tag", Value::Str(index.to_string())),
        ("idem_key", Value::Str(format!("cli-{nonce:016x}-{index}"))),
    ];
    if let Some(d) = cli.deadline_ms {
        pairs.push(("deadline_ms", Value::UInt(d)));
    }
    Value::obj(pairs).to_json()
}

/// One connection's worth of work: send every unsettled submit, then
/// read until all are settled. `Err` means the transport died (or a
/// retryable server error asked for a resend) and the caller should
/// reconnect; `outcomes` keeps whatever was settled so far.
fn run_session(
    cli: &Cli,
    nonce: u64,
    outcomes: &mut [Option<(bool, String)>],
) -> Result<(), String> {
    let stream = TcpStream::connect(&cli.addr).map_err(|e| format!("connect {}: {e}", cli.addr))?;
    stream
        .set_read_timeout(Some(READ_TIMEOUT))
        .map_err(|e| e.to_string())?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);

    let mut pending = 0usize;
    for (i, job) in cli.jobs.iter().enumerate() {
        if outcomes[i].is_some() {
            continue;
        }
        pending += 1;
        let line = submit_line(cli, i, job, nonce);
        writeln!(writer, "{line}").map_err(|e| format!("send {job}: {e}"))?;
    }
    writer.flush().map_err(|e| e.to_string())?;

    let mut line = String::new();
    while pending > 0 {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Err("server closed the connection mid-run".into()),
            Ok(_) => {}
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Err("read timed out".into());
            }
            Err(e) => return Err(format!("read: {e}")),
        }
        if line.trim().is_empty() {
            continue;
        }
        let resp = Response::parse(line.trim())?;
        let mut settle = |outcomes: &mut [Option<(bool, String)>],
                          tag: &Option<String>,
                          outcome: (bool, String)| {
            let Some(slot) = tag
                .as_deref()
                .and_then(|t| t.parse::<usize>().ok())
                .and_then(|i| outcomes.get_mut(i))
            else {
                return;
            };
            if slot.is_none() {
                *slot = Some(outcome);
                pending -= 1;
            }
        };
        match resp {
            Response::Accepted { .. } => {}
            Response::Shed {
                reason,
                retryable,
                tag,
            } => {
                let retry = if retryable { "" } else { " (not retryable)" };
                settle(outcomes, &tag, (false, format!("shed {reason}{retry}")));
            }
            Response::Done { outcome, tag, .. } => match outcome {
                Ok(output) => {
                    let already = tag
                        .as_deref()
                        .and_then(|t| t.parse::<usize>().ok())
                        .and_then(|i| outcomes.get(i))
                        .is_some_and(Option::is_some);
                    let name = tag
                        .as_deref()
                        .and_then(|t| t.parse::<usize>().ok())
                        .and_then(|i| cli.jobs.get(i))
                        .cloned()
                        .unwrap_or_default();
                    if let (false, Some(dir)) = (already, &cli.out) {
                        std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
                        std::fs::write(dir.join(format!("{name}.txt")), &output)
                            .map_err(|e| format!("write {name}.txt: {e}"))?;
                    }
                    settle(
                        outcomes,
                        &tag,
                        (true, format!("ok ({} bytes)", output.len())),
                    );
                }
                Err((kind, message)) => {
                    settle(outcomes, &tag, (false, format!("{kind}: {message}")));
                }
            },
            Response::Error {
                message,
                retryable,
                tag,
                ..
            } => {
                if retryable {
                    // e.g. wal_failed: the submit was not accepted.
                    // Leave the slot unsettled; the caller reconnects
                    // and resends it under the same idempotency key.
                    return Err(format!("retryable server error: {message}"));
                }
                if tag.is_none() {
                    return Err(format!("server error: {message}"));
                }
                settle(outcomes, &tag, (false, format!("error: {message}")));
            }
            Response::Progress {
                job_id,
                job,
                elapsed_ms,
                ..
            } => {
                // Mid-run streaming: surface liveness on stderr so
                // stdout (campaign output) stays byte-identical to a
                // direct run.
                eprintln!("client: job {job_id} ({job}) running, {elapsed_ms}ms elapsed");
            }
            other => return Err(format!("unexpected response {other:?}")),
        }
    }
    Ok(())
}

fn submit_all(cli: &Cli) -> Result<bool, String> {
    let nonce = invocation_nonce();
    // Submit index -> outcome, printed in submit order at the end so
    // output is deterministic even when completions interleave.
    let mut outcomes: Vec<Option<(bool, String)>> = vec![None; cli.jobs.len()];
    let mut backoff = BACKOFF_START_MS;
    let mut reconnects = 0u32;
    for attempt in 0..MAX_ATTEMPTS {
        match run_session(cli, nonce, &mut outcomes) {
            Ok(()) => break,
            Err(e) => {
                if attempt + 1 == MAX_ATTEMPTS {
                    return Err(format!("giving up after {MAX_ATTEMPTS} attempts: {e}"));
                }
                reconnects += 1;
                eprintln!("client: {e}; retrying (attempt {})", attempt + 2);
                let jitter = (nonce ^ u64::from(attempt)) % (backoff / 2 + 1);
                std::thread::sleep(Duration::from_millis(backoff + jitter));
                backoff = (backoff * 2).min(BACKOFF_CAP_MS);
            }
        }
    }
    if reconnects > 0 {
        eprintln!("client: finished after {reconnects} reconnect(s)");
    }

    let mut all_ok = true;
    for (job, outcome) in cli.jobs.iter().zip(&outcomes) {
        let (ok, text) = outcome.clone().unwrap_or((false, "no response".into()));
        all_ok &= ok;
        println!("{job}: {text}");
    }
    Ok(all_ok)
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let result = match cli.mode {
        Mode::Ping => one_shot(&cli.addr, "ping").map(|()| true),
        Mode::Status => one_shot(&cli.addr, "status").map(|()| true),
        Mode::Shutdown => one_shot(&cli.addr, "shutdown").map(|()| true),
        Mode::Subscribe(n) => subscribe(&cli.addr, n).map(|()| true),
        Mode::Submit => submit_all(&cli),
    };
    match result {
        Ok(all_ok) => {
            if cli.strict && !all_ok {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("client: {e}");
            ExitCode::FAILURE
        }
    }
}

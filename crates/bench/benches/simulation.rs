//! End-to-end simulator throughput under each filter policy, plus the
//! ablation the design calls out: how much simulation work the filtering
//! itself saves (fewer destinations per transaction).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use vsnoop::{ContentPolicy, FilterPolicy, Simulator, SystemConfig};
use workloads::{profile, Workload, WorkloadConfig};

fn prepared(policy: FilterPolicy) -> (Simulator, Workload) {
    let cfg = SystemConfig::paper_default();
    let mut sim = Simulator::new(cfg, policy, ContentPolicy::Broadcast);
    let mut wl = Workload::homogeneous(
        profile("ferret").unwrap(),
        cfg.n_vms,
        WorkloadConfig {
            vcpus_per_vm: cfg.vcpus_per_vm,
            ..Default::default()
        },
    );
    sim.run(&mut wl, 10_000); // warm
    (sim, wl)
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    // One round = 16 accesses (one per core).
    group.throughput(Throughput::Elements(16));
    for policy in [
        FilterPolicy::TokenBroadcast,
        FilterPolicy::VsnoopBase,
        FilterPolicy::Counter,
        FilterPolicy::COUNTER_THRESHOLD_10,
    ] {
        group.bench_with_input(
            BenchmarkId::new("round", policy),
            &policy,
            |bench, &policy| {
                let (mut sim, mut wl) = prepared(policy);
                bench.iter(|| {
                    sim.run(&mut wl, 1);
                    black_box(sim.stats().accesses)
                });
            },
        );
    }
    group.finish();
}

fn bench_analytic(c: &mut Criterion) {
    let mut group = c.benchmark_group("analytic");
    group.bench_function("fig2_sweep", |bench| {
        bench.iter(|| black_box(vsnoop::fig2_sweep()))
    });
    group.finish();
}

criterion_group!(benches, bench_simulator, bench_analytic);
criterion_main!(benches);

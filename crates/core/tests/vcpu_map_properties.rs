//! Gated behind the `proptest` feature: run with `cargo test --features proptest`.
#![cfg(feature = "proptest")]

//! Property-based tests of the vCPU map register and the analytic model.

use proptest::prelude::*;
use sim_vm::CoreId;
use vsnoop::{snoop_reduction, VcpuMap, VcpuMapFile};

proptest! {
    #[test]
    fn map_behaves_like_a_set(ops in prop::collection::vec((0u16..64, any::<bool>()), 0..200)) {
        let mut map = VcpuMap::default();
        let mut model = std::collections::BTreeSet::new();
        for (core, insert) in ops {
            let c = CoreId::new(core);
            if insert {
                prop_assert_eq!(map.insert(c), model.insert(core));
            } else {
                prop_assert_eq!(map.remove(c), model.remove(&core));
            }
            prop_assert_eq!(map.len(), model.len());
            prop_assert_eq!(map.is_empty(), model.is_empty());
        }
        let cores: Vec<u16> = map.cores().map(|c| c.index() as u16).collect();
        let expect: Vec<u16> = model.into_iter().collect();
        prop_assert_eq!(cores, expect);
    }

    #[test]
    fn union_is_commutative_and_contains_operands(a in any::<u64>(), b in any::<u64>()) {
        let (ma, mb) = (VcpuMap::from_mask(a), VcpuMap::from_mask(b));
        let u = ma.union(mb);
        prop_assert_eq!(u, mb.union(ma));
        for c in ma.cores().chain(mb.cores()) {
            prop_assert!(u.contains(c));
        }
        prop_assert!(u.len() <= ma.len() + mb.len());
    }

    #[test]
    fn map_file_counts_only_real_changes(
        ops in prop::collection::vec((0usize..4, 0u16..16, any::<bool>()), 0..100),
    ) {
        let mut file = VcpuMapFile::new(4);
        let mut expected_syncs = 0u64;
        for (vm, core, add) in ops {
            let changed = if add {
                file.add_core(vm, CoreId::new(core))
            } else {
                file.remove_core(vm, CoreId::new(core))
            };
            if changed {
                expected_syncs += 1;
            }
        }
        prop_assert_eq!(file.sync_updates(), expected_syncs);
    }

    #[test]
    fn reduction_is_bounded_and_monotonic(
        h in 0.0f64..1.0,
        d in 1usize..16,
        extra in 0usize..48,
    ) {
        let n = d + extra;
        let r = snoop_reduction(h, d, n);
        prop_assert!((0.0..=1.0).contains(&r));
        // More hypervisor traffic can never increase the reduction.
        let r_more = snoop_reduction((h + 0.1).min(1.0), d, n);
        prop_assert!(r_more <= r + 1e-12);
        // A bigger machine at the same domain size filters at least as much.
        let r_big = snoop_reduction(h, d, n + 8);
        prop_assert!(r_big + 1e-12 >= r);
    }
}

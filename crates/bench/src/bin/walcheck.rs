//! Reconciles a durable server's write-ahead log against its journal.
//!
//! The kill-9 smoke in `scripts/verify.sh` runs this after the final
//! drain to prove the durability contract from `SERVICE.md`: **no
//! accepted job is ever lost, and no job's side effects are ever
//! duplicated**. Exit 0 means every invariant held; each violation
//! prints one `WALCHECK FAIL:` line and the process exits 1.
//!
//! ```text
//! walcheck --wal FILE --journal FILE [--min-jobs N] [--expect-recovered]
//! ```
//!
//! Checked invariants, over the WAL as left by the last (drained)
//! server process:
//!
//! 1. **Nothing lost** — every `accepted` record has a matching
//!    terminal `done` record (the replayed pending set is empty).
//! 2. **Nothing duplicated** — no job id appears in more than one
//!    `accepted` or more than one `done` record, and no idempotency
//!    key maps to two different job ids.
//! 3. **Journal agrees** — every WAL-terminal job id has exactly one
//!    journal entry, and its outcome status (ok vs failed) matches
//!    the WAL's. (The journal may also hold entries for job ids the
//!    compacted WAL has aged out; those are fine.)
//!
//! `--min-jobs N` additionally demands at least N terminal jobs — a
//! smoke that lost *all* its traffic would otherwise pass vacuously.
//! `--expect-recovered` demands at least one `recovered` marker, so a
//! kill-9 smoke fails loudly if the kill landed after everything had
//! already finished (nothing was actually recovered).

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

use vsnoop::runner::Journal;
use vsnoop::service::{Wal, WalRecord};

struct Cli {
    wal: PathBuf,
    journal: PathBuf,
    min_jobs: u64,
    expect_recovered: bool,
}

fn parse_cli() -> Result<Cli, String> {
    let mut wal = None;
    let mut journal = None;
    let mut min_jobs = 0u64;
    let mut expect_recovered = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--wal" => wal = Some(PathBuf::from(value("--wal")?)),
            "--journal" => journal = Some(PathBuf::from(value("--journal")?)),
            "--min-jobs" => {
                min_jobs = value("--min-jobs")?
                    .parse()
                    .map_err(|e| format!("--min-jobs: {e}"))?;
            }
            "--expect-recovered" => expect_recovered = true,
            "--help" | "-h" => {
                return Err("usage: walcheck --wal FILE --journal FILE \
                            [--min-jobs N] [--expect-recovered]"
                    .into());
            }
            other => return Err(format!("unknown argument: {other} (try --help)")),
        }
    }
    Ok(Cli {
        wal: wal.ok_or("--wal is required")?,
        journal: journal.ok_or("--journal is required")?,
        min_jobs,
        expect_recovered,
    })
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let records = match Wal::load(&cli.wal) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("walcheck: read {}: {e}", cli.wal.display());
            return ExitCode::from(2);
        }
    };
    let entries = match Journal::load(&cli.journal) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("walcheck: read {}: {e}", cli.journal.display());
            return ExitCode::from(2);
        }
    };

    let mut failures = 0u32;
    let mut fail = |msg: String| {
        eprintln!("WALCHECK FAIL: {msg}");
        failures += 1;
    };

    // Fold the log: per-id accepted/done counts, key -> ids.
    let mut accepted: HashMap<u64, u64> = HashMap::new();
    let mut done_ok: HashMap<u64, bool> = HashMap::new();
    let mut done_dups: Vec<u64> = Vec::new();
    let mut keys: HashMap<String, Vec<u64>> = HashMap::new();
    let mut recovered = 0u64;
    for record in &records {
        match record {
            WalRecord::Accepted {
                job_id, idem_key, ..
            } => {
                *accepted.entry(*job_id).or_insert(0) += 1;
                if let Some(k) = idem_key {
                    let ids = keys.entry(k.clone()).or_default();
                    if !ids.contains(job_id) {
                        ids.push(*job_id);
                    }
                }
            }
            WalRecord::Done { job_id, outcome } => {
                if done_ok.insert(*job_id, outcome.is_ok()).is_some() {
                    done_dups.push(*job_id);
                }
            }
            WalRecord::Recovered { .. } => recovered += 1,
        }
    }

    // 1. Nothing lost: accepted implies terminal.
    let mut lost: Vec<u64> = accepted
        .keys()
        .filter(|id| !done_ok.contains_key(id))
        .copied()
        .collect();
    lost.sort_unstable();
    if !lost.is_empty() {
        fail(format!(
            "{} accepted job(s) never reached a terminal outcome: {lost:?}",
            lost.len()
        ));
    }

    // 2. Nothing duplicated.
    let mut accept_dups: Vec<u64> = accepted
        .iter()
        .filter(|&(_, n)| *n > 1)
        .map(|(id, _)| *id)
        .collect();
    accept_dups.sort_unstable();
    if !accept_dups.is_empty() {
        fail(format!(
            "job id(s) accepted more than once: {accept_dups:?}"
        ));
    }
    done_dups.sort_unstable();
    done_dups.dedup();
    if !done_dups.is_empty() {
        fail(format!(
            "job id(s) with more than one terminal record (re-executed?): {done_dups:?}"
        ));
    }
    for (key, ids) in &keys {
        if ids.len() > 1 {
            fail(format!(
                "idempotency key {key:?} maps to {} distinct jobs {ids:?} — \
                 a retry was re-executed instead of deduplicated",
                ids.len()
            ));
        }
    }

    // 3. Journal agrees with the WAL on every terminal job.
    let mut journal_count: HashMap<u64, u64> = HashMap::new();
    let mut journal_ok: HashMap<u64, bool> = HashMap::new();
    for e in &entries {
        let id = e.index as u64;
        *journal_count.entry(id).or_insert(0) += 1;
        journal_ok.insert(id, e.outcome.is_ok());
    }
    for (id, ok) in &done_ok {
        match journal_count.get(id) {
            None => fail(format!(
                "job {id} is terminal in the WAL but missing from the journal"
            )),
            Some(1) => {
                if journal_ok.get(id) != Some(ok) {
                    fail(format!("job {id}: WAL says ok={ok}, journal disagrees"));
                }
            }
            Some(n) => fail(format!(
                "job {id} has {n} journal entries (side effects duplicated)"
            )),
        }
    }

    // Anti-vacuity gates for the smoke.
    let terminal = done_ok.len() as u64;
    if terminal < cli.min_jobs {
        fail(format!(
            "only {terminal} terminal job(s), --min-jobs {} demanded",
            cli.min_jobs
        ));
    }
    if cli.expect_recovered && recovered == 0 {
        fail(
            "no `recovered` marker in the WAL — the kill did not interrupt anything, \
             so the smoke proved nothing"
                .to_string(),
        );
    }

    println!(
        "walcheck: {} WAL record(s), {} accepted, {terminal} terminal, \
         {recovered} recovered, {} journal entr(ies), {} key(s): {}",
        records.len(),
        accepted.len(),
        entries.len(),
        keys.len(),
        if failures == 0 { "OK" } else { "FAIL" }
    );
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

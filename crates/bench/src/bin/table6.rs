//! Table VI — potential data holders for content-shared misses.

use vsnoop::experiments::table6;
use vsnoop_bench::{f1, heading, scale_from_env, TextTable};

fn main() {
    heading(
        "Table VI: potential data holders for content-shared L2 misses",
        "Who could supply each content-shared read miss. Paper (fft /\n\
         blacksch. / canneal / specjbb): some cache 47-64%, intra-VM\n\
         0.1-27%, friend-VM +21-28%, memory-only 37-53%.",
    );
    let rows = table6(scale_from_env());
    let mut t = TextTable::new([
        "workload",
        "cache: all %",
        "cache: intra-VM %",
        "cache: friend-VM %",
        "memory %",
    ]);
    for r in &rows {
        t.row([
            r.name.to_string(),
            f1(r.cache_all_pct),
            f1(r.cache_intra_pct),
            f1(r.cache_friend_pct),
            f1(r.memory_pct),
        ]);
    }
    t.maybe_dump_csv("table6").expect("csv dump");
    println!("{t}");
}

//! Snoop-filtering policies.
//!
//! The paper evaluates four protocol variants (Section V-C) plus three
//! optimizations for content-shared pages (Section VI-B); these enums name
//! them exactly.

use std::fmt;

/// How snoop destinations are chosen for ordinary coherence transactions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum FilterPolicy {
    /// The TokenB baseline: broadcast every request to every core.
    #[default]
    TokenBroadcast,
    /// Base virtual snooping: multicast VM-private requests within the
    /// VM's vCPU map; never remove cores from the map after relocation.
    VsnoopBase,
    /// Virtual snooping with per-VM cache residence counters: a core is
    /// removed from a VM's map when its counter reaches zero.
    Counter,
    /// Counter-based removal, but a core is removed as soon as the counter
    /// falls below the threshold while the VM is not running there. May
    /// under-filter, relying on Token Coherence's safe retries (the paper
    /// uses a threshold of 10).
    CounterThreshold {
        /// Residence-counter value below which a core is speculatively
        /// removed.
        threshold: u64,
    },
    /// A RegionScout-style coarse-grain baseline (Moshovos, ISCA 2005 —
    /// the related-work family the paper contrasts itself against):
    /// each core keeps a small *not-shared-region table* of address
    /// regions it has verified no other cache holds; misses to those
    /// regions go memory-direct, everything else broadcasts. Unlike
    /// virtual snooping this needs per-core hardware tables and its reach
    /// is limited by their capacity.
    RegionScout {
        /// Cache blocks per region (e.g. 64 = 4 KB regions).
        region_blocks: u64,
        /// Not-shared-region table entries per core.
        nsrt_entries: usize,
    },
}

impl FilterPolicy {
    /// The paper's counter-threshold configuration (threshold = 10).
    pub const COUNTER_THRESHOLD_10: FilterPolicy = FilterPolicy::CounterThreshold { threshold: 10 };

    /// A typical RegionScout configuration: 4 KB regions, 64-entry tables.
    pub const REGION_SCOUT_4K: FilterPolicy = FilterPolicy::RegionScout {
        region_blocks: 64,
        nsrt_entries: 64,
    };

    /// Whether this policy filters at all (false for the baseline).
    pub const fn filters(self) -> bool {
        !matches!(self, FilterPolicy::TokenBroadcast)
    }

    /// Whether this policy routes requests by VM boundary (the virtual
    /// snooping family).
    pub const fn uses_vcpu_maps(self) -> bool {
        matches!(
            self,
            FilterPolicy::VsnoopBase
                | FilterPolicy::Counter
                | FilterPolicy::CounterThreshold { .. }
        )
    }

    /// Whether this policy removes cores from vCPU maps.
    pub const fn removes_cores(self) -> bool {
        matches!(
            self,
            FilterPolicy::Counter | FilterPolicy::CounterThreshold { .. }
        )
    }
}

impl fmt::Display for FilterPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FilterPolicy::TokenBroadcast => f.pad("tokenB"),
            FilterPolicy::VsnoopBase => f.pad("vsnoop-base"),
            FilterPolicy::Counter => f.pad("counter"),
            FilterPolicy::CounterThreshold { threshold } => {
                f.pad(&format!("counter-threshold({threshold})"))
            }
            FilterPolicy::RegionScout { region_blocks, .. } => {
                f.pad(&format!("regionscout({region_blocks}b)"))
            }
        }
    }
}

/// How requests to content-shared (read-only) pages are routed
/// (Section VI-B).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum ContentPolicy {
    /// No optimization: broadcast, since any VM may cache the page. This
    /// is base virtual snooping's behaviour (`vsnoop-broadcast` in
    /// Fig. 10).
    #[default]
    Broadcast,
    /// Send the request directly to memory only (as in CGCT); no cache is
    /// snooped, at the cost of forgoing cache-to-cache transfers.
    MemoryDirect,
    /// Snoop only the requesting VM's own cores, falling back to memory.
    IntraVm,
    /// Snoop the requesting VM's cores plus those of its *friend VM* (the
    /// VM it shares the most content pages with), falling back to memory.
    FriendVm,
}

impl ContentPolicy {
    /// All content policies, in Fig. 10's presentation order.
    pub const ALL: [ContentPolicy; 4] = [
        ContentPolicy::Broadcast,
        ContentPolicy::MemoryDirect,
        ContentPolicy::IntraVm,
        ContentPolicy::FriendVm,
    ];
}

impl fmt::Display for ContentPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ContentPolicy::Broadcast => "vsnoop-broadcast",
            ContentPolicy::MemoryDirect => "memory-direct",
            ContentPolicy::IntraVm => "intra-VM",
            ContentPolicy::FriendVm => "friend-VM",
        };
        f.pad(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_helpers() {
        assert!(!FilterPolicy::TokenBroadcast.filters());
        assert!(FilterPolicy::VsnoopBase.filters());
        assert!(!FilterPolicy::VsnoopBase.removes_cores());
        assert!(FilterPolicy::Counter.removes_cores());
        assert!(FilterPolicy::COUNTER_THRESHOLD_10.removes_cores());
        assert!(FilterPolicy::REGION_SCOUT_4K.filters());
        assert!(!FilterPolicy::REGION_SCOUT_4K.uses_vcpu_maps());
        assert!(!FilterPolicy::REGION_SCOUT_4K.removes_cores());
        assert!(FilterPolicy::Counter.uses_vcpu_maps());
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(FilterPolicy::TokenBroadcast.to_string(), "tokenB");
        assert_eq!(FilterPolicy::VsnoopBase.to_string(), "vsnoop-base");
        assert_eq!(FilterPolicy::Counter.to_string(), "counter");
        assert_eq!(
            FilterPolicy::COUNTER_THRESHOLD_10.to_string(),
            "counter-threshold(10)"
        );
        assert_eq!(ContentPolicy::MemoryDirect.to_string(), "memory-direct");
        assert_eq!(ContentPolicy::FriendVm.to_string(), "friend-VM");
    }

    #[test]
    fn all_content_policies_enumerated() {
        assert_eq!(ContentPolicy::ALL.len(), 4);
        assert_eq!(ContentPolicy::ALL[0], ContentPolicy::Broadcast);
    }
}

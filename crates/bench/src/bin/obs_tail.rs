//! Live-tails a campaign's telemetry stream.
//!
//! Every supervised run with tracing on (`--trace-dir DIR` on the
//! campaign binaries, or `VSNOOP_TRACE=DIR`) appends heartbeat and
//! job-lifecycle records to `<dir>/telemetry.jsonl`. This binary
//! follows that file like `tail -f`, so a long soak or campaign can be
//! watched from a second terminal without touching its stdout:
//!
//! ```text
//! obs_tail [--trace-dir DIR] [--once] [--interval-ms N]
//! ```
//!
//! The trace directory comes from `--trace-dir`, else `VSNOOP_TRACE`.
//! Lines are passed through verbatim (they are already one JSON object
//! per line — see OBSERVABILITY.md for the schema), so the output
//! composes with `jq`-style filters. `--once` prints whatever the file
//! holds right now and exits — the mode the verify script and CI use.
//!
//! The actual tailing is [`vsnoop::obs::Tailer`], which holds back
//! partially-written lines (even ones torn mid-way through a
//! multi-byte character) until the writer finishes them, and resets to
//! the new beginning when the file shrinks (a fresh run reusing the
//! directory, or log rotation).

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use vsnoop::obs::Tailer;

struct Cli {
    dir: Option<PathBuf>,
    once: bool,
    interval: Duration,
}

fn parse_cli() -> Result<Cli, String> {
    let mut cli = Cli {
        dir: None,
        once: false,
        interval: Duration::from_millis(500),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--trace-dir" => cli.dir = Some(PathBuf::from(value("--trace-dir")?)),
            "--once" => cli.once = true,
            "--interval-ms" => {
                let ms: u64 = value("--interval-ms")?
                    .parse()
                    .map_err(|e| format!("--interval-ms: {e}"))?;
                cli.interval = Duration::from_millis(ms.max(1));
            }
            "--help" | "-h" => {
                return Err(
                    "usage: obs_tail [--trace-dir DIR] [--once] [--interval-ms N]\n\
                     follows <dir>/telemetry.jsonl (dir from --trace-dir or VSNOOP_TRACE)"
                        .into(),
                );
            }
            other => return Err(format!("unknown argument: {other} (try --help)")),
        }
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let dir = cli
        .dir
        .or_else(|| std::env::var("VSNOOP_TRACE").ok().map(PathBuf::from));
    let Some(dir) = dir else {
        eprintln!("obs_tail: no trace directory (pass --trace-dir or set VSNOOP_TRACE)");
        return ExitCode::from(2);
    };
    let path = dir.join("telemetry.jsonl");

    let stdout = std::io::stdout();
    let mut tailer = Tailer::new(&path);
    let mut warned = false;
    let mut seen_any = false;
    loop {
        let mut pipe_closed = false;
        match tailer.poll(|line| {
            let mut out = stdout.lock();
            if writeln!(out, "{line}").is_err() || out.flush().is_err() {
                pipe_closed = true;
            }
        }) {
            Ok(n) => {
                seen_any |= n > 0;
            }
            Err(e) => {
                // `NotFound` is absorbed by the tailer; anything else
                // (permissions, IO error) is worth a single warning in
                // follow mode and is fatal in --once mode.
                if cli.once {
                    eprintln!("obs_tail: {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                if !warned {
                    eprintln!("obs_tail: {}: {e}", path.display());
                    warned = true;
                }
            }
        }
        if pipe_closed {
            return ExitCode::SUCCESS; // downstream pipe closed
        }
        if cli.once {
            if !seen_any && !path.exists() {
                eprintln!("obs_tail: {}: no such file", path.display());
                return ExitCode::FAILURE;
            }
            return ExitCode::SUCCESS;
        }
        if !warned && !seen_any && !path.exists() {
            eprintln!("obs_tail: waiting for {}", path.display());
            warned = true;
        }
        std::thread::sleep(cli.interval);
    }
}

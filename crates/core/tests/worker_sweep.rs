//! Worker-sweep differential guard for the batched parallel engine: the
//! same simulation at 1 (serial path), 2, and 8 workers must be
//! **bit-identical** in every observable — [`SimStats`] (stall cycles
//! included), network traffic, the architectural-state digest, the final
//! cycle, and the diagnostics count.
//!
//! The serial run is the oracle: `set_engine_workers(1)` keeps today's
//! single-threaded path, so any parallel divergence — a shard-crossing
//! transaction, a reordered merge, a mis-replayed contention stall —
//! fails the sweep at the exact scenario that exhibits it.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sim_vm::{VcpuId, VmId};
use vsnoop::{CheckerConfig, ContentPolicy, FilterPolicy, Simulator, SystemConfig};
use workloads::{profile, Workload, WorkloadConfig};

struct Scenario {
    name: &'static str,
    cfg: SystemConfig,
    policy: FilterPolicy,
    content: ContentPolicy,
    profile: &'static str,
    host_activity: bool,
    /// `Some(period_cycles)` runs the migration storm; `None` runs plain.
    migration: Option<u64>,
    rounds: u64,
}

/// Parallel-eligible scenarios only: fault-free, checker off, policies
/// that never shrink vCPU maps. (Everything else falls back to the
/// serial path by the engine's eligibility gate — covered separately in
/// `ineligible_runs_fall_back_to_the_serial_path`.)
fn scenarios() -> Vec<Scenario> {
    let paper = SystemConfig::paper_default();
    let small = SystemConfig::small_test();
    let storm_period = (paper.cycles_per_ms / 10).max(1);
    vec![
        // The perf harness's parallel storm profile: paper machine,
        // 0.1 ms migration storm.
        Scenario {
            name: "storm",
            cfg: paper,
            policy: FilterPolicy::VsnoopBase,
            content: ContentPolicy::Broadcast,
            profile: "ocean",
            host_activity: false,
            migration: Some(storm_period),
            rounds: 600,
        },
        // Pinned vCPUs (no migration), map-filtered content routing.
        Scenario {
            name: "pinned",
            cfg: paper,
            policy: FilterPolicy::VsnoopBase,
            content: ContentPolicy::IntraVm,
            profile: "specjbb",
            host_activity: true,
            migration: None,
            rounds: 800,
        },
        // Unfiltered broadcast on the small machine (16/32-set caches:
        // the smallest eligible geometry).
        Scenario {
            name: "broadcast",
            cfg: small,
            policy: FilterPolicy::TokenBroadcast,
            content: ContentPolicy::Broadcast,
            profile: "cholesky",
            host_activity: false,
            migration: None,
            rounds: 1_500,
        },
        // Friend-VM content routing under migration: exercises the
        // frozen per-batch friend table and map snapshots.
        Scenario {
            name: "friend_storm",
            cfg: small,
            policy: FilterPolicy::VsnoopBase,
            content: ContentPolicy::FriendVm,
            profile: "SPECweb",
            host_activity: false,
            migration: Some(250),
            rounds: 1_200,
        },
    ]
}

/// The perf harness's migration picker, duplicated so the storm
/// scenarios shuffle the same pairs at every worker count.
fn picker(cfg: SystemConfig, seed: u64) -> impl FnMut(u64) -> (VcpuId, VcpuId) {
    let mut rng = SmallRng::seed_from_u64(seed);
    move |_| {
        let a = rng.gen_range(0..cfg.n_vms) as u16;
        let mut b = rng.gen_range(0..cfg.n_vms - 1) as u16;
        if b >= a {
            b += 1;
        }
        (
            VcpuId::new(VmId::new(a), rng.gen_range(0..cfg.vcpus_per_vm)),
            VcpuId::new(VmId::new(b), rng.gen_range(0..cfg.vcpus_per_vm)),
        )
    }
}

/// Everything observable about a finished run, comparable with `==`.
#[derive(PartialEq, Debug)]
struct RunDigest {
    stats: vsnoop::SimStats,
    arch_state: String,
    traffic: sim_net::TrafficStats,
    diagnostics_total: u64,
    cycle: u64,
}

fn run_one(sc: &Scenario, workers: usize) -> RunDigest {
    let mut sim = Simulator::new(sc.cfg, sc.policy, sc.content);
    sim.set_engine_workers(workers);
    let mut wl = Workload::homogeneous(
        profile(sc.profile).unwrap(),
        sc.cfg.n_vms,
        WorkloadConfig {
            vcpus_per_vm: sc.cfg.vcpus_per_vm,
            host_activity: sc.host_activity,
            seed: 0x5EED ^ sc.rounds,
            ..Default::default()
        },
    );
    match sc.migration {
        Some(period) => sim.run_with_migration(&mut wl, sc.rounds, period, picker(sc.cfg, 0x51A9)),
        None => sim.run(&mut wl, sc.rounds),
    }
    RunDigest {
        stats: sim.stats().clone(),
        arch_state: sim.arch_state(),
        traffic: *sim.traffic(),
        diagnostics_total: sim.diagnostics_total(),
        cycle: sim.cycle(),
    }
}

#[test]
fn parallel_engine_is_bit_identical_across_worker_counts() {
    for sc in scenarios() {
        let serial = run_one(&sc, 1);
        for workers in [2usize, 8] {
            let par = run_one(&sc, workers);
            assert_eq!(
                serial.stats, par.stats,
                "SimStats diverged in scenario {} at {workers} workers",
                sc.name
            );
            assert_eq!(
                serial.traffic, par.traffic,
                "traffic diverged in scenario {} at {workers} workers",
                sc.name
            );
            assert!(
                serial.arch_state == par.arch_state,
                "architectural state diverged in scenario {} at {workers} workers",
                sc.name
            );
            assert_eq!(
                serial, par,
                "digest diverged in scenario {} at {workers} workers",
                sc.name
            );
        }
        // A scenario that never exercised the machine would vacuously
        // pass; require real coherence activity and real contention.
        assert!(
            serial.stats.l2_misses > 0 && !serial.arch_state.is_empty(),
            "scenario {} did no work",
            sc.name
        );
        assert!(
            serial.stats.stall_cycles.iter().sum::<u64>() > 0,
            "scenario {} charged no stalls — the replay path went untested",
            sc.name
        );
    }
}

/// A run the gate rejects (checker enabled) must take the serial path
/// even when many workers are requested, and so stay bit-identical —
/// including the checker's own counters, which only the serial path
/// maintains.
#[test]
fn ineligible_runs_fall_back_to_the_serial_path() {
    let cfg = SystemConfig::small_test();
    let digest = |workers: usize| {
        let mut sim = Simulator::new(cfg, FilterPolicy::VsnoopBase, ContentPolicy::IntraVm);
        sim.set_engine_workers(workers);
        sim.enable_checker(CheckerConfig::default());
        let mut wl = Workload::homogeneous(
            profile("ocean").unwrap(),
            cfg.n_vms,
            WorkloadConfig {
                vcpus_per_vm: cfg.vcpus_per_vm,
                seed: 0xFA11,
                ..Default::default()
            },
        );
        sim.run_with_migration(&mut wl, 800, 200, picker(cfg, 0x71C4));
        sim.run_checker_sweep();
        let ch = sim.checker().expect("checker stays on");
        (
            sim.stats().clone(),
            sim.arch_state(),
            *sim.traffic(),
            (ch.total_violations(), ch.block_checks(), ch.sweeps()),
        )
    };
    let serial = digest(1);
    let fallback = digest(8);
    assert_eq!(serial, fallback);
    assert!(
        fallback.3 .1 > 0,
        "checker saw no transactions — the fallback skipped the serial checker hook"
    );
}

//! Runs every experiment in paper order (the output of this binary is the
//! source of EXPERIMENTS.md's measured columns).

use std::process::Command;

fn main() {
    let bins = [
        "fig1",
        "fig2",
        "fig2_validation",
        "fig3",
        "table1",
        "table2",
        "table3",
        "table4",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "table5",
        "fig10",
        "table6",
    ];
    // Prefer in-process execution when built as part of the workspace; the
    // simplest robust approach is to re-exec sibling binaries living next
    // to this one.
    let me = std::env::current_exe().expect("current exe");
    let dir = me.parent().expect("exe dir");
    for bin in bins {
        let path = dir.join(bin);
        let status = Command::new(&path)
            .status()
            .unwrap_or_else(|e| panic!("failed to run {}: {e}", path.display()));
        if !status.success() {
            eprintln!("{bin} exited with {status}");
            std::process::exit(1);
        }
    }
}

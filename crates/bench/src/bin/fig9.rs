//! Fig. 9 — cumulative distribution of the core-removal period after a
//! vCPU relocation (counter mechanism, 5 ms migration period).

use vsnoop_bench::{reports, scale_from_env};

fn main() {
    vsnoop_bench::init_obs();
    match reports::fig9(scale_from_env()) {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("fig9: {e}");
            std::process::exit(1);
        }
    }
}

//! Per-application workload profiles, calibrated to the paper.
//!
//! The paper evaluates real benchmark binaries (SPLASH-2, PARSEC, SPECjbb,
//! OLTP/SysBench, SPECweb2005); this reproduction has no Simics, so each
//! application is replaced by a parameterized synthetic profile whose
//! first-order trace statistics target the numbers the paper reports:
//!
//! * `TraceParams` shape the memory-access stream (working-set size, page
//!   popularity skew, write mix, content-shared and hypervisor/dom0
//!   activity) and are calibrated against Fig. 1 (host share of L2
//!   misses) and Table V (content-shared share of L1 accesses and L2
//!   misses).
//! * `SchedParams` shape the vCPU burst/block behaviour driving the credit
//!   scheduler and are calibrated against Fig. 3 and Table I (relocation
//!   periods).
//! * `PaperTargets` embeds the published values so the benchmark harness
//!   can print paper-vs-measured side by side.

/// Benchmark suite an application belongs to (Table III).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Suite {
    /// SPLASH-2 scientific kernels.
    Splash2,
    /// PARSEC multithreaded applications.
    Parsec,
    /// Server workloads (SPECjbb2000, SysBench OLTP, SPECweb2005).
    Server,
}

/// Parameters of the synthetic memory-access stream.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct TraceParams {
    /// Thread-local working set per *vCPU*, in 4 KB pages. Sized to stay
    /// L2-resident, like the thread-private data of real applications.
    pub private_pages: u64,
    /// Zipf skew of thread-local page popularity (0 = uniform).
    pub zipf_s: f64,
    /// VM-wide shared heap size, in 4 KB pages (typically larger than one
    /// L2, so accesses to it miss frequently).
    pub shared_pages: u64,
    /// Zipf skew of shared-heap page popularity.
    pub shared_zipf: f64,
    /// Fraction of guest accesses that target the VM-wide shared heap
    /// instead of the thread-local set. This is the primary knob for the
    /// private-page L2 miss rate (and thus Table V's miss-share
    /// enrichment).
    pub vm_shared_frac: f64,
    /// Fraction of accesses that are stores.
    pub write_frac: f64,
    /// Fraction of guest accesses that touch the content-shared pool
    /// (targets Table V "Access %").
    pub content_frac: f64,
    /// Content-shared pool size per VM, in pages; pool contents are
    /// identical across VMs so an ideal dedup scan merges them.
    pub content_pages: u64,
    /// Zipf skew of content-page popularity.
    pub content_zipf: f64,
    /// Fraction of content-pool accesses that are stores (each triggers a
    /// copy-on-write break of sharing).
    pub content_write_frac: f64,
    /// Fraction of access slots taken by the hypervisor (only when the
    /// experiment enables host activity; targets Fig. 1).
    pub hyp_frac: f64,
    /// Fraction of access slots taken by dom0.
    pub dom0_frac: f64,
    /// Temporal locality: every freshly chosen block is accessed this many
    /// times in a row. The repeats hit in the L1; the *fresh* sub-stream is
    /// what exercises the L2 and coherence, so per-access L2 miss rates
    /// land in a realistic few-percent range.
    pub reuse_burst: u64,
}

/// Parameters of the vCPU execution behaviour (credit-scheduler model).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SchedParams {
    /// Mean busy burst per vCPU, milliseconds.
    pub mean_busy_ms: f64,
    /// Mean blocked phase per vCPU, milliseconds.
    pub mean_blocked_ms: f64,
    /// Mean VM-wide parallel phase, milliseconds.
    pub mean_parallel_ms: f64,
    /// Mean VM-wide serial (Amdahl) phase, milliseconds — during it only
    /// one vCPU runs, so load balancing matters; 0 disables.
    pub mean_serial_ms: f64,
    /// Total CPU work per vCPU, milliseconds.
    pub work_ms: f64,
    /// Cold-cache penalty per migration, milliseconds.
    pub migration_penalty_ms: f64,
    /// Long-run fraction of one core consumed by dom0 on behalf of this
    /// application (I/O intensity).
    pub dom0_load: f64,
}

/// Published values this profile is calibrated against, for side-by-side
/// reporting. `None` where the paper does not report the number.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct PaperTargets {
    /// Fig. 1: hypervisor + dom0 share of L2 misses, percent.
    pub fig1_host_miss_pct: Option<f64>,
    /// Table I: average relocation period, undercommitted, ms.
    pub table1_under_ms: Option<f64>,
    /// Table I: average relocation period, overcommitted, ms.
    pub table1_over_ms: Option<f64>,
    /// Table IV: network traffic reduction with ideally pinned VMs, percent.
    pub table4_reduction_pct: Option<f64>,
    /// Table V: content-shared share of L1 accesses, percent.
    pub table5_access_pct: Option<f64>,
    /// Table V: content-shared share of L2 misses, percent.
    pub table5_miss_pct: Option<f64>,
}

/// A complete application profile.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct AppProfile {
    /// Benchmark name as the paper spells it.
    pub name: &'static str,
    /// Suite the benchmark comes from.
    pub suite: Suite,
    /// Memory-trace parameters.
    pub trace: TraceParams,
    /// Scheduler-behaviour parameters.
    pub sched: SchedParams,
    /// Published numbers this profile targets.
    pub targets: PaperTargets,
}

const fn default_trace() -> TraceParams {
    TraceParams {
        private_pages: 32,
        zipf_s: 0.6,
        shared_pages: 256,
        shared_zipf: 0.2,
        vm_shared_frac: 0.12,
        write_frac: 0.3,
        content_frac: 0.02,
        content_pages: 48,
        content_zipf: 0.4,
        content_write_frac: 0.0,
        hyp_frac: 0.0,
        dom0_frac: 0.0,
        reuse_burst: 8,
    }
}

const fn default_sched() -> SchedParams {
    SchedParams {
        mean_busy_ms: 10.0,
        mean_blocked_ms: 3.0,
        mean_parallel_ms: 60.0,
        mean_serial_ms: 15.0,
        work_ms: 2_000.0,
        migration_penalty_ms: 0.45,
        dom0_load: 0.04,
    }
}

macro_rules! profile {
    ($name:literal, $suite:expr, trace: { $($tf:ident : $tv:expr),* $(,)? },
     sched: { $($sf:ident : $sv:expr),* $(,)? },
     targets: { $($gf:ident : $gv:expr),* $(,)? }) => {{
        // Some invocations specify every field, making the `..defaults`
        // spread redundant for that expansion only.
        #[allow(clippy::needless_update)]
        let p = AppProfile {
            name: $name,
            suite: $suite,
            trace: TraceParams { $($tf: $tv,)* ..default_trace() },
            sched: SchedParams { $($sf: $sv,)* ..default_sched() },
            targets: PaperTargets {
                $($gf: Some($gv),)*
                ..PaperTargets {
                    fig1_host_miss_pct: None,
                    table1_under_ms: None,
                    table1_over_ms: None,
                    table4_reduction_pct: None,
                    table5_access_pct: None,
                    table5_miss_pct: None,
                }
            },
        };
        p
    }};
}

/// Every application profile, in the paper's presentation order.
///
/// Host-activity access fractions (`hyp_frac`/`dom0_frac`) are derived from
/// the Fig. 1 miss shares assuming a guest L2 miss rate near 7% and
/// near-always-missing host streams: `a = 0.07 t / (1 - 0.93 t)` for a
/// target host miss share `t`.
pub static PROFILES: &[AppProfile] = &[
    // --- SPLASH-2 simulation workloads (Table III) -------------------------
    profile!("cholesky", Suite::Splash2,
        trace: { private_pages: 32, zipf_s: 0.6,
                 shared_pages: 256, shared_zipf: 0.2, vm_shared_frac: 0.25, write_frac: 0.25,
                 content_frac: 0.0145, content_pages: 48, content_zipf: 0.4 },
        sched: {},
        targets: { table4_reduction_pct: 63.79, table5_access_pct: 1.45, table5_miss_pct: 2.66 }),
    profile!("fft", Suite::Splash2,
        trace: { private_pages: 32, zipf_s: 0.6,
                 shared_pages: 384, shared_zipf: 0.2, vm_shared_frac: 0.055, write_frac: 0.3,
                 content_frac: 0.0543, content_pages: 128, content_zipf: 0.0 },
        sched: {},
        targets: { table4_reduction_pct: 63.20, table5_access_pct: 5.43, table5_miss_pct: 30.64 }),
    profile!("lu", Suite::Splash2,
        trace: { private_pages: 24, zipf_s: 0.6,
                 shared_pages: 256, shared_zipf: 0.2, vm_shared_frac: 0.035, write_frac: 0.3,
                 content_frac: 0.0043, content_pages: 1024, content_zipf: 0.0 },
        sched: {},
        targets: { table4_reduction_pct: 64.27, table5_access_pct: 0.43, table5_miss_pct: 8.87 }),
    profile!("ocean", Suite::Splash2,
        trace: { private_pages: 40, zipf_s: 0.5,
                 shared_pages: 512, shared_zipf: 0.1, vm_shared_frac: 0.45, write_frac: 0.3,
                 content_frac: 0.004, content_pages: 48, content_zipf: 0.3 },
        sched: {},
        targets: { table4_reduction_pct: 63.74, table5_access_pct: 0.40, table5_miss_pct: 0.83 }),
    profile!("radix", Suite::Splash2,
        trace: { private_pages: 32, zipf_s: 0.6,
                 shared_pages: 384, shared_zipf: 0.2, vm_shared_frac: 0.15, write_frac: 0.35,
                 content_frac: 0.2047, content_pages: 4, content_zipf: 0.6 },
        sched: {},
        targets: { table4_reduction_pct: 63.39, table5_access_pct: 20.47, table5_miss_pct: 0.96 }),
    // --- PARSEC -------------------------------------------------------------
    profile!("blackscholes", Suite::Parsec,
        trace: { private_pages: 12, zipf_s: 0.7,
                 shared_pages: 32, shared_zipf: 0.3, vm_shared_frac: 0.06, write_frac: 0.2,
                 content_frac: 0.4616, content_pages: 16, content_zipf: 0.5,
                 hyp_frac: 0.001, dom0_frac: 0.0015 },
        sched: { mean_busy_ms: 400.0, mean_blocked_ms: 2.0, work_ms: 2_000.0,
                 mean_parallel_ms: 150.0, mean_serial_ms: 10.0,
                 migration_penalty_ms: 0.35, dom0_load: 0.01 },
        targets: { fig1_host_miss_pct: 2.0, table1_under_ms: 2880.6, table1_over_ms: 91.3,
                   table4_reduction_pct: 64.22, table5_access_pct: 46.16, table5_miss_pct: 41.10 }),
    profile!("bodytrack", Suite::Parsec,
        trace: { hyp_frac: 0.0027, dom0_frac: 0.004 },
        sched: { mean_busy_ms: 4.0, mean_blocked_ms: 2.0, dom0_load: 0.05 },
        targets: { fig1_host_miss_pct: 4.0, table1_under_ms: 26.1, table1_over_ms: 1.2 }),
    profile!("canneal", Suite::Parsec,
        trace: { private_pages: 40, zipf_s: 0.5,
                 shared_pages: 1024, shared_zipf: 0.1, vm_shared_frac: 0.125, write_frac: 0.3,
                 content_frac: 0.2516, content_pages: 512, content_zipf: 0.0,
                 hyp_frac: 0.009, dom0_frac: 0.015 },
        sched: { mean_busy_ms: 5.0, mean_blocked_ms: 2.5, work_ms: 2_500.0, dom0_load: 0.04 },
        targets: { fig1_host_miss_pct: 3.0, table1_under_ms: 28.4, table1_over_ms: 3.4,
                   table4_reduction_pct: 63.35, table5_access_pct: 25.16, table5_miss_pct: 51.49 }),
    profile!("dedup", Suite::Parsec,
        trace: { private_pages: 32, zipf_s: 0.6,
                 shared_pages: 256, shared_zipf: 0.2, vm_shared_frac: 0.12, write_frac: 0.35,
                 content_frac: 0.05, content_pages: 64, content_zipf: 0.5,
                 hyp_frac: 0.011, dom0_frac: 0.016 },
        sched: { mean_busy_ms: 0.8, mean_blocked_ms: 0.6, work_ms: 1_500.0,
                 migration_penalty_ms: 0.3, dom0_load: 0.12 },
        targets: { fig1_host_miss_pct: 11.0, table1_under_ms: 10.8, table1_over_ms: 0.1,
                   table4_reduction_pct: 64.97 }),
    profile!("facesim", Suite::Parsec,
        trace: { hyp_frac: 0.0023, dom0_frac: 0.0037 },
        sched: { mean_busy_ms: 5.0, mean_blocked_ms: 2.0, work_ms: 3_000.0, dom0_load: 0.04 },
        targets: { fig1_host_miss_pct: 3.0, table1_under_ms: 30.0, table1_over_ms: 1.2 }),
    profile!("ferret", Suite::Parsec,
        trace: { private_pages: 32, zipf_s: 0.6,
                 shared_pages: 256, shared_zipf: 0.2, vm_shared_frac: 0.26, write_frac: 0.3,
                 content_frac: 0.0364, content_pages: 8, content_zipf: 0.4,
                 hyp_frac: 0.0084, dom0_frac: 0.0134 },
        sched: { mean_busy_ms: 40.0, mean_blocked_ms: 8.0, work_ms: 2_500.0, dom0_load: 0.05 },
        targets: { fig1_host_miss_pct: 5.0, table1_under_ms: 375.9, table1_over_ms: 31.5,
                   table4_reduction_pct: 63.05, table5_access_pct: 3.64, table5_miss_pct: 5.13 }),
    profile!("fluidanimate", Suite::Parsec,
        trace: { hyp_frac: 0.0027, dom0_frac: 0.004 },
        sched: { mean_busy_ms: 8.0, mean_blocked_ms: 3.0, work_ms: 2_500.0, dom0_load: 0.04 },
        targets: { fig1_host_miss_pct: 4.0, table1_under_ms: 46.6, table1_over_ms: 7.9 }),
    profile!("freqmine", Suite::Parsec,
        trace: { hyp_frac: 0.009, dom0_frac: 0.013 },
        sched: { mean_busy_ms: 800.0, mean_blocked_ms: 400.0, work_ms: 2_000.0,
                 mean_parallel_ms: 1_000.0, mean_serial_ms: 0.0, dom0_load: 0.01 },
        targets: { fig1_host_miss_pct: 8.0, table1_under_ms: 1968.0, table1_over_ms: 2064.4 }),
    profile!("raytrace", Suite::Parsec,
        trace: { hyp_frac: 0.0062, dom0_frac: 0.0086 },
        sched: { mean_busy_ms: 60.0, mean_blocked_ms: 10.0, work_ms: 2_500.0, dom0_load: 0.03 },
        targets: { fig1_host_miss_pct: 7.0, table1_under_ms: 528.8, table1_over_ms: 23.6 }),
    profile!("streamcluster", Suite::Parsec,
        trace: { hyp_frac: 0.0023, dom0_frac: 0.0037 },
        sched: { mean_busy_ms: 5.0, mean_blocked_ms: 2.0, work_ms: 2_500.0, dom0_load: 0.04 },
        targets: { fig1_host_miss_pct: 3.0, table1_under_ms: 36.2, table1_over_ms: 1.3 }),
    profile!("swaptions", Suite::Parsec,
        trace: { hyp_frac: 0.002, dom0_frac: 0.003 },
        sched: { mean_busy_ms: 350.0, mean_blocked_ms: 2.0, work_ms: 2_000.0,
                 mean_parallel_ms: 150.0, mean_serial_ms: 10.0,
                 migration_penalty_ms: 0.35, dom0_load: 0.01 },
        targets: { fig1_host_miss_pct: 2.0, table1_under_ms: 2203.1, table1_over_ms: 80.3 }),
    profile!("vips", Suite::Parsec,
        trace: { hyp_frac: 0.0027, dom0_frac: 0.004 },
        sched: { mean_busy_ms: 3.0, mean_blocked_ms: 1.5, work_ms: 2_000.0,
                 migration_penalty_ms: 0.4, dom0_load: 0.06 },
        targets: { fig1_host_miss_pct: 4.0, table1_under_ms: 18.3, table1_over_ms: 0.7 }),
    profile!("x264", Suite::Parsec,
        trace: { hyp_frac: 0.0027, dom0_frac: 0.004 },
        sched: { mean_busy_ms: 5.0, mean_blocked_ms: 2.5, work_ms: 2_000.0, dom0_load: 0.05 },
        targets: { fig1_host_miss_pct: 4.0, table1_under_ms: 29.2, table1_over_ms: 8.2 }),
    // --- Servers -------------------------------------------------------------
    profile!("specjbb", Suite::Server,
        trace: { private_pages: 32, zipf_s: 0.55,
                 shared_pages: 512, shared_zipf: 0.15, vm_shared_frac: 0.075, write_frac: 0.35,
                 content_frac: 0.0948, content_pages: 192, content_zipf: 0.0 },
        sched: { mean_busy_ms: 2.0, mean_blocked_ms: 1.0, dom0_load: 0.1 },
        targets: { table4_reduction_pct: 62.79, table5_access_pct: 9.48, table5_miss_pct: 37.74 }),
    profile!("OLTP", Suite::Server,
        trace: { private_pages: 32, zipf_s: 0.6,
                 shared_pages: 512, shared_zipf: 0.2, vm_shared_frac: 0.20, write_frac: 0.4,
                 hyp_frac: 0.019, dom0_frac: 0.029 },
        sched: { mean_busy_ms: 1.5, mean_blocked_ms: 1.5, dom0_load: 0.2 },
        targets: { fig1_host_miss_pct: 15.0 }),
    profile!("SPECweb", Suite::Server,
        trace: { private_pages: 32, zipf_s: 0.6,
                 shared_pages: 512, shared_zipf: 0.2, vm_shared_frac: 0.18, write_frac: 0.35,
                 hyp_frac: 0.025, dom0_frac: 0.038 },
        sched: { mean_busy_ms: 1.0, mean_blocked_ms: 1.2, dom0_load: 0.25 },
        targets: { fig1_host_miss_pct: 19.0 }),
];

/// Looks up a profile by its paper name (case-sensitive).
pub fn profile(name: &str) -> Option<&'static AppProfile> {
    PROFILES.iter().find(|p| p.name == name)
}

/// Error returned by [`try_profile`] for names not in the registry.
///
/// Carries the full list of registered names so the message an operator
/// sees (for example from a mistyped `--only` or a hand-edited crash
/// reproducer) says what *would* have worked.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileError {
    /// The name that was requested.
    pub requested: String,
    /// Every registered profile name, in registry order.
    pub available: Vec<&'static str>,
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown workload profile \"{}\" (available: {})",
            self.requested,
            self.available.join(", ")
        )
    }
}

impl std::error::Error for ProfileError {}

/// Looks up a profile by name, returning a [`ProfileError`] that lists
/// the registered names when the lookup fails.
///
/// # Errors
///
/// Returns [`ProfileError`] if `name` is not registered.
pub fn try_profile(name: &str) -> Result<&'static AppProfile, ProfileError> {
    profile(name).ok_or_else(|| ProfileError {
        requested: name.to_string(),
        available: PROFILES.iter().map(|p| p.name).collect(),
    })
}

/// The ten applications of the simulation sections (Tables III-IV,
/// Figs. 6-8): five SPLASH-2 kernels, four PARSEC applications, SPECjbb.
pub fn simulation_apps() -> Vec<&'static AppProfile> {
    [
        "cholesky",
        "fft",
        "lu",
        "ocean",
        "radix",
        "blackscholes",
        "canneal",
        "dedup",
        "ferret",
        "specjbb",
    ]
    .iter()
    .map(|n| profile(n).expect("registered"))
    .collect()
}

/// The applications of Fig. 1 / Fig. 3 / Table I: 13 PARSEC plus the two
/// I/O-intensive server workloads (Fig. 3 and Table I use only the PARSEC
/// subset).
pub fn fig1_apps() -> Vec<&'static AppProfile> {
    let mut v: Vec<_> = PROFILES
        .iter()
        .filter(|p| p.suite == Suite::Parsec)
        .collect();
    v.push(profile("OLTP").expect("registered"));
    v.push(profile("SPECweb").expect("registered"));
    v
}

/// The 13 PARSEC applications (Fig. 3, Table I).
pub fn parsec_apps() -> Vec<&'static AppProfile> {
    PROFILES
        .iter()
        .filter(|p| p.suite == Suite::Parsec)
        .collect()
}

/// The nine applications of Table V / Fig. 10 / Table VI (the simulation
/// set minus dedup).
pub fn content_apps() -> Vec<&'static AppProfile> {
    simulation_apps()
        .into_iter()
        .filter(|p| p.name != "dedup")
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete() {
        assert_eq!(simulation_apps().len(), 10);
        assert_eq!(parsec_apps().len(), 13);
        assert_eq!(fig1_apps().len(), 15);
        assert_eq!(content_apps().len(), 9);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = PROFILES.iter().map(|p| p.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn lookup_by_name() {
        assert!(profile("fft").is_some());
        assert!(profile("nonexistent").is_none());
        assert_eq!(profile("canneal").unwrap().suite, Suite::Parsec);
    }

    #[test]
    fn parameters_are_sane() {
        for p in PROFILES {
            let t = &p.trace;
            assert!(t.private_pages > 0, "{}: empty working set", p.name);
            assert!(t.content_pages > 0, "{}: empty content pool", p.name);
            for &f in &[
                t.write_frac,
                t.content_frac,
                t.content_write_frac,
                t.hyp_frac,
                t.dom0_frac,
            ] {
                assert!(
                    (0.0..=1.0).contains(&f),
                    "{}: fraction out of range",
                    p.name
                );
            }
            assert!(
                t.hyp_frac + t.dom0_frac + t.content_frac < 1.0,
                "{}",
                p.name
            );
            let s = &p.sched;
            assert!(s.mean_busy_ms > 0.0 && s.mean_blocked_ms > 0.0 && s.work_ms > 0.0);
            assert!((0.0..1.0).contains(&s.dom0_load), "{}", p.name);
        }
    }

    #[test]
    fn table5_targets_present_for_content_apps() {
        for p in content_apps() {
            assert!(
                p.targets.table5_access_pct.is_some() && p.targets.table5_miss_pct.is_some(),
                "{} must carry Table V targets",
                p.name
            );
        }
    }

    #[test]
    fn table1_targets_present_for_parsec() {
        for p in parsec_apps() {
            assert!(
                p.targets.table1_under_ms.is_some() && p.targets.table1_over_ms.is_some(),
                "{} must carry Table I targets",
                p.name
            );
        }
    }
}

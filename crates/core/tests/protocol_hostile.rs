//! Gated behind the `proptest` feature: run with `cargo test --features proptest`.
#![cfg(feature = "proptest")]

//! Property-based tests of the wire protocol and durability logs under
//! hostile input.
//!
//! The service reads frames from the network and replays logs written
//! by a process that may have died mid-byte, so the parsers here are
//! the repo's main untrusted-input surface. Two families of
//! properties:
//!
//! 1. **Round-trips** — every response builder and every WAL record
//!    parses back to exactly what was serialized, for strings drawn
//!    from a palette of JSON-hostile characters (quotes, backslashes,
//!    braces, newlines, NUL, multi-byte unicode).
//! 2. **No panics** — truncated, bit-flipped, and spliced-together
//!    frames (what a torn TCP stream or a crash mid-append produces)
//!    may fail to parse, but must never panic the parser.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use vsnoop::runner::json::Value;
use vsnoop::runner::{JobError, JournalEntry};
use vsnoop::service::{protocol, Request, Response, ShedReason, WalRecord};

/// Strings stitched from characters JSON encoders get wrong first:
/// escapes, delimiters, control bytes, and multi-byte code points.
fn hostile_string() -> impl Strategy<Value = String> {
    let palette = [
        '"', '\\', '{', '}', '[', ']', ':', ',', '\n', '\r', '\t', '\0', 'a', 'é', '世', '🦀', ' ',
        '/',
    ];
    prop::collection::vec(0usize..palette.len(), 0..24)
        .prop_map(move |ix| ix.into_iter().map(|i| palette[i]).collect())
}

fn hostile_outcome() -> impl Strategy<Value = (bool, String)> {
    (any::<bool>(), hostile_string())
}

fn opt_tag() -> impl Strategy<Value = Option<String>> {
    (any::<bool>(), hostile_string()).prop_map(|(some, s)| some.then_some(s))
}

proptest! {
    #[test]
    fn accepted_round_trips(job_id in any::<u64>(), tag in opt_tag()) {
        let line = protocol::accepted(job_id, &tag);
        prop_assert!(!line.contains('\n'), "one frame per line: {line:?}");
        let parsed = Response::parse(&line).expect("accepted parses");
        prop_assert_eq!(parsed, Response::Accepted { job_id, tag });
    }

    #[test]
    fn done_round_trips(
        job_id in any::<u64>(),
        job in hostile_string(),
        (ok, payload) in hostile_outcome(),
        tag in opt_tag(),
    ) {
        let outcome = if ok {
            Ok(payload.clone())
        } else {
            Err(JobError::Failed { message: payload.clone() })
        };
        let line = protocol::done(job_id, &job, &outcome, &tag);
        prop_assert!(!line.contains('\n'), "one frame per line: {line:?}");
        match Response::parse(&line).expect("done parses") {
            Response::Done { job_id: id, job: j, outcome: got, tag: t } => {
                prop_assert_eq!(id, job_id);
                prop_assert_eq!(j, job);
                prop_assert_eq!(t, tag);
                match got {
                    Ok(out) => {
                        prop_assert!(ok);
                        prop_assert_eq!(out, payload);
                    }
                    Err((kind, message)) => {
                        prop_assert!(!ok);
                        prop_assert_eq!(kind, "failed");
                        prop_assert!(message.contains(&payload), "{message:?}");
                    }
                }
            }
            other => return Err(TestCaseError::fail(format!("not done: {other:?}"))),
        }
    }

    #[test]
    fn coded_errors_round_trip(
        message in hostile_string(),
        code in hostile_string(),
        retryable in any::<bool>(),
        tag in opt_tag(),
    ) {
        let line = protocol::error_coded(&message, &code, retryable, &tag);
        let parsed = Response::parse(&line).expect("error parses");
        prop_assert_eq!(
            parsed,
            Response::Error { message, code: Some(code), retryable, tag }
        );
    }

    #[test]
    fn sheds_round_trip(reason_ix in 0usize..4, tag in opt_tag()) {
        let reason = [
            ShedReason::QueueFull,
            ShedReason::TenantQueueFull,
            ShedReason::TenantBytes,
            ShedReason::Draining,
        ][reason_ix];
        let line = protocol::shed(reason, &tag);
        let parsed = Response::parse(&line).expect("shed parses");
        prop_assert_eq!(
            parsed,
            Response::Shed {
                reason: reason.as_str().to_string(),
                retryable: reason.retryable(),
                tag,
            }
        );
    }

    #[test]
    fn submits_round_trip(
        tenant in hostile_string(),
        job in hostile_string(),
        idem_key in opt_tag(),
        tag in opt_tag(),
        deadline in any::<bool>(),
        param in any::<u64>(),
    ) {
        // Empty tenants are rejected by design; pad them.
        let tenant = format!("t{tenant}");
        let mut pairs = vec![
            ("op", Value::Str("submit".into())),
            ("tenant", Value::Str(tenant.clone())),
            ("job", Value::Str(job.clone())),
            ("params", Value::obj(vec![("spin", Value::UInt(param))])),
        ];
        if let Some(t) = &tag {
            pairs.push(("tag", Value::Str(t.clone())));
        }
        if let Some(k) = &idem_key {
            pairs.push(("idem_key", Value::Str(k.clone())));
        }
        if deadline {
            pairs.push(("deadline_ms", Value::UInt(param)));
        }
        let line = Value::obj(pairs).to_json();
        match Request::parse(&line).expect("submit parses") {
            Request::Submit(s) => {
                prop_assert_eq!(s.tenant, tenant);
                prop_assert_eq!(s.job, job);
                prop_assert_eq!(s.tag, tag);
                prop_assert_eq!(s.idem_key, idem_key);
                prop_assert_eq!(s.deadline_ms, deadline.then_some(param));
                prop_assert_eq!(s.params.get("spin").and_then(Value::as_u64), Some(param));
            }
            other => return Err(TestCaseError::fail(format!("not submit: {other:?}"))),
        }
    }

    #[test]
    fn wal_records_round_trip(
        job_id in any::<u64>(),
        tenant in hostile_string(),
        job in hostile_string(),
        idem_key in opt_tag(),
        (ok, payload) in hostile_outcome(),
        bytes in any::<u64>(),
        which in 0usize..3,
    ) {
        let record = match which {
            0 => WalRecord::Accepted {
                job_id,
                tenant,
                job,
                params: Value::obj(vec![("n", Value::UInt(bytes))]),
                deadline_ms: ok.then_some(bytes),
                idem_key,
                bytes,
            },
            1 => WalRecord::Done {
                job_id,
                outcome: if ok {
                    Ok(payload)
                } else {
                    Err(JobError::Failed { message: payload })
                },
            },
            _ => WalRecord::Recovered { job_id },
        };
        let line = record.to_json_line();
        prop_assert!(!line.contains('\n'), "one record per line: {line:?}");
        let back = WalRecord::from_json_line(&line).expect("record parses");
        prop_assert_eq!(back, record);
    }

    /// A torn stream hands the parsers any prefix of a valid frame;
    /// a corrupted disk or proxy hands them bit flips; an interleaved
    /// write hands them two frames spliced mid-byte. None may panic.
    #[test]
    fn mangled_frames_never_panic(
        job_id in any::<u64>(),
        job in hostile_string(),
        (ok, payload) in hostile_outcome(),
        tag in opt_tag(),
        cut_a in any::<usize>(),
        cut_b in any::<usize>(),
        flip_at in any::<usize>(),
        flip_to in any::<u8>(),
    ) {
        let outcome = if ok {
            Ok(payload.clone())
        } else {
            Err(JobError::TimedOut { limit_ms: job_id })
        };
        let frame_a = protocol::done(job_id, &job, &outcome, &tag);
        let frame_b = WalRecord::Accepted {
            job_id,
            tenant: payload.clone(),
            job: job.clone(),
            params: Value::Null,
            deadline_ms: None,
            idem_key: tag.clone(),
            bytes: job_id,
        }
        .to_json_line();

        // Truncations (on arbitrary byte, not char, boundaries).
        let trunc_a = &frame_a.as_bytes()[..cut_a % (frame_a.len() + 1)];
        // A single-byte mutation.
        let mut flipped = frame_b.clone().into_bytes();
        if !flipped.is_empty() {
            let at = flip_at % flipped.len();
            flipped[at] = flip_to;
        }
        // Two frames spliced together mid-byte.
        let mut spliced = frame_a.as_bytes()[..cut_a % (frame_a.len() + 1)].to_vec();
        spliced.extend_from_slice(&frame_b.as_bytes()[cut_b % (frame_b.len() + 1)..]);

        for bytes in [trunc_a.to_vec(), flipped, spliced] {
            let text = String::from_utf8_lossy(&bytes);
            // Any of Err/None is fine; a panic is the only failure.
            let _ = Request::parse(&text);
            let _ = Response::parse(&text);
            let _ = WalRecord::from_json_line(&text);
            let _ = JournalEntry::from_json_line(&text);
            let _ = Value::parse(&text);
        }
    }
}
